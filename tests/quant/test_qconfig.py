"""QConfig validation and stage-wise bit assignment."""

import pytest

from repro.quant.qconfig import STAGES, QConfig, fp32, from_name, int8, int10, int16


class TestFactories:
    def test_fp32_disabled(self):
        qc = fp32()
        assert not qc.enabled
        assert qc.bits is None
        assert qc.name == "fp32"

    @pytest.mark.parametrize("factory,bits", [(int8, 8), (int10, 10), (int16, 16)])
    def test_int_factories(self, factory, bits):
        qc = factory()
        assert qc.enabled
        assert qc.bits == bits
        assert qc.name == f"int{bits}"

    def test_from_name(self):
        assert from_name("fp32").bits is None
        assert from_name("int8").bits == 8
        assert from_name("INT16").bits == 16
        with pytest.raises(ValueError):
            from_name("bf16")


class TestValidation:
    def test_bits_out_of_range(self):
        with pytest.raises(ValueError):
            QConfig(bits=1)
        with pytest.raises(ValueError):
            QConfig(bits=64)

    def test_unknown_stage(self):
        with pytest.raises(ValueError):
            QConfig(bits=8, stage_bits={"nonexistent": 8})

    def test_stage_bits_out_of_range(self):
        with pytest.raises(ValueError):
            QConfig(bits=8, stage_bits={"hadamard": 1})

    def test_bad_momentum(self):
        with pytest.raises(ValueError):
            QConfig(bits=8, ema_momentum=1.0)


class TestStageBits:
    def test_default_applies_everywhere(self):
        qc = int8()
        for stage in STAGES:
            assert qc.bits_for(stage) == 8

    def test_override_single_stage(self):
        qc = int8().with_stage("hadamard", 16)
        assert qc.bits_for("hadamard") == 16
        assert qc.bits_for("input") == 8
        assert qc.name == "int8*"

    def test_with_stage_is_pure(self):
        base = int8()
        _ = base.with_stage("hadamard", 16)
        assert base.stage_bits == {}

    def test_stage_only_config_enabled(self):
        qc = QConfig(bits=None, stage_bits={"hadamard": 8})
        assert qc.enabled
        assert qc.bits_for("input") is None
        assert qc.name == "mixed*"

    def test_bits_for_unknown_stage_raises(self):
        with pytest.raises(ValueError):
            int8().bits_for("bogus")

    def test_stages_cover_figure2_pipeline(self):
        assert STAGES == (
            "input",
            "weight",
            "weight_transformed",
            "input_transformed",
            "hadamard",
            "output",
        )
