"""Fake-quantization: grids, STE, EMA observers, calibration."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.autograd import Tensor
from repro.quant.quantizer import (
    FakeQuant,
    Quantizer,
    fake_quant_array,
    quantization_scale,
)


class TestScale:
    def test_int8_scale(self):
        assert quantization_scale(1.27, 8) == pytest.approx(0.01)

    def test_degenerate_range_safe(self):
        assert quantization_scale(0.0, 8) > 0
        assert np.isfinite(quantization_scale(np.inf, 8))

    @given(st.floats(1e-3, 1e3), st.integers(2, 16))
    def test_scale_covers_range(self, max_abs, bits):
        scale = quantization_scale(max_abs, bits)
        qmax = 2 ** (bits - 1) - 1
        assert scale * qmax == pytest.approx(max_abs, rel=1e-6)


class TestFakeQuantArray:
    def test_int8_produces_at_most_255_levels(self, rng):
        x = rng.standard_normal(10000).astype(np.float32)
        q = fake_quant_array(x, 8)
        assert len(np.unique(q)) <= 255

    def test_values_on_grid(self, rng):
        x = rng.standard_normal(100).astype(np.float32)
        max_abs = float(np.abs(x).max())
        q = fake_quant_array(x, 8, max_abs)
        scale = quantization_scale(max_abs, 8)
        np.testing.assert_allclose(q / scale, np.round(q / scale), atol=1e-4)

    def test_symmetric(self, rng):
        x = rng.standard_normal(1000).astype(np.float32)
        q_pos = fake_quant_array(x, 8, 3.0)
        q_neg = fake_quant_array(-x, 8, 3.0)
        np.testing.assert_allclose(q_pos, -q_neg, atol=1e-6)

    def test_clipping_at_max(self):
        q = fake_quant_array(np.array([10.0], dtype=np.float32), 8, max_abs=1.0)
        assert q[0] == pytest.approx(1.0, rel=0.02)

    def test_error_shrinks_with_bits(self, rng):
        x = rng.standard_normal(5000).astype(np.float32)
        errors = [np.abs(fake_quant_array(x, b) - x).mean() for b in (4, 8, 16)]
        assert errors[0] > errors[1] > errors[2]


class TestSTE:
    def test_gradient_passes_inside_range(self):
        x = Tensor(np.array([0.1, -0.2, 0.3], dtype=np.float32), requires_grad=True)
        out = FakeQuant.apply(x, scale=0.01, bits=8)
        out.sum().backward()
        np.testing.assert_array_equal(x.grad, [1.0, 1.0, 1.0])

    def test_gradient_zero_outside_range(self):
        # qmax for 8 bits is 127; scale 0.01 → clip at ±1.27
        x = Tensor(np.array([0.5, 5.0, -5.0], dtype=np.float32), requires_grad=True)
        out = FakeQuant.apply(x, scale=0.01, bits=8)
        out.sum().backward()
        np.testing.assert_array_equal(x.grad, [1.0, 0.0, 0.0])


class TestQuantizerModule:
    def test_disabled_is_identity(self, rng):
        q = Quantizer(None)
        x = Tensor(rng.standard_normal(10).astype(np.float32))
        assert q(x).data is x.data
        assert not q.enabled

    def test_scale_raises_when_disabled(self):
        with pytest.raises(RuntimeError):
            Quantizer(None).scale

    def test_training_updates_ema(self, rng):
        q = Quantizer(8, ema_momentum=0.5)
        q(Tensor(np.ones(4, dtype=np.float32)))
        first = q.running_max_abs.data[0]
        assert first == pytest.approx(1.0)
        q(Tensor(3 * np.ones(4, dtype=np.float32)))
        assert q.running_max_abs.data[0] == pytest.approx(0.5 * 1.0 + 0.5 * 3.0)

    def test_eval_freezes_ema(self):
        q = Quantizer(8)
        q(Tensor(np.ones(4, dtype=np.float32)))
        frozen = q.running_max_abs.data[0]
        q.eval()
        q(Tensor(100 * np.ones(4, dtype=np.float32)))
        assert q.running_max_abs.data[0] == frozen

    def test_calibration_updates_ema_in_eval(self):
        q = Quantizer(8, ema_momentum=0.0)  # no smoothing: track last batch
        q.eval()
        q.calibrating = True
        q(Tensor(2 * np.ones(4, dtype=np.float32)))
        assert q.running_max_abs.data[0] == pytest.approx(2.0)

    def test_eval_before_observation_falls_back_to_batch(self, rng):
        q = Quantizer(8)
        q.eval()
        x = Tensor(rng.standard_normal(16).astype(np.float32))
        out = q(x)
        assert np.isfinite(out.data).all()
        assert q.initialized.data[0] == 1.0

    def test_output_on_quant_grid(self, rng):
        q = Quantizer(8)
        x = Tensor(rng.standard_normal(100).astype(np.float32))
        out = q(x)
        scale = q.scale
        np.testing.assert_allclose(
            out.data / scale, np.round(out.data / scale), atol=1e-4
        )

    def test_state_survives_state_dict_roundtrip(self):
        q1 = Quantizer(8)
        q1(Tensor(np.ones(4, dtype=np.float32) * 5))
        q2 = Quantizer(8)
        q2.load_state_dict(q1.state_dict())
        assert q2.running_max_abs.data[0] == q1.running_max_abs.data[0]

    def test_repr(self):
        assert "bits=8" in repr(Quantizer(8, name="input"))
        assert "off" in repr(Quantizer(None))
