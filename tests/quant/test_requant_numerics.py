"""Requantization numerics of the native int8 backend.

The contract: the fused requant (scale-product multiplier + rounding on
the integer accumulator, in place) must reproduce the dequantize →
``fake_quant`` round trip **bit for bit** — same grid decisions, same
elementwise float operations — for every bit-width the pipeline supports
(4…8 in these tests, matching the paper's quantization-diversity range),
including negative accumulators and clip saturation.

Plus the zero-range calibration guards: an all-zero calibration batch
must freeze the harmless ``1/qmax`` default scale rather than divide by
zero (``quantization_scale`` guard + explicit ``fake_quant`` guard).
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.engine.kernels import _quantize_codes, _requant_codes, fake_quant
from repro.quant.quantizer import quantization_scale


def reference_requant(acc, d, scale, qmax, bias=None):
    """The dequantize → fake-quant composition the kernel must match."""
    y = acc * d
    if bias is not None:
        y = y + bias
    grid_values = fake_quant(y, {"scale": scale, "qmax": qmax})
    return grid_values


def compose_back(codes, scale):
    """Codes → grid values with fake_quant's own multiply-back op."""
    values = codes.copy()
    values *= scale
    return values


scales = st.floats(min_value=1e-6, max_value=1e4, allow_nan=False)


class TestRequantMatchesFakeQuant:
    @settings(max_examples=50, deadline=None)
    @given(
        bits=st.integers(min_value=4, max_value=8),
        d=scales,
        s=scales,
        seed=st.integers(min_value=0, max_value=2**31 - 1),
    )
    def test_bit_for_bit_across_bit_widths(self, bits, d, s, seed):
        qmax = float(2 ** (bits - 1) - 1)
        rng = np.random.default_rng(seed)
        # accumulators spanning the in-range region and deep saturation
        acc = rng.integers(-(2**20), 2**20, size=257).astype(np.float32)
        expected = reference_requant(acc.copy(), d, s, qmax)
        codes = _requant_codes(acc.copy(), d, {"scale": s, "qmax": qmax})
        assert np.all(np.abs(codes) <= qmax)
        np.testing.assert_array_equal(compose_back(codes, s), expected)

    @settings(max_examples=25, deadline=None)
    @given(
        bits=st.integers(min_value=4, max_value=8),
        d=scales,
        s=scales,
        seed=st.integers(min_value=0, max_value=2**31 - 1),
    )
    def test_bias_rides_inside_the_requant(self, bits, d, s, seed):
        """QuantConv2d/QuantLinear add bias before the output stage; the
        int8 path folds it between the multiplier and the rounding."""
        qmax = float(2 ** (bits - 1) - 1)
        rng = np.random.default_rng(seed)
        acc = rng.integers(-(2**16), 2**16, size=(37, 5)).astype(np.float32)
        bias = rng.standard_normal(5).astype(np.float32)
        expected = reference_requant(acc.copy(), d, s, qmax, bias=bias)
        codes = _requant_codes(acc.copy(), d, {"scale": s, "qmax": qmax}, bias=bias)
        np.testing.assert_array_equal(compose_back(codes, s), expected)

    @pytest.mark.parametrize("dtype", [np.float32, np.float64])
    def test_saturation_and_negatives(self, dtype):
        """Deep clip saturation on both sides, including the extremes."""
        qmax = 127.0
        acc = np.array([-(2**23), -129, -128, -127, -1, 0, 1, 127, 128, 2**23],
                       dtype=dtype)
        d, s = 1.0, 1.0
        expected = reference_requant(acc.copy(), d, s, qmax)
        codes = _requant_codes(acc.copy(), d, {"scale": s, "qmax": qmax})
        np.testing.assert_array_equal(compose_back(codes, s).astype(dtype), expected)
        assert codes[0] == -qmax and codes[-1] == qmax

    def test_float64_accumulators(self):
        """Accumulators past the float32 bound run the same contract in
        float64 (the dtype the compile-time bound analysis picks)."""
        rng = np.random.default_rng(7)
        acc = rng.integers(-(2**40), 2**40, size=999).astype(np.float64)
        d, s, qmax = 3.7e-7, 0.011, 127.0
        expected = reference_requant(acc.copy(), d, s, qmax)
        codes = _requant_codes(acc.copy(), d, {"scale": s, "qmax": qmax})
        np.testing.assert_array_equal(compose_back(codes, s), expected.astype(np.float64))

    @settings(max_examples=25, deadline=None)
    @given(s=scales, seed=st.integers(min_value=0, max_value=2**31 - 1))
    def test_quantize_codes_matches_fake_quant_decisions(self, s, seed):
        """The activation prologue (float → codes) makes exactly the
        fake_quant grid decisions, minus the multiply back."""
        qmax = 127.0
        rng = np.random.default_rng(seed)
        x = (100.0 * rng.standard_normal(511)).astype(np.float32)
        grid_values = fake_quant(x.copy(), {"scale": s, "qmax": qmax})
        codes = _quantize_codes(x, {"scale": s, "qmax": qmax})
        np.testing.assert_array_equal(compose_back(codes, s), grid_values)


class TestZeroRangeGuards:
    def test_quantization_scale_guards_zero_and_nonfinite(self):
        assert quantization_scale(0.0, 8) == 1.0 / 127.0
        assert quantization_scale(-1.0, 8) == 1.0 / 127.0
        assert quantization_scale(float("nan"), 8) == 1.0 / 127.0
        assert quantization_scale(float("inf"), 8) == 1.0 / 127.0

    def test_fake_quant_dynamic_freeze_on_all_zero_batch(self):
        """The regression of ISSUE 3: an all-zero first (calibration)
        batch must freeze the 1/qmax default, not a zero scale."""
        q = {"dynamic_bits": 8}
        zeros = np.zeros((4, 3, 8, 8), dtype=np.float32)
        out = fake_quant(zeros, q)
        assert q["scale"] == 1.0 / 127.0  # frozen to the guarded default
        np.testing.assert_array_equal(out, zeros)
        # later non-zero batches quantize with the frozen range, finitely
        x = np.ones((2, 3, 8, 8), dtype=np.float32)
        assert np.all(np.isfinite(fake_quant(x, q)))

    def test_fake_quant_guards_degenerate_frozen_scale(self):
        """A frozen stage dict carrying a zero/non-finite scale (however
        it got there) must not divide by zero."""
        x = np.linspace(-2, 2, 11, dtype=np.float32)
        for bad in (0.0, -1.0, float("nan")):
            out = fake_quant(x.copy(), {"scale": bad, "qmax": 127.0})
            assert np.all(np.isfinite(out))

    def test_requant_and_quantize_guard_degenerate_scale(self):
        acc = np.arange(-5, 6).astype(np.float32)
        codes = _requant_codes(acc.copy(), 1.0, {"scale": 0.0, "qmax": 127.0})
        assert np.all(np.isfinite(codes))
        codes = _quantize_codes(acc.copy(), {"scale": 0.0, "qmax": 127.0})
        assert np.all(np.isfinite(codes))
