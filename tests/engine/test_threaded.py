"""The parallel step scheduler (ISSUE 4).

Contract:

* **Reference bit-identity** — on the ``reference`` backend, threaded
  execution is bit-identical to serial on every parity model (fp32 and
  int8): the scheduler only thread-splits ops whose per-sample results
  cannot depend on the batch split, and cache-driven chunk decisions are
  thread-count independent, so the decomposition (and hence every BLAS
  call) matches the serial run.
* **Integer exactness** — native ``int8`` steps are exact at any GEMM
  blocking, so threaded int8 execution is bit-identical to serial too.
* **Chunked × threaded invariance** — shrinking ``chunk_bytes`` and
  raising ``threads`` compose without changing reference results.
* **Concurrency safety** — many threads hammering one shared plan (each
  run checking an arena out of the pool) all get the right answer.
"""

import threading

import numpy as np
import pytest

from repro.autograd import Tensor, no_grad
from repro.engine import compile_model
from repro.engine.pool import configure_threads, default_threads, resolve_threads
from repro.models.common import ConvSpec
from repro.models.lenet import lenet
from repro.models.resnet import resnet18
from repro.models.resnext import resnext20
from repro.models.squeezenet import squeezenet
from repro.quant.qconfig import fp32, int8


def _parity_models(rng):
    return [
        ("lenet-F2-fp32", lenet(spec=ConvSpec("F2")),
         rng.standard_normal((8, 1, 28, 28)).astype(np.float32)),
        ("lenet-F2-int8", lenet(spec=ConvSpec("F2", int8())),
         rng.standard_normal((8, 1, 28, 28)).astype(np.float32)),
        ("resnet-F4-fp32", resnet18(width_multiplier=0.125, spec=ConvSpec("F4")),
         rng.standard_normal((8, 3, 32, 32)).astype(np.float32)),
        ("resnet-F4-int8", resnet18(width_multiplier=0.125, spec=ConvSpec("F4", int8())),
         rng.standard_normal((8, 3, 32, 32)).astype(np.float32)),
        ("squeezenet-F2-int8", squeezenet(width_multiplier=0.25, spec=ConvSpec("F2", int8())),
         rng.standard_normal((8, 3, 32, 32)).astype(np.float32)),
        ("resnext-F2-fp32", resnext20(width_multiplier=0.5, spec=ConvSpec("F2")),
         rng.standard_normal((4, 3, 32, 32)).astype(np.float32)),
    ]


def _calibrated(model, x):
    model.eval()
    with no_grad():
        model(Tensor(x))
    return model


class TestReferenceBitIdentity:
    def test_threaded_equals_serial_on_parity_models(self, rng):
        """The acceptance gate: serial vs threaded reference execution is
        bit-identical on every parity model, fp32 and int8 alike."""
        for name, model, x in _parity_models(rng):
            _calibrated(model, x)
            plan = compile_model(model, backend="reference")
            serial = plan.run(x, threads=1)
            for threads in (2, 4):
                threaded = plan.run(x, threads=threads)
                np.testing.assert_array_equal(
                    threaded, serial, err_msg=f"{name}: threads={threads}"
                )

    def test_chunked_and_threaded_compose_bitwise(self, rng):
        model = _calibrated(
            resnet18(width_multiplier=0.125, spec=ConvSpec("F4", int8())),
            rng.standard_normal((8, 3, 32, 32)).astype(np.float32),
        )
        plan = compile_model(model, backend="reference")
        x = rng.standard_normal((8, 3, 32, 32)).astype(np.float32)
        plan.chunk_bytes = 0
        baseline = plan.run(x, threads=1)
        plan.chunk_bytes = 1 << 12  # chunk almost every step...
        for threads in (1, 4):  # ...and fan the chunks out
            np.testing.assert_array_equal(
                plan.run(x, threads=threads),
                baseline,
                err_msg=f"chunked threads={threads}",
            )


class TestInt8Exactness:
    def test_threaded_int8_bit_identical(self, rng):
        """Integer GEMMs are exact at any blocking, so thread-splitting
        native int8 steps cannot move a single bit."""
        x = rng.standard_normal((8, 3, 32, 32)).astype(np.float32)
        model = _calibrated(
            resnet18(width_multiplier=0.125, spec=ConvSpec("F4", int8())), x
        )
        plan = compile_model(model, backend="int8")
        serial = plan.run(x, threads=1)
        np.testing.assert_array_equal(plan.run(x, threads=4), serial)


class TestFastTolerance:
    def test_threaded_fast_within_float_tolerance(self, rng):
        """fast-backend GEMMs may round differently per chunk shape; the
        contract there is the same float tolerance chunking already has."""
        x = rng.standard_normal((8, 3, 32, 32)).astype(np.float32)
        model = _calibrated(resnet18(width_multiplier=0.125, spec=ConvSpec("F4")), x)
        plan = compile_model(model, backend="fast")
        serial = plan.run(x, threads=1)
        np.testing.assert_allclose(
            plan.run(x, threads=4), serial, rtol=1e-4, atol=1e-4
        )


class TestConcurrency:
    def test_thread_hammer_concurrent_runs_with_arena(self, rng):
        """Many threads × many runs on one shared plan: every run checks
        its own arena out of the pool, so results must match the serial
        answer bit for bit (fast backend, planned execution)."""
        x = rng.standard_normal((4, 1, 28, 28)).astype(np.float32)
        model = _calibrated(lenet(spec=ConvSpec("F2", int8())), x)
        plan = compile_model(model, backend="fast")
        expected = plan.run(x)
        errors = []

        def hammer():
            try:
                for _ in range(10):
                    np.testing.assert_array_equal(plan.run(x), expected)
            except Exception as exc:  # noqa: BLE001 — surfaced below
                errors.append(exc)

        workers = [threading.Thread(target=hammer) for _ in range(8)]
        for w in workers:
            w.start()
        for w in workers:
            w.join()
        assert not errors, errors
        report = plan.memory_report()
        assert report["arenas_built"] >= 1
        assert report["shape_misses"] == 0

    def test_run_many_parallel_matches_per_input_runs(self, rng):
        """stack=False executes each input as its own run on the worker
        pool — per-input results must equal serial per-input runs bit
        for bit (the stacked fusion is a *different* GEMM shape, so it
        is only float-close, as run_many has always documented)."""
        x = rng.standard_normal((6, 1, 28, 28)).astype(np.float32)
        model = _calibrated(lenet(spec=ConvSpec("F2")), x)
        plan = compile_model(model, backend="reference")
        inputs = [x[i : i + 2] for i in range(0, 6, 2)]
        concurrent = plan.run_many(inputs, threads=4, stack=False)
        for xi, out in zip(inputs, concurrent):
            np.testing.assert_array_equal(out, plan.run(xi))
        stacked = plan.run_many(inputs)
        for a, b in zip(stacked, concurrent):
            np.testing.assert_allclose(a, b, rtol=1e-5, atol=1e-5)

    def test_worker_error_propagates(self, rng):
        x = rng.standard_normal((8, 1, 28, 28)).astype(np.float32)
        model = _calibrated(lenet(spec=ConvSpec("F2")), x)
        plan = compile_model(model, backend="fast")
        plan.run(x)
        broken = plan.steps[0]
        original = broken.fn
        broken.fn = lambda inputs, attrs: (_ for _ in ()).throw(RuntimeError("boom"))
        try:
            with pytest.raises(RuntimeError, match="boom"):
                plan.run(x, threads=4)
        finally:
            broken.fn = original


class TestThreadResolution:
    def test_env_var_and_override(self, monkeypatch):
        monkeypatch.delenv("REPRO_THREADS", raising=False)
        assert default_threads() == 1
        monkeypatch.setenv("REPRO_THREADS", "3")
        assert default_threads() == 3
        assert resolve_threads(None) == 3
        assert resolve_threads(2) == 2
        monkeypatch.setenv("REPRO_THREADS", "auto")
        assert default_threads() >= 1
        monkeypatch.setenv("REPRO_THREADS", "not-a-number")
        assert default_threads() == 1
        configure_threads(5)
        try:
            assert default_threads() == 5
        finally:
            configure_threads(None)

    def test_zero_means_all_cores(self):
        import os

        assert resolve_threads(0) == (os.cpu_count() or 1)

    def test_plan_attribute_is_the_default(self, rng, monkeypatch):
        """plan.threads feeds run() when no per-call override is given —
        observable through the scheduler taking the threaded path."""
        from repro.engine import plan as plan_mod

        x = rng.standard_normal((8, 1, 28, 28)).astype(np.float32)
        model = _calibrated(lenet(spec=ConvSpec("F2")), x)
        plan = compile_model(model, backend="fast")
        serial = plan.run(x)
        plan.threads = 4
        np.testing.assert_allclose(plan.run(x), serial, rtol=1e-4, atol=1e-4)
