"""Cache-aware batch chunking must be invisible in the results.

Every chunkable op computes batch rows independently, so executing a
step in sub-batches (the executor does this when a step's working set
exceeds ``chunk_bytes``) preserves per-sample results.  On the
``reference`` backend that independence is *bit-exact* — its kernels
apply fixed-size per-tile matmuls whose BLAS dispatch cannot depend on
the batch — which is the backend the serving bit-identity guarantee is
stated for.  The ``fast`` backend's large fused GEMMs are row-
independent only up to BLAS blocking (different M can round differently
at the last ulp), so there the contract is float tolerance.
"""

import numpy as np

from repro.engine import compile_model
from repro.models.common import ConvSpec
from repro.models.lenet import lenet
from repro.models.resnet import resnet18
from repro.quant.qconfig import fp32, int8


def test_chunked_equals_unchunked_reference_bitwise(rng):
    model = resnet18(width_multiplier=0.125, spec=ConvSpec("F4", int8()))
    model.eval()
    plan = compile_model(model, backend="reference")
    x = rng.standard_normal((8, 3, 32, 32)).astype(np.float32)
    plan.run(x[:1])  # freeze any cold activation observers first

    plan.chunk_bytes = 0  # chunking off
    unchunked = plan.run(x)
    plan.chunk_bytes = 1 << 12  # absurdly small: chunk almost every step
    chunked = plan.run(x)
    np.testing.assert_array_equal(chunked, unchunked)


def test_chunked_equals_unchunked_fast_float(rng):
    model = resnet18(width_multiplier=0.125, spec=ConvSpec("F4", fp32()))
    model.eval()
    plan = compile_model(model, backend="fast")
    x = rng.standard_normal((8, 3, 32, 32)).astype(np.float32)
    plan.run(x[:1])

    plan.chunk_bytes = 0
    unchunked = plan.run(x)
    plan.chunk_bytes = 1 << 12
    chunked = plan.run(x)
    np.testing.assert_allclose(chunked, unchunked, rtol=1e-4, atol=1e-4)


def test_cold_observer_step_is_never_chunked(rng):
    """A fake-quant stage that has not frozen its range takes it from the
    first array it sees — chunking that step would freeze a sub-batch's
    range and make results (and the reference backend's exactness vs
    eager) depend on chunk_bytes.  The first large-batch run of an
    uncalibrated plan must therefore match the unchunked execution."""
    from repro.nn import init

    x = rng.standard_normal((16, 3, 32, 32)).astype(np.float32)
    outs = []
    for chunk_bytes in (0, 1 << 12):
        init.set_default_rng(0)  # identical weights for both plans
        model = resnet18(width_multiplier=0.25, spec=ConvSpec("F4", int8()))
        model.eval()
        plan = compile_model(model, backend="reference")
        plan.chunk_bytes = chunk_bytes
        outs.append(plan.run(x))  # first run: observers are still cold
    np.testing.assert_array_equal(outs[0], outs[1])


def test_batch_composition_is_invisible_reference(rng):
    """run([a;b]) sliced == run(a) ++ run(b) on the reference backend:
    the guarantee the dynamic batcher relies on for bit-identical
    single-sample responses."""
    model = lenet(spec=ConvSpec("F2", int8()))
    model.eval()
    plan = compile_model(model, backend="reference")
    x = rng.standard_normal((6, 1, 28, 28)).astype(np.float32)
    plan.run(x[:1])  # calibration
    full = plan.run(x)
    singles = np.concatenate([plan.run(x[i : i + 1]) for i in range(6)], axis=0)
    np.testing.assert_array_equal(full, singles)
