"""The ``turbo`` backend: numerics-relaxed quantized Winograd.

Contract: identical to ``fast`` on float paths (both use the Kronecker
tile transforms there), and on quantized paths it applies the Kronecker
transforms too — same pipeline structure and frozen ranges, but grid
decisions may differ from eager at bin boundaries, so parity is judged
against the quantization step, not bitwise.
"""

import numpy as np

from repro.engine import compile_model
from repro.engine.registry import registry
from repro.models.common import ConvSpec
from repro.models.resnet import resnet18
from repro.quant.qconfig import fp32, int8


def test_turbo_equals_fast_on_float_models(rng):
    model = resnet18(width_multiplier=0.125, spec=ConvSpec("F4", fp32()))
    model.eval()
    x = rng.standard_normal((2, 3, 32, 32)).astype(np.float32)
    fast = compile_model(model, backend="fast").run(x)
    turbo = compile_model(model, backend="turbo").run(x)
    np.testing.assert_array_equal(turbo, fast)


def test_turbo_uses_kron_on_quantized_steps(rng):
    model = resnet18(width_multiplier=0.125, spec=ConvSpec("F4", int8()))
    model.eval()
    x = rng.standard_normal((2, 3, 32, 32)).astype(np.float32)

    fast_plan = compile_model(model, backend="fast")
    turbo_plan = compile_model(model, backend="turbo")
    fast_steps = [s for s in fast_plan.steps if s.op == "winograd_conv2d"]
    turbo_steps = [s for s in turbo_plan.steps if s.op == "winograd_conv2d"]
    assert all("btk" not in s.attrs for s in fast_steps)  # eager grid order
    assert all("btk" in s.attrs for s in turbo_steps)  # kron everywhere

    # Same pipeline, same frozen ranges: outputs agree to within a few
    # quantization steps of the final stage (not bitwise).
    fast_out = fast_plan.run(x)
    turbo_out = turbo_plan.run(x)
    assert turbo_out.shape == fast_out.shape
    scale = float(np.abs(fast_out).max())
    assert np.median(np.abs(turbo_out - fast_out)) <= 0.05 * scale


def test_turbo_kernel_resolution_falls_back():
    # No kernel registers under "turbo" today: every op must resolve
    # through the turbo → fast → reference chain.
    assert registry.get("winograd_conv2d", "turbo") is registry.get(
        "winograd_conv2d", "fast"
    )
    assert registry.get("flatten", "turbo") is registry.get("flatten", "reference")
