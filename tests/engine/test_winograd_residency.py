"""Transform-domain residency (ISSUE 10): the compiler pass that keeps
activations resident in the Winograd transform domain across
consecutive stride-1 ``winograd_conv2d`` steps.

Contracts pinned here (docs/architecture.md 'Transform-domain
residency'):

* float (``fast``/``turbo``): residency on vs off is **bitwise
  identical** — the pass is copy elision, never algebra;
* int8: each configuration (on and off) is bit-identical to the int64
  oracle compiled the same way; eligible edges refine to per-tap
  requant grids that preserve every tap's representable range;
* resident plans serialize (artifact format v2), keep the steady-state
  zero-allocation contract, are excluded from batch chunking, and are
  reported by ``residency_report()`` / ``describe()`` /
  ``repro compile --inspect``;
* degenerate Winograd geometry fails at plan-build time with the typed
  ``WinogradShapeError`` instead of producing empty tensors.
"""

import json
import os
import tempfile

import numpy as np
import pytest

from repro.autograd import Tensor, no_grad
from repro.engine import compile_model
from repro.engine.artifact import FORMAT_VERSION, load_plan, save_plan
from repro.engine.kernels import WinogradShapeError, _winograd_geometry
from repro.nn.layers import ReLU
from repro.nn.module import Sequential
from repro.testing.modelgen import generate_model
from repro.testing.oracle import int8_oracle_output
from repro.winograd.layer import WinogradConv2d


def _chain(channels=6, layers=3, m=4, pad=1, seed=0, in_channels=3):
    rng = np.random.default_rng(seed)
    parts = []
    c_in = in_channels
    for _ in range(layers):
        parts.append(
            WinogradConv2d(c_in, channels, kernel_size=3, m=m, padding=pad,
                           rng=rng)
        )
        parts.append(ReLU())
        c_in = channels
    model = Sequential(*parts)
    model.eval()
    return model


class TestShapeError:
    def test_geometry_guard_is_typed(self):
        with pytest.raises(WinogradShapeError) as info:
            _winograd_geometry(2, 8, m=4, r=5, pad=0)
        assert "non-positive" in str(info.value)
        assert issubclass(WinogradShapeError, ValueError)

    def test_compile_rejects_receptive_field_underflow(self):
        # 4x4 input through one valid conv leaves 2x2 — smaller than the
        # next r=3 window, which used to plan th=0 (an empty register)
        # and explode steps later.  Now the planner refuses up front.
        model = _chain(layers=2, pad=0)
        x_shape = (1, 3, 4, 4)
        with pytest.raises(WinogradShapeError):
            compile_model(model, backend="fast").run(
                np.zeros(x_shape, np.float32)
            )

    def test_valid_geometry_untouched(self):
        out_h, out_w, th, tw = _winograd_geometry(8, 12, m=4, r=3, pad=1)
        assert (out_h, out_w, th, tw) == (8, 12, 2, 3)


class TestFloatResidency:
    def test_pass_wires_chain_edges(self):
        plan = compile_model(_chain(layers=3), backend="fast")
        edges = plan.residency_report()
        assert len(edges) == 2
        for edge in edges:
            assert edge["producer"] < edge["consumer"]
            assert edge["tile"].startswith("F(")
            assert edge["per_tap"] is False
        assert any("transform domain" in line
                   for line in plan.describe())

    def test_residency_is_bitwise_copy_elision(self):
        # The load-bearing float contract: identical arithmetic order,
        # so on vs off is bitwise — across mixed tile sizes, pad=0
        # (aligned) edges, and non-square inputs.
        rng = np.random.default_rng(3)
        parts = [
            WinogradConv2d(3, 6, kernel_size=3, m=4, padding=1, rng=rng),
            ReLU(),
            WinogradConv2d(6, 5, kernel_size=3, m=2, padding=0, rng=rng),
            ReLU(),
            WinogradConv2d(5, 4, kernel_size=3, m=4, padding=1, rng=rng),
        ]
        model = Sequential(*parts)
        model.eval()
        x = rng.standard_normal((2, 3, 13, 17)).astype(np.float32)
        on = compile_model(model, backend="fast")
        assert len(on.residency_report()) == 2
        off = compile_model(model, backend="fast", residency=False)
        np.testing.assert_array_equal(on.run(x), off.run(x))
        np.testing.assert_array_equal(
            compile_model(model, backend="turbo").run(x), on.run(x)
        )

    def test_resident_steps_excluded_from_chunking(self):
        model = _chain(layers=3)
        x = np.random.default_rng(5).standard_normal((4, 3, 16, 16)).astype(
            np.float32
        )
        plan = compile_model(model, backend="fast")
        serial = plan.run(x)
        plan.chunk_bytes = 1 << 10  # absurdly small: chunk everything else
        np.testing.assert_array_equal(plan.run(x, threads=2), serial)

    def test_zero_steady_state_allocations(self):
        model = _chain(layers=3)
        plan = compile_model(model, backend="fast")
        x = np.zeros((2, 3, 16, 16), np.float32)
        plan.run(x)  # cold run builds the arena
        plan.run(x)  # warm run must not allocate — taps live in the plan
        report = plan.memory_report(batch=2)
        assert report["steady_state_allocations"] == 0

    def test_quantized_fast_declines(self):
        # Quantized steps on the float backends keep grid-order
        # preservation (and fast has no Kronecker factors there), so the
        # pass must decline rather than approximate.
        gm = generate_model(8)  # chained int10 corpus seed
        gm.model.eval()
        with no_grad():
            gm.model(Tensor(gm.calibration_input()))
        plan = compile_model(gm.model, backend="fast")
        assert plan.residency_report() == []


class TestInt8Residency:
    @pytest.fixture(scope="class")
    def chained_int8(self):
        gm = generate_model(13)  # chained int8 corpus seed
        gm.model.eval()
        with no_grad():
            gm.model(Tensor(gm.calibration_input()))
        return gm

    def test_oracle_exact_both_configurations(self, chained_int8):
        gm = chained_int8
        x = gm.sample_input()
        on = compile_model(gm.model, backend="int8")
        assert len(on.residency_report()) >= 1
        np.testing.assert_array_equal(on.run(x), int8_oracle_output(gm.model, x))
        off = compile_model(gm.model, backend="int8", residency=False)
        np.testing.assert_array_equal(
            off.run(x), int8_oracle_output(gm.model, x, residency=False)
        )

    def test_per_tap_grid_preserves_representable_range(self, chained_int8):
        plan = compile_model(chained_int8.model, backend="int8")
        tapped = [e for e in plan.residency_report() if e["per_tap"]]
        assert tapped, "chained int8 seed should refine at least one edge"
        consumers = [
            s for s in plan.steps if "resident_src" in s.attrs
            and s.attrs["resident_src"].get("per_tap")
        ]
        for step in consumers:
            i8 = step.attrs["i8"]
            fv, fh = i8["tap_fv"], i8["tap_fh"]
            assert np.all(fv <= 0) and np.all(fh <= 0)
            assert np.any(fv) or np.any(fh)
            # Finer scale 2^f is always paired with the widened clip
            # ceiling 2^-f: scale * qmax — the representable range — is
            # tap-independent, so refinement can never clip new values.
            qv = float(step.attrs["q_input_t"]["qmax"])
            qh = float(step.attrs["q_hadamard"]["qmax"])
            np.testing.assert_array_equal(np.ldexp(i8["qmax_v"].ravel(), fv), qv)
            np.testing.assert_array_equal(
                np.ldexp(i8["qmax_h"].ravel(), fh.ravel()), qh
            )


class TestArtifactRoundTrip:
    def test_format_version_is_2(self):
        assert FORMAT_VERSION == 2

    def test_resident_plan_roundtrips_bitwise(self):
        model = _chain(layers=3)
        x = np.random.default_rng(9).standard_normal((2, 3, 16, 16)).astype(
            np.float32
        )
        plan = compile_model(model, backend="fast")
        assert len(plan.residency_report()) == 2
        expected = plan.run(x)
        fd, path = tempfile.mkstemp(suffix=".rpln")
        os.close(fd)
        try:
            save_plan(plan, path, input_shape=x.shape)
            loaded = load_plan(path)
            # The shared producer/consumer edge dict must come back as
            # one object, not two copies — otherwise the runtime (h, w)
            # handoff between the two steps breaks.
            assert len(loaded.residency_report()) == 2
            np.testing.assert_array_equal(loaded.run(x), expected)
        finally:
            os.unlink(path)

    def test_cli_inspect_prints_residency_edges(self, capsys):
        from repro.cli import main

        model = _chain(layers=3)
        plan = compile_model(model, backend="fast")
        fd, path = tempfile.mkstemp(suffix=".rpln")
        os.close(fd)
        try:
            save_plan(plan, path, input_shape=(2, 3, 16, 16))
            assert main(["compile", "--inspect", path]) == 0
        finally:
            os.unlink(path)
        summary = json.loads(capsys.readouterr().out)
        assert summary["format_version"] == FORMAT_VERSION
        assert len(summary["residency"]) == 2
        for edge in summary["residency"]:
            assert edge["producer"] < edge["consumer"]
            assert edge["tile"].startswith("F(")
