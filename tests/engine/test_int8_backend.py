"""The native integer-arithmetic ``int8`` backend.

Contract (ISSUE 3):

* **Exactness** — every GEMM runs over integer-valued float arrays whose
  partial sums were proven ≤ the dtype mantissa bound at compile time,
  so the float GEMM is exact.  Proven here at the actual model shapes by
  monkeypatching the GEMM hook with an int64 matmul: outputs must be
  *bit-identical*.  ``INT8_STRICT`` additionally asserts every
  accumulator stays inside its compile-time bound during these runs.
* **Grid consistency vs reference** — the int8 path composes the same
  rint/clip grids in exact integer arithmetic, where the reference
  backend composes them through float32 GEMMs.  Values landing within a
  float32 ulp of a quantization-bin boundary may therefore snap
  differently (the same trade the ``turbo`` backend documents), so
  model-level parity is judged against the quantization grid — tight
  relative tolerance, tiny mismatch mass, identical argmax — not
  bitwise.  Single quantized layers and pure-im2row models are
  empirically bit-identical to reference.
* **Fallbacks** — float models and ineligible steps (flex transforms,
  partially-disabled stages) execute through the turbo→fast→reference
  chain; cold-compiled plans run the fast path until their ranges freeze
  and then switch to native integer execution.
"""

import numpy as np
import pytest

import repro.engine.kernels as kernels
from repro.autograd import Tensor, no_grad
from repro.engine import compile_model
from repro.engine.int8 import dyadic_exponent
from repro.engine.registry import registry
from repro.models.common import ConvSpec
from repro.models.lenet import lenet
from repro.models.resnet import resnet18
from repro.models.resnext import resnext20
from repro.models.squeezenet import squeezenet
from repro.nn.layers import Conv2d, Linear
from repro.nn.qlayers import QuantConv2d, QuantLinear
from repro.quant.qconfig import fp32, int8
from repro.testing.oracle import exact_int64_matmul
from repro.winograd.layer import WinogradConv2d


@pytest.fixture
def strict_bounds(monkeypatch):
    monkeypatch.setattr(kernels, "INT8_STRICT", True)


def calibrated(model, x):
    model.eval()
    with no_grad():
        model(Tensor(x))
    return model


def parity_models(rng):
    return [
        ("lenet-F2", lenet(spec=ConvSpec("F2", int8())),
         rng.standard_normal((2, 1, 28, 28)).astype(np.float32)),
        ("resnet-F4", resnet18(width_multiplier=0.125, spec=ConvSpec("F4", int8())),
         rng.standard_normal((2, 3, 32, 32)).astype(np.float32)),
        ("resnet-im2row", resnet18(width_multiplier=0.125, spec=ConvSpec("im2row", int8())),
         rng.standard_normal((2, 3, 32, 32)).astype(np.float32)),
        ("squeezenet-F2", squeezenet(width_multiplier=0.25, spec=ConvSpec("F2", int8())),
         rng.standard_normal((2, 3, 32, 32)).astype(np.float32)),
        ("resnext-F2", resnext20(width_multiplier=0.5, spec=ConvSpec("F2", int8())),
         rng.standard_normal((2, 3, 32, 32)).astype(np.float32)),
    ]


class TestExactness:
    def test_bit_identical_to_int64_oracle_on_parity_models(self, rng, strict_bounds):
        """The float-GEMM integer path must equal exact int64 arithmetic
        bit for bit on every tier-1 parity model — this is the proof that
        the compile-time accumulator bounds make the fast path exact."""
        for name, model, x in parity_models(rng):
            calibrated(model, x)
            native = compile_model(model, backend="int8").run(x)
            original = kernels._int8_matmul
            kernels._int8_matmul = exact_int64_matmul
            try:
                oracle = compile_model(model, backend="int8").run(x)
            finally:
                kernels._int8_matmul = original
            np.testing.assert_array_equal(
                native, oracle, err_msg=f"{name}: float GEMM not exact"
            )

    def test_single_quantized_layers_bitwise_vs_reference(self, rng, strict_bounds):
        """One quantized layer composes through a single grid per stage:
        conv/linear agree with the reference backend bit for bit."""
        x = rng.standard_normal((2, 4, 16, 16)).astype(np.float32)
        layers = [
            QuantConv2d(Conv2d(4, 6, 1), int8()),
            QuantConv2d(Conv2d(4, 6, 3, padding=1), int8()),
            QuantConv2d(Conv2d(4, 8, 3, padding=1, groups=2), int8()),
            QuantConv2d(Conv2d(4, 6, 3, stride=2, padding=1), int8()),
        ]
        for layer in layers:
            calibrated(layer, x)
            ref = compile_model(layer, backend="reference").run(x)
            out = compile_model(layer, backend="int8").run(x)
            np.testing.assert_array_equal(out, ref)
        linear = calibrated(QuantLinear(Linear(12, 5), int8()),
                            rng.standard_normal((3, 12)).astype(np.float32))
        xl = rng.standard_normal((3, 12)).astype(np.float32)
        np.testing.assert_array_equal(
            compile_model(linear, backend="int8").run(xl),
            compile_model(linear, backend="reference").run(xl),
        )

    @pytest.mark.parametrize("m,r", [(2, 3), (4, 3), (6, 3), (2, 5), (4, 5), (6, 5)])
    def test_winograd_tile_grid_vs_reference(self, rng, m, r, strict_bounds):
        """Every supported F(m, r): grid-consistent with reference (at
        most a few bin flips at float32 rounding boundaries), and exactly
        equal to the int64 oracle composition."""
        layer = WinogradConv2d(4, 6, kernel_size=r, m=m, qconfig=int8())
        x = rng.standard_normal((2, 4, 16, 16)).astype(np.float32)
        calibrated(layer, x)
        ref = compile_model(layer, backend="reference").run(x)
        out = compile_model(layer, backend="int8").run(x)
        scale = float(np.abs(ref).max())
        assert out.shape == ref.shape
        # bin flips move an output by whole grid steps; bound their
        # count and size instead of demanding bitwise float equality
        mismatch = float((out != ref).mean())
        assert mismatch <= 0.02, f"too many grid flips: {mismatch:.4f}"
        np.testing.assert_allclose(out, ref, rtol=0, atol=0.02 * scale)


class TestModelGridConsistency:
    def test_grid_flips_are_boundary_justified(self, rng):
        """Every place the int8 path's quantization decisions differ from
        the reference composition, the *exactly-composed* rint argument
        must sit at a half-integer bin boundary (within float32 rounding
        of one) — i.e. both decisions quantize a boundary value, they
        just break the tie from opposite sides.  A wrong multiplier,
        scale or layout would flip decisions at arguments nowhere near a
        boundary, which this rejects.

        (End-to-end logits are *not* compared value-wise: these random
        smoke nets are chaotic, so one legitimate boundary flip in an
        early layer avalanches — the same reason ``turbo`` pins parity
        per grid, and why the int64-oracle bitwise test above is the
        real contract.)
        """
        from repro.engine.kernels import _strided_patches, fake_quant

        layer = WinogradConv2d(8, 8, 3, m=4, qconfig=int8())
        x = rng.standard_normal((2, 8, 16, 16)).astype(np.float32)
        calibrated(layer, x)
        plan = compile_model(layer, backend="int8")
        (step,) = [s for s in plan.steps if s.op == "winograd_conv2d"]
        attrs, i8 = step.attrs, step.attrs["i8"]
        q_in, q_v = attrs["q_input"], attrs["q_input_t"]
        m, r, t = attrs["m"], attrs["r"], attrs["t"]
        pad = attrs["pad"]
        n, c, h, w = x.shape
        out_h = h + 2 * pad - r + 1
        th = -(-out_h // m)
        need = th * m + r - 1
        tt, p = t * t, n * th * th

        # reference composition of the transformed-input codes
        xq = fake_quant(x.copy(), dict(q_in))
        xp = np.pad(xq, ((0, 0), (0, 0), (pad, need - h - pad), (pad, need - h - pad)))
        tiles = np.ascontiguousarray(_strided_patches(xp, t, t, m, m))
        v_ref = np.matmul(np.matmul(attrs["BT"], tiles), attrs["BT"].transpose())
        ref_codes = np.clip(
            np.rint(v_ref / np.float32(q_v["scale"])), -q_v["qmax"], q_v["qmax"]
        )
        ref_codes = np.transpose(ref_codes, (4, 5, 1, 0, 2, 3)).reshape(tt, c * p)

        # exact integer composition of the same codes
        codes = np.clip(np.rint(x / q_in["scale"]), -q_in["qmax"], q_in["qmax"])
        xpc = np.pad(codes, ((0, 0), (0, 0), (pad, need - h - pad), (pad, need - h - pad)))
        tmat = np.ascontiguousarray(
            np.transpose(_strided_patches(xpc, t, t, m, m), (4, 5, 1, 0, 2, 3))
        ).reshape(tt, c * p)
        v_int = np.matmul(i8["btk"].astype(np.float64), tmat.astype(np.float64))
        exact_args = v_int * (float(q_in["scale"]) / 4.0 ** i8["eb"]) / float(q_v["scale"])
        int_codes = np.clip(np.rint(exact_args), -q_v["qmax"], q_v["qmax"])

        flipped = int_codes != ref_codes
        if flipped.any():
            # the float32-composed reference arg wanders ~1e-4·|arg| from
            # the exact one, so "at the boundary" is relative to that; a
            # wrong multiplier would flip at uniformly random fractions
            distance_to_boundary = np.abs(
                np.abs(exact_args[flipped] - np.floor(exact_args[flipped])) - 0.5
            )
            limit = np.maximum(1e-3, 1e-3 * np.abs(exact_args[flipped]))
            assert np.all(distance_to_boundary < limit), (
                "a quantization decision flipped away from any bin boundary"
            )
        # and flips must stay rare relative to the stage size
        assert float(flipped.mean()) < 0.05

    def test_parity_model_outputs_finite(self, rng):
        for name, model, x in parity_models(rng):
            calibrated(model, x)
            out = compile_model(model, backend="int8").run(x)
            ref = compile_model(model, backend="reference").run(x)
            assert out.shape == ref.shape, name
            assert np.all(np.isfinite(out)), name

    def test_im2row_model_bitwise_vs_reference(self, rng):
        """No Winograd stages: the conv/linear integer path reproduces
        the reference backend bit for bit at model scale."""
        model = resnet18(width_multiplier=0.125, spec=ConvSpec("im2row", int8()))
        x = rng.standard_normal((2, 3, 32, 32)).astype(np.float32)
        calibrated(model, x)
        np.testing.assert_array_equal(
            compile_model(model, backend="int8").run(x),
            compile_model(model, backend="reference").run(x),
        )

    def test_fp32_model_equals_fast_backend(self, rng):
        """Float models have no quantized steps: the int8 backend must
        delegate every kernel and match ``fast`` bit for bit."""
        model = resnet18(width_multiplier=0.125, spec=ConvSpec("F4", fp32()))
        model.eval()
        x = rng.standard_normal((2, 3, 32, 32)).astype(np.float32)
        np.testing.assert_array_equal(
            compile_model(model, backend="int8").run(x),
            compile_model(model, backend="fast").run(x),
        )


class TestJunctionFusion:
    def test_resnet_plan_wires_handoffs_and_absorbs_bn(self, rng):
        model = resnet18(width_multiplier=0.125, spec=ConvSpec("F4", int8()))
        x = rng.standard_normal((2, 3, 32, 32)).astype(np.float32)
        calibrated(model, x)
        plan = compile_model(model, backend="int8")
        report = plan.int8_report()
        assert report["native_int8_steps"] >= 17  # 16 block convs + stem
        assert report["int_handoffs"] >= 8  # conv1→conv2 inside each block
        assert report["absorbed_affines"] >= 16  # every block BN folded
        # absorbed affine steps are gone from the plan entirely
        assert "affine" not in plan.ops_used()

    def test_lenet_handoff_through_pool_and_flatten(self, rng):
        """max_pool and flatten are grid-preserving: codes flow conv →
        pool → conv and conv → pool → flatten → linear."""
        model = lenet(spec=ConvSpec("F2", int8()))
        x = rng.standard_normal((2, 1, 28, 28)).astype(np.float32)
        calibrated(model, x)
        plan = compile_model(model, backend="int8")
        assert plan.int8_report()["int_handoffs"] >= 2

    def test_cold_plan_wires_no_handoffs_then_warms(self, rng):
        """A plan compiled from an uncalibrated model must not assume
        frozen grids; it runs the float fallback on the first batch
        (freezing ranges exactly like eager) and goes native after."""
        a = rng.standard_normal((2, 3, 32, 32)).astype(np.float32)
        b = 2.0 * rng.standard_normal((2, 3, 32, 32)).astype(np.float32)
        cold = resnet18(width_multiplier=0.125, spec=ConvSpec("F4", int8()))
        twin = resnet18(width_multiplier=0.125, spec=ConvSpec("F4", int8()))
        twin.load_state_dict(cold.state_dict())
        cold.eval(), twin.eval()

        plan = compile_model(cold, backend="int8")  # still cold
        assert plan.int8_report()["int_handoffs"] == 0
        ref = compile_model(twin, backend="reference")  # cold twin
        out_a, ref_a = plan.run(a), ref.run(a)  # both freeze from batch a
        # first batch runs the fast fallback: same nested grid order as
        # reference, so the frozen scales (and outputs) match exactly
        np.testing.assert_allclose(
            out_a, ref_a, rtol=0, atol=1e-4 * float(np.abs(ref_a).max())
        )
        # batch a froze every range; the next batch runs native int8
        # (kernels prepare their constants lazily on first warm call)
        out_b = plan.run(b)
        assert np.all(np.isfinite(out_b))
        native = [s for s in plan.steps if s.domain == "int8"]
        assert native and all(s.attrs["i8"]["ready"] for s in native)
        # the warm path is deterministic and no longer mutates state
        np.testing.assert_array_equal(plan.run(b), out_b)


class TestEligibilityAndBounds:
    def test_dyadic_exponents(self):
        assert dyadic_exponent(np.array([[1.0, -5.0], [0.25, 2.0]])) == 2
        assert dyadic_exponent(np.array([[1.0, 1.0 / 3.0]])) is None

    def test_flex_transforms_fall_back(self, rng):
        """Perturbed (non-dyadic) flex transforms cannot be integerised:
        the step must fall back to the float kernels, still correct."""
        layer = WinogradConv2d(4, 4, 3, m=4, flex=True, qconfig=int8())
        layer.BT.data += 0.013 * rng.standard_normal(layer.BT.shape).astype(np.float32)
        x = rng.standard_normal((2, 4, 12, 12)).astype(np.float32)
        calibrated(layer, x)
        plan = compile_model(layer, backend="int8")
        assert plan.int8_report()["native_int8_steps"] == 0
        fast = compile_model(layer, backend="fast").run(x)
        np.testing.assert_array_equal(plan.run(x), fast)

    def test_accumulator_bound_picks_float64(self, rng, strict_bounds):
        """F(6,5) tile transforms have |kron| row sums past the float32
        mantissa bound: compile must pick float64 for that GEMM and stay
        exact (int64-oracle bitwise)."""
        layer = WinogradConv2d(4, 4, kernel_size=5, m=6, qconfig=int8())
        x = rng.standard_normal((1, 4, 20, 20)).astype(np.float32)
        calibrated(layer, x)
        plan = compile_model(layer, backend="int8")
        (step,) = [s for s in plan.steps if s.op == "winograd_conv2d"]
        dt_v = step.attrs["i8"]["dts"][0]
        assert dt_v is np.float64
        out = plan.run(x)
        assert np.all(np.isfinite(out))

    def test_partially_disabled_stages_fall_back(self, rng):
        """No weight-transform grid ⇒ transform-domain weights are not
        integer codes ⇒ the Winograd step cannot run natively."""
        layer = WinogradConv2d(4, 4, 3, m=2, qconfig=int8())
        layer.q_weight_t.bits = None  # knock out the stage entirely
        x = rng.standard_normal((1, 4, 8, 8)).astype(np.float32)
        calibrated(layer, x)
        plan = compile_model(layer, backend="int8")
        assert plan.int8_report()["native_int8_steps"] == 0
        np.testing.assert_array_equal(
            plan.run(x), compile_model(layer, backend="fast").run(x)
        )


class TestZeroRangeCalibration:
    def test_all_zero_calibration_batch(self, rng):
        """An all-zero first batch freezes the degenerate 1/qmax scale
        (quantization_scale's guard): no division by zero, finite
        outputs, and eager/reference/int8 all agree."""
        model = lenet(spec=ConvSpec("F2", int8()))
        model.eval()
        zeros = np.zeros((2, 1, 28, 28), dtype=np.float32)
        with no_grad():
            eager = model(Tensor(zeros)).data  # freezes model observers
        assert np.all(np.isfinite(eager))
        ref = compile_model(model, backend="reference").run(zeros)
        np.testing.assert_array_equal(ref, eager)
        out = compile_model(model, backend="int8").run(zeros)
        assert np.all(np.isfinite(out))
        scale = float(np.abs(ref).max()) or 1.0
        np.testing.assert_allclose(out, ref, rtol=0, atol=0.02 * scale)

    def test_cold_plan_all_zero_first_batch(self, rng):
        """Dynamic freeze from an all-zero batch inside the plan itself."""
        layer = WinogradConv2d(2, 3, 3, m=2, qconfig=int8())
        layer.eval()
        plan = compile_model(layer, backend="int8")
        zeros = np.zeros((1, 2, 8, 8), dtype=np.float32)
        first = plan.run(zeros)
        assert np.all(np.isfinite(first))
        x = rng.standard_normal((1, 2, 8, 8)).astype(np.float32)
        assert np.all(np.isfinite(plan.run(x)))


class TestIntegration:
    def test_registry_fallback_chain(self):
        # flatten has only a reference kernel: every backend falls back.
        assert registry.get("flatten", "int8") is registry.get("flatten", "reference")
        # concat/affine stop at their fast (arena-aware) variants.
        assert registry.get("concat", "int8") is registry.get("concat", "fast")
        assert registry.get("affine", "int8") is registry.get("affine", "fast")
        assert registry.get("winograd_conv2d", "int8").__name__ == "winograd_int8"

    def test_chunked_execution_invariance(self, rng):
        """int8 steps are batch-row independent: chunked execution must
        reproduce the unchunked result exactly."""
        model = resnet18(width_multiplier=0.125, spec=ConvSpec("F4", int8()))
        x = rng.standard_normal((6, 3, 32, 32)).astype(np.float32)
        calibrated(model, x)
        plan = compile_model(model, backend="int8")
        full = plan.run(x)
        plan.chunk_bytes = 1 << 14  # force aggressive chunking
        np.testing.assert_array_equal(plan.run(x), full)

    def test_served_variant_compiles_native(self):
        from repro.serve.registry import ModelRegistry, ModelSpec

        spec = ModelSpec.parse("lenet-F2-int8@int8")
        assert spec.backend == "int8" and spec.precision == "int8"
        registry_ = ModelRegistry()
        served = registry_.load(spec)
        assert served.plan.backend == "int8"
        # eager pre-calibration froze the model, so the plan is native
        report = served.plan.int8_report()
        assert report["native_int8_steps"] >= 2
        assert report["int_handoffs"] >= 1
        out = served.plan.run(np.zeros((1, 1, 28, 28), dtype=np.float32))
        assert np.all(np.isfinite(out))

    def test_winas_probe_accepts_backend(self):
        from repro.nas import MixedConv2d, SearchConfig, WiNAS, wa_space

        assert SearchConfig(engine_backend="int8").engine_backend == "int8"
        op = MixedConv2d(4, 6, wa_space("int8", flex=False), seed=0)
        latencies = WiNAS._measure_candidates(op, 8, 8, backend="int8")
        assert len(latencies) == len(op.candidates)
        assert all(lat > 0 for lat in latencies)
