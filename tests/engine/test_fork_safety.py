"""Fork-safety of the engine's shared mutable state (ISSUE 5).

The multi-process serving workers are forked from a parent that may hold
arenas checked out (concurrent in-process runs) and a warm engine thread
pool.  A forked child must inherit **neither**: handing out a parent's
checked-out arena slot would couple the child to bookkeeping frozen
mid-flight, and submitting to the inherited (thread-less) executor would
deadlock the first threaded run.
"""

import multiprocessing
import os
import sys

import numpy as np
import pytest

from repro.engine import compile_model
from repro.models.common import ConvSpec
from repro.models.lenet import lenet

pytestmark = pytest.mark.skipif(
    sys.platform == "win32" or not hasattr(os, "register_at_fork"),
    reason="fork-based workers are POSIX-only",
)


def _fresh_plan():
    model = lenet(spec=ConvSpec("F2"))
    model.eval()
    plan = compile_model(model, backend="fast")
    plan.prepare((1, 1, 28, 28))
    return plan


def test_forked_child_inherits_no_checked_out_arena():
    plan = _fresh_plan()
    x = np.zeros((1, 1, 28, 28), dtype=np.float32)
    plan.run(x)  # builds + parks one arena
    pool = plan._memory((1, 28, 28))
    assert pool is not None
    held = pool.checkout()  # parent holds a slot across the fork
    try:
        assert pool.arenas_built >= 1

        ctx = multiprocessing.get_context("fork")
        parent_conn, child_conn = ctx.Pipe()

        def child(conn):
            try:
                reset = (
                    pool._idle == []
                    and pool._retained == []
                    and pool.arenas_built == 0
                )
                fresh = pool.checkout()
                conn.send(
                    {
                        "reset": reset,
                        "fresh_is_new": fresh is not held,
                        "runs": bool(
                            np.isfinite(plan.run(x)).all()
                        ),  # checkout/checkin cycle works post-fork
                    }
                )
            except Exception as exc:  # pragma: no cover - diagnostic
                conn.send({"error": repr(exc)})

        proc = ctx.Process(target=child, args=(child_conn,), daemon=True)
        proc.start()
        assert parent_conn.poll(30), "forked child never reported"
        result = parent_conn.recv()
        proc.join(10)
        assert result.get("error") is None, result
        assert result["reset"], "child inherited pooled arenas"
        assert result["fresh_is_new"]
        assert result["runs"]

        # The parent's pool is untouched by the child's reset.
        assert held in pool._retained
    finally:
        pool.checkin(held)


def test_post_fork_orphan_checkin_is_dropped():
    """An arena checked out before the fork reset must not re-enter the
    child's pool via a late checkin (simulated in-process here by
    resetting the pool while a checkout is outstanding)."""
    plan = _fresh_plan()
    pool = plan._memory((1, 28, 28))
    orphan = pool.checkout()
    pool._reset_after_fork()
    pool.checkin(orphan)  # must be a no-op, not an insertion
    assert orphan not in pool._idle
    assert orphan not in pool._retained
    assert pool.arenas_built == 0


def test_forked_child_threaded_run_does_not_deadlock():
    """Warm the shared engine thread pool in the parent, fork, and run a
    threaded plan in the child: without the after-fork executor reset the
    child would submit to a pool whose threads died with the fork."""
    plan = _fresh_plan()
    x = np.zeros((4, 1, 28, 28), dtype=np.float32)
    plan.run(x, threads=2)  # warms the parent's executor

    ctx = multiprocessing.get_context("fork")
    parent_conn, child_conn = ctx.Pipe()

    def child(conn):
        out = plan.run(x, threads=2)
        conn.send(bool(np.isfinite(out).all()))

    proc = ctx.Process(target=child, args=(child_conn,), daemon=True)
    proc.start()
    ok = parent_conn.poll(60)
    if not ok:  # pragma: no cover - the deadlock this test guards against
        proc.terminate()
        pytest.fail("threaded plan run deadlocked in the forked child")
    assert parent_conn.recv() is True
    proc.join(10)
