"""The compile pass, fusion, kernel registry, plan cache, and NAS probe."""

import numpy as np
import pytest

from repro.autograd import Tensor, no_grad
from repro.engine import (
    CompileError,
    KernelRegistry,
    PlanCache,
    compile_model,
    get_cached_plan,
    registry,
)
from repro.engine.cache import model_signature
from repro.models.common import ConvSpec
from repro.models.lenet import lenet
from repro.models.resnet import resnet18
from repro.nas.mixed_op import MixedConv2d
from repro.nas.search_space import wa_space
from repro.nas.winas import SearchConfig, WiNAS
from repro.nn.layers import BatchNorm2d, Conv2d, ReLU
from repro.nn.module import Module, Sequential
from repro.quant.qconfig import int8


class TestFusion:
    def test_conv_bn_relu_fuses_to_single_kernel(self):
        model = Sequential(Conv2d(3, 8, 3, padding=1), BatchNorm2d(8), ReLU())
        model.eval()
        plan = compile_model(model, backend="fast")
        assert len(plan) == 1
        (step,) = plan.steps
        assert step.op == "conv2d"
        assert step.attrs["fuse_relu"]
        assert "affine" not in plan.ops_used()

    def test_reference_backend_never_fuses(self):
        model = Sequential(Conv2d(3, 8, 3, padding=1), BatchNorm2d(8), ReLU())
        model.eval()
        plan = compile_model(model, backend="reference")
        assert [s.op for s in plan.steps] == ["conv2d", "affine", "relu"]

    def test_folded_bn_matches_separate_bn(self, rng):
        model = Sequential(Conv2d(3, 8, 3, padding=1), BatchNorm2d(8), ReLU())
        bn = model[1]
        bn.running_mean.data[:] = rng.standard_normal(8).astype(np.float32)
        bn.running_var.data[:] = (0.5 + rng.random(8)).astype(np.float32)
        model.eval()
        x = rng.standard_normal((2, 3, 16, 16)).astype(np.float32)
        fused = compile_model(model, backend="fast").run(x)
        unfused = compile_model(model, backend="reference").run(x)
        np.testing.assert_allclose(fused, unfused, rtol=1e-4, atol=1e-5)

    def test_quantized_conv_keeps_bn_separate(self):
        model = Sequential(
            ConvSpec("F4", int8()).build(3, 8, kernel_size=3), BatchNorm2d(8), ReLU()
        )
        model.eval()
        plan = compile_model(model, backend="fast")
        # BN must NOT fold into the quantized conv (it would change the
        # values entering the frozen quantization grid) — but its ReLU
        # still fuses into the affine step.
        assert "affine" in plan.ops_used()
        affine = next(s for s in plan.steps if s.op == "affine")
        assert affine.attrs["fuse_relu"]

    def test_winograd_transform_precomputed_once(self):
        layer = ConvSpec("F4").build(4, 4, kernel_size=3)
        layer.eval()
        plan = compile_model(layer, backend="fast")
        (step,) = plan.steps
        assert step.op == "winograd_conv2d"
        assert step.attrs["u"].shape == (4, 4, 6, 6)  # (K, C, t, t), t = 6
        assert step.attrs["u2"].flags["C_CONTIGUOUS"]  # GEMM-ready layout

    def test_lenet_plan_shrinks_under_fusion(self):
        model = lenet(spec=ConvSpec("F2"))
        model.eval()
        reference = compile_model(model, backend="reference")
        fast = compile_model(model, backend="fast")
        assert len(fast) < len(reference)


class TestFallback:
    def test_unknown_module_runs_eagerly(self, rng):
        class Weird(Module):
            def forward(self, x):
                return x * 2.0

        model = Sequential(Conv2d(3, 4, 3, padding=1), Weird())
        model.eval()
        plan = compile_model(model)
        assert "eager_module" in plan.ops_used()
        x = rng.standard_normal((1, 3, 8, 8)).astype(np.float32)
        with no_grad():
            expected = model(Tensor(x)).data
        np.testing.assert_allclose(plan.run(x), expected, rtol=1e-5, atol=1e-6)

    def test_unknown_backend_rejected(self):
        with pytest.raises(CompileError):
            compile_model(Conv2d(3, 4, 3), backend="warp")


class TestRegistry:
    def test_fast_falls_back_to_reference(self):
        reg = KernelRegistry()

        @reg.register("double")
        def double(inputs, attrs):
            return inputs[0] * 2

        assert reg.get("double", "fast") is double

    def test_fast_overrides_reference(self):
        reg = KernelRegistry()

        @reg.register("op")
        def ref(inputs, attrs):
            return 0

        @reg.register("op", "fast")
        def fast(inputs, attrs):
            return 1

        assert reg.get("op", "fast") is fast
        assert reg.get("op", "reference") is ref

    def test_unknown_op_raises(self):
        with pytest.raises(KeyError):
            KernelRegistry().get("nope")

    def test_builtin_ops_present(self):
        for op in ("conv2d", "winograd_conv2d", "affine", "linear", "relu"):
            assert op in registry.ops()
        assert registry.backends_for("winograd_conv2d") == ("reference", "fast", "int8")


class TestPlanCache:
    def _model(self):
        model = lenet(spec=ConvSpec("im2row"))
        model.eval()
        return model

    def test_hit_on_identical_state(self, rng):
        cache = PlanCache()
        model = self._model()
        shape = (2, 1, 28, 28)
        first = get_cached_plan(model, shape, cache=cache)
        second = get_cached_plan(model, shape, cache=cache)
        assert first is second
        assert (cache.hits, cache.misses) == (1, 1)

    def test_weight_update_invalidates(self):
        cache = PlanCache()
        model = self._model()
        shape = (2, 1, 28, 28)
        stale = get_cached_plan(model, shape, cache=cache)
        model.parameters()[0].data += 1.0
        fresh = get_cached_plan(model, shape, cache=cache)
        assert fresh is not stale

    def test_input_shape_and_backend_are_part_of_key(self):
        cache = PlanCache()
        model = self._model()
        a = get_cached_plan(model, (2, 1, 28, 28), cache=cache)
        b = get_cached_plan(model, (4, 1, 28, 28), cache=cache)
        c = get_cached_plan(model, (2, 1, 28, 28), backend="reference", cache=cache)
        assert a is not b and a is not c
        assert len(cache) == 3

    def test_lru_eviction(self):
        cache = PlanCache(maxsize=2)
        model = self._model()
        get_cached_plan(model, (1, 1, 28, 28), cache=cache)
        get_cached_plan(model, (2, 1, 28, 28), cache=cache)
        get_cached_plan(model, (3, 1, 28, 28), cache=cache)
        assert len(cache) == 2
        # The oldest entry (batch 1) was evicted: fetching it recompiles.
        misses = cache.misses
        get_cached_plan(model, (1, 1, 28, 28), cache=cache)
        assert cache.misses == misses + 1

    def test_quantized_cold_model_hits_cache_on_second_call(self):
        # Compiling a quantized model with cold weight observers warms
        # them (buffer mutation); the plan must be stored under the
        # post-compile signature or every later call would miss.
        cache = PlanCache()
        model = lenet(spec=ConvSpec("F2", int8()))
        model.eval()
        shape = (1, 1, 28, 28)
        first = get_cached_plan(model, shape, cache=cache)
        second = get_cached_plan(model, shape, cache=cache)
        assert first is second
        assert cache.hits == 1

    def test_signature_tracks_buffers_too(self):
        model = lenet(spec=ConvSpec("im2row"))
        before = model_signature(model)
        bn = model.bn1
        bn.running_mean.data += 1.0
        assert model_signature(model) != before

    def test_signature_detects_filter_permutation(self):
        # A filter swap preserves sum and L1 norm; the byte-exact
        # fingerprint must still change (stale plans are never served).
        model = lenet(spec=ConvSpec("im2row"))
        before = model_signature(model)
        w = model.conv1.weight.data
        w[[0, 1]] = w[[1, 0]]
        assert model_signature(model) != before


class TestNasProbe:
    def _tiny_search(self, **config):
        model = Sequential(MixedConv2d(3, 4, wa_space(), seed=0))
        return model, WiNAS(model, SearchConfig(**config))

    def test_populate_latencies_probes_through_compiled_plan(self):
        model, nas = self._tiny_search()
        nas.populate_latencies(np.zeros((1, 3, 16, 16), dtype=np.float32))
        (op,) = nas.mixed_ops
        assert op.last_input_hw == (16, 16)
        assert op.latencies_ms is not None and len(op.latencies_ms) == len(wa_space())
        assert np.all(op.latencies_ms > 0)

    def test_measured_latency_source(self):
        model, nas = self._tiny_search(latency_source="measured")
        nas.populate_latencies(np.zeros((1, 3, 8, 8), dtype=np.float32))
        (op,) = nas.mixed_ops
        assert np.all(op.latencies_ms > 0)

    def test_unknown_latency_source_rejected(self):
        model, nas = self._tiny_search()
        with pytest.raises(ValueError):
            nas.populate_latencies(np.zeros((1, 3, 8, 8), dtype=np.float32), source="psychic")

    def test_mixed_model_compiles_to_argmax_path(self, rng):
        model = resnet18(width_multiplier=0.125, plan=WiNAS.make_plan(wa_space()))
        model.eval()
        plan = compile_model(model, backend="fast")
        x = rng.standard_normal((1, 3, 32, 32)).astype(np.float32)
        with no_grad():
            expected = model(Tensor(x)).data
        np.testing.assert_allclose(plan.run(x), expected, rtol=1e-4, atol=1e-4)
