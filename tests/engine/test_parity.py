"""Compiled-plan outputs must match the eager eval forward.

The contract (ISSUE 1 acceptance criteria):

* ``reference`` backend — *exact* equality with eager, float and
  quantized paths alike: it replays the same NumPy operations in the
  same order with observer ranges frozen at compile time;
* ``fast`` backend — allclose on the float path (BN folding, fused
  epilogues and the Kronecker-form tile transforms reassociate float
  arithmetic), and grid-exact or allclose on quantized paths (which keep
  eager's nested transform order so quantization-bin decisions match).

Covered: LeNet (5×5 filters), a ResNet-18-like net, SqueezeNet and
grouped ResNeXt smoke configs, with and without quantization, plus every
supported F(m, r) tile size as a single layer.
"""

import numpy as np
import pytest

from repro.autograd import Tensor, no_grad
from repro.engine import compile_model
from repro.models.common import ConvSpec
from repro.models.lenet import lenet
from repro.models.resnet import resnet18
from repro.models.resnext import resnext20
from repro.models.squeezenet import squeezenet
from repro.quant.qconfig import fp32, int8
from repro.winograd.layer import WinogradConv2d


def eager_output(model, x: np.ndarray) -> np.ndarray:
    """Eval forward twice: the first pass warms any cold quantizer
    observers (as real deployment calibration would), the second runs
    with frozen ranges — the semantics a compiled plan freezes."""
    model.eval()
    with no_grad():
        model(Tensor(x))
        return model(Tensor(x)).data


def assert_parity(model, x: np.ndarray, quantized: bool):
    expected = eager_output(model, x)

    reference = compile_model(model, backend="reference").run(x)
    np.testing.assert_array_equal(
        reference, expected, err_msg="reference backend must match eager exactly"
    )

    fast = compile_model(model, backend="fast").run(x)
    assert fast.shape == expected.shape
    if quantized:
        # Fake-quant snapping absorbs reassociation noise almost always;
        # allow a fraction of the coarsest visible grid step otherwise.
        # (Quantized Winograd steps deliberately keep eager's nested
        # transform order — see _finalize_fast — so grid decisions match.)
        tol = max(1e-6, float(np.abs(expected).max()) * 1e-4)
        np.testing.assert_allclose(fast, expected, rtol=0, atol=tol)
    else:
        np.testing.assert_allclose(fast, expected, rtol=1e-4, atol=1e-4)


class TestModelParity:
    @pytest.mark.parametrize("algorithm", ["F2", "F4"])
    @pytest.mark.parametrize("qconfig", [fp32(), int8()], ids=["fp32", "int8"])
    def test_lenet_5x5(self, rng, algorithm, qconfig):
        model = lenet(spec=ConvSpec(algorithm, qconfig))
        x = rng.standard_normal((2, 1, 28, 28)).astype(np.float32)
        assert_parity(model, x, quantized=qconfig.enabled)

    @pytest.mark.parametrize("algorithm", ["im2row", "F2", "F4", "F6"])
    def test_resnet18_like_fp32(self, rng, algorithm):
        model = resnet18(width_multiplier=0.125, spec=ConvSpec(algorithm))
        x = rng.standard_normal((2, 3, 32, 32)).astype(np.float32)
        assert_parity(model, x, quantized=False)

    @pytest.mark.parametrize("algorithm", ["im2row", "F4"])
    def test_resnet18_like_int8(self, rng, algorithm):
        model = resnet18(width_multiplier=0.125, spec=ConvSpec(algorithm, int8()))
        x = rng.standard_normal((2, 3, 32, 32)).astype(np.float32)
        assert_parity(model, x, quantized=True)

    @pytest.mark.parametrize(
        "spec",
        [ConvSpec("F4"), ConvSpec("F2", int8())],
        ids=["F4-fp32", "F2-int8"],
    )
    def test_squeezenet(self, rng, spec):
        model = squeezenet(width_multiplier=0.25, spec=spec)
        x = rng.standard_normal((2, 3, 32, 32)).astype(np.float32)
        assert_parity(model, x, quantized=spec.qconfig.enabled)

    def test_resnext_grouped_winograd_int8(self, rng):
        model = resnext20(width_multiplier=0.5, spec=ConvSpec("F2", int8()))
        x = rng.standard_normal((2, 3, 32, 32)).astype(np.float32)
        assert_parity(model, x, quantized=True)


class TestTileSizeGrid:
    """Every supported F(m, r): m ∈ {2, 4, 6} for both 3×3 and 5×5 filters."""

    @pytest.mark.parametrize("m", [2, 4, 6])
    @pytest.mark.parametrize("r", [3, 5])
    @pytest.mark.parametrize("qconfig", [fp32(), int8()], ids=["fp32", "int8"])
    def test_single_layer(self, rng, m, r, qconfig):
        layer = WinogradConv2d(4, 6, kernel_size=r, m=m, qconfig=qconfig)
        x = rng.standard_normal((2, 4, 16, 16)).astype(np.float32)
        assert_parity(layer, x, quantized=qconfig.enabled)

    def test_flex_transforms_are_honoured(self, rng):
        """A flex layer's *current* (trained/perturbed) transforms are
        what gets frozen into the plan, not the Cook–Toom init."""
        layer = WinogradConv2d(4, 4, 3, m=4, flex=True)
        layer.BT.data += 0.01 * rng.standard_normal(layer.BT.shape).astype(np.float32)
        layer.AT.data += 0.01 * rng.standard_normal(layer.AT.shape).astype(np.float32)
        x = rng.standard_normal((1, 4, 12, 12)).astype(np.float32)
        assert_parity(layer, x, quantized=False)


class TestColdObserverSemantics:
    def test_uncalibrated_plan_matches_eager_across_batches(self, rng):
        """A plan compiled from a *cold* quantized model must mirror
        eager's eval fallback exactly: both take the range from the
        first batch, freeze it, and quantize later batches with it."""
        a = rng.standard_normal((2, 4, 12, 12)).astype(np.float32)
        b = 3.0 * rng.standard_normal((2, 4, 12, 12)).astype(np.float32)

        eager_layer = WinogradConv2d(4, 4, 3, m=2, qconfig=int8())
        plan_layer = WinogradConv2d(4, 4, 3, m=2, qconfig=int8())
        plan_layer.load_state_dict(eager_layer.state_dict())

        plan = compile_model(plan_layer, backend="reference")  # still cold
        eager_layer.eval()
        with no_grad():
            eager_a = eager_layer(Tensor(a)).data  # initialises observers
            eager_b = eager_layer(Tensor(b)).data  # frozen ranges from batch a
        np.testing.assert_array_equal(plan.run(a), eager_a)
        np.testing.assert_array_equal(plan.run(b), eager_b)


class TestExecutorBatching:
    def test_run_many_matches_per_input_runs(self, rng):
        model = lenet(spec=ConvSpec("F2"))
        model.eval()
        plan = compile_model(model, backend="fast")
        inputs = [
            rng.standard_normal((3, 1, 28, 28)).astype(np.float32) for _ in range(4)
        ]
        batched = plan.run_many(inputs)
        assert len(batched) == 4
        for x, out in zip(inputs, batched):
            np.testing.assert_allclose(out, plan.run(x), rtol=1e-5, atol=1e-5)

    def test_run_many_rejects_mismatched_shapes(self, rng):
        model = lenet(spec=ConvSpec("im2row"))
        model.eval()
        plan = compile_model(model)
        with pytest.raises(ValueError):
            plan.run_many(
                [
                    rng.standard_normal((1, 1, 28, 28)).astype(np.float32),
                    rng.standard_normal((1, 1, 14, 14)).astype(np.float32),
                ]
            )

    def test_tensor_call_interface(self, rng):
        model = lenet(spec=ConvSpec("im2row"))
        model.eval()
        plan = compile_model(model)
        x = rng.standard_normal((2, 1, 28, 28)).astype(np.float32)
        np.testing.assert_array_equal(plan(Tensor(x)), plan.run(x))
