"""Compiled-plan artifact tests: round-trip fidelity + rejection policy.

The format contract lives in docs/artifact-format.md; these tests pin
its two normative halves:

* **Fidelity** — a saved-then-mmap-loaded plan is *bitwise identical* in
  output to the plan it was serialized from, on the reference oracle and
  the native int8 backend, and shared attribute dicts (the int8 backend's
  producer→consumer quantization handoffs) keep their object identity
  through the round trip.
* **Rejection** — truncated, corrupted, wrong-version, and wrong-magic
  files all fail with the documented typed error, never with a crash or
  a silently wrong plan ('Compatibility and rejection policy').
"""

import os
import struct

import numpy as np
import pytest

from repro.engine import compile_model
from repro.engine.artifact import (
    EXTENSION,
    FORMAT_VERSION,
    HEADER,
    MAGIC,
    ArtifactCorruptError,
    ArtifactError,
    ArtifactFormatError,
    ArtifactSaveError,
    ArtifactTruncatedError,
    ArtifactVersionError,
    content_hash,
    load_plan,
    read_manifest,
    save_plan,
)
from repro.engine.plan import CompiledPlan, Step
from repro.testing.modelgen import generate_model

pytestmark = pytest.mark.filterwarnings("ignore::UserWarning")

#: Corpus seeds: 0 is fp32, 1 is int8 (asserted below so a modelgen
#: change cannot silently drop the quantized leg).
FP32_SEED, INT8_SEED = 0, 1


@pytest.fixture(scope="module")
def fp32_case():
    gm = generate_model(FP32_SEED)
    assert not gm.quantized
    plan = compile_model(gm.model, backend="reference")
    return gm, plan


@pytest.fixture(scope="module")
def int8_case():
    gm = generate_model(INT8_SEED)
    assert gm.quantized
    x = gm.calibration_input()
    from repro.autograd import Tensor, no_grad

    gm.model.eval()
    with no_grad():
        gm.model(Tensor(x))
    plan = compile_model(gm.model, backend="int8")
    plan.run(x)  # freeze any cold runtime quantizer state before saving
    return gm, plan


def _saved(tmp_path, plan, x, name="plan"):
    path = str(tmp_path / f"{name}{EXTENSION}")
    summary = save_plan(plan, path, input_shape=x.shape)
    return path, summary


class TestRoundTrip:
    def test_reference_bitwise(self, tmp_path, fp32_case):
        gm, plan = fp32_case
        x = gm.sample_input()
        path, summary = _saved(tmp_path, plan, x)
        loaded = load_plan(path)
        np.testing.assert_array_equal(loaded.run(x), plan.run(x))
        assert loaded.backend == plan.backend
        assert loaded.signature == plan.signature
        assert len(loaded.steps) == len(plan.steps) == summary["steps"]

    def test_int8_bitwise_including_chunked_threaded(self, tmp_path, int8_case):
        gm, plan = int8_case
        x = gm.sample_input()
        path, _ = _saved(tmp_path, plan, x)
        loaded = load_plan(path)
        expected = plan.run(x)
        np.testing.assert_array_equal(loaded.run(x), expected)
        # mmap'd weight views are read-only; chunked + threaded execution
        # must work on them without copying or mutation.
        loaded.chunk_bytes = 1 << 10
        np.testing.assert_array_equal(loaded.run(x, threads=2), expected)

    def test_shared_attr_dicts_keep_identity(self, tmp_path, int8_case):
        # The int8 backend wires integer handoffs by *sharing* dicts
        # between a producer's emitted-q attrs and its consumer's
        # q_input attrs; the decoder must reconstruct one object, not
        # equal copies (docs/artifact-format.md 'Attribute encoding').
        gm, plan = int8_case
        x = gm.sample_input()
        path, _ = _saved(tmp_path, plan, x)
        loaded = load_plan(path)

        def shared_pairs(steps):
            ids = {}
            pairs = set()

            def walk(value, where):
                if isinstance(value, dict):
                    first = ids.setdefault(id(value), where)
                    if first != where:
                        pairs.add((first, where))
                        return  # already walked via its first occurrence
                    for key, item in value.items():
                        walk(item, where + (key,))
                elif isinstance(value, (list, tuple)):
                    for i, item in enumerate(value):
                        walk(item, where + (i,))

            for si, step in enumerate(steps):
                walk(step.attrs, (si,))
            return pairs

        original, roundtripped = shared_pairs(plan.steps), shared_pairs(loaded.steps)
        assert original, "int8 corpus model should share q dicts across steps"
        assert roundtripped == original

    def test_manifest_and_content_hash(self, tmp_path, fp32_case):
        gm, plan = fp32_case
        x = gm.sample_input()
        path, summary = _saved(tmp_path, plan, x)
        manifest = read_manifest(path, verify=True)
        assert manifest["format"]["version"] == FORMAT_VERSION
        assert manifest["plan"]["backend"] == "reference"
        assert manifest["plan"]["input_shape"] == list(x.shape)
        assert content_hash(path) == summary["content_hash"]

    def test_atomic_write_leaves_no_tmp(self, tmp_path, fp32_case):
        gm, plan = fp32_case
        x = gm.sample_input()
        path, _ = _saved(tmp_path, plan, x)
        leftovers = [p for p in os.listdir(tmp_path) if p.endswith(".tmp")]
        assert leftovers == []


class TestRejection:
    def test_save_rejects_eager_module_steps(self, tmp_path):
        class Opaque:
            pass

        plan = CompiledPlan(
            steps=[
                Step("eager_module", (0,), 1, {"module": Opaque()}, label="Opaque")
            ],
            num_regs=2,
            input_reg=0,
            output_reg=1,
            backend="fast",
            signature="sig",
        )
        with pytest.raises(ArtifactSaveError, match="eager_module"):
            save_plan(plan, str(tmp_path / f"bad{EXTENSION}"))

    def test_truncated_file(self, tmp_path, fp32_case):
        gm, plan = fp32_case
        x = gm.sample_input()
        path, _ = _saved(tmp_path, plan, x)
        data = open(path, "rb").read()
        open(path, "wb").write(data[: len(data) // 2])
        with pytest.raises(ArtifactTruncatedError):
            load_plan(path)

    def test_truncated_below_header(self, tmp_path, fp32_case):
        gm, plan = fp32_case
        x = gm.sample_input()
        path, _ = _saved(tmp_path, plan, x)
        data = open(path, "rb").read()
        open(path, "wb").write(data[: HEADER.size - 8])
        with pytest.raises(ArtifactTruncatedError):
            load_plan(path)

    def test_corrupted_tensor_bytes(self, tmp_path, fp32_case):
        gm, plan = fp32_case
        x = gm.sample_input()
        path, _ = _saved(tmp_path, plan, x)
        with open(path, "r+b") as fh:
            fh.seek(8192)  # inside the first tensor segment
            byte = fh.read(1)
            fh.seek(8192)
            fh.write(bytes([byte[0] ^ 0xFF]))
        with pytest.raises(ArtifactCorruptError):
            load_plan(path, verify=True)

    def test_wrong_format_version(self, tmp_path, fp32_case):
        gm, plan = fp32_case
        x = gm.sample_input()
        path, _ = _saved(tmp_path, plan, x)
        with open(path, "r+b") as fh:
            fh.seek(len(MAGIC))  # the u32 version field follows the magic
            fh.write(struct.pack("<I", FORMAT_VERSION + 1))
        with pytest.raises(ArtifactVersionError, match=str(FORMAT_VERSION + 1)):
            load_plan(path)

    def test_wrong_magic(self, tmp_path, fp32_case):
        gm, plan = fp32_case
        x = gm.sample_input()
        path, _ = _saved(tmp_path, plan, x)
        with open(path, "r+b") as fh:
            fh.write(b"NOTAPLAN")
        with pytest.raises(ArtifactFormatError, match="magic"):
            load_plan(path)

    def test_typed_errors_are_artifact_errors(self):
        for exc in (
            ArtifactFormatError,
            ArtifactVersionError,
            ArtifactTruncatedError,
            ArtifactCorruptError,
            ArtifactSaveError,
        ):
            assert issubclass(exc, ArtifactError)
