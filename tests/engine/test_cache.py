"""PlanCache contract under the serving workload.

The inference server hits one shared cache from a thread pool, so the
cache must be safe under concurrent get/put/evict (satellite of ISSUE 2),
keep strict LRU recency order, expose ``stats()`` for ``/metrics``, and —
because plans freeze parameters — a *content* mutation of any kind
(weight, BN running statistic, quantizer observer range) must change the
signature so the stale plan is never served again.
"""

import threading
from concurrent.futures import ThreadPoolExecutor

import numpy as np
import pytest

from repro.engine import PlanCache, get_cached_plan
from repro.engine.cache import model_signature
from repro.models.common import ConvSpec
from repro.models.lenet import lenet
from repro.quant.qconfig import int8


def _quant_model():
    model = lenet(spec=ConvSpec("F2", int8()))
    model.eval()
    return model


class TestThreadSafety:
    def test_hammered_cache_stays_consistent(self):
        """N threads × put/get/len/keys on a tiny LRU: no lost updates,
        no over-capacity states, counters add up."""
        cache = PlanCache(maxsize=8)
        n_threads, ops = 8, 400
        start = threading.Barrier(n_threads)
        sizes = []

        def hammer(seed: int) -> int:
            rng = np.random.default_rng(seed)
            gets = 0
            start.wait()
            for i in range(ops):
                key = (int(rng.integers(0, 16)),)
                if rng.random() < 0.5:
                    cache.put(key, f"plan-{seed}-{i}")
                else:
                    cache.get(key)
                    gets += 1
                sizes.append(len(cache))
                cache.keys()
            return gets

        with ThreadPoolExecutor(n_threads) as pool:
            futures = [pool.submit(hammer, seed) for seed in range(n_threads)]
            total_gets = sum(f.result() for f in futures)  # surfaces races

        assert len(cache) <= 8
        assert max(sizes) <= 8
        stats = cache.stats()
        # Every get() incremented exactly one of the two counters.
        assert stats["hits"] + stats["misses"] == total_gets

    def test_concurrent_get_cached_plan_single_model(self):
        """Many threads fetching the same (model, shape) key never break
        the cache; all callers get a working plan."""
        cache = PlanCache()
        model = _quant_model()
        x = np.zeros((1, 1, 28, 28), dtype=np.float32)
        # Compile once up front so observer warming is done serially
        # (compilation mutates cold weight observers by design).
        get_cached_plan(model, x.shape, cache=cache)

        def fetch(_):
            plan = get_cached_plan(model, x.shape, cache=cache)
            return plan.run(x).shape

        with ThreadPoolExecutor(8) as pool:
            shapes = list(pool.map(fetch, range(32)))
        assert shapes == [(1, 10)] * 32
        assert len(cache) == 1
        assert cache.stats()["hits"] >= 32


class TestSignatureInvalidation:
    shape = (1, 1, 28, 28)

    def test_weight_mutation_recompiles(self):
        cache = PlanCache()
        model = _quant_model()
        stale = get_cached_plan(model, self.shape, cache=cache)
        model.conv1.weight.data += np.float32(0.25)
        fresh = get_cached_plan(model, self.shape, cache=cache)
        assert fresh is not stale
        assert len(cache) == 2

    def test_bn_buffer_mutation_recompiles(self):
        cache = PlanCache()
        model = _quant_model()
        assert model.bn1 is not None
        stale = get_cached_plan(model, self.shape, cache=cache)
        model.bn1.running_var.data *= np.float32(2.0)
        fresh = get_cached_plan(model, self.shape, cache=cache)
        assert fresh is not stale

    def test_observer_range_mutation_recompiles(self):
        """Re-calibrating a quantizer (observer buffers move) must
        invalidate: the frozen scale inside the old plan is stale."""
        cache = PlanCache()
        model = _quant_model()
        stale = get_cached_plan(model, self.shape, cache=cache)
        quantizer = model.conv1.q_weight
        assert bool(quantizer.initialized.data[0])  # warmed at compile
        quantizer.running_max_abs.data *= 3.0
        fresh = get_cached_plan(model, self.shape, cache=cache)
        assert fresh is not stale

    def test_signature_sensitive_to_each_tensor_class(self):
        model = _quant_model()
        get_cached_plan(model, self.shape)  # warm observers first
        base = model_signature(model)
        model.fc3.linear.bias.data += 1.0
        after_param = model_signature(model)
        model.bn2.running_mean.data += 1.0
        after_bn = model_signature(model)
        model.conv2.q_weight.running_max_abs.data += 1.0
        after_observer = model_signature(model)
        assert len({base, after_param, after_bn, after_observer}) == 4


class TestLruOrder:
    def test_get_refreshes_recency(self):
        """Eviction follows *recency*, not insertion: touching the oldest
        entry protects it and the middle entry is evicted instead."""
        cache = PlanCache(maxsize=2)
        cache.put(("a",), 1)
        cache.put(("b",), 2)
        assert cache.get(("a",)) == 1  # refresh "a"
        cache.put(("c",), 3)  # evicts "b", not "a"
        assert cache.keys() == [("a",), ("c",)]
        assert cache.get(("b",)) is None
        assert cache.get(("a",)) == 1

    def test_put_existing_key_refreshes(self):
        cache = PlanCache(maxsize=2)
        cache.put(("a",), 1)
        cache.put(("b",), 2)
        cache.put(("a",), 10)  # overwrite refreshes recency too
        cache.put(("c",), 3)
        assert cache.keys() == [("a",), ("c",)]
        assert cache.get(("a",)) == 10

    def test_stats_shape(self):
        cache = PlanCache(maxsize=4)
        cache.put(("k",), 1)
        cache.get(("k",))
        cache.get(("missing",))
        stats = cache.stats()
        assert stats == {
            "size": 1,
            "maxsize": 4,
            "hits": 1,
            "misses": 1,
            "hit_rate": 0.5,
        }

    def test_maxsize_validation(self):
        with pytest.raises(ValueError):
            PlanCache(maxsize=0)
