"""The compile-time memory planner (ISSUE 4).

Contract:

* shape inference covers every lowered op, so the planner activates on
  all the smoke models (a plan with an un-inferable op falls back to the
  legacy allocate-per-step executor instead of failing);
* liveness-disjoint registers share arena slots — the reuse pattern on a
  known chain is pinned exactly below;
* a step's output slot never aliases any of its live inputs;
* steady state is zero-allocation: after warm-up, ``memory_report()``
  shows no arena allocations for a run, while the eliminated-allocation
  counter shows the scratch/out requests that hit existing buffers;
* arena execution is value-neutral: planned and unplanned runs of the
  same plan produce bit-identical outputs.
"""

import numpy as np
import pytest

from repro.engine import compile_model
from repro.engine.memplan import Arena, plan_layout
from repro.engine.plan import Step
from repro.models.common import ConvSpec
from repro.models.lenet import lenet
from repro.models.resnet import resnet18
from repro.quant.qconfig import int8


def _chain_steps():
    """conv(r0→r1) → relu(r1→r2) → conv(r2→r3) → relu(r3→r4).

    All activations are the same size, so slot reuse is forced purely by
    liveness: r1 dies at step 1, r2 at step 2, r3 at step 3.
    """
    w = np.zeros((4, 4, 3, 3), dtype=np.float32)
    conv_attrs = {"weight": w, "stride": (1, 1), "padding": (1, 1), "groups": 1}
    return [
        Step("conv2d", (0,), 1, dict(conv_attrs)),
        Step("relu", (1,), 2),
        Step("conv2d", (2,), 3, dict(conv_attrs)),
        Step("relu", (3,), 4),
    ]


class TestLayout:
    def test_liveness_reuse_pinned_on_known_chain(self):
        layout = plan_layout(_chain_steps(), 0, 4, (4, 8, 8))
        assert layout is not None
        # Four registers, but never more than two alive at once: the
        # planner must produce exactly 2 slots and report 2 reuses.
        assert layout.planned_registers == 4
        assert len(layout.slot_elems) == 2
        assert layout.buffers_reused == 2
        # r1/r3 and r2/r4 alternate between the two slots.
        assert layout.reg_slot[1] == layout.reg_slot[3]
        assert layout.reg_slot[2] == layout.reg_slot[4]
        assert layout.reg_slot[1] != layout.reg_slot[2]
        # Equal-size activations: per-sample arena = 2 × one activation.
        assert layout.bytes_per_sample == 2 * 4 * 8 * 8 * 4

    def test_output_never_aliases_step_inputs(self):
        """Each step's output slot differs from every live input's slot
        (a kernel may never read and write the same memory)."""
        steps = _chain_steps()
        layout = plan_layout(steps, 0, 4, (4, 8, 8))
        for step in steps:
            for reg in step.inputs:
                if reg in layout.reg_slot:
                    assert layout.reg_slot[reg] != layout.reg_slot[step.output]

    def test_residual_keeps_shortcut_alive(self):
        """A register read by a later add must keep its slot until then."""
        w = np.zeros((4, 4, 3, 3), dtype=np.float32)
        conv_attrs = {"weight": w, "stride": (1, 1), "padding": (1, 1), "groups": 1}
        steps = [
            Step("conv2d", (0,), 1, dict(conv_attrs)),  # trunk in
            Step("conv2d", (1,), 2, dict(conv_attrs)),
            Step("conv2d", (2,), 3, dict(conv_attrs)),
            Step("add", (3, 1), 4),  # r1 is the shortcut
        ]
        layout = plan_layout(steps, 0, 4, (4, 8, 8))
        # r1 lives across steps 1-3, so r2/r3 may not take its slot.
        assert layout.reg_slot[2] != layout.reg_slot[1]
        assert layout.reg_slot[3] != layout.reg_slot[1]

    def test_alias_ops_share_the_producer_slot(self):
        w = np.zeros((4, 4, 3, 3), dtype=np.float32)
        steps = [
            Step("conv2d", (0,), 1, {"weight": w, "stride": (1, 1),
                                     "padding": (1, 1), "groups": 1}),
            Step("flatten", (1,), 2),
            Step("linear", (2,), 3, {"weight": np.zeros((10, 256), np.float32)}),
        ]
        layout = plan_layout(steps, 0, 3, (4, 8, 8))
        # flatten returns a view of its input: one slot, union lifetime.
        assert layout.reg_slot[2] == layout.reg_slot[1]

    def test_unknown_op_disables_planning(self):
        steps = [Step("eager_module", (0,), 1, {"module": None})]
        assert plan_layout(steps, 0, 1, (4, 8, 8)) is None


class TestArena:
    def test_scratch_reuse_and_growth_accounting(self):
        layout = plan_layout(_chain_steps(), 0, 4, (4, 8, 8))
        arena = Arena(layout)
        arena.begin_run(2)
        first_allocs = arena.last_run_allocs
        assert first_allocs == len(layout.slot_elems)
        buf = arena.scratch((0, "rows", 0), (16, 16), np.float32)
        assert arena.scratch((0, "rows", 0), (16, 16), np.float32) is not None
        assert arena.last_run_hits == 1  # second request hit the buffer
        assert arena.owns(buf)
        # Same key, smaller shape: still a hit (capacity-based).
        arena.scratch((0, "rows", 0), (8, 16), np.float32)
        assert arena.last_run_hits == 2
        # Bigger batch grows the slots exactly once.
        arena.begin_run(4)
        assert arena.last_run_allocs == len(layout.slot_elems)
        arena.begin_run(4)
        assert arena.last_run_allocs == 0

    def test_zeroed_scratch_borders_survive_reuse(self):
        layout = plan_layout(_chain_steps(), 0, 4, (4, 8, 8))
        arena = Arena(layout)
        arena.begin_run(1)
        pad = arena.scratch((1, "xp", 0), (1, 2, 6, 6), np.float32, zero=True)
        assert not pad.any()
        pad[:, :, 1:5, 1:5] = 7.0  # kernel writes the interior only
        again = arena.scratch((1, "xp", 0), (1, 2, 6, 6), np.float32, zero=True)
        assert again[0, 0, 0, 0] == 0.0 and again[0, 0, 2, 2] == 7.0


class TestPlannedExecution:
    @pytest.mark.parametrize("backend", ["fast", "int8"])
    def test_zero_steady_state_allocations_resnet_smoke(self, rng, backend):
        """The acceptance gate: after warm-up, a run of the ResNet smoke
        plan performs zero arena allocations while eliminating dozens."""
        model = resnet18(width_multiplier=0.25, spec=ConvSpec("F4", int8()))
        model.eval()
        from repro.autograd import Tensor, no_grad

        x = rng.standard_normal((8, 3, 32, 32)).astype(np.float32)
        with no_grad():
            model(Tensor(x))  # calibrate observers
        plan = compile_model(model, backend=backend)
        plan.run(x)  # warm-up: arenas + scratch allocate here
        plan.run(x)  # steady state
        report = plan.memory_report(batch=8)
        assert report["steady_state_allocations"] == 0
        assert report["allocations_eliminated"] > 20
        assert report["shape_misses"] == 0
        entry = report["planned_shapes"][0]
        assert entry["planned"]
        assert entry["buffers_reused"] > 0
        assert entry["slots"] < entry["planned_registers"]

    def test_planned_equals_unplanned_bitwise(self, rng):
        model = lenet(spec=ConvSpec("F2", int8()))
        model.eval()
        x = rng.standard_normal((4, 1, 28, 28)).astype(np.float32)
        planned = compile_model(model, backend="fast")
        planned.run(x[:1])  # freeze dynamic ranges + warm arena
        unplanned = compile_model(model, backend="fast")
        unplanned.planning = False
        unplanned.run(x[:1])
        np.testing.assert_array_equal(planned.run(x), unplanned.run(x))

    def test_result_does_not_alias_arena(self, rng):
        """run() results must stay stable after later runs reuse the
        arena (the executor copies arena-backed outputs out)."""
        model = lenet(spec=ConvSpec("F2"))
        model.eval()
        plan = compile_model(model, backend="fast")
        a = rng.standard_normal((2, 1, 28, 28)).astype(np.float32)
        b = rng.standard_normal((2, 1, 28, 28)).astype(np.float32)
        out_a = plan.run(a)
        snapshot = out_a.copy()
        plan.run(b)  # same arena, different data
        np.testing.assert_array_equal(out_a, snapshot)

    def test_reference_backend_keeps_legacy_executor(self, rng):
        model = lenet(spec=ConvSpec("F2"))
        model.eval()
        plan = compile_model(model, backend="reference")
        x = rng.standard_normal((2, 1, 28, 28)).astype(np.float32)
        plan.run(x)
        report = plan.memory_report()
        assert not report["planning"]
        assert report["arenas_built"] == 0

    def test_describe_includes_memory_line(self, rng):
        model = lenet(spec=ConvSpec("F2"))
        model.eval()
        plan = compile_model(model, backend="fast")
        x = rng.standard_normal((2, 1, 28, 28)).astype(np.float32)
        plan.run(x)
        assert any("memory:" in line for line in plan.describe())

    def test_prepare_builds_layout_before_first_run(self):
        model = lenet(spec=ConvSpec("F2"))
        model.eval()
        plan = compile_model(model, backend="fast")
        plan.prepare((1, 1, 28, 28))
        entry = plan.memory_report()["planned_shapes"][0]
        assert entry["planned"] and entry["sample_shape"] == [1, 28, 28]
