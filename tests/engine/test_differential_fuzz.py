"""Randomized differential testing across the engine's execution modes.

ISSUE 5's hardening harness: seeded random models (conv/linear/pool/BN/
ReLU DAGs over widths, F(m, r) tile sizes and precisions — see
:mod:`repro.testing.modelgen`) are pushed through every backend ×
threads × chunking combination and each mode's documented contract is
asserted (:mod:`repro.testing.diffcheck`):

* ``reference`` must equal the eager forward **bitwise**, and stay
  bitwise under batch chunking and the thread scheduler;
* ``fast``/``turbo`` must stay within their documented float/grid
  tolerances;
* ``int8`` outputs must be bit-identical to the exact int64-GEMM oracle
  (PR 3's exactness contract), bit-stable under threads/chunking when
  fully native, and any quantization-bin flip at an auditable Winograd
  stem must be bin-boundary-justified.

The tier-1 corpus is the **fixed** seed range 0..24 — no randomness at
collection time, so a CI failure reproduces locally from the seed in the
test id (``python -m repro.testing.diffcheck --seeds N`` re-runs one).
A larger corpus runs under ``-m slow``.

This corpus has already caught three real ulp-level engine bugs during
its construction: the reference ``avg_pool``/``max_pool`` kernels
reducing strided views in a different order (and layout) than eager, and
the reference backend cache-chunking GEMM steps whose BLAS blocking
depends on the batch extent.
"""

import pytest

from repro.testing.diffcheck import check_model
from repro.testing.modelgen import PRECISIONS, generate_model

TIER1_SEEDS = list(range(25))
SLOW_SEEDS = list(range(25, 150))


@pytest.mark.parametrize("seed", TIER1_SEEDS)
def test_differential_corpus(seed):
    check_model(seed)


@pytest.mark.slow
@pytest.mark.parametrize("seed", SLOW_SEEDS)
def test_differential_corpus_extended(seed):
    check_model(seed)


def test_generator_is_deterministic():
    a, b = generate_model(7), generate_model(7)
    assert a.description == b.description
    assert a.input_shape == b.input_shape
    import numpy as np

    for (na, pa), (nb, pb) in zip(
        a.model.named_parameters(), b.model.named_parameters()
    ):
        assert na == nb
        np.testing.assert_array_equal(pa.data, pb.data)
    np.testing.assert_array_equal(a.sample_input(), b.sample_input())


def test_corpus_covers_every_dimension():
    """The fixed tier-1 corpus must actually exercise each axis of the
    mode product — precisions, Winograd layers, quantized Winograd stems
    (the configuration the bin-boundary audit reaches), and native int8
    execution — otherwise a green run proves much less than it claims."""
    reports = [check_model(seed) for seed in TIER1_SEEDS]
    seen_precisions = {r["precision"] for r in reports}
    assert seen_precisions == set(PRECISIONS)
    assert sum(1 for r in reports if r["has_winograd"]) >= 10
    audited = [r for r in reports if r["stem_audit"] is not None]
    assert len(audited) >= 4, "too few quantized-Winograd-stem audits in corpus"
    assert sum(r.get("native_int8_steps", 0) for r in reports) >= 20
