"""The benchmark-regression guard's like-for-like thread comparison.

``check_bench_regression.py`` gates CI on the committed
``BENCH_engine.json``; with the parallel executor the rule is: speedups
only compare between reports measured at the same engine thread count
(and threaded speedups additionally need enough cores on the fresh
host), while the zero-allocation contract holds unconditionally.
"""

import importlib.util
import pathlib

_SPEC = importlib.util.spec_from_file_location(
    "check_bench_regression",
    pathlib.Path(__file__).resolve().parents[2]
    / "benchmarks"
    / "check_bench_regression.py",
)
guard = importlib.util.module_from_spec(_SPEC)
_SPEC.loader.exec_module(guard)


def _report(threads=1, speedup=3.0, cpu=4, t_speedup=2.0, t_threads=4, ssa=0):
    return {
        "threads": threads,
        "cpu_count": cpu,
        "results": [
            {"workload": "w", "threads": threads, "speedup_fast": speedup}
        ],
        "threaded_speedup": {
            "threads": t_threads,
            "workloads": {"w@fast": {"speedup": t_speedup}},
        },
        "memory": {"workload": "w@fast", "steady_state_allocations": ssa},
    }


def test_same_thread_count_regression_detected():
    failures = guard.check(_report(speedup=3.0), _report(speedup=2.0), 0.25)
    assert any("speedup_fast regressed" in f for f in failures)


def test_mismatched_thread_counts_are_skipped(capsys):
    failures = guard.check(
        _report(threads=1, speedup=3.0), _report(threads=2, speedup=1.0), 0.25
    )
    assert failures == []
    assert "skipping speedup comparison" in capsys.readouterr().out


def test_threaded_speedup_regression_detected():
    failures = guard.check(
        _report(t_speedup=2.0), _report(t_speedup=1.0), 0.25
    )
    assert any("threaded_speedup" in f for f in failures)


def test_threaded_entry_disappearing_on_capable_host_fails():
    fresh = _report()
    fresh["threaded_speedup"] = None  # bench thread resolution broke
    failures = guard.check(_report(), fresh, 0.25)
    assert any("disappeared" in f for f in failures)


def test_threaded_entry_absent_on_single_core_host_is_skipped(capsys):
    fresh = _report(cpu=1)
    fresh["threaded_speedup"] = None  # 1-core host: legitimately omitted
    assert guard.check(_report(), fresh, 0.25) == []
    assert "skipping threaded_speedup" in capsys.readouterr().out


def test_threaded_speedup_skipped_on_small_host(capsys):
    failures = guard.check(
        _report(t_speedup=2.0), _report(t_speedup=1.0, cpu=1), 0.25
    )
    assert failures == []
    assert "skipping threaded_speedup" in capsys.readouterr().out


def test_pre_executor_baseline_without_threads_keys_still_compares():
    baseline = {"results": [{"workload": "w", "speedup_fast": 3.0}]}
    failures = guard.check(baseline, _report(speedup=2.0), 0.25)
    assert any("speedup_fast regressed" in f for f in failures)
    assert not guard.check(baseline, _report(speedup=2.9), 0.25)


def test_steady_state_allocations_fail_unconditionally():
    failures = guard.check(_report(), _report(ssa=3), 0.25)
    assert any("memory planner regressed" in f for f in failures)
