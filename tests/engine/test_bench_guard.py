"""The benchmark-regression guard's like-for-like thread comparison.

``check_bench_regression.py`` gates CI on the committed
``BENCH_engine.json``; with the parallel executor the rule is: speedups
only compare between reports measured at the same engine thread count
(and threaded speedups additionally need enough cores on the fresh
host), while the zero-allocation contract holds unconditionally.
"""

import importlib.util
import pathlib

_SPEC = importlib.util.spec_from_file_location(
    "check_bench_regression",
    pathlib.Path(__file__).resolve().parents[2]
    / "benchmarks"
    / "check_bench_regression.py",
)
guard = importlib.util.module_from_spec(_SPEC)
_SPEC.loader.exec_module(guard)


def _report(threads=1, speedup=3.0, cpu=4, t_speedup=2.0, t_threads=4, ssa=0):
    return {
        "threads": threads,
        "cpu_count": cpu,
        "results": [
            {"workload": "w", "threads": threads, "speedup_fast": speedup}
        ],
        "threaded_speedup": {
            "threads": t_threads,
            "workloads": {"w@fast": {"speedup": t_speedup}},
        },
        "memory": {"workload": "w@fast", "steady_state_allocations": ssa},
    }


def test_same_thread_count_regression_detected():
    failures = guard.check(_report(speedup=3.0), _report(speedup=2.0), 0.25)
    assert any("speedup_fast regressed" in f for f in failures)


def test_mismatched_thread_counts_are_skipped(capsys):
    failures = guard.check(
        _report(threads=1, speedup=3.0), _report(threads=2, speedup=1.0), 0.25
    )
    assert failures == []
    assert "skipping speedup comparison" in capsys.readouterr().out


def test_threaded_speedup_regression_detected():
    failures = guard.check(
        _report(t_speedup=2.0), _report(t_speedup=1.0), 0.25
    )
    assert any("threaded_speedup" in f for f in failures)


def test_threaded_entry_disappearing_on_capable_host_fails():
    fresh = _report()
    fresh["threaded_speedup"] = None  # bench thread resolution broke
    failures = guard.check(_report(), fresh, 0.25)
    assert any("disappeared" in f for f in failures)


def test_threaded_entry_absent_on_single_core_host_is_skipped(capsys):
    fresh = _report(cpu=1)
    fresh["threaded_speedup"] = None  # 1-core host: legitimately omitted
    assert guard.check(_report(), fresh, 0.25) == []
    assert "skipping threaded_speedup" in capsys.readouterr().out


def test_threaded_speedup_skipped_on_small_host(capsys):
    failures = guard.check(
        _report(t_speedup=2.0), _report(t_speedup=1.0, cpu=1), 0.25
    )
    assert failures == []
    assert "skipping threaded_speedup" in capsys.readouterr().out


def test_pre_executor_baseline_without_threads_keys_still_compares():
    baseline = {"results": [{"workload": "w", "speedup_fast": 3.0}]}
    failures = guard.check(baseline, _report(speedup=2.0), 0.25)
    assert any("speedup_fast regressed" in f for f in failures)
    assert not guard.check(baseline, _report(speedup=2.9), 0.25)


def test_steady_state_allocations_fail_unconditionally():
    failures = guard.check(_report(), _report(ssa=3), 0.25)
    assert any("memory planner regressed" in f for f in failures)


def _residency_entry(speedup=1.05, edges=5, ssa=0):
    return {
        "workload": "winograd-chain6-F4@fast",
        "residency_edges": edges,
        "ms_resident": 8.0,
        "ms_roundtrip": 8.0 * speedup,
        "speedup": speedup,
        "steady_state_allocations": ssa,
    }


def test_winograd_residency_ok_passes():
    baseline, fresh = _report(), _report()
    baseline["winograd_residency"] = _residency_entry()
    fresh["winograd_residency"] = _residency_entry()
    assert guard.check(baseline, fresh, 0.25) == []


def test_winograd_residency_speedup_must_exceed_one():
    fresh = _report()
    fresh["winograd_residency"] = _residency_entry(speedup=0.98)
    failures = guard.check(_report(), fresh, 0.25)
    assert any("strictly > 1.0x" in f for f in failures)


def test_winograd_residency_zero_edges_is_a_compiler_regression():
    fresh = _report()
    fresh["winograd_residency"] = _residency_entry(edges=0)
    failures = guard.check(_report(), fresh, 0.25)
    assert any("zero edges" in f for f in failures)


def test_winograd_residency_allocations_fail_unconditionally():
    fresh = _report()
    fresh["winograd_residency"] = _residency_entry(ssa=2)
    failures = guard.check(_report(), fresh, 0.25)
    assert any("zero-allocation contract" in f for f in failures)


def test_winograd_residency_entry_disappearing_fails():
    baseline = _report()
    baseline["winograd_residency"] = _residency_entry()
    failures = guard.check(baseline, _report(), 0.25)
    assert any("winograd_residency entry disappeared" in f for f in failures)
