"""Served-latency probe and the WiNAS ``latency_source="served"`` hookup."""

import numpy as np
import pytest

from repro.serve.batcher import BatchPolicy
from repro.serve.probe import served_latency_ms


class SleepyPlan:
    def __init__(self, delay_s: float):
        self.delay_s = delay_s
        self.calls = 0

    def run(self, x):
        import time

        self.calls += 1
        time.sleep(self.delay_s)
        return np.zeros((x.shape[0], 2), dtype=np.float32)


def test_served_latency_reflects_plan_cost():
    x = np.zeros((1, 2, 4, 4), dtype=np.float32)
    slow = served_latency_ms(SleepyPlan(0.02), x, concurrency=2, requests_per_client=2)
    fast = served_latency_ms(SleepyPlan(0.0), x, concurrency=2, requests_per_client=2)
    assert slow > fast
    assert slow >= 20.0  # at least one 20 ms run per request batch

    # Batching amortises the sleep across concurrent clients: mean
    # per-request latency stays near one run, not concurrency × run.
    assert slow < 4 * 20.0 * 2


def test_probe_batches_concurrent_clients():
    plan = SleepyPlan(0.005)
    x = np.zeros((1, 2, 4, 4), dtype=np.float32)
    served_latency_ms(plan, x, concurrency=8, requests_per_client=2)
    # 1 warmup + 16 requests; coalescing means far fewer than 17 runs.
    assert plan.calls < 17


def test_probe_policy_override():
    plan = SleepyPlan(0.0)
    x = np.zeros((1, 2, 4, 4), dtype=np.float32)
    policy = BatchPolicy(max_batch_size=1, max_wait_ms=0, max_queue=64)
    served_latency_ms(plan, x, concurrency=4, requests_per_client=1, policy=policy)
    assert plan.calls == 5  # warmup + one run per request: no batching


@pytest.mark.slow
def test_winas_served_source_populates_latencies():
    from repro.models.resnet import resnet18
    from repro.nas.search_space import Candidate
    from repro.nas.winas import SearchConfig, WiNAS

    candidates = [Candidate("im2row", "fp32", False), Candidate("F4", "fp32", False)]
    plan = WiNAS.make_plan(candidates)
    model = resnet18(width_multiplier=0.125, plan=plan)
    nas = WiNAS(
        model,
        SearchConfig(latency_source="served", served_concurrency=2),
    )
    x = np.zeros((1, 3, 16, 16), dtype=np.float32)
    nas.populate_latencies(x)
    assert all(op.latencies_ms is not None for op in nas.mixed_ops)
    assert all(len(op.latencies_ms) == 2 for op in nas.mixed_ops)
    assert all((op.latencies_ms > 0).all() for op in nas.mixed_ops)


def test_unknown_latency_source_rejected():
    from repro.models.resnet import resnet18
    from repro.nas.search_space import Candidate
    from repro.nas.winas import WiNAS

    candidates = [Candidate("im2row", "fp32", False)]
    model = resnet18(width_multiplier=0.125, plan=WiNAS.make_plan(candidates))
    nas = WiNAS(model)
    with pytest.raises(ValueError, match="latency source"):
        nas.populate_latencies(
            np.zeros((1, 3, 16, 16), dtype=np.float32), source="wishful"
        )
