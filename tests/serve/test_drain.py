"""Graceful lifecycle (ISSUE 8): SIGTERM drain must stop intake, finish
every accepted request, optionally flush the span buffer, and exit 0 —
zero accepted requests dropped, even with live load at ``--workers 2``.

Two layers:

* :class:`ServerHandle.drain` in-process: intake flips to a typed 503
  (``Retry-After`` set, ``/healthz`` degraded with a ``draining``
  reason) while health/metrics stay readable and in-flight work lands;
* the real ``repro serve`` subprocess: SIGTERM under concurrent client
  load → stdout narrates the drain, the ``--drain-trace-out`` file is a
  valid Chrome trace, and the process exits 0.

The drop oracle for the subprocess test: a client-side transport error
is only a *real* drop if the server was still accepting afterwards —
i.e. a later request on the same thread succeeded.  Errors at the tail
(connection torn down because the server exited) are the documented,
typed way a drain ends.
"""

import json
import os
import signal
import subprocess
import sys
import threading
import time
from pathlib import Path

import numpy as np
import pytest

from repro.serve import (
    BatchPolicy,
    ModelRegistry,
    ServeClient,
    ServeClientError,
    ServeError,
    start_in_background,
)

MODEL = "lenet-F2-fp32@reference"

pytestmark = pytest.mark.skipif(
    sys.platform == "win32", reason="SIGTERM drain path is POSIX-only"
)


def _sample():
    return np.zeros((1, 28, 28), dtype=np.float32)


class TestHandleDrain:
    def test_drain_stops_intake_finishes_inflight(self):
        registry = ModelRegistry()
        registry.load(MODEL)
        with start_in_background(
            registry, policy=BatchPolicy(max_batch_size=4, max_queue=256)
        ) as handle:
            outcomes = []
            lock = threading.Lock()
            stop = threading.Event()

            def hammer():
                with ServeClient(handle.base_url, timeout=30.0) as client:
                    while not stop.is_set():
                        try:
                            client.predict(_sample(), model=MODEL)
                            tag = "ok"
                        except ServeError as exc:
                            assert exc.status == 503, exc
                            assert "draining" in exc.message
                            assert exc.retry_after is not None
                            tag = "shed-draining"
                        except ServeClientError:
                            tag = "transport"
                        with lock:
                            outcomes.append(tag)

            threads = [threading.Thread(target=hammer) for _ in range(4)]
            for t in threads:
                t.start()
            # Let load build up, then drain mid-flight.
            time.sleep(0.2)
            assert handle.drain(timeout=30.0) is True
            stop.set()
            for t in threads:
                t.join(timeout=30.0)

            assert outcomes.count("ok") > 0
            # Every non-2xx during the run was the typed drain refusal;
            # an accepted request never vanished into a transport error.
            assert outcomes.count("transport") == 0, outcomes
            # Intake is closed now, with operator-facing visibility.
            with ServeClient(handle.base_url) as client:
                with pytest.raises(ServeError) as info:
                    client.predict(_sample(), model=MODEL)
                assert info.value.status == 503
                assert info.value.retry_after is not None
                health = client.healthz()
                assert health["status"] == "degraded"
                assert "draining" in health["reasons"]
                # The operator can still watch the drain.
                assert client.metrics()["draining"] is True

    def test_drain_is_instant_when_idle(self):
        registry = ModelRegistry()
        registry.load(MODEL)
        with start_in_background(registry) as handle:
            with ServeClient(handle.base_url) as client:
                client.predict(_sample(), model=MODEL)
            start = time.monotonic()
            assert handle.drain(timeout=30.0) is True
            assert time.monotonic() - start < 5.0


def _spawn_serve(tmp_path, extra_args=()):
    env = dict(os.environ)
    env["PYTHONPATH"] = str(Path(__file__).resolve().parents[2] / "src")
    env.setdefault("REPRO_THREADS", "1")
    env.pop("REPRO_CHAOS", None)
    proc = subprocess.Popen(
        [
            sys.executable, "-m", "repro.cli", "serve",
            "--model", MODEL, "--port", "0", *extra_args,
        ],
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        text=True,
        env=env,
    )
    lines = []
    lines_lock = threading.Lock()

    def pump():
        for line in proc.stdout:
            with lines_lock:
                lines.append(line.rstrip("\n"))

    reader = threading.Thread(target=pump, daemon=True)
    reader.start()

    base_url = None
    deadline = time.monotonic() + 120.0
    while time.monotonic() < deadline and base_url is None:
        with lines_lock:
            for line in lines:
                if "serving on http://" in line:
                    base_url = line.split("serving on ", 1)[1].split()[0]
                    break
        if proc.poll() is not None:
            with lines_lock:
                raise AssertionError(
                    f"serve exited early ({proc.returncode}):\n"
                    + "\n".join(lines)
                )
        time.sleep(0.05)
    assert base_url is not None, "never saw 'serving on http://' banner"
    return proc, reader, lines, lines_lock, base_url


class TestSigtermSubprocess:
    def test_sigterm_drains_flushes_trace_and_exits_zero(self, tmp_path):
        """The full runbook procedure, against the real CLI process with
        two forked workers and clients still sending when SIGTERM lands."""
        if not hasattr(os, "register_at_fork"):
            pytest.skip("fork-based workers are POSIX-only")
        trace_out = tmp_path / "drain-trace.json"
        proc, reader, lines, lines_lock, base_url = _spawn_serve(
            tmp_path,
            extra_args=(
                "--workers", "2", "--trace-rate", "1.0",
                "--drain-trace-out", str(trace_out),
            ),
        )
        per_thread = []
        stop = threading.Event()

        def hammer(record):
            with ServeClient(base_url, timeout=30.0) as client:
                while not stop.is_set():
                    try:
                        client.predict(_sample(), model=MODEL)
                        record.append("ok")
                    except ServeError:
                        record.append("typed")
                    except ServeClientError:
                        record.append("transport")

        try:
            threads = []
            for _ in range(3):
                record = []
                per_thread.append(record)
                threads.append(
                    threading.Thread(target=hammer, args=(record,))
                )
            for t in threads:
                t.start()
            # Ensure real traffic is in flight before the signal.
            deadline = time.monotonic() + 60.0
            while (
                sum(r.count("ok") for r in per_thread) < 10
                and time.monotonic() < deadline
            ):
                time.sleep(0.02)
            assert sum(r.count("ok") for r in per_thread) >= 10

            proc.send_signal(signal.SIGTERM)
            returncode = proc.wait(timeout=120.0)
            stop.set()
            for t in threads:
                t.join(timeout=30.0)
        finally:
            stop.set()
            if proc.poll() is None:
                proc.kill()
                proc.wait(timeout=30.0)
        reader.join(timeout=10.0)

        assert returncode == 0
        with lines_lock:
            text = "\n".join(lines)
        assert "SIGTERM: draining in-flight requests" in text
        assert "drained cleanly" in text, text
        assert "flushed" in text and str(trace_out) in text
        # A clean exit logs no teardown noise (cancelled keep-alive
        # connection handlers used to traceback per open connection).
        assert "Traceback" not in text, text

        # Zero real drops: a transport error only counts as a drop if
        # that thread later got served again (server was still alive).
        for record in per_thread:
            if "transport" in record:
                first_transport = record.index("transport")
                assert "ok" not in record[first_transport:], record

        # The flushed artifact is a loadable Chrome trace with spans.
        doc = json.loads(trace_out.read_text())
        assert doc["traceEvents"], "drain flushed an empty trace"

    def test_sigterm_without_trace_out_still_exits_zero(self, tmp_path):
        proc, reader, lines, lines_lock, base_url = _spawn_serve(tmp_path)
        try:
            with ServeClient(base_url, timeout=30.0) as client:
                client.predict(_sample(), model=MODEL)
            proc.send_signal(signal.SIGTERM)
            returncode = proc.wait(timeout=60.0)
        finally:
            if proc.poll() is None:
                proc.kill()
                proc.wait(timeout=30.0)
        reader.join(timeout=10.0)
        assert returncode == 0
        with lines_lock:
            text = "\n".join(lines)
        assert "drained cleanly" in text, text
        assert "flushed" not in text
        assert "Traceback" not in text, text
