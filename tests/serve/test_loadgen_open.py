"""Open-loop load generation (ISSUE 8 satellite): seeded Poisson
arrivals, weighted traffic classes, and full outcome accounting —
``sent == accounted`` is the silent-drop detector the overload gate
relies on.

The schedule maths is tested as pure units; one short live run against
an in-process server then checks the accounting and goodput surface
end to end.
"""

import numpy as np
import pytest

from repro.serve import (
    BatchPolicy,
    ModelRegistry,
    poisson_arrivals,
    run_open_loop,
    start_in_background,
)
from repro.serve.loadgen import _executed_request_ids

MODEL = "lenet-F2-fp32@reference"


class TestPoissonArrivals:
    def test_deterministic_for_a_seed(self):
        a = poisson_arrivals(50.0, 2.0, seed=7)
        b = poisson_arrivals(50.0, 2.0, seed=7)
        assert a == b
        assert a != poisson_arrivals(50.0, 2.0, seed=8)

    def test_schedule_shape(self):
        arrivals = poisson_arrivals(100.0, 2.0, seed=0)
        assert arrivals == sorted(arrivals)
        assert all(0.0 < t < 2.0 for t in arrivals)
        # Poisson count concentrates around rate×duration = 200.
        assert 120 < len(arrivals) < 300

    def test_rate_scales_the_count(self):
        slow = len(poisson_arrivals(20.0, 2.0, seed=3))
        fast = len(poisson_arrivals(200.0, 2.0, seed=3))
        assert fast > 5 * slow

    @pytest.mark.parametrize("rate,duration", [(0.0, 1.0), (-1.0, 1.0), (10.0, 0.0)])
    def test_invalid_inputs_raise(self, rate, duration):
        with pytest.raises(ValueError):
            poisson_arrivals(rate, duration)


@pytest.fixture(scope="module")
def live_server():
    registry = ModelRegistry()
    registry.load(MODEL)
    with start_in_background(
        registry,
        policy=BatchPolicy(max_batch_size=8, max_queue=256),
        trace_rate=1.0,
    ) as handle:
        yield handle


class TestRunOpenLoop:
    def test_accounting_and_goodput_surface(self, live_server):
        samples = np.random.default_rng(0).standard_normal(
            (8, 1, 28, 28)
        ).astype(np.float32)
        stats = run_open_loop(
            live_server.base_url,
            MODEL,
            samples,
            rate_rps=60.0,
            duration_s=1.0,
            classes=[
                {"name": "fast", "priority": "interactive",
                 "deadline_ms": 5000.0, "weight": 0.5},
                {"name": "bulk", "priority": "batch", "weight": 0.5},
            ],
            seed=11,
            client_threads=8,
            collect_request_ids=True,
        )
        # The silent-drop detector: every arrival has a recorded outcome.
        assert stats["sent"] == len(poisson_arrivals(60.0, 1.0, seed=11))
        assert stats["accounted"] == stats["sent"]
        assert stats["unaccounted"] == 0
        assert sum(stats["by_status"].values()) == stats["sent"]
        # Per-class breakdown covers the whole mix.
        assert set(stats["classes"]) == {"fast", "bulk"}
        assert (
            sum(c["sent"] for c in stats["classes"].values()) == stats["sent"]
        )
        fast = stats["classes"]["fast"]
        assert fast["ok"] > 0 and fast["p50_ms"] > 0
        # Goodput: 2xx within the class deadline, both forms consistent.
        assert 0 < stats["goodput"] <= stats["sent"]
        assert stats["goodput_ratio"] == pytest.approx(
            stats["goodput"] / stats["sent"]
        )
        assert stats["goodput_rps"] > 0
        # Request ids are collected per outcome for the 504-join.
        rids = stats["request_ids"]
        assert sum(len(v) for v in rids.values()) == stats["sent"]
        assert all(rid.startswith("ol-") for rid in rids.get("200", []))

    def test_executed_ids_visible_in_batch_spans(self, live_server):
        """With trace_rate=1.0, every served request id must show up in
        an executed ``batch`` span — the join the overload gate uses to
        prove expelled requests never ran."""
        samples = np.zeros((4, 1, 28, 28), dtype=np.float32)
        stats = run_open_loop(
            live_server.base_url,
            MODEL,
            samples,
            rate_rps=30.0,
            duration_s=0.5,
            seed=3,
            client_threads=4,
            collect_request_ids=True,
        )
        served = set(stats["request_ids"].get("200", []))
        assert served, stats["by_status"]
        executed = _executed_request_ids(live_server.base_url)
        assert served <= executed

    def test_default_single_class_mix(self, live_server):
        samples = np.zeros((2, 1, 28, 28), dtype=np.float32)
        stats = run_open_loop(
            live_server.base_url, MODEL, samples,
            rate_rps=20.0, duration_s=0.4, seed=5, client_threads=4,
        )
        assert set(stats["classes"]) == {"standard"}
        assert stats["unaccounted"] == 0
