"""Load generator: closed-loop stats, bit-identity, cold-socket timing."""

import http.client
import json
import socket
import threading
import time

import numpy as np

from repro.engine import PlanCache
from repro.serve import (
    BatchPolicy,
    ModelRegistry,
    check_bit_identity,
    run_load,
    start_in_background,
)

MODEL = "lenet-F2-int8@reference"


def test_run_load_and_identity_against_reference():
    registry = ModelRegistry(cache=PlanCache())
    served = registry.load(MODEL)
    samples = np.random.default_rng(0).standard_normal((8, 1, 28, 28)).astype(
        np.float32
    )
    with start_in_background(
        registry,
        policy=BatchPolicy(max_batch_size=8, max_wait_ms=2, max_queue=64),
        executor_threads=2,
    ) as handle:
        assert check_bit_identity(
            handle.base_url, served.name, served.plan, samples, concurrency=4
        )
        stats = run_load(
            handle.base_url,
            served.name,
            samples,
            concurrency=4,
            total_requests=24,
            warmup_requests=2,
        )
    assert stats["completed"] == 24
    assert stats["failed_by_status"] == {}
    assert stats["throughput_rps"] > 0
    assert stats["p50_ms"] > 0 and stats["p99_ms"] >= stats["p50_ms"]
    assert stats["batches"] > 0
    assert 1.0 <= stats["mean_batch_size"] <= 8.0


# ---------------------------------------------------------------------------
# Cold-socket timer regression (ISSUE 5 satellite)
# ---------------------------------------------------------------------------


class _SlowAcceptStub:
    """A stub HTTP server whose *connection setup* is expensive.

    Real slow-accept behaviour (a saturated accept queue) blocks the
    client inside ``connect()`` at kernel SYN-retransmission granularity
    (~1 s steps), which is too coarse and kernel-dependent for CI — so
    the setup cost is injected deterministically at the same seam, the
    client's ``HTTPConnection.connect`` (see the fixture below).  The
    stub itself answers instantly over keep-alive once connected, so any
    latency the load generator reports beyond a few ms *is* connection
    setup leaking into the timer.
    """

    def __init__(self):
        self._sock = socket.socket()
        self._sock.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        self._sock.bind(("127.0.0.1", 0))
        self._sock.listen(16)
        self._running = True
        self._thread = threading.Thread(target=self._serve, daemon=True)

    @property
    def url(self):
        host, port = self._sock.getsockname()
        return f"http://{host}:{port}"

    def __enter__(self):
        self._thread.start()
        return self

    def __exit__(self, *exc_info):
        self._running = False
        self._sock.close()

    def _serve(self):
        while self._running:
            try:
                conn, _ = self._sock.accept()
            except OSError:
                return
            threading.Thread(
                target=self._handle, args=(conn,), daemon=True
            ).start()

    def _handle(self, conn):
        try:
            fh = conn.makefile("rb")
            while True:
                request_line = fh.readline()
                if not request_line:
                    return
                target = request_line.split()[1].decode()
                length = 0
                while True:
                    line = fh.readline()
                    if line in (b"\r\n", b"\n", b""):
                        break
                    key, _, value = line.decode().partition(":")
                    if key.strip().lower() == "content-length":
                        length = int(value)
                if length:
                    fh.read(length)
                if target == "/metrics":
                    payload = {"models": {"stub": {"batches_total": 0}}}
                else:
                    payload = {"model": "stub", "output": [0.0],
                               "batch_size": 1, "queue_ms": 0.0, "run_ms": 0.0}
                body = json.dumps(payload).encode()
                conn.sendall(
                    b"HTTP/1.1 200 OK\r\nContent-Type: application/json\r\n"
                    + f"Content-Length: {len(body)}\r\n\r\n".encode()
                    + body
                )
        except (OSError, ValueError, IndexError):
            pass
        finally:
            conn.close()


def test_first_request_excludes_connection_setup(monkeypatch):
    """The closed-loop timer must not fold connection setup into the
    first request's latency: workers pre-connect before the start
    barrier, so on a server with expensive accepts every *timed* sample
    measures request -> body-read only.  ``preconnect=False`` reproduces
    the old behaviour as the negative control: its max latency carries
    the whole setup cost, which is exactly the p99 inflation the fix
    removes."""
    delay_s = 0.25
    real_connect = http.client.HTTPConnection.connect

    def slow_connect(self):
        time.sleep(delay_s)  # deterministic stand-in for a slow accept
        return real_connect(self)

    monkeypatch.setattr(http.client.HTTPConnection, "connect", slow_connect)
    samples = np.zeros((2, 1, 4, 4), dtype=np.float32)
    with _SlowAcceptStub() as stub:
        fixed = run_load(
            stub.url, "stub", samples, concurrency=2, total_requests=8,
            warmup_requests=1,
        )
        inflated = run_load(
            stub.url, "stub", samples, concurrency=2, total_requests=8,
            warmup_requests=1, preconnect=False,
        )
    assert fixed["completed"] == 8 and inflated["completed"] == 8
    # With pre-connect, no timed request pays the setup cost...
    assert fixed["max_ms"] < delay_s * 1e3 * 0.8, fixed
    # ...without it, the first request per worker pays all of it.
    assert inflated["max_ms"] >= delay_s * 1e3, inflated
