"""Load generator: closed-loop stats and the bit-identity checker."""

import numpy as np

from repro.engine import PlanCache
from repro.serve import (
    BatchPolicy,
    ModelRegistry,
    check_bit_identity,
    run_load,
    start_in_background,
)

MODEL = "lenet-F2-int8@reference"


def test_run_load_and_identity_against_reference():
    registry = ModelRegistry(cache=PlanCache())
    served = registry.load(MODEL)
    samples = np.random.default_rng(0).standard_normal((8, 1, 28, 28)).astype(
        np.float32
    )
    with start_in_background(
        registry,
        policy=BatchPolicy(max_batch_size=8, max_wait_ms=2, max_queue=64),
        workers=2,
    ) as handle:
        assert check_bit_identity(
            handle.base_url, served.name, served.plan, samples, concurrency=4
        )
        stats = run_load(
            handle.base_url,
            served.name,
            samples,
            concurrency=4,
            total_requests=24,
            warmup_requests=2,
        )
    assert stats["completed"] == 24
    assert stats["failed_by_status"] == {}
    assert stats["throughput_rps"] > 0
    assert stats["p50_ms"] > 0 and stats["p99_ms"] >= stats["p50_ms"]
    assert stats["batches"] > 0
    assert 1.0 <= stats["mean_batch_size"] <= 8.0
