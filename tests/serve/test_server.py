"""End-to-end HTTP serving tests over a live asyncio server.

One module-scoped server (LeNet F2 int8, both backends) backs the happy
paths; failure-mode tests spin dedicated servers with stub models so
saturation and kernel failures are deterministic.  The concurrency test
doubles as the CI smoke contract: N parallel clients, responses
bit-identical to direct ``CompiledPlan.run``, every response within its
deadline.
"""

import threading
import time

import numpy as np
import pytest

from repro.engine import PlanCache
from repro.serve import (
    BatchPolicy,
    ModelRegistry,
    ServeClient,
    ServeError,
    start_in_background,
    wait_until_ready,
)
from repro.serve.registry import ModelSpec, ServedModel

MODEL = "lenet-F2-int8"
REF_MODEL = "lenet-F2-int8@reference"


@pytest.fixture(scope="module")
def server():
    registry = ModelRegistry(cache=PlanCache())
    registry.load(MODEL)
    registry.load(REF_MODEL)
    handle = start_in_background(
        registry,
        policy=BatchPolicy(max_batch_size=8, max_wait_ms=2.0, max_queue=64),
        executor_threads=2,
    )
    try:
        wait_until_ready(handle.base_url)
        yield handle, registry
    finally:
        handle.stop()


@pytest.fixture
def client(server):
    handle, _ = server
    with ServeClient(handle.base_url) as c:
        yield c


def _samples(n):
    return np.random.default_rng(3).standard_normal((n, 1, 28, 28)).astype(
        np.float32
    )


class TestEndpoints:
    def test_healthz(self, client):
        health = client.healthz()
        assert health["status"] == "ok"
        assert MODEL in health["models"]

    def test_models_lists_specs_and_policy(self, client):
        info = client.models()
        names = {m["name"] for m in info["models"]}
        assert {MODEL, REF_MODEL} <= names
        entry = next(m for m in info["models"] if m["name"] == MODEL)
        assert entry["sample_shape"] == [1, 28, 28]
        assert entry["plan_steps"] > 0
        assert info["policy"]["max_batch_size"] == 8

    def test_metrics_shape(self, client):
        client.predict(_samples(1)[0], model=MODEL)
        metrics = client.metrics()
        assert metrics["uptime_s"] > 0
        assert "plan_cache" in metrics and "hit_rate" in metrics["plan_cache"]
        model_metrics = metrics["models"][MODEL]
        for key in (
            "requests_total",
            "responses_total",
            "rejected_total",
            "deadline_exceeded_total",
            "batches_total",
            "batch_size_hist",
            "latency",
            "queue",
            "run",
        ):
            assert key in model_metrics
        assert model_metrics["responses_total"] >= 1
        assert model_metrics["latency"]["p99_ms"] >= model_metrics["latency"]["p50_ms"]

    def test_unknown_route_404(self, client):
        with pytest.raises(ServeError) as excinfo:
            client.request("GET", "/nope")
        assert excinfo.value.status == 404

    def test_unknown_model_404(self, client):
        with pytest.raises(ServeError) as excinfo:
            client.predict_raw(_samples(1)[0], model="resnet18-w0.25-F4-int8")
        assert excinfo.value.status == 404

    @pytest.mark.parametrize(
        "payload",
        [
            {"model": MODEL},  # no input
            {"model": MODEL, "input": [[1.0, 2.0]]},  # wrong shape
            {"model": MODEL, "inputs": []},  # empty batch
            {"model": MODEL, "input": "zzz", "encoding": "b64"},  # bad b64
            {"model": MODEL, "input": [[0.0]], "encoding": "nope"},
        ],
    )
    def test_bad_requests_400(self, client, payload):
        with pytest.raises(ServeError) as excinfo:
            client.request("POST", "/predict", payload)
        assert excinfo.value.status == 400

    def test_model_optional_when_ambiguous_is_400(self, client):
        with pytest.raises(ServeError) as excinfo:
            client.request("POST", "/predict", {"input": _samples(1)[0].tolist()})
        assert excinfo.value.status == 400  # two models are loaded


class TestPredictions:
    def test_single_predict_matches_plan_bitwise(self, server, client):
        _, registry = server
        x = _samples(1)[0]
        for name in (MODEL, REF_MODEL):
            out = client.predict(x, model=name)
            expected = registry.get(name).plan.run(x[None])[0]
            np.testing.assert_array_equal(out, expected)

    def test_b64_encoding_matches_json(self, client):
        """Bit-identity of the zero-copy b64 path against the JSON path,
        in both directions: the request decodes to the same engine input
        and the b64 *response* decodes to the same float32 output."""
        x = _samples(1)[0]
        json_out = client.predict(x, model=MODEL, encoding="json")
        b64_out = client.predict(x, model=MODEL, encoding="b64")
        np.testing.assert_array_equal(json_out, b64_out)

    def test_b64_response_carries_raw_float32(self, client):
        import base64

        x = _samples(1)[0]
        raw = client.predict_raw(x, model=MODEL, encoding="b64")
        assert raw["encoding"] == "b64"
        decoded = np.frombuffer(
            base64.b64decode(raw["output"]), dtype="<f4"
        ).reshape(raw["output_shape"])
        json_out = client.predict(x, model=MODEL, encoding="json")
        np.testing.assert_array_equal(decoded, json_out)

    def test_b64_multi_sample_matches_json(self, server, client):
        _, registry = server
        xs = _samples(4)
        json_outs, _ = client.predict_many(list(xs), model=REF_MODEL)
        b64_outs, _ = client.predict_many(list(xs), model=REF_MODEL, encoding="b64")
        plan = registry.get(REF_MODEL).plan
        for x, j, b in zip(xs, json_outs, b64_outs):
            np.testing.assert_array_equal(j, b)
            np.testing.assert_array_equal(b, plan.run(x[None])[0])

    def test_b64_request_path_is_zero_copy(self, server):
        """The decoded wire bytes flow into the batcher without a copy:
        frombuffer → reshape → validate_input all stay views."""
        from repro.serve.server import InferenceServer

        _, registry = server
        served = registry.get(MODEL)
        x = _samples(1)[0]
        wire = ServeClient.encode_sample(x, "b64")
        decoded = InferenceServer._decode_b64(wire, served)
        validated = served.validate_input(decoded)
        assert np.shares_memory(decoded, validated)
        np.testing.assert_array_equal(validated[0], x)

    def test_multi_sample_request(self, server, client):
        # Reference backend: per-sample results are exact regardless of
        # how the server coalesced the five samples.
        _, registry = server
        xs = _samples(5)
        outputs, meta = client.predict_many(list(xs), model=REF_MODEL)
        plan = registry.get(REF_MODEL).plan
        assert len(outputs) == 5 and len(meta) == 5
        for x, out in zip(xs, outputs):
            np.testing.assert_array_equal(out, plan.run(x[None])[0])
        assert all(m["batch_size"] >= 1 for m in meta)

    def test_threaded_server_bit_identical_reference(self):
        """A server running with engine threads per batch must answer
        exactly like direct serial plan.run on the reference backend —
        the scheduler's bit-identity contract carried over HTTP."""
        registry = ModelRegistry(cache=PlanCache())
        registry.load(REF_MODEL)
        handle = start_in_background(
            registry,
            policy=BatchPolicy(max_batch_size=8, max_wait_ms=2.0),
            executor_threads=2,
            threads=2,
        )
        try:
            wait_until_ready(handle.base_url)
            plan = registry.get(REF_MODEL).plan
            with ServeClient(handle.base_url) as c:
                metrics = c.metrics()
                assert metrics["engine_threads"] == 2
                assert "plan_memory" in metrics
                for x in _samples(3):
                    out = c.predict(x, model=REF_MODEL, encoding="b64")
                    np.testing.assert_array_equal(out, plan.run(x[None])[0])
        finally:
            handle.stop()

    def test_concurrent_clients_identical_and_within_deadline(self, server):
        """The CI smoke contract: 16 threads × 4 requests, bit-identical
        to direct plan.run on both backends, p99 within the deadline."""
        handle, registry = server
        xs = _samples(8)
        deadline_ms = 5000.0
        errors, latencies = [], []
        lock = threading.Lock()

        def worker(worker_id: int):
            # Bit-identity under arbitrary coalescing is the reference
            # backend's contract (fast-backend GEMM blocking can round
            # differently per batch shape), so all workers pin it.
            name = REF_MODEL
            plan = registry.get(name).plan
            try:
                with ServeClient(handle.base_url) as c:
                    for j in range(4):
                        x = xs[(worker_id + j) % len(xs)]
                        t0 = time.perf_counter()
                        out = c.predict(x, model=name, deadline_ms=deadline_ms)
                        dt_ms = (time.perf_counter() - t0) * 1e3
                        expected = plan.run(x[None])[0]
                        if not np.array_equal(out, expected):
                            raise AssertionError(f"mismatch on {name}")
                        with lock:
                            latencies.append(dt_ms)
            except Exception as exc:  # noqa: BLE001 — reported below
                with lock:
                    errors.append(exc)

        threads = [threading.Thread(target=worker, args=(i,)) for i in range(16)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not errors, errors
        assert len(latencies) == 64
        p99 = float(np.percentile(latencies, 99))
        assert p99 < deadline_ms

    def test_responses_report_batching_metadata(self, client):
        response = client.predict_raw(_samples(1)[0], model=MODEL)
        assert response["batch_size"] >= 1
        assert response["queue_ms"] >= 0
        assert response["run_ms"] > 0


class TestFailureModes:
    def _stub_registry(self, delay_s: float):
        class SlowPlan:
            backend = "fast"

            def run(self, x):
                time.sleep(delay_s)
                return np.zeros((x.shape[0], 4), dtype=np.float32)

        registry = ModelRegistry(cache=PlanCache())
        registry.add(
            ServedModel(
                spec=ModelSpec.parse("lenet-F2-fp32"),
                plan=SlowPlan(),
                sample_shape=(1, 28, 28),
            )
        )
        return registry

    def test_saturated_queue_returns_429_with_retry_after(self):
        registry = self._stub_registry(delay_s=0.2)
        with start_in_background(
            registry,
            policy=BatchPolicy(max_batch_size=1, max_wait_ms=0, max_queue=1),
            executor_threads=1,
        ) as handle:
            statuses, lock = [], threading.Lock()
            x = np.zeros((1, 28, 28), dtype=np.float32)

            def fire():
                try:
                    with ServeClient(handle.base_url) as c:
                        c.predict(x)
                except ServeError as exc:
                    with lock:
                        statuses.append(exc.status)

            threads = [threading.Thread(target=fire) for _ in range(8)]
            for t in threads:
                t.start()
            for t in threads:
                t.join()
            assert 429 in statuses
            with ServeClient(handle.base_url) as c:
                assert c.metrics()["models"]["lenet-F2-fp32"]["rejected_total"] > 0

    def test_expired_deadline_returns_504(self):
        registry = self._stub_registry(delay_s=0.15)
        with start_in_background(
            registry,
            policy=BatchPolicy(max_batch_size=1, max_wait_ms=0, max_queue=16),
            executor_threads=1,
        ) as handle:
            x = np.zeros((1, 28, 28), dtype=np.float32)
            statuses, lock = [], threading.Lock()

            def fire():
                try:
                    with ServeClient(handle.base_url) as c:
                        c.predict(x, deadline_ms=50)
                except ServeError as exc:
                    with lock:
                        statuses.append(exc.status)

            # First request occupies the worker ~150 ms; followers with
            # 50 ms deadlines expire in the queue.
            threads = [threading.Thread(target=fire) for _ in range(4)]
            for t in threads:
                t.start()
            for t in threads:
                t.join()
            assert 504 in statuses

    def test_kernel_failure_returns_500(self):
        class BrokenPlan:
            backend = "fast"

            def run(self, x):
                raise ValueError("bad kernel")

        registry = ModelRegistry(cache=PlanCache())
        registry.add(
            ServedModel(
                spec=ModelSpec.parse("lenet-F2-fp32"),
                plan=BrokenPlan(),
                sample_shape=(1, 28, 28),
            )
        )
        with start_in_background(registry, executor_threads=1) as handle:
            with ServeClient(handle.base_url) as c:
                with pytest.raises(ServeError) as excinfo:
                    c.predict(np.zeros((1, 28, 28), dtype=np.float32))
                assert excinfo.value.status == 500
