"""kill -9 crash-recovery smoke test (ISSUE 9 acceptance drill).

Reuses the benchmark's :func:`_crash_recovery_drill` so the test and the
``selfheal_goodput`` BENCH entry exercise the *same* code path: boot the
real CLI server with ``--state-dir`` and worker processes, hot-deploy a
second artifact over HTTP (so it exists only in the journal), SIGKILL
the whole process group mid-flight, restart with the original flags, and
require every model back at its pre-kill content-hash version with
bit-identical predictions.

Subprocess boots compile a LeNet plan per leg, so this is marked
``slow``-adjacent but stays in tier 1: LeNet keeps it to a few seconds.
"""

import dataclasses

import numpy as np
import pytest

from repro.engine.artifact import save_plan
from repro.engine.cache import PlanCache
from repro.serve.loadgen import _crash_recovery_drill
from repro.serve.registry import ModelSpec, compile_served


@pytest.fixture(scope="module")
def artifacts(tmp_path_factory):
    """Two artifacts of the same model with different content hashes."""
    tmp = tmp_path_factory.mktemp("selfheal-smoke")
    spec = ModelSpec.parse("lenet-F2-fp32@reference")
    paths = []
    for tag, seed in (("v1", spec.seed), ("v2", spec.seed + 1)):
        varied = dataclasses.replace(spec, seed=seed)
        served = compile_served(varied, cache=PlanCache())
        path = str(tmp / f"lenet-{tag}.rpln")
        save_plan(
            served.plan, path, input_shape=(1,) + spec.sample_shape,
            extra={"model": spec.name, "seed": seed},
        )
        paths.append(path)
    return spec.name, paths[0], paths[1]


def test_kill9_restart_recovers_journaled_deploy(artifacts, tmp_path):
    name, artifact_v1, artifact_v2 = artifacts
    sample = np.zeros((1, 1, 28, 28), dtype=np.float32)
    entry = _crash_recovery_drill(
        artifact_v1,
        artifact_v2,
        name,
        str(tmp_path / "state"),
        workers=1,
        sample=sample,
        verbose=False,
    )
    assert entry["versions_match"], entry
    assert entry["response_identical"], entry
    assert entry["recovered"], entry
    # The hot deploy lived only in the journal; the restart must have
    # replayed it rather than re-serving the boot-flag artifact.
    assert name in entry["deploys_restored"]
    assert entry["models_after"][name] == entry["deployed_version"]
    assert entry["journal_records_replayed"] >= 1
