"""Client-side resilience (ISSUE 8): typed timeout/connection errors,
``Retry-After``-aware retries with jittered backoff, and the retry
budget that fails fast instead of amplifying an overload.

The server side here is a scriptable raw-socket stub, so every scenario
is deterministic: a response script like ``[429+Retry-After, 200]`` or
``["hang"]`` exercises exactly one client behaviour with no real model
or batcher in the loop.
"""

import json
import random
import re
import socket
import threading
import time

import pytest

from repro.serve import (
    RetryPolicy,
    ServeClient,
    ServeClientError,
    ServeConnectionError,
    ServeError,
    ServeTimeout,
)
from repro.serve.client import _parse_retry_after


def _http(status, body_obj, extra_headers=()):
    body = json.dumps(body_obj).encode()
    head = [
        f"HTTP/1.1 {status} Stub",
        "Content-Type: application/json",
        f"Content-Length: {len(body)}",
        *extra_headers,
    ]
    return ("\r\n".join(head) + "\r\n\r\n").encode() + body


class StubServer:
    """One scripted action per request: raw bytes to send, ``"drop"``
    (read the request, close the connection), or ``"hang"`` (read the
    request, never reply).  After the script runs out every request gets
    a plain 200."""

    def __init__(self, actions=()):
        self._actions = list(actions)
        self._lock = threading.Lock()
        self.requests_seen = 0
        self._stop = threading.Event()
        self._sock = socket.socket()
        self._sock.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        self._sock.bind(("127.0.0.1", 0))
        self._sock.listen(8)
        self.port = self._sock.getsockname()[1]
        self._thread = threading.Thread(target=self._serve, daemon=True)
        self._thread.start()

    @property
    def base_url(self):
        return f"http://127.0.0.1:{self.port}"

    def stop(self):
        self._stop.set()
        self._sock.close()
        self._thread.join(timeout=5.0)

    def __enter__(self):
        return self

    def __exit__(self, *exc_info):
        self.stop()

    def _next_action(self):
        with self._lock:
            self.requests_seen += 1
            return self._actions.pop(0) if self._actions else None

    def _serve(self):
        self._sock.settimeout(0.1)
        while not self._stop.is_set():
            try:
                conn, _ = self._sock.accept()
            except socket.timeout:
                continue
            except OSError:
                return
            threading.Thread(
                target=self._handle, args=(conn,), daemon=True
            ).start()

    def _handle(self, conn):
        try:
            while not self._stop.is_set():
                if not self._read_request(conn):
                    return
                action = self._next_action()
                if action == "drop":
                    return
                if action == "hang":
                    self._stop.wait(30.0)
                    return
                conn.sendall(
                    action if action is not None else _http(200, {"ok": True})
                )
        except OSError:
            pass
        finally:
            conn.close()

    def _read_request(self, conn):
        conn.settimeout(10.0)
        data = b""
        while b"\r\n\r\n" not in data:
            try:
                chunk = conn.recv(4096)
            except OSError:
                return False
            if not chunk:
                return False
            data += chunk
        head, _, rest = data.partition(b"\r\n\r\n")
        match = re.search(rb"content-length:\s*(\d+)", head, re.I)
        need = int(match.group(1)) if match else 0
        while len(rest) < need:
            chunk = conn.recv(4096)
            if not chunk:
                return False
            rest += chunk
        return True


class TestTypedFailures:
    def test_refused_connection_is_typed_and_single_raise(self):
        probe = socket.socket()
        probe.bind(("127.0.0.1", 0))
        port = probe.getsockname()[1]
        probe.close()
        with ServeClient(f"http://127.0.0.1:{port}", timeout=2.0) as client:
            with pytest.raises(ServeConnectionError):
                client.healthz()

    def test_read_timeout_is_typed_with_phase(self):
        with StubServer(["hang"]) as server:
            with ServeClient(
                server.base_url, timeout=5.0, read_timeout=0.2
            ) as client:
                start = time.monotonic()
                with pytest.raises(ServeTimeout) as info:
                    client.healthz()
                assert time.monotonic() - start < 3.0
            assert info.value.phase == "read"
            assert info.value.timeout_s == pytest.approx(0.2)

    def test_all_failures_share_one_base_class(self):
        for exc_type in (ServeError, ServeTimeout, ServeConnectionError):
            assert issubclass(exc_type, ServeClientError)

    def test_no_retry_by_default(self):
        """retry=None (the default) keeps every failure a single raise —
        exactly one request on the wire."""
        with StubServer(
            [_http(429, {"error": "shed"}, ["Retry-After: 0.01"])]
        ) as server:
            with ServeClient(server.base_url) as client:
                with pytest.raises(ServeError) as info:
                    client.healthz()
            assert info.value.status == 429
            assert info.value.retry_after == pytest.approx(0.01)
            assert server.requests_seen == 1


class TestRetryPolicy:
    def test_429_retried_honouring_retry_after(self):
        """The server's Retry-After hint wins when it exceeds the
        computed backoff — the client must not come back early."""
        with StubServer(
            [_http(429, {"error": "shed"}, ["Retry-After: 0.2"])]
        ) as server:
            policy = RetryPolicy(
                max_attempts=3, base_backoff_s=0.001, jitter=0.0
            )
            with ServeClient(
                server.base_url, retry=policy, retry_seed=0
            ) as client:
                start = time.monotonic()
                assert client.healthz() == {"ok": True}
                assert time.monotonic() - start >= 0.2
            assert server.requests_seen == 2

    def test_503_retried_as_transient(self):
        with StubServer(
            [_http(503, {"error": "draining"}, ["Retry-After: 0.01"])]
        ) as server:
            policy = RetryPolicy(max_attempts=2, base_backoff_s=0.001)
            with ServeClient(
                server.base_url, retry=policy, retry_seed=0
            ) as client:
                assert client.healthz() == {"ok": True}
            assert server.requests_seen == 2

    def test_other_statuses_never_retried(self):
        with StubServer([_http(400, {"error": "bad request"})]) as server:
            policy = RetryPolicy(max_attempts=5, base_backoff_s=0.001)
            with ServeClient(server.base_url, retry=policy) as client:
                with pytest.raises(ServeError) as info:
                    client.healthz()
            assert info.value.status == 400
            assert server.requests_seen == 1

    def test_dropped_connections_retried(self):
        with StubServer(["drop", "drop", "drop"]) as server:
            policy = RetryPolicy(max_attempts=3, base_backoff_s=0.001)
            with ServeClient(
                server.base_url, retry=policy, retry_seed=0
            ) as client:
                assert client.healthz() == {"ok": True}
            assert server.requests_seen >= 3

    def test_attempts_exhausted_reraises_last_error(self):
        responses = [
            _http(429, {"error": "shed"}, ["Retry-After: 0.01"])
            for _ in range(3)
        ]
        with StubServer(responses) as server:
            policy = RetryPolicy(max_attempts=3, base_backoff_s=0.001)
            with ServeClient(
                server.base_url, retry=policy, retry_seed=0
            ) as client:
                with pytest.raises(ServeError) as info:
                    client.healthz()
            assert info.value.status == 429
            assert server.requests_seen == 3

    def test_budget_exhaustion_fails_fast(self):
        """A huge Retry-After against a tiny budget must fail in
        milliseconds, not sleep for the server's suggested 5 s — the
        budget exists so retries cannot amplify an overload."""
        with StubServer(
            [_http(429, {"error": "shed"}, ["Retry-After: 5.0"])]
        ) as server:
            policy = RetryPolicy(
                max_attempts=5, base_backoff_s=0.001, budget_s=0.05
            )
            with ServeClient(
                server.base_url, retry=policy, retry_seed=0
            ) as client:
                start = time.monotonic()
                with pytest.raises(ServeError) as info:
                    client.healthz()
                assert time.monotonic() - start < 1.0
            assert info.value.status == 429
            assert server.requests_seen == 1  # failed fast, no retry

    def test_successes_refill_the_budget_up_to_cap(self):
        with StubServer() as server:
            policy = RetryPolicy(budget_s=0.2, success_refill_s=0.15)
            with ServeClient(
                server.base_url, retry=policy, retry_seed=0
            ) as client:
                client._retry_budget_s = 0.0  # pretend it was spent
                client.healthz()
                assert client._retry_budget_s == pytest.approx(0.15)
                client.healthz()  # refill is capped at budget_s
                assert client._retry_budget_s == pytest.approx(0.2)


class TestPolicyMaths:
    def test_backoff_is_capped_exponential(self):
        policy = RetryPolicy(base_backoff_s=0.1, max_backoff_s=0.5, jitter=0.0)
        rng = random.Random(0)
        delays = [policy.backoff_s(a, rng) for a in range(5)]
        assert delays == pytest.approx([0.1, 0.2, 0.4, 0.5, 0.5])

    def test_jitter_only_shrinks_and_is_seeded(self):
        policy = RetryPolicy(base_backoff_s=0.1, jitter=0.5)
        a = [policy.backoff_s(0, random.Random(7)) for _ in range(8)]
        b = [policy.backoff_s(0, random.Random(7)) for _ in range(8)]
        assert a == b  # same seed, same schedule
        assert all(0.05 <= d <= 0.1 for d in a)

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"max_attempts": 0},
            {"jitter": 1.5},
            {"jitter": -0.1},
            {"base_backoff_s": -1.0},
        ],
    )
    def test_invalid_policies_rejected(self, kwargs):
        with pytest.raises(ValueError):
            RetryPolicy(**kwargs)

    @pytest.mark.parametrize(
        "header,expected",
        [
            (None, None),
            ("1.5", 1.5),
            ("0", 0.0),
            ("-2", 0.0),  # negative delta clamps to "retry immediately"
            ("soon", None),
            ("", None),
        ],
    )
    def test_parse_retry_after(self, header, expected):
        assert _parse_retry_after(header) == expected

    def test_parse_retry_after_http_date(self):
        # RFC 9110 HTTP-date form, parsed against an injected clock: the
        # header instant is 2026-10-21 07:28:00 UTC == 1792567680.
        when = 1792567680.0
        header = "Wed, 21 Oct 2026 07:28:00 GMT"
        assert _parse_retry_after(header, now=when - 30.0) == pytest.approx(30.0)
        # a date in the past clamps to 0, never a negative sleep
        assert _parse_retry_after(header, now=when + 600.0) == 0.0
        # legacy asctime form (no timezone) is treated as UTC per RFC 9110
        assert _parse_retry_after(
            "Wed Oct 21 07:28:00 2026", now=when - 5.0
        ) == pytest.approx(5.0)

    def test_parse_retry_after_uses_wall_clock_by_default(self):
        import email.utils as eut

        header = eut.formatdate(time.time() + 42.0, usegmt=True)
        value = _parse_retry_after(header)
        assert value is not None and 40.0 <= value <= 43.0
