"""Self-healing control plane (ISSUE 9): circuit breakers, replica
autoscaler, brownout ladder, crash-consistent journal, and the server
integration that ties them together.

Every control-plane rule is tested against an injectable FakeClock —
whole incident timelines (error bursts, cooldowns, flap storms, probe
cycles) run without a single sleep.  The server-level tests then verify
the HTTP surface: 503 + ``Retry-After`` + ``reason: circuit_open``
fail-fast, the typed :class:`ServeCircuitOpen` client behaviour,
``X-Served-Variant`` stamping, and journal replay across an in-process
restart (the kill -9 subprocess drill lives in
``test_selfheal_smoke.py``).
"""

import json
import os
import time

import numpy as np
import pytest

from repro.serve import ModelRegistry, ServeClient, start_in_background
from repro.serve.autoscale import (
    AutoscalePolicy,
    ModelSignals,
    ReplicaAutoscaler,
)
from repro.serve.client import RetryPolicy, ServeCircuitOpen, ServeError
from repro.serve.registry import ModelSpec, ServedModel
from repro.serve.selfheal import (
    CIRCUIT_CLOSED,
    CIRCUIT_HALF_OPEN,
    CIRCUIT_OPEN,
    BrownoutLadder,
    CircuitBreaker,
    JournalState,
    SelfHealController,
    SelfHealPolicy,
    ServeConfigError,
    StateJournal,
    parse_ladder_spec,
    validate_topology,
)
from repro.serve.server import InferenceServer

NAME = "lenet-F2-fp32"
VARIANT = "lenet-F2-fp32@turbo"


class FakeClock:
    def __init__(self):
        self.now = 1000.0

    def __call__(self):
        return self.now

    def advance(self, s):
        self.now += s


def _stub_served(name=NAME, value=1.0, fail=None, version="v1"):
    """A duck-typed served model; ``fail`` is a mutable dict gate."""
    fail = fail if fail is not None else {"on": False}

    class StubPlan:
        backend = "fast"

        def run(self, x):
            if fail["on"]:
                raise RuntimeError("injected model failure")
            return np.full((x.shape[0], 4), value, dtype=np.float32)

    return ServedModel(
        spec=ModelSpec.parse(name),
        plan=StubPlan(),
        sample_shape=(1, 28, 28),
        version=version,
    )


# --------------------------------------------------------------------------
# Circuit breaker
# --------------------------------------------------------------------------

class TestCircuitBreaker:
    def test_validation(self):
        with pytest.raises(ValueError, match="threshold"):
            CircuitBreaker(threshold=0)
        with pytest.raises(ValueError, match="open_s"):
            CircuitBreaker(open_s=0.0)

    def test_closed_admits(self):
        breaker = CircuitBreaker(clock=FakeClock())
        assert breaker.state == CIRCUIT_CLOSED
        assert breaker.allow() == (True, 0.0)

    def test_success_resets_consecutive_count(self):
        breaker = CircuitBreaker(threshold=3, clock=FakeClock())
        breaker.record_error()
        breaker.record_error()
        breaker.record_success()  # streak broken
        breaker.record_error()
        breaker.record_error()
        assert breaker.state == CIRCUIT_CLOSED
        breaker.record_error()  # third consecutive
        assert breaker.state == CIRCUIT_OPEN
        assert breaker.opens_total == 1

    def test_open_refuses_with_remaining_holdoff(self):
        clock = FakeClock()
        breaker = CircuitBreaker(threshold=1, open_s=2.0, clock=clock)
        breaker.record_error()
        clock.advance(0.5)
        allowed, retry_after = breaker.allow()
        assert not allowed
        assert retry_after == pytest.approx(1.5)

    def test_open_decays_to_half_open_then_refuses_clients(self):
        clock = FakeClock()
        breaker = CircuitBreaker(threshold=1, open_s=2.0, clock=clock)
        breaker.record_error()
        clock.advance(2.0)
        assert breaker.state == CIRCUIT_HALF_OPEN
        # Half-open still refuses real traffic: only a probe may test.
        allowed, retry_after = breaker.allow()
        assert not allowed and retry_after == pytest.approx(2.0)

    def test_probe_cycle_closes_or_reopens(self):
        clock = FakeClock()
        breaker = CircuitBreaker(threshold=1, open_s=1.0, clock=clock)
        breaker.record_error()
        assert not breaker.ready_for_probe()  # still open
        clock.advance(1.0)
        assert breaker.ready_for_probe()
        breaker.begin_probe()
        assert not breaker.ready_for_probe()  # one probe at a time
        breaker.probe_result(False)
        assert breaker.state == CIRCUIT_OPEN
        assert breaker.opens_total == 2
        clock.advance(1.0)
        breaker.begin_probe()
        breaker.probe_result(True)
        assert breaker.state == CIRCUIT_CLOSED
        assert breaker.closes_total == 1
        assert breaker.allow() == (True, 0.0)

    def test_inline_success_in_half_open_closes(self):
        clock = FakeClock()
        breaker = CircuitBreaker(threshold=1, open_s=1.0, clock=clock)
        breaker.record_error()
        clock.advance(1.0)
        assert breaker.state == CIRCUIT_HALF_OPEN  # observe the decay
        breaker.record_success()
        assert breaker.state == CIRCUIT_CLOSED


# --------------------------------------------------------------------------
# Brownout ladder
# --------------------------------------------------------------------------

class TestParseLadderSpec:
    def test_single_and_multi_rung(self):
        assert parse_ladder_spec("m=v1") == ("m", ["v1"])
        assert parse_ladder_spec(" m = v1 > v2 ") == ("m", ["v1", "v2"])

    @pytest.mark.parametrize(
        "text", ["no-equals", "=v1", "m=", "m=v1>v1", "m=m"]
    )
    def test_malformed_specs_raise_typed_error(self, text):
        with pytest.raises(ServeConfigError):
            parse_ladder_spec(text)


class TestBrownoutLadder:
    def test_empty_fallbacks_rejected(self):
        with pytest.raises(ServeConfigError):
            BrownoutLadder("m", [])

    def test_steps_down_after_sustained_pressure(self):
        clock = FakeClock()
        ladder = BrownoutLadder(
            "m", ["v1", "v2"], down_after_ticks=3, step_cooldown_s=5.0,
            clock=clock,
        )
        assert ladder.variant == "m"
        assert ladder.observe(True) is None
        assert ladder.observe(True) is None
        assert ladder.observe(True) == ("down", 1)
        assert ladder.variant == "v1"
        assert ladder.steps_down_total == 1

    def test_step_cooldown_blocks_consecutive_moves(self):
        clock = FakeClock()
        ladder = BrownoutLadder(
            "m", ["v1", "v2"], down_after_ticks=1, step_cooldown_s=5.0,
            clock=clock,
        )
        assert ladder.observe(True) == ("down", 1)
        assert ladder.observe(True) is None  # cooling down
        clock.advance(5.0)
        assert ladder.observe(True) == ("down", 2)
        assert ladder.variant == "v2"
        clock.advance(5.0)
        assert ladder.observe(True) is None  # bottom rung

    def test_calm_steps_back_up(self):
        clock = FakeClock()
        ladder = BrownoutLadder(
            "m", ["v1"], down_after_ticks=1, up_after_ticks=3,
            step_cooldown_s=1.0, clock=clock,
        )
        assert ladder.observe(True) == ("down", 1)
        clock.advance(1.0)
        assert ladder.observe(False) is None
        assert ladder.observe(False) is None
        assert ladder.observe(False) == ("up", 0)
        assert ladder.variant == "m"
        assert ladder.steps_up_total == 1
        # Already at full quality: calm never over-promotes.
        clock.advance(1.0)
        for _ in range(5):
            assert ladder.observe(False) is None

    def test_set_position_clamps(self):
        ladder = BrownoutLadder("m", ["v1"], clock=FakeClock())
        ladder.set_position(99)
        assert ladder.position == 1
        ladder.set_position(-3)
        assert ladder.position == 0


# --------------------------------------------------------------------------
# State journal
# --------------------------------------------------------------------------

class TestStateJournal:
    def test_append_replay_roundtrip(self, tmp_path):
        journal = StateJournal(str(tmp_path / "state"))
        records = [
            {"event": "deploy", "model": "m", "artifact": "/a", "version": "h1"},
            {"event": "scale", "model": "m", "replicas": 3},
            {"event": "ladder", "model": "m", "position": 1, "variant": "v"},
        ]
        for record in records:
            journal.append(record)
        journal.close()
        assert journal.appends_total == 3
        fresh = StateJournal(str(tmp_path / "state"))
        assert fresh.replay() == records
        assert fresh.torn_records == 0

    def test_torn_tail_truncates_silently(self, tmp_path):
        journal = StateJournal(str(tmp_path / "state"))
        journal.append({"event": "scale", "model": "a", "replicas": 2})
        journal.append({"event": "scale", "model": "b", "replicas": 3})
        journal.close()
        # Simulate kill -9 mid-append: chop bytes off the final record.
        raw = open(journal.path, "rb").read()
        with open(journal.path, "wb") as fh:
            fh.write(raw[:-7])
        replayed = journal.replay()
        assert replayed == [{"event": "scale", "model": "a", "replicas": 2}]
        assert journal.torn_records == 1
        # The next append after replay keeps the journal usable.
        journal.append({"event": "scale", "model": "c", "replicas": 1})
        journal.close()

    def test_corrupt_record_stops_replay(self, tmp_path):
        journal = StateJournal(str(tmp_path / "state"))
        journal.append({"event": "scale", "model": "a", "replicas": 2})
        journal.append({"event": "scale", "model": "b", "replicas": 3})
        journal.close()
        lines = open(journal.path, "rb").read().split(b"\n")
        lines[1] = b"deadbeef " + lines[1].split(b" ", 1)[1]  # CRC mismatch
        with open(journal.path, "wb") as fh:
            fh.write(b"\n".join(lines))
        assert journal.replay() == []  # nothing after corruption is trusted
        assert journal.torn_records == 1

    def test_missing_header_distrusts_file(self, tmp_path):
        journal = StateJournal(str(tmp_path / "state"))
        with open(journal.path, "w") as fh:
            fh.write("not a journal\n")
        assert journal.replay() == []

    def test_compact_rewrites_atomically(self, tmp_path):
        journal = StateJournal(str(tmp_path / "state"))
        for i in range(5):
            journal.append({"event": "scale", "model": "m", "replicas": i})
        journal.compact([{"event": "scale", "model": "m", "replicas": 4}])
        assert journal.replay() == [
            {"event": "scale", "model": "m", "replicas": 4}
        ]
        assert not os.path.exists(journal.path + ".tmp")

    def test_state_dir_pointing_at_file_rejected(self, tmp_path):
        target = tmp_path / "not-a-dir"
        target.write_text("x")
        with pytest.raises(ServeConfigError, match="not a directory"):
            StateJournal(str(target))


class TestJournalState:
    def test_last_writer_wins_and_remove_clears(self):
        state = JournalState.from_records([
            {"event": "deploy", "model": "m", "artifact": "/a", "version": "h1"},
            {"event": "scale", "model": "m", "replicas": 2},
            {"event": "scale", "model": "m", "replicas": 4},
            {"event": "ladder", "model": "m", "position": 2, "variant": "v2"},
            {"event": "ladder", "model": "m", "position": 1, "variant": "v1"},
            {"event": "deploy", "model": "m", "artifact": "/b", "version": "h2"},
            {"event": "deploy", "model": "gone", "artifact": "/c", "version": "h3"},
            {"event": "remove", "model": "gone"},
        ])
        assert state.deploys == {"m": {"artifact": "/b", "version": "h2"}}
        assert state.replicas == {"m": 4}
        assert state.ladders == {"m": {"position": 1, "variant": "v1"}}

    def test_malformed_records_skipped(self):
        state = JournalState.from_records([
            {"event": "scale", "replicas": 2},  # no model
            {"event": "scale", "model": "m", "replicas": "lots"},
            {"event": "ladder", "model": "m"},  # no position
            {"event": "unknown", "model": "m"},
        ])
        assert state.deploys == {} and state.replicas == {} and state.ladders == {}

    def test_to_records_roundtrip(self):
        state = JournalState(
            deploys={"m": {"artifact": "/a", "version": "h"}},
            replicas={"m": 3},
            ladders={"m": {"position": 1, "variant": "v"}},
        )
        assert JournalState.from_records(state.to_records()) == state


# --------------------------------------------------------------------------
# Replica autoscaler
# --------------------------------------------------------------------------

def _signals(fill=0.0, shed=0, miss=0, replicas=1):
    return ModelSignals(
        queue_fill=fill, shed_total=shed, deadline_exceeded_total=miss,
        replicas=replicas,
    )


class TestAutoscalePolicy:
    def test_validation(self):
        with pytest.raises(ValueError):
            AutoscalePolicy(min_replicas=0)
        with pytest.raises(ValueError):
            AutoscalePolicy(min_replicas=3, max_replicas=2)
        with pytest.raises(ValueError):
            AutoscalePolicy(up_queue_fill=0.2, down_queue_fill=0.4)


class TestReplicaAutoscaler:
    def _scaler(self, clock, **kwargs):
        defaults = dict(
            min_replicas=1, max_replicas=3, up_queue_fill=0.5,
            down_queue_fill=0.1, up_cooldown_s=2.0, down_cooldown_s=5.0,
            down_stable_ticks=2,
        )
        defaults.update(kwargs)
        return ReplicaAutoscaler(AutoscalePolicy(**defaults), clock)

    def test_first_sighting_primes_instead_of_reacting(self):
        scaler = self._scaler(FakeClock())
        # Counter history predating the autoscaler must not trigger.
        assert scaler.observe("m", _signals(fill=1.0, shed=999)) is None
        decision = scaler.observe("m", _signals(fill=1.0, shed=999))
        assert decision is not None and decision.direction == "up"

    def test_queue_fill_scales_up_one_step(self):
        clock = FakeClock()
        scaler = self._scaler(clock)
        scaler.observe("m", _signals())
        decision = scaler.observe("m", _signals(fill=0.9, replicas=1))
        assert (decision.from_replicas, decision.to_replicas) == (1, 2)
        assert "queue_fill" in decision.reason

    def test_up_cooldown_and_max_bound(self):
        clock = FakeClock()
        scaler = self._scaler(clock)
        scaler.observe("m", _signals())
        assert scaler.observe("m", _signals(fill=0.9)) is not None
        # Within the cooldown: refused despite pressure.
        assert scaler.observe("m", _signals(fill=0.9, replicas=2)) is None
        clock.advance(2.0)
        assert scaler.observe("m", _signals(fill=0.9, replicas=2)) is not None
        clock.advance(2.0)
        # At max_replicas: no further ups.
        assert scaler.observe("m", _signals(fill=0.9, replicas=3)) is None

    def test_shed_delta_triggers_up_without_queue_fill(self):
        clock = FakeClock()
        scaler = self._scaler(clock)
        scaler.observe("m", _signals(shed=10))
        decision = scaler.observe("m", _signals(shed=14))
        assert decision is not None and "sheds+4" in decision.reason
        # The same cumulative total later is a zero delta, not pressure.
        clock.advance(2.0)
        assert scaler.observe("m", _signals(shed=14)) is None

    def test_down_needs_stability_cooldown_and_min_bound(self):
        clock = FakeClock()
        scaler = self._scaler(clock)
        scaler.observe("m", _signals(replicas=2))
        assert scaler.observe("m", _signals(fill=0.05, replicas=2)) is None
        decision = scaler.observe("m", _signals(fill=0.05, replicas=2))
        assert decision is not None
        assert (decision.direction, decision.to_replicas) == ("down", 1)
        # At min_replicas: calm never scales below the floor.
        clock.advance(5.0)
        for _ in range(4):
            assert scaler.observe("m", _signals(fill=0.0, replicas=1)) is None

    def test_flap_storm_freezes_the_model(self):
        clock = FakeClock()
        scaler = self._scaler(
            clock, up_cooldown_s=0.0, down_cooldown_s=0.0,
            down_stable_ticks=1, flap_window=4, flap_reversals=2,
            flap_freeze_s=30.0,
        )
        scaler.observe("m", _signals())
        assert scaler.observe("m", _signals(fill=0.9, replicas=1)) is not None
        assert scaler.observe("m", _signals(fill=0.0, replicas=2)) is not None
        assert scaler.observe("m", _signals(fill=0.9, replicas=1)) is not None
        assert scaler.flap_freezes_total == 1
        assert scaler.frozen("m")
        # Frozen: pressure is ignored until the freeze expires.
        assert scaler.observe("m", _signals(fill=0.9, replicas=1)) is None
        clock.advance(30.0)
        assert not scaler.frozen("m")
        assert scaler.observe("m", _signals(fill=0.9, replicas=1)) is not None


# --------------------------------------------------------------------------
# Boot-time topology validation
# --------------------------------------------------------------------------

class TestValidateTopology:
    def test_negative_counts_rejected(self):
        with pytest.raises(ServeConfigError, match="--workers"):
            validate_topology(workers=-1)
        with pytest.raises(ServeConfigError, match="worker-replicas"):
            validate_topology(workers=2, worker_replicas=-1)

    def test_replicas_cannot_exceed_workers(self):
        with pytest.raises(ServeConfigError, match="exceeds"):
            validate_topology(workers=2, worker_replicas=3)

    def test_state_dir_file_rejected(self, tmp_path):
        target = tmp_path / "f"
        target.write_text("x")
        with pytest.raises(ServeConfigError, match="not a directory"):
            validate_topology(state_dir=str(target))

    def test_circuit_threshold_floor(self):
        with pytest.raises(ServeConfigError, match="circuit-threshold"):
            validate_topology(
                selfheal=SelfHealPolicy(circuit_threshold=0)
            )

    def test_autoscale_requires_worker_mode(self):
        policy = SelfHealPolicy(autoscale=AutoscalePolicy(max_replicas=2))
        with pytest.raises(ServeConfigError, match="worker mode"):
            validate_topology(workers=0, selfheal=policy)

    def test_autoscale_max_clamped_to_pool(self):
        policy = SelfHealPolicy(autoscale=AutoscalePolicy(max_replicas=4))
        with pytest.raises(ServeConfigError, match="--autoscale-max"):
            validate_topology(workers=2, worker_replicas=1, selfheal=policy)

    def test_ladder_rungs_must_be_registered(self):
        registry = {NAME}
        with pytest.raises(ServeConfigError, match="not in the registry"):
            validate_topology(
                selfheal=SelfHealPolicy(ladders={"other": [NAME]}),
                registry=registry,
            )
        with pytest.raises(ServeConfigError, match="fallback of"):
            validate_topology(
                selfheal=SelfHealPolicy(ladders={NAME: [VARIANT]}),
                registry=registry,
            )

    def test_consistent_topology_passes(self, tmp_path):
        validate_topology(
            workers=4,
            worker_replicas=2,
            state_dir=str(tmp_path / "state"),
            selfheal=SelfHealPolicy(
                autoscale=AutoscalePolicy(max_replicas=4),
                ladders={NAME: [VARIANT]},
            ),
            registry={NAME, VARIANT},
        )

    def test_server_constructor_raises_typed_error(self):
        registry = ModelRegistry()
        registry.add(_stub_served())
        with pytest.raises(ServeConfigError, match="worker mode"):
            InferenceServer(
                registry,
                selfheal=SelfHealPolicy(
                    autoscale=AutoscalePolicy(max_replicas=1)
                ),
            )


# --------------------------------------------------------------------------
# Controller
# --------------------------------------------------------------------------

class TestSelfHealController:
    def test_circuit_plumbing_and_fail_fast(self):
        clock = FakeClock()
        controller = SelfHealController(
            SelfHealPolicy(circuit_threshold=2, circuit_open_s=3.0), clock
        )
        assert controller.allow(NAME) == (True, 0.0)
        controller.record_error(NAME)
        controller.record_error(NAME)
        allowed, retry_after = controller.allow(NAME)
        assert not allowed and retry_after > 0

    def test_tick_emits_probe_when_half_open(self):
        clock = FakeClock()
        controller = SelfHealController(
            SelfHealPolicy(circuit_threshold=1, circuit_open_s=2.0), clock
        )
        controller.record_error(NAME)
        assert controller.tick({NAME: _signals()}) == []  # still open
        clock.advance(2.0)
        actions = controller.tick({NAME: _signals()})
        assert [a.kind for a in actions] == ["probe"]
        assert actions[0].model == NAME

    def test_open_circuit_suppresses_scaling_and_refreshes_baselines(self):
        clock = FakeClock()
        controller = SelfHealController(
            SelfHealPolicy(
                circuit_threshold=1,
                circuit_open_s=100.0,
                ladders={NAME: [VARIANT]},
                ladder_down_after_ticks=1,
                ladder_step_cooldown_s=0.0,
            ),
            clock,
        )
        controller.tick({NAME: _signals(shed=0)})  # baseline
        controller.record_error(NAME)
        # An error storm sheds as a side effect; an open circuit must not
        # convert that into brownout steps.
        assert controller.tick({NAME: _signals(fill=1.0, shed=50)}) == []
        controller.circuit(NAME).probe_result(True)  # force close
        # Baselines were refreshed while open: the old shed burst is not
        # replayed as fresh pressure once the circuit closes.
        actions = controller.tick({NAME: _signals(shed=50)})
        assert actions == []

    def test_scale_then_ladder_only_at_capacity(self):
        clock = FakeClock()
        controller = SelfHealController(
            SelfHealPolicy(
                autoscale=AutoscalePolicy(
                    max_replicas=2, up_cooldown_s=0.0, up_queue_fill=0.5,
                ),
                ladders={NAME: [VARIANT]},
                ladder_down_after_ticks=2,
                ladder_step_cooldown_s=0.0,
            ),
            clock,
        )
        controller.tick({NAME: _signals(shed=0)})  # prime
        # Below max replicas: pressure scales, the ladder holds quality.
        actions = controller.tick({NAME: _signals(shed=10, replicas=1)})
        assert [a.kind for a in actions] == ["scale"]
        assert actions[0].value == 2
        # At max replicas: sustained pressure now steps the ladder down.
        actions = controller.tick({NAME: _signals(shed=20, replicas=2)})
        assert actions == []  # tick 1 of 2 (and scale-up exhausted)
        actions = controller.tick({NAME: _signals(shed=30, replicas=2)})
        assert [(a.kind, a.variant) for a in actions] == [("ladder", VARIANT)]
        assert actions[0].direction == "down"

    def test_ladder_without_autoscaler_treats_pool_as_at_capacity(self):
        clock = FakeClock()
        controller = SelfHealController(
            SelfHealPolicy(
                ladders={NAME: [VARIANT]},
                ladder_down_after_ticks=1,
                ladder_step_cooldown_s=0.0,
            ),
            clock,
        )
        controller.tick({NAME: _signals(shed=0)})
        actions = controller.tick({NAME: _signals(shed=5)})
        assert [a.kind for a in actions] == ["ladder"]

    def test_snapshot_shape(self):
        controller = SelfHealController(
            SelfHealPolicy(ladders={NAME: [VARIANT]}), FakeClock()
        )
        controller.record_error(NAME)
        snap = controller.snapshot()
        assert snap["circuits"][NAME]["consecutive_errors"] == 1
        assert snap["ladders"][NAME]["chain"] == [NAME, VARIANT]
        assert snap["autoscale"] is None


# --------------------------------------------------------------------------
# Server integration (in-process; the kill -9 drill is in the smoke test)
# --------------------------------------------------------------------------

class TestServerCircuit:
    def test_circuit_opens_and_fails_fast_with_typed_503(self):
        fail = {"on": True}
        registry = ModelRegistry()
        registry.add(_stub_served(fail=fail))
        policy = SelfHealPolicy(
            circuit_threshold=2, circuit_open_s=60.0, interval_s=30.0
        )
        x = np.zeros((1, 28, 28), dtype=np.float32)
        with start_in_background(registry, selfheal=policy) as handle:
            with ServeClient(handle.base_url) as client:
                for _ in range(2):
                    with pytest.raises(ServeError) as info:
                        client.predict(x, model=NAME)
                    assert info.value.status == 500
                # Threshold reached: the next request never touches the
                # model — typed 503 with a Retry-After hold.
                with pytest.raises(ServeCircuitOpen) as info:
                    client.predict(x, model=NAME)
                assert info.value.status == 503
                assert info.value.reason == "circuit_open"
                assert info.value.retry_after and info.value.retry_after > 0
                health = client.healthz()
                assert health["status"] == "degraded"
                assert any("circuit open" in r for r in health["reasons"])
                snap = client.metrics()
                assert snap["selfheal"]["circuits"][NAME]["state"] == "open"
                text = client.metrics_text()
                assert f'repro_circuit_state{{model="{NAME}"}} 2' in text

    def test_probe_recloses_circuit_after_model_recovers(self):
        fail = {"on": True}
        registry = ModelRegistry()
        registry.add(_stub_served(fail=fail))
        policy = SelfHealPolicy(
            circuit_threshold=1, circuit_open_s=0.05, interval_s=0.02
        )
        x = np.zeros((1, 28, 28), dtype=np.float32)
        with start_in_background(registry, selfheal=policy) as handle:
            with ServeClient(handle.base_url) as client:
                with pytest.raises(ServeError):
                    client.predict(x, model=NAME)
                fail["on"] = False  # the model recovers; a probe must notice
                deadline = time.monotonic() + 10.0
                while time.monotonic() < deadline:
                    try:
                        out = client.predict(x, model=NAME)
                        break
                    except ServeError:
                        time.sleep(0.02)
                else:
                    pytest.fail("circuit never reclosed after recovery")
                assert out.shape == (4,)
                events = client.models()["deploy_events"]
                assert any(
                    e.get("action") == "circuit_probe" and e.get("ok")
                    for e in events
                )

    def test_client_honours_retry_after_without_budget_spend(self):
        fail = {"on": True}
        registry = ModelRegistry()
        registry.add(_stub_served(fail=fail))
        policy = SelfHealPolicy(
            circuit_threshold=1, circuit_open_s=0.15, interval_s=30.0
        )
        x = np.zeros((1, 28, 28), dtype=np.float32)
        with start_in_background(registry, selfheal=policy) as handle:
            with ServeClient(handle.base_url) as client:
                with pytest.raises(ServeError):
                    client.predict(x, model=NAME)  # opens the circuit
            # budget_s=0 plus 5 s backoff: a *generic* 503 would fail
            # fast on the first attempt without a single sleep.  A
            # circuit-open 503 instead waits the server's Retry-After
            # verbatim (free of backoff and budget) and retries.
            retry = RetryPolicy(
                max_attempts=3, base_backoff_s=5.0, max_backoff_s=5.0,
                jitter=0.0, budget_s=0.0,
            )
            with ServeClient(handle.base_url, retry=retry) as client:
                t0 = time.monotonic()
                with pytest.raises(ServeCircuitOpen):
                    client.predict(x, model=NAME)
                elapsed = time.monotonic() - t0
            # Two Retry-After waits of ~0.15 s; far below one 5 s backoff.
            assert 0.2 <= elapsed < 4.0


class TestServerJournalReplay:
    def _artifact(self, tmp_path, seed, tag):
        import dataclasses

        from repro.engine.artifact import save_plan
        from repro.engine.cache import PlanCache
        from repro.serve.registry import compile_served

        spec = dataclasses.replace(
            ModelSpec.parse("lenet-F2-fp32@reference"), seed=seed
        )
        served = compile_served(spec, cache=PlanCache())
        path = str(tmp_path / f"lenet-{tag}.rpln")
        save_plan(
            served.plan, path, input_shape=(1,) + spec.sample_shape,
            extra={"model": spec.name, "seed": spec.seed},
        )
        return spec.name, path

    def test_runtime_deploy_survives_restart(self, tmp_path):
        import urllib.request

        name, artifact = self._artifact(tmp_path, seed=1, tag="v2")
        state_dir = str(tmp_path / "state")
        x = np.zeros((1, 28, 28), dtype=np.float32)

        registry = ModelRegistry()
        registry.load("lenet-F2-fp32@reference")
        with start_in_background(registry, state_dir=state_dir) as handle:
            body = json.dumps({"artifact": artifact, "watch_s": 0.0}).encode()
            request = urllib.request.Request(
                handle.base_url + "/models", data=body, method="POST",
                headers={"Content-Type": "application/json"},
            )
            with urllib.request.urlopen(request) as resp:
                deploy = json.loads(resp.read())
            with ServeClient(handle.base_url) as client:
                reference = client.predict(x, model=name)

        # A fresh process would boot from flags alone; the journal must
        # re-install the runtime deploy at its content-hash version.
        registry2 = ModelRegistry()
        registry2.load("lenet-F2-fp32@reference")
        with start_in_background(registry2, state_dir=state_dir) as handle:
            with ServeClient(handle.base_url) as client:
                doc = client.models()
                versions = {m["name"]: m["version"] for m in doc["models"]}
                assert versions[name] == deploy["version"]
                assert doc["journal_replay"]["deploys_restored"] == [name]
                recovered = client.predict(x, model=name)
        assert np.array_equal(reference, recovered)
        # Replay compacts: the journal holds exactly the effective state.
        assert StateJournal(state_dir).replay() == [
            {
                "event": "deploy",
                "model": name,
                "artifact": artifact,
                "version": deploy["version"],
            }
        ]

    def test_vanished_artifact_is_skipped_not_fatal(self, tmp_path):
        state_dir = str(tmp_path / "state")
        journal = StateJournal(state_dir)
        journal.append(
            {
                "event": "deploy",
                "model": NAME,
                "artifact": str(tmp_path / "gone.rpln"),
                "version": "h404",
            }
        )
        journal.close()
        registry = ModelRegistry()
        registry.add(_stub_served())
        with start_in_background(registry, state_dir=state_dir) as handle:
            with ServeClient(handle.base_url) as client:
                replay = client.models()["journal_replay"]
                assert replay["deploys_skipped"] == [NAME]
                # The boot-flag model still serves.
                out = client.predict(
                    np.zeros((1, 28, 28), dtype=np.float32), model=NAME
                )
                assert out.shape == (4,)


class TestServerBrownoutReplay:
    def test_journaled_ladder_rung_restores_and_stamps_variant(self, tmp_path):
        state_dir = str(tmp_path / "state")
        journal = StateJournal(state_dir)
        journal.append(
            {"event": "ladder", "model": NAME, "position": 1, "variant": VARIANT}
        )
        journal.close()

        registry = ModelRegistry()
        registry.add(_stub_served(name=NAME, value=1.0))
        registry.add(_stub_served(name=VARIANT, value=2.0))
        policy = SelfHealPolicy(ladders={NAME: [VARIANT]}, interval_s=30.0)
        x = np.zeros((1, 28, 28), dtype=np.float32)
        with start_in_background(
            registry, selfheal=policy, state_dir=state_dir
        ) as handle:
            with ServeClient(handle.base_url) as client:
                out = client.predict(x, model=NAME)
                # Traffic for NAME is served by the fallback's plan...
                assert np.all(out == 2.0)
                # ...and honestly labelled for clients and dashboards.
                assert (
                    client.last_response_headers.get("x-served-variant")
                    == VARIANT
                )
                snap = client.metrics()
                assert snap["selfheal"]["active_variants"] == {NAME: VARIANT}
                assert (
                    snap["selfheal"]["ladders"][NAME]["position"] == 1
                )
                health = client.healthz()
                assert any("brownout" in r for r in health["reasons"])
                text = client.metrics_text()
                assert (
                    f'repro_brownout_position{{model="{NAME}"}} 1' in text
                )
