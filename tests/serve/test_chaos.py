"""Seeded chaos harness (ISSUE 8): every injected fault must end in a
bit-identical retried response or a typed error — never a silent drop,
never a hang, never a corrupted payload handed to a client.

Layer under test:

* grammar + injector determinism (pure units, no processes);
* :class:`WorkerRouter` with ``chaos=...`` at ``workers=2`` — one suite
  per fault, each asserting the bit-identity-or-typed-error oracle
  against direct ``plan.run``;
* the HTTP server with a chaotic worker pool: every request answered,
  pool counters visible on ``/metrics``.

The injection draw sequence is a pure function of ``(seed, scope)``, so
these suites are replayable: a failure reproduces with the same spec.
"""

import os
import sys

import numpy as np
import pytest

from repro.chaos import ChaosInjector, FAULTS, parse_chaos_spec
from repro.serve import (
    BatchPolicy,
    ModelRegistry,
    ServeClient,
    WorkerError,
    WorkerRouter,
    start_in_background,
    wait_until_ready,
)

pytestmark = pytest.mark.skipif(
    sys.platform == "win32" or not hasattr(os, "register_at_fork"),
    reason="fork-based workers are POSIX-only",
)

MODEL = "lenet-F2-fp32@reference"
SAMPLE_SHAPE = (1, 28, 28)


def _samples(n, seed=0):
    return np.random.default_rng(seed).standard_normal(
        (n,) + SAMPLE_SHAPE
    ).astype(np.float32)


@pytest.fixture(scope="module")
def oracle_plan():
    return ModelRegistry().load(MODEL).plan


class TestSpecGrammar:
    def test_parse_full_spec(self):
        spec = parse_chaos_spec("seed=7,worker_crash=0.05,shm_delay=0.2:15")
        assert spec.seed == 7
        assert spec.probability("worker_crash") == 0.05
        assert spec.probability("shm_delay") == 0.2
        assert spec.duration_ms("shm_delay") == 15.0
        assert spec.probability("pipe_drop") == 0.0

    def test_duration_defaults_per_fault(self):
        spec = parse_chaos_spec("shm_delay=1.0")
        assert spec.duration_ms("shm_delay") == FAULTS["shm_delay"]

    def test_describe_round_trips(self):
        text = "seed=3,worker_hang=0.5,shm_delay=0.1:7"
        spec = parse_chaos_spec(text)
        assert parse_chaos_spec(spec.describe()) == spec

    @pytest.mark.parametrize(
        "bad",
        [
            "warker_crash=0.5",      # typo'd fault name
            "worker_crash=1.5",      # probability out of range
            "worker_crash=-0.1",
            "worker_crash=maybe",    # non-numeric probability
            "shm_delay=0.5:-3",      # negative duration
            "seed=xyz",              # non-integer seed
            "worker_crash",          # not KEY=VALUE
        ],
    )
    def test_malformed_specs_fail_loudly(self, bad):
        with pytest.raises(ValueError):
            parse_chaos_spec(bad)

    def test_router_validates_spec_at_boot(self):
        """A typo'd spec must fail construction, not inject nothing."""
        with pytest.raises(ValueError):
            WorkerRouter(
                [MODEL], [SAMPLE_SHAPE], workers=1, replicas=1,
                chaos="worker_crsh=0.5",
            )


class TestInjectorDeterminism:
    def test_same_seed_and_scope_reproduce(self):
        spec = parse_chaos_spec("seed=11,worker_crash=0.5")
        a = ChaosInjector(spec, "worker-0/gen-0")
        b = ChaosInjector(spec, "worker-0/gen-0")
        rolls_a = [a.roll("worker_crash") for _ in range(64)]
        rolls_b = [b.roll("worker_crash") for _ in range(64)]
        assert rolls_a == rolls_b
        assert any(rolls_a) and not all(rolls_a)

    def test_scope_changes_the_sequence(self):
        """A respawned worker (new generation in its scope) must not
        deterministically re-hit the crash that killed its predecessor."""
        spec = parse_chaos_spec("seed=11,worker_crash=0.5")
        gen0 = ChaosInjector(spec, "worker-0/gen-0")
        gen1 = ChaosInjector(spec, "worker-0/gen-1")
        assert [gen0.roll("worker_crash") for _ in range(64)] != [
            gen1.roll("worker_crash") for _ in range(64)
        ]

    def test_adding_a_fault_does_not_shift_other_draws(self):
        """roll() draws even at probability 0, so the fired pattern of
        one fault is independent of which other faults are configured."""
        lean = ChaosInjector(
            parse_chaos_spec("seed=9,worker_crash=0.5"), "w"
        )
        rich = ChaosInjector(
            parse_chaos_spec("seed=9,worker_crash=0.5,shm_delay=0.0:5"), "w"
        )
        pattern_lean = [
            (lean.roll("worker_crash"), lean.roll("shm_delay"))
            for _ in range(64)
        ]
        pattern_rich = [
            (rich.roll("worker_crash"), rich.roll("shm_delay"))
            for _ in range(64)
        ]
        assert [c for c, _ in pattern_lean] == [c for c, _ in pattern_rich]
        assert not any(d for _, d in pattern_lean)  # prob 0 never fires

    def test_injected_counter(self):
        spec = parse_chaos_spec("seed=2,pipe_drop=1.0")
        injector = ChaosInjector(spec, "w")
        for _ in range(5):
            assert injector.roll("pipe_drop")
        assert injector.injected == {"pipe_drop": 5}


def _chaos_suite(
    chaos, oracle_plan, submits=12, seed=0, **router_kw
):
    """Run ``submits`` single-sample batches through a chaotic 2-worker
    router and enforce the oracle: every submit ends in a bit-identical
    response or a typed :class:`WorkerError` — the reply-timeout watchdog
    bounds every attempt, so a wedged worker can never hang the caller.

    Returns (outcomes, stats) for fault-specific counter assertions.
    """
    router_kw.setdefault("health_interval", None)
    router = WorkerRouter(
        [MODEL], [SAMPLE_SHAPE], workers=2, replicas=2,
        chaos=chaos, **router_kw,
    ).start()
    outcomes = []
    try:
        xs = _samples(submits, seed=seed)
        for i in range(submits):
            x = xs[i : i + 1]
            expected = oracle_plan.run(x)
            try:
                out = router.submit(MODEL, x)
            except WorkerError:
                outcomes.append("typed_error")
                continue
            np.testing.assert_array_equal(out, expected)
            outcomes.append("ok")
        stats = router.stats(refresh=False)
    finally:
        router.stop()
    assert len(outcomes) == submits  # nothing silently dropped
    return outcomes, stats


class TestRouterFaults:
    def test_worker_crash_retries_bit_identical(self, oracle_plan):
        outcomes, stats = _chaos_suite(
            "seed=5,worker_crash=0.5", oracle_plan, max_retries=6
        )
        assert stats["retries_total"] > 0
        assert stats["worker_restarts"] > 0
        assert "ok" in outcomes

    def test_worker_hang_killed_by_reply_timeout(self, oracle_plan):
        """A hung worker swallows its batch; the bounded reply wait must
        kill it (never re-send — that could double-execute) and the
        retry must come back bit-identical from another worker."""
        outcomes, stats = _chaos_suite(
            "seed=3,worker_hang=0.5", oracle_plan,
            submits=8, reply_timeout=1.0, max_retries=6,
        )
        assert stats["watchdog_kills"] > 0
        assert stats["retries_total"] > 0
        assert "ok" in outcomes

    def test_pipe_drop_never_hangs_the_caller(self, oracle_plan):
        """The worker executes but never replies: indistinguishable from
        a hang at the protocol level, and handled the same way."""
        outcomes, stats = _chaos_suite(
            "seed=8,pipe_drop=0.5", oracle_plan,
            submits=8, reply_timeout=1.0, max_retries=6,
        )
        assert stats["watchdog_kills"] > 0
        assert "ok" in outcomes

    def test_corrupt_response_detected_and_retried(self, oracle_plan):
        """Every flipped byte must be caught by the transport checksum
        and retried — a chaotic pool may slow down, but it must never
        hand a client a silently wrong tensor."""
        outcomes, stats = _chaos_suite(
            "seed=4,corrupt_response=0.5", oracle_plan, max_retries=6
        )
        assert stats["corrupt_responses_total"] > 0
        # Corruption is a transport problem, not a worker death: the
        # worker stays up and nothing respawns.
        assert stats["worker_restarts"] == 0
        assert "ok" in outcomes

    def test_shm_delay_only_slows_never_breaks(self, oracle_plan):
        outcomes, stats = _chaos_suite(
            "seed=1,shm_delay=1.0:5", oracle_plan, submits=6
        )
        assert outcomes == ["ok"] * 6
        assert stats["retries_total"] == 0

    def test_slow_start_delays_boot_but_serves(self, oracle_plan):
        outcomes, stats = _chaos_suite(
            "seed=2,worker_slow_start=1.0:300", oracle_plan, submits=4
        )
        assert outcomes == ["ok"] * 4


class TestServerUnderChaos:
    def test_every_request_answered_and_counters_exposed(self, oracle_plan):
        """End to end at --workers 2 under crash + corruption chaos:
        every HTTP request gets a definite answer (2xx bit-identical or
        a typed error status), and the pool's resilience counters are
        visible on /metrics in both JSON and Prometheus form."""
        registry = ModelRegistry(lazy=True)
        registry.load(MODEL)
        xs = _samples(10, seed=6)
        with start_in_background(
            registry,
            policy=BatchPolicy(max_batch_size=4, default_deadline_ms=60000),
            workers=2, worker_replicas=2,
            chaos="seed=5,worker_crash=0.3,corrupt_response=0.3",
            worker_reply_timeout=5.0,
        ) as handle:
            wait_until_ready(handle.base_url, timeout=60.0)
            answered = 0
            with ServeClient(handle.base_url, timeout=120.0) as client:
                for i in range(10):
                    try:
                        out = client.predict(xs[i], model=MODEL, encoding="b64")
                        np.testing.assert_array_equal(
                            out, oracle_plan.run(xs[i : i + 1])[0]
                        )
                    except Exception as exc:  # noqa: BLE001 — typed only
                        # Retry exhaustion surfaces as HTTP 500 — a typed
                        # outcome; anything untyped fails the test.
                        from repro.serve import ServeError

                        assert isinstance(exc, ServeError), repr(exc)
                    answered += 1
                metrics = client.metrics()
                text = client.metrics_text()
            assert answered == 10
            pool = metrics["worker_pool"]
            assert pool["chaos"] == "seed=5,worker_crash=0.3,corrupt_response=0.3"
            resilience = (
                pool["retries_total"]
                + pool["corrupt_responses_total"]
                + pool["worker_restarts"]
            )
            assert resilience > 0, pool
            assert "repro_worker_retries_total" in text
            assert "repro_corrupt_responses_total" in text
            assert "repro_watchdog_kills_total" in text
