"""Admission control (ISSUE 8): priority classes, watermark shedding,
per-tenant token buckets — plus the batcher behaviours admission levels
drive (priority ordering, formation-time expiry expulsion).

The controller takes an injectable clock, so every rate/recency rule is
tested against virtual time; the server-level tests then verify the
HTTP surface (429 + ``Retry-After``, priority via body or ``X-Priority``
header, 400 on a typo'd class).
"""

import asyncio
import time

import numpy as np
import pytest

from repro.serve.admission import (
    AdmissionController,
    AdmissionPolicy,
    DEFAULT_WATERMARKS,
    PRIORITY_LEVELS,
    RequestShed,
    TokenBucket,
    resolve_priority,
)
from repro.serve.batcher import BatchPolicy, DeadlineExceeded, DynamicBatcher
from repro.serve import ModelRegistry, ServeClient, ServeError, start_in_background

MODEL = "lenet-F2-fp32@reference"


class FakeClock:
    def __init__(self):
        self.now = 1000.0

    def __call__(self):
        return self.now

    def advance(self, s):
        self.now += s


class TestResolvePriority:
    def test_default_and_normalisation(self):
        assert resolve_priority(None) == "standard"
        assert resolve_priority("") == "standard"
        assert resolve_priority(" Interactive ") == "interactive"
        assert resolve_priority("BATCH") == "batch"

    def test_unknown_class_raises(self):
        with pytest.raises(ValueError, match="unknown priority"):
            resolve_priority("interactve")

    def test_levels_order_importance(self):
        assert (
            PRIORITY_LEVELS["interactive"]
            < PRIORITY_LEVELS["standard"]
            < PRIORITY_LEVELS["batch"]
        )


class TestTokenBucket:
    def test_burst_then_refill(self):
        bucket = TokenBucket(rate=2.0, burst=3.0, now=0.0)
        assert all(bucket.take(0.0)[0] for _ in range(3))  # burst
        ok, retry_after = bucket.take(0.0)
        assert not ok and retry_after == pytest.approx(0.5)  # 1 token / 2 rps
        ok, _ = bucket.take(0.5)  # refilled exactly one token
        assert ok

    def test_tokens_cap_at_burst(self):
        bucket = TokenBucket(rate=100.0, burst=2.0, now=0.0)
        bucket.take(0.0)
        assert bucket.take(10.0)[0] and bucket.take(10.0)[0]
        assert not bucket.take(10.0)[0]  # idle decade never banked > burst


class TestWatermarks:
    def test_shed_order_is_batch_then_standard_then_interactive(self):
        ctrl = AdmissionController(clock=FakeClock())
        for fill, shed_classes in [
            (0.60, {"batch"}),
            (0.80, {"batch", "standard"}),
            (0.96, {"batch", "standard", "interactive"}),
        ]:
            for priority in PRIORITY_LEVELS:
                if priority in shed_classes:
                    with pytest.raises(RequestShed):
                        ctrl.admit(priority, queue_fill=fill)
                else:
                    assert ctrl.admit(priority, fill) == PRIORITY_LEVELS[priority]

    def test_empty_queue_admits_everything(self):
        ctrl = AdmissionController(clock=FakeClock())
        for priority in PRIORITY_LEVELS:
            assert ctrl.admit(priority, queue_fill=0.0) == PRIORITY_LEVELS[priority]

    def test_retry_after_grows_with_overshoot(self):
        ctrl = AdmissionController(clock=FakeClock())
        sheds = []
        for fill in (0.55, 0.75, 0.95):
            with pytest.raises(RequestShed) as info:
                ctrl.admit("batch", queue_fill=fill)
            sheds.append(info.value.retry_after)
        assert sheds == sorted(sheds) and sheds[0] < sheds[-1]

    def test_shedding_recently_expires(self):
        clock = FakeClock()
        ctrl = AdmissionController(clock=clock)
        assert not ctrl.shedding_recently()
        with pytest.raises(RequestShed):
            ctrl.admit("batch", queue_fill=0.9)
        assert ctrl.shedding_recently()
        clock.advance(AdmissionController.SHED_RECENT_S + 0.1)
        assert not ctrl.shedding_recently()


class TestTenantBuckets:
    def test_noisy_tenant_shed_quiet_tenant_unaffected(self):
        clock = FakeClock()
        ctrl = AdmissionController(
            AdmissionPolicy(tenant_rate=1.0, tenant_burst=2.0), clock=clock
        )
        ctrl.admit("standard", 0.0, tenant="noisy")
        ctrl.admit("standard", 0.0, tenant="noisy")
        with pytest.raises(RequestShed) as info:
            ctrl.admit("standard", 0.0, tenant="noisy")
        assert info.value.tenant == "noisy"
        assert info.value.retry_after == pytest.approx(1.0)
        # The other tenant's bucket is untouched.
        assert ctrl.admit("standard", 0.0, tenant="quiet") == 1
        # And the noisy one recovers once its bucket refills.
        clock.advance(1.0)
        assert ctrl.admit("standard", 0.0, tenant="noisy") == 1

    def test_rate_zero_disables_buckets(self):
        ctrl = AdmissionController(AdmissionPolicy(tenant_rate=0.0))
        for _ in range(50):
            assert ctrl.admit("standard", 0.0, tenant="anyone") == 1

    def test_untagged_requests_skip_buckets(self):
        ctrl = AdmissionController(AdmissionPolicy(tenant_rate=1.0))
        for _ in range(10):
            ctrl.admit("standard", 0.0, tenant=None)

    def test_snapshot_counts(self):
        ctrl = AdmissionController(
            AdmissionPolicy(tenant_rate=1.0, tenant_burst=1.0),
            clock=FakeClock(),
        )
        ctrl.admit("standard", 0.0, tenant="a")
        with pytest.raises(RequestShed):
            ctrl.admit("standard", 0.0, tenant="a")
        snap = ctrl.snapshot()
        assert snap["admitted_total"] == 1
        assert snap["shed_total"] == 1
        assert snap["tenants_tracked"] == 1
        assert sum(snap["shed_by_reason"].values()) == 1


class TestPolicyValidation:
    @pytest.mark.parametrize(
        "kwargs",
        [
            {"tenant_rate": -1.0},
            {"tenant_burst": 0.0},
            {"shed_watermarks": {"vip": 0.5}},
        ],
    )
    def test_invalid_policy_rejected(self, kwargs):
        with pytest.raises(ValueError):
            AdmissionPolicy(**kwargs)

    def test_defaults_round_trip(self):
        d = AdmissionPolicy().to_dict()
        assert d["shed_watermarks"] == DEFAULT_WATERMARKS


class SlowPlan:
    def __init__(self, delay_s):
        self.delay_s = delay_s
        self.executed = []

    def run(self, x):
        time.sleep(self.delay_s)
        self.executed.append(x.shape[0])
        return np.asarray(x)


def sample(value):
    return np.full((1, 2, 2, 2), value, dtype=np.float32)


class TestBatcherPriorityAndExpulsion:
    def test_higher_priority_jumps_the_queue(self):
        """Under backlog, a later-submitted interactive request must be
        picked from the priority queue before earlier-submitted batch
        traffic.  (The collector pre-collects exactly one batch while the
        previous executes, so the first batch-class request is already
        formed and cannot be overtaken — the contest is for the queue.)"""

        async def scenario():
            plan = SlowPlan(0.05)
            batcher = DynamicBatcher(
                plan,
                BatchPolicy(max_batch_size=1, max_wait_ms=0, max_queue=64),
                max_inflight=1,
            )
            order = []
            await batcher.start()
            try:
                first = asyncio.ensure_future(batcher.submit(sample(0)))
                await asyncio.sleep(0.01)  # first batch is now executing

                async def tagged(value, priority, tag):
                    await batcher.submit(sample(value), priority=priority)
                    order.append(tag)

                tasks = [
                    asyncio.ensure_future(tagged(1, 2, "batch-1")),
                    asyncio.ensure_future(tagged(2, 2, "batch-2")),
                ]
                await asyncio.sleep(0.01)  # enqueue before the interactive one
                tasks.append(
                    asyncio.ensure_future(tagged(3, 0, "interactive"))
                )
                await asyncio.gather(first, *tasks)
            finally:
                await batcher.stop()
            return order

        order = asyncio.run(scenario())
        assert order.index("interactive") < order.index("batch-2"), order

    def test_expired_request_expelled_at_formation_never_executed(self):
        """A request that ages past its deadline while still *queued*
        must get a typed 504 at batch formation — and the plan must
        never see it.  A decoy keeps the collector's pre-collected slot
        busy so the doomed request genuinely expires in the queue."""

        async def scenario():
            plan = SlowPlan(0.08)
            batcher = DynamicBatcher(
                plan,
                BatchPolicy(max_batch_size=1, max_wait_ms=0, max_queue=64),
                max_inflight=1,
            )
            await batcher.start()
            try:
                blocker = asyncio.ensure_future(batcher.submit(sample(0)))
                await asyncio.sleep(0.01)
                decoy = asyncio.ensure_future(batcher.submit(sample(1)))
                await asyncio.sleep(0.005)
                doomed = asyncio.ensure_future(
                    batcher.submit(sample(2), deadline_ms=20.0)
                )
                with pytest.raises(DeadlineExceeded, match="batch formation"):
                    await doomed
                await asyncio.gather(blocker, decoy)
                executed_batches = len(plan.executed)
            finally:
                await batcher.stop()
            return executed_batches

        # Only blocker + decoy ran; the expired request was expelled.
        assert asyncio.run(scenario()) == 2


@pytest.fixture(scope="module")
def tenant_limited_server():
    registry = ModelRegistry()
    registry.load(MODEL)
    with start_in_background(
        registry,
        policy=BatchPolicy(max_batch_size=8, max_queue=64),
        admission=AdmissionPolicy(tenant_rate=0.5, tenant_burst=2.0),
    ) as handle:
        yield handle


class TestServerAdmission:
    def test_tenant_429_with_retry_after(self, tenant_limited_server):
        x = np.zeros((1, 28, 28), dtype=np.float32)
        with ServeClient(tenant_limited_server.base_url) as client:
            client.predict(x, model=MODEL, tenant="t1")
            client.predict(x, model=MODEL, tenant="t1")
            with pytest.raises(ServeError) as info:
                client.predict(x, model=MODEL, tenant="t1")
            assert info.value.status == 429
            assert info.value.retry_after is not None
            assert info.value.retry_after > 0
            # Another tenant is not collateral damage.
            client.predict(x, model=MODEL, tenant="t2")
            # Shed visibility: admission snapshot + per-model counter.
            metrics = client.metrics()
            assert metrics["admission"]["shed_total"] >= 1
            model_counters = metrics["models"][MODEL]
            assert model_counters["shed_total"] >= 1
            health = client.healthz()
            assert health["status"] == "degraded"
            assert any("shed" in r for r in health["reasons"])

    def test_priority_header_and_typo_400(self, tenant_limited_server):
        x = np.zeros((1, 28, 28), dtype=np.float32)
        with ServeClient(tenant_limited_server.base_url) as client:
            out = client.predict_raw(x, model=MODEL, priority="interactive")
            assert "output" in out
            # Header spelling works too (body wins only when both set).
            client.request(
                "POST", "/predict",
                {"model": MODEL, "input": x.tolist()},
                headers={"X-Priority": "batch"},
            )
            with pytest.raises(ServeError) as info:
                client.predict_raw(x, model=MODEL, priority="urgentest")
            assert info.value.status == 400
            assert "unknown priority" in info.value.message
