"""Request-scoped tracing across the serving stack (ISSUE 7).

Covers the ingress request-id contract (respect / generate / echo), the
``/metrics`` content negotiation (JSON default preserved, explicit
Content-Type on both representations), request ids surviving batcher
coalescing, the ``/trace`` endpoint's span and Chrome formats, and the
``--workers 2`` shared-memory path carrying per-step engine spans back
to the front-end buffer.
"""

import sys
import threading

import numpy as np
import pytest

from repro.obs.export import validate_chrome_trace
from repro.obs.trace import Span, filter_request, validate_span_tree
from repro.serve import (
    BatchPolicy,
    ModelRegistry,
    ServeClient,
    start_in_background,
    wait_until_ready,
)
from repro.serve.prom import PROM_CONTENT_TYPE

MODEL = "lenet-F2-fp32"


@pytest.fixture(scope="module")
def traced_server():
    registry = ModelRegistry()
    registry.load(MODEL)
    handle = start_in_background(
        registry,
        policy=BatchPolicy(max_batch_size=4, max_wait_ms=4.0),
        executor_threads=2,
        trace_rate=1.0,
    )
    try:
        wait_until_ready(handle.base_url)
        yield handle
    finally:
        handle.stop()


@pytest.fixture
def client(traced_server):
    with ServeClient(traced_server.base_url) as c:
        yield c


def _sample(seed=0):
    return np.random.default_rng(seed).standard_normal(
        (1, 28, 28)
    ).astype(np.float32)


def _fetch_spans(client, request_id=None):
    doc = client.trace(request_id=request_id, format="spans")
    return [Span.from_dict(d) for d in doc["spans"]]


class TestRequestIds:
    def test_client_request_id_is_respected_and_echoed(self, client):
        response = client.predict_raw(_sample(), model=MODEL,
                                      request_id="my-id-1")
        assert response["request_id"] == "my-id-1"
        assert client.last_response_headers["x-request-id"] == "my-id-1"

    def test_request_id_generated_when_absent(self, client):
        client.predict_raw(_sample(), model=MODEL)
        generated = client.last_response_headers["x-request-id"]
        assert generated.startswith("r-") and len(generated) > 4

    def test_error_responses_carry_the_id_too(self, client):
        from repro.serve.client import ServeError

        with pytest.raises(ServeError):
            client.request("POST", "/predict", {"input": "nonsense"},
                           headers={"X-Request-Id": "bad-req"})
        assert client.last_response_headers["x-request-id"] == "bad-req"


class TestMetricsNegotiation:
    def test_json_default_preserved_with_explicit_content_type(self, client):
        metrics = client.metrics()
        content_type = client.last_response_headers["content-type"]
        assert content_type.startswith("application/json")
        assert "models" in metrics
        assert "trace" in metrics  # additive key, JSON shape kept
        assert metrics["trace"]["rate"] == 1.0

    def test_accept_text_plain_returns_prometheus(self, client):
        client.predict_raw(_sample(), model=MODEL, request_id="prom-ex-1")
        text = client.metrics_text()
        assert client.last_response_headers["content-type"] == (
            PROM_CONTENT_TYPE
        )
        assert "# TYPE repro_request_latency_ms histogram" in text
        assert f'model="{MODEL}"' in text
        # exemplar request-ids ride on latency buckets
        assert 'request_id="' in text

    def test_json_listed_first_wins_negotiation(self, client):
        client.request(
            "GET", "/metrics",
            headers={"Accept": "application/json, text/plain"},
        )
        assert client.last_response_headers["content-type"].startswith(
            "application/json"
        )

    def test_per_step_histograms_appear_when_traced(self, client):
        client.predict_raw(_sample(), model=MODEL)
        text = client.metrics_text()
        assert "repro_step_latency_ms_bucket" in text


class TestTraceEndpoint:
    def test_spans_format_and_tree_well_formed(self, client):
        client.predict_raw(_sample(), model=MODEL, request_id="tree-1")
        spans = _fetch_spans(client)
        assert spans
        assert validate_span_tree(spans, slack_ns=5_000_000) == []
        names = {s.name for s in spans}
        assert {"request", "queue_wait", "batch", "batch_exec",
                "plan_run"} <= names

    def test_request_filter_returns_one_complete_tree(self, client):
        client.predict_raw(_sample(), model=MODEL, request_id="tree-2")
        spans = _fetch_spans(client, request_id="tree-2")
        assert spans
        assert all(
            s.request_id == "tree-2"
            or "tree-2" in (s.attrs.get("request_ids") or ())
            or s.parent_id is not None
            for s in spans
        )
        kernel = [s for s in spans if s.cat == "kernel"]
        assert kernel, "per-step engine spans must be reachable by request id"

    def test_chrome_format_schema_validates(self, client):
        client.predict_raw(_sample(), model=MODEL)
        doc = client.trace(format="chrome")
        assert validate_chrome_trace(doc) == []

    def test_unknown_format_is_400(self, client):
        from repro.serve.client import ServeError

        with pytest.raises(ServeError) as info:
            client.trace(format="nonsense")
        assert info.value.status == 400

    def test_request_id_survives_batch_coalescing(self, traced_server):
        barrier = threading.Barrier(3)
        ids = ["co-a", "co-b", "co-c"]

        def fire(rid):
            with ServeClient(traced_server.base_url) as c:
                barrier.wait()
                c.predict_raw(_sample(), model=MODEL, request_id=rid)

        threads = [threading.Thread(target=fire, args=(rid,)) for rid in ids]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        with ServeClient(traced_server.base_url) as c:
            spans = _fetch_spans(c)
        batches = [s for s in spans if s.name == "batch"]
        coalesced = [b for b in batches
                     if len(set(ids) & set(b.attrs["request_ids"])) >= 2]
        assert coalesced, (
            "3 simultaneous requests against max_wait_ms=4 must coalesce"
        )
        for rid in ids:
            sub = filter_request(spans, rid)
            assert any(s.name == "request" for s in sub)
            assert any(s.name == "queue_wait" for s in sub)


@pytest.mark.skipif(
    not sys.platform.startswith("linux") and sys.platform != "darwin",
    reason="fork-based workers are POSIX-only",
)
class TestWorkersTraced:
    def test_workers2_trace_covers_transport_and_worker_kernels(self):
        registry = ModelRegistry(lazy=True)
        registry.load(MODEL)
        handle = start_in_background(
            registry,
            policy=BatchPolicy(max_batch_size=4, max_wait_ms=4.0),
            workers=2,
            worker_replicas=2,
            trace_rate=1.0,
        )
        try:
            wait_until_ready(handle.base_url)
            with ServeClient(handle.base_url) as c:
                for i in range(3):
                    c.predict_raw(_sample(i), model=MODEL,
                                  request_id=f"w-{i}")
                spans = _fetch_spans(c)
                doc = c.trace(format="chrome")
        finally:
            handle.stop()
        assert validate_span_tree(spans, slack_ns=5_000_000) == []
        assert validate_chrome_trace(doc) == []
        procs = {s.proc for s in spans if s.proc}
        assert any(p.startswith("worker-") for p in procs)
        names = {s.name for s in spans}
        assert {"shm_write", "worker_roundtrip", "shm_read",
                "worker_exec", "plan_run"} <= names
        sub = filter_request(spans, "w-0")
        sub_names = {s.name for s in sub}
        assert {"request", "queue_wait", "worker_roundtrip",
                "plan_run"} <= sub_names
        assert any(s.cat == "kernel"
                   and (s.proc or "").startswith("worker-") for s in sub)
