"""DynamicBatcher: coalescing, policy limits, deadlines, backpressure.

These tests drive the batcher directly on a private event loop with stub
plans (no HTTP, no compilation), so each scenario controls timing
precisely.
"""

import asyncio
import time

import numpy as np
import pytest

from repro.serve.batcher import (
    BatchPolicy,
    DeadlineExceeded,
    DynamicBatcher,
    ExecutionFailed,
    QueueSaturated,
)


class EchoPlan:
    """Returns its input; records the batch sizes it saw."""

    def __init__(self, delay_s: float = 0.0):
        self.delay_s = delay_s
        self.batch_sizes = []

    def run(self, x):
        self.batch_sizes.append(x.shape[0])
        if self.delay_s:
            time.sleep(self.delay_s)
        return np.asarray(x) * 2.0


class FailingPlan:
    def run(self, x):
        raise RuntimeError("kaboom")


def sample(value: float) -> np.ndarray:
    return np.full((1, 2, 2, 2), value, dtype=np.float32)


def run_async(coro):
    return asyncio.run(coro)


class TestCoalescing:
    def test_concurrent_submissions_share_one_batch(self):
        async def scenario():
            plan = EchoPlan(delay_s=0.01)
            batcher = DynamicBatcher(
                plan, BatchPolicy(max_batch_size=8, max_wait_ms=50, max_queue=64)
            )
            await batcher.start()
            try:
                results = await asyncio.gather(
                    *(batcher.submit(sample(i)) for i in range(8))
                )
            finally:
                await batcher.stop()
            return plan, results

        plan, results = run_async(scenario())
        assert 8 in plan.batch_sizes
        assert all(r.batch_size == 8 for r in results)
        # Each request got exactly its own slice, in order.
        for i, r in enumerate(results):
            np.testing.assert_array_equal(r.output, sample(i) * 2.0)
        hist = {
            int(k): v
            for k, v in (
                (size, plan.batch_sizes.count(size)) for size in set(plan.batch_sizes)
            )
        }
        assert hist.get(8) == 1

    def test_max_batch_size_is_honoured(self):
        async def scenario():
            plan = EchoPlan(delay_s=0.005)
            batcher = DynamicBatcher(
                plan,
                BatchPolicy(max_batch_size=4, max_wait_ms=50, max_queue=64),
                max_inflight=1,
            )
            await batcher.start()
            try:
                await asyncio.gather(*(batcher.submit(sample(i)) for i in range(10)))
            finally:
                await batcher.stop()
            return plan

        plan = run_async(scenario())
        assert max(plan.batch_sizes) <= 4
        assert sum(plan.batch_sizes) == 10

    def test_single_request_runs_alone_after_wait(self):
        async def scenario():
            plan = EchoPlan()
            batcher = DynamicBatcher(
                plan, BatchPolicy(max_batch_size=8, max_wait_ms=1, max_queue=8)
            )
            await batcher.start()
            try:
                result = await batcher.submit(sample(3.0))
            finally:
                await batcher.stop()
            return result

        result = run_async(scenario())
        assert result.batch_size == 1
        np.testing.assert_array_equal(result.output, sample(3.0) * 2.0)

    def test_metrics_batch_histogram(self):
        async def scenario():
            plan = EchoPlan(delay_s=0.01)
            batcher = DynamicBatcher(
                plan, BatchPolicy(max_batch_size=8, max_wait_ms=50, max_queue=64)
            )
            await batcher.start()
            try:
                await asyncio.gather(*(batcher.submit(sample(i)) for i in range(8)))
            finally:
                await batcher.stop()
            return batcher.metrics.snapshot()

        snap = run_async(scenario())
        assert snap["requests_total"] == 8
        assert snap["responses_total"] == 8
        assert snap["batch_size_hist"].get("8") == 1
        assert snap["mean_batch_size"] == 8.0
        assert snap["latency"]["count"] == 8


class TestFailureModes:
    def test_backpressure_raises_queue_saturated(self):
        async def scenario():
            plan = EchoPlan(delay_s=0.05)
            batcher = DynamicBatcher(
                plan,
                BatchPolicy(max_batch_size=1, max_wait_ms=0, max_queue=2),
                max_inflight=1,
            )
            await batcher.start()
            rejected = 0
            tasks = []
            try:
                for i in range(12):
                    try:
                        tasks.append(
                            asyncio.ensure_future(batcher.submit(sample(i)))
                        )
                        await asyncio.sleep(0)  # let the queue fill
                    except QueueSaturated:
                        rejected += 1
                results = await asyncio.gather(*tasks, return_exceptions=True)
            finally:
                await batcher.stop()
            rejected += sum(isinstance(r, QueueSaturated) for r in results)
            return rejected, batcher.metrics.snapshot()

        rejected, snap = run_async(scenario())
        assert rejected > 0
        assert snap["rejected_total"] == rejected

    def test_expired_request_never_executes(self):
        async def scenario():
            plan = EchoPlan(delay_s=0.08)
            batcher = DynamicBatcher(
                plan,
                BatchPolicy(max_batch_size=1, max_wait_ms=0, max_queue=16),
                max_inflight=1,
            )
            await batcher.start()
            try:
                first = asyncio.ensure_future(batcher.submit(sample(0)))
                await asyncio.sleep(0.005)  # first is now running (80 ms)
                # The second request can only dispatch after ~80 ms, far
                # past its 20 ms deadline: it must fail without running.
                with pytest.raises(DeadlineExceeded):
                    await batcher.submit(sample(1), deadline_ms=20)
                await first
            finally:
                await batcher.stop()
            return plan, batcher.metrics.snapshot()

        plan, snap = run_async(scenario())
        assert sum(plan.batch_sizes) == 1  # the expired sample never ran
        assert snap["deadline_exceeded_total"] == 1

    def test_kernel_failure_maps_to_execution_failed(self):
        async def scenario():
            batcher = DynamicBatcher(
                FailingPlan(), BatchPolicy(max_batch_size=4, max_wait_ms=1)
            )
            await batcher.start()
            try:
                with pytest.raises(ExecutionFailed, match="kaboom"):
                    await batcher.submit(sample(0))
            finally:
                await batcher.stop()
            return batcher.metrics.snapshot()

        snap = run_async(scenario())
        assert snap["errors_total"] == 1

    def test_submit_before_start_raises(self):
        async def scenario():
            batcher = DynamicBatcher(EchoPlan())
            with pytest.raises(RuntimeError, match="not started"):
                await batcher.submit(sample(0))

        run_async(scenario())

    def test_zero_deadline_disables_expiry(self):
        async def scenario():
            plan = EchoPlan(delay_s=0.03)
            batcher = DynamicBatcher(
                plan,
                BatchPolicy(
                    max_batch_size=1, max_wait_ms=0, max_queue=16,
                    default_deadline_ms=0,
                ),
                max_inflight=1,
            )
            await batcher.start()
            try:
                results = await asyncio.gather(
                    *(batcher.submit(sample(i)) for i in range(3))
                )
            finally:
                await batcher.stop()
            return results

        results = run_async(scenario())
        assert len(results) == 3


class TestPolicyValidation:
    @pytest.mark.parametrize(
        "kwargs",
        [
            {"max_batch_size": 0},
            {"max_wait_ms": -1},
            {"max_queue": 0},
        ],
    )
    def test_invalid_policy_rejected(self, kwargs):
        with pytest.raises(ValueError):
            BatchPolicy(**kwargs)

    def test_policy_to_dict(self):
        policy = BatchPolicy(max_batch_size=4, max_wait_ms=2.5)
        assert policy.to_dict()["max_batch_size"] == 4
        assert policy.to_dict()["max_wait_ms"] == 2.5
