"""Blue/green deploy + rollback tests (docs/operations.md).

Three layers:

* registry semantics — :meth:`ModelRegistry.install` / ``rollback`` /
  ``artifact_paths`` (versioning, one-deep history, reversibility);
* in-process cutover — stub plans injected through the server's
  ``deploy_served`` API: atomic batcher swap, drain-to-zero, health-watch
  auto-rollback on execution-error regressions;
* the full HTTP + worker-process path — boot ``--workers 2`` from a
  compiled artifact, hot-swap to a second artifact mid-load via
  ``POST /models``, assert **zero** failed requests, then roll back.
"""

import asyncio
import json
import threading
import time
import urllib.request

import numpy as np
import pytest

from repro.engine import PlanCache
from repro.serve import (
    BatchPolicy,
    ModelRegistry,
    ServeClient,
    start_in_background,
)
from repro.serve.registry import ModelSpec, ServedModel, compile_served

NAME = "lenet-F2-fp32"


def _stub_served(value: float, version: str = "", fail: bool = False):
    class StubPlan:
        backend = "fast"

        def run(self, x):
            if fail:
                raise RuntimeError("injected regression")
            return np.full((x.shape[0], 4), value, dtype=np.float32)

    return ServedModel(
        spec=ModelSpec.parse(NAME),
        plan=StubPlan(),
        sample_shape=(1, 28, 28),
        version=version,
    )


def _call(handle, coro):
    """Run a server coroutine on the background server's event loop."""
    return asyncio.run_coroutine_threadsafe(coro, handle._loop).result(30)


def _post(url, payload):
    req = urllib.request.Request(
        url, data=json.dumps(payload).encode(), method="POST",
        headers={"Content-Type": "application/json"},
    )
    with urllib.request.urlopen(req) as resp:
        return json.loads(resp.read())


class TestRegistrySemantics:
    def test_install_assigns_versions_and_keeps_previous(self):
        registry = ModelRegistry(cache=PlanCache())
        first = registry.add(_stub_served(1.0, version="v1"))
        old = registry.install(_stub_served(2.0))
        assert old is first
        assert registry.get(NAME).version == "v2"
        assert registry.previous(NAME) is first

    def test_version_collision_gets_fresh_counter(self):
        registry = ModelRegistry(cache=PlanCache())
        registry.add(_stub_served(1.0, version="abc"))
        registry.install(_stub_served(2.0, version="abc"))
        assert registry.get(NAME).version != "abc"

    def test_rollback_swaps_and_is_reversible(self):
        registry = ModelRegistry(cache=PlanCache())
        registry.add(_stub_served(1.0, version="v1"))
        registry.install(_stub_served(2.0, version="v2"))
        assert registry.rollback(NAME).version == "v1"
        assert registry.get(NAME).version == "v1"
        assert registry.previous(NAME).version == "v2"
        registry.rollback(NAME)  # roll forward again
        assert registry.get(NAME).version == "v2"

    def test_rollback_without_history_raises(self):
        registry = ModelRegistry(cache=PlanCache())
        registry.add(_stub_served(1.0))
        with pytest.raises(KeyError):
            registry.rollback(NAME)

    def test_artifact_paths_lists_only_artifact_backed(self):
        registry = ModelRegistry(cache=PlanCache())
        registry.add(_stub_served(1.0))
        assert registry.artifact_paths() == {}
        served = _stub_served(2.0)
        served.artifact = "/tmp/x.rpln"
        registry.install(served)
        assert registry.artifact_paths() == {NAME: "/tmp/x.rpln"}


class TestInProcessCutover:
    def _server(self):
        registry = ModelRegistry(cache=PlanCache())
        registry.add(_stub_served(1.0, version="v1"))
        handle = start_in_background(
            registry,
            policy=BatchPolicy(max_batch_size=4, max_wait_ms=0.5),
            executor_threads=2,
        )
        return registry, handle

    def test_deploy_swaps_outputs_atomically(self):
        registry, handle = self._server()
        try:
            x = np.zeros((1, 28, 28), dtype=np.float32)
            with ServeClient(handle.base_url) as client:
                assert client.predict(x)[0] == 1.0
                event = _call(
                    handle, handle.server.deploy_served(_stub_served(2.0))
                )
                assert event["drained"] is True
                assert event["previous_version"] == "v1"
                assert client.predict(x)[0] == 2.0
                assert registry.get(NAME).version == event["version"]
        finally:
            handle.stop()

    def test_deploy_probe_rejects_broken_plan(self):
        registry, handle = self._server()
        try:
            with pytest.raises(Exception, match="probe"):
                _call(
                    handle,
                    handle.server.deploy_served(_stub_served(9.0, fail=True)),
                )
            # The old deployment never stopped serving.
            assert registry.get(NAME).version == "v1"
            x = np.zeros((1, 28, 28), dtype=np.float32)
            with ServeClient(handle.base_url) as client:
                assert client.predict(x)[0] == 1.0
        finally:
            handle.stop()

    def test_health_regression_rolls_back_automatically(self):
        registry, handle = self._server()
        try:
            x = np.zeros((1, 28, 28), dtype=np.float32)
            event = _call(
                handle,
                handle.server.deploy_served(
                    _stub_served(2.0, fail=True), watch_s=2.0, probe=False
                ),
            )
            assert event["watch_s"] == 2.0
            with ServeClient(handle.base_url) as client:
                with pytest.raises(Exception):
                    client.predict(x)  # the injected regression → HTTP 500
                deadline = time.monotonic() + 5.0
                while time.monotonic() < deadline:
                    if any(
                        e["action"] == "rollback"
                        for e in handle.server.deploy_events
                    ):
                        break
                    time.sleep(0.05)
                assert registry.get(NAME).version == "v1", (
                    "health watch should have rolled back"
                )
                assert client.predict(x)[0] == 1.0
            last = handle.server.deploy_events[-1]
            assert last["action"] == "rollback"
            assert "health regression" in last["reason"]
        finally:
            handle.stop()

    def test_http_rollback_without_history_is_409(self):
        registry, handle = self._server()
        try:
            with pytest.raises(urllib.error.HTTPError) as info:
                _post(
                    handle.base_url + "/models",
                    {"action": "rollback", "model": NAME},
                )
            assert info.value.code == 409
        finally:
            handle.stop()

    def test_http_deploy_missing_artifact_is_404(self):
        registry, handle = self._server()
        try:
            with pytest.raises(urllib.error.HTTPError) as info:
                _post(
                    handle.base_url + "/models",
                    {"artifact": "/nonexistent/path.rpln"},
                )
            assert info.value.code == 404
        finally:
            handle.stop()


@pytest.mark.slow
class TestWorkerModeHotSwap:
    def test_artifact_boot_and_hot_swap_zero_drops(self, tmp_path):
        from repro.engine.artifact import save_plan

        spec = ModelSpec.parse("lenet-F2-fp32@reference")
        paths = []
        for seed in (0, 7):
            served = compile_served(
                ModelSpec(
                    architecture="lenet", algorithm="F2",
                    precision="fp32", backend="reference", seed=seed,
                ),
                cache=PlanCache(),
            )
            path = str(tmp_path / f"lenet_s{seed}.rpln")
            save_plan(
                served.plan, path, input_shape=(1, 1, 28, 28),
                extra={"model": spec.name, "seed": seed},
            )
            paths.append(path)

        registry = ModelRegistry(lazy=True)
        served = registry.load(paths[0])
        assert served.artifact == paths[0]
        handle = start_in_background(
            registry,
            policy=BatchPolicy(max_batch_size=8, max_wait_ms=1.0),
            workers=2,
        )
        failures, ok = [], [0]
        stop = threading.Event()
        rng = np.random.default_rng(0)
        samples = rng.standard_normal((4, 1, 28, 28)).astype(np.float32)

        def hammer(i):
            with ServeClient(handle.base_url) as client:
                while not stop.is_set():
                    try:
                        client.predict(samples[i % 4], model=served.name)
                        ok[0] += 1
                    except Exception as exc:  # noqa: BLE001
                        failures.append(repr(exc))

        threads = [
            threading.Thread(target=hammer, args=(i,)) for i in range(3)
        ]
        try:
            for t in threads:
                t.start()
            time.sleep(0.3)
            event = _post(
                handle.base_url + "/models",
                {"artifact": paths[1], "watch_s": 0.3},
            )
            assert event["drained"] is True
            assert event["version"] != event["previous_version"]
            time.sleep(0.5)
            rb = _post(
                handle.base_url + "/models",
                {"action": "rollback", "model": served.name},
            )
            assert rb["version"] == event["previous_version"]
            time.sleep(0.3)
        finally:
            stop.set()
            for t in threads:
                t.join(timeout=10)
            handle.stop()
        assert ok[0] > 20
        assert failures == [], failures[:5]
