"""Multi-process sharded serving: transport, affinity, fault injection.

The hard guarantees under test (ISSUE 5):

* responses from process workers are **bit-identical** to the in-process
  (``workers=0``) path on the reference backend — same seeded spec, same
  compiled plan, tensors crossing the shm ring unchanged;
* a worker killed with a batch in flight is respawned and the batch is
  retried on the fresh worker, bit-identically, with exactly one
  ``worker_restarts`` increment;
* deterministic model errors surface as failures (HTTP 500), never as
  retries;
* deadline (504) and backpressure (429) behaviour survives the move to
  ``workers=2``;
* per-model affinity places each model on ``replicas`` workers only.
"""

import os
import signal
import sys
import threading
import time

import numpy as np
import pytest

from repro.serve import (
    BatchPolicy,
    ModelRegistry,
    ServeClient,
    ServeError,
    WorkerError,
    WorkerRouter,
    start_in_background,
    wait_until_ready,
)

pytestmark = pytest.mark.skipif(
    sys.platform == "win32" or not hasattr(os, "register_at_fork"),
    reason="fork-based workers are POSIX-only",
)

MODEL = "lenet-F2-fp32@reference"
SAMPLE_SHAPE = (1, 28, 28)


def _expected_plan():
    registry = ModelRegistry()
    return registry.load(MODEL).plan


def _samples(n, seed=0):
    return np.random.default_rng(seed).standard_normal(
        (n,) + SAMPLE_SHAPE
    ).astype(np.float32)


@pytest.fixture(scope="module")
def oracle_plan():
    return _expected_plan()


class TestRouter:
    def test_bit_identity_and_affinity(self, oracle_plan):
        router = WorkerRouter(
            [MODEL], [SAMPLE_SHAPE], workers=2, replicas=2,
            health_interval=None,
        ).start()
        try:
            xs = _samples(4)
            for i in range(4):
                out = router.submit(MODEL, xs[i : i + 1])
                np.testing.assert_array_equal(
                    out, oracle_plan.run(xs[i : i + 1])
                )
            assigned = router.assigned_workers(MODEL)
            assert assigned == router.assigned_workers(MODEL)  # stable
            assert len(assigned) == 2
            stats = router.stats(refresh=True)
            assert stats["worker_restarts"] == 0
            assert stats["shm_bytes_total"] > 0
            # Both replicas actually served traffic (shallowest-queue
            # routing rotates through idle workers).
            served_counts = [
                w.get("requests_total", 0) for w in stats["per_worker"]
            ]
            assert sum(served_counts) == 4 and min(served_counts) >= 1
        finally:
            router.stop()

    def test_replica_placement_bounds_compilation(self):
        """With replicas=1 of 3 workers, exactly one worker ever loads
        the model — the consistent-placement contract that keeps plan
        compilation out of N-1 processes."""
        router = WorkerRouter(
            [MODEL], [SAMPLE_SHAPE], workers=3, replicas=1,
            health_interval=None,
        ).start()
        try:
            for x in _samples(3, seed=1):
                router.submit(MODEL, x[None])
            stats = router.stats(refresh=True)
            loaded = [
                w for w in stats["per_worker"]
                if w.get("plan_cache", {}).get("size", 0) > 0
            ]
            assert len(loaded) == 1
            assert loaded[0]["worker"] == router.assigned_workers(MODEL)[0]
        finally:
            router.stop()

    def test_kill_mid_batch_retries_bit_identical_single_restart(
        self, oracle_plan
    ):
        """The fault-injection contract: SIGSTOP the assigned worker so
        the dispatched batch is provably in flight, SIGKILL it, and the
        response must still arrive — produced by the respawned worker,
        bit-identical, with worker_restarts == 1."""
        router = WorkerRouter(
            [MODEL], [SAMPLE_SHAPE], workers=2, replicas=1,
            health_interval=None,  # respawn via the retry path only
        ).start()
        try:
            x = _samples(1, seed=2)
            expected = oracle_plan.run(x)
            victim_id = router.assigned_workers(MODEL)[0]
            handle = router._handle_for(victim_id)
            victim_pid = handle.pid
            os.kill(victim_pid, signal.SIGSTOP)

            result = {}

            def submit():
                result["out"] = router.submit(MODEL, x)

            thread = threading.Thread(target=submit, daemon=True)
            thread.start()
            deadline = time.monotonic() + 10
            while handle.inflight() < 1:
                assert time.monotonic() < deadline, "batch never dispatched"
                time.sleep(0.005)
            os.kill(victim_pid, signal.SIGKILL)

            thread.join(timeout=120)
            assert not thread.is_alive(), "retried batch never completed"
            np.testing.assert_array_equal(result["out"], expected)
            stats = router.stats(refresh=True)
            assert stats["worker_restarts"] == 1
            fresh = router._handle_for(victim_id)
            assert fresh.pid != victim_pid
            assert fresh.alive()
        finally:
            router.stop()

    def test_hung_worker_detected_and_respawned(self, oracle_plan):
        """A worker that is alive but wedged (SIGSTOP here) answers no
        health ping; once the unanswered-probe age passes hang_timeout
        the monitor kills and respawns it — with no traffic needed to
        trigger recovery."""
        router = WorkerRouter(
            [MODEL], [SAMPLE_SHAPE], workers=1, replicas=1,
            health_interval=0.1, hang_timeout=0.5,
        ).start()
        try:
            x = _samples(1, seed=7)
            router.submit(MODEL, x)  # healthy round trip first
            hung_pid = router._handle_for(0).pid
            os.kill(hung_pid, signal.SIGSTOP)
            deadline = time.monotonic() + 60
            while router.restarts_total() == 0:
                assert time.monotonic() < deadline, "hung worker never respawned"
                time.sleep(0.05)
            out = router.submit(MODEL, x)
            np.testing.assert_array_equal(out, oracle_plan.run(x))
            assert router._handle_for(0).pid != hung_pid
        finally:
            router.stop()

    def test_model_error_is_not_retried(self):
        router = WorkerRouter(
            [MODEL], [SAMPLE_SHAPE], workers=1, replicas=1,
            health_interval=None,
        ).start()
        try:
            with pytest.raises(WorkerError):
                # Unknown spec: the worker's registry.load raises — a
                # deterministic failure that must surface, not retry.
                router.submit("lenet-F2-fp32@nosuchbackend", _samples(1)[0:1])
            assert router.restarts_total() == 0
            # The worker survived the failed request.
            out = router.submit(MODEL, _samples(1)[0:1])
            assert out.shape == (1, 10)
        finally:
            router.stop()

    def test_oversized_batch_falls_back_inline_and_is_counted(self, oracle_plan):
        """A batch bigger than the ring slot still executes (inline pipe
        payload) and the degradation is visible in the worker stats."""
        router = WorkerRouter(
            [MODEL], [SAMPLE_SHAPE], workers=1, replicas=1,
            slot_bytes=4 * int(np.prod(SAMPLE_SHAPE)),  # one sample only
            health_interval=None,
        ).start()
        try:
            xs = _samples(4, seed=3)
            out = router.submit(MODEL, xs)  # 4 samples > 1-sample slot
            np.testing.assert_array_equal(out, oracle_plan.run(xs))
            handle = router._handle_for(router.assigned_workers(MODEL)[0])
            stats = handle.ping(timeout=10)
            assert stats["inline_requests"] >= 1
        finally:
            router.stop()


class TestServerWithWorkers:
    def test_http_bit_identical_to_in_process_and_metrics(self, oracle_plan):
        xs = _samples(5, seed=4)
        registry0 = ModelRegistry()
        registry0.load(MODEL)
        with start_in_background(
            registry0, policy=BatchPolicy(max_batch_size=4)
        ) as h0:
            wait_until_ready(h0.base_url)
            with ServeClient(h0.base_url) as c:
                baseline = [c.predict(x, model=MODEL, encoding="b64") for x in xs]

        registry = ModelRegistry(lazy=True)
        registry.load(MODEL)
        with start_in_background(
            registry, policy=BatchPolicy(max_batch_size=4),
            workers=2, worker_replicas=2,
        ) as handle:
            wait_until_ready(handle.base_url)
            with ServeClient(handle.base_url) as c:
                outs = [c.predict(x, model=MODEL, encoding="b64") for x in xs]
                metrics = c.metrics()
        for got, want in zip(outs, baseline):
            np.testing.assert_array_equal(got, want)
        pool = metrics["worker_pool"]
        assert metrics["workers"] == 2
        assert pool["count"] == 2 and pool["replicas"] == 2
        assert pool["worker_restarts"] == 0
        assert pool["shm_bytes_total"] > 0
        assert pool["assignments"][MODEL] == [0, 1] or sorted(
            pool["assignments"][MODEL]
        ) == [0, 1]
        for worker in pool["per_worker"]:
            assert worker["alive"]
            assert "queue_depth" in worker and "shm_bytes" in worker
            assert worker["plan_cache"]["size"] >= 1  # each owns its cache

    def test_deadline_504_and_backpressure_429_with_workers(self):
        """PR 2's failure semantics re-verified on the sharded path:
        a saturated 1-replica queue must reject with 429, and queued
        requests that age past their deadline must 504 — while accepted
        requests still answer bit-identically."""
        registry = ModelRegistry(lazy=True)
        registry.load(MODEL)
        with start_in_background(
            registry,
            policy=BatchPolicy(
                max_batch_size=1, max_wait_ms=0, max_queue=2,
                default_deadline_ms=30000,
            ),
            workers=2, worker_replicas=1,
        ) as handle:
            wait_until_ready(handle.base_url)
            statuses, lock = [], threading.Lock()
            x = _samples(1, seed=5)[0]

            def fire(deadline_ms):
                try:
                    with ServeClient(handle.base_url) as c:
                        c.predict(x, model=MODEL, deadline_ms=deadline_ms)
                    status = 200
                except ServeError as exc:
                    status = exc.status
                with lock:
                    statuses.append(status)

            threads = [
                threading.Thread(target=fire, args=(0.05,), daemon=True)
                for _ in range(16)
            ]
            for t in threads:
                t.start()
            for t in threads:
                t.join(60)
        assert 429 in statuses, statuses  # queue of 2 cannot hold 16
        # Accepted-but-queued requests aged far past the 0.05 ms deadline.
        assert 504 in statuses, statuses
        assert all(s in (200, 429, 504) for s in statuses), statuses


def test_probe_plan_mode_workers(oracle_plan):
    """served_latency_ms(workers=1) shards a *plan object* (inherited
    through fork — no registry) and must return a sane latency."""
    from repro.serve import served_latency_ms

    x = _samples(1, seed=6)
    ms = served_latency_ms(
        oracle_plan, x, concurrency=2, requests_per_client=2, workers=1
    )
    assert np.isfinite(ms) and ms > 0
