"""ModelSpec naming and the serving registry."""

import numpy as np
import pytest

from repro.engine import PlanCache
from repro.serve.registry import ModelRegistry, ModelSpec, ServedModel


class TestModelSpec:
    def test_canonical_name_round_trips(self):
        for name in (
            "resnet18-w0.25-F4-int8",
            "lenet-F2-fp32",
            "squeezenet-w0.5-F4-flex-int10",
            "resnext20-w0.5-im2row-fp32",
            "resnet18-w0.25-F4-int8@reference",
        ):
            assert ModelSpec.parse(name).name == name

    def test_width_defaults_per_architecture(self):
        assert ModelSpec.parse("resnet18-F4-int8").effective_width == 0.25
        assert ModelSpec.parse("squeezenet-F4-fp32").effective_width == 0.5
        assert ModelSpec.parse("lenet-F2-fp32").effective_width is None

    def test_default_backend_is_fast(self):
        assert ModelSpec.parse("lenet-F2-fp32").backend == "fast"

    def test_sample_shape(self):
        assert ModelSpec.parse("lenet-F2-fp32").sample_shape == (1, 28, 28)
        assert ModelSpec.parse("resnet18-F4-int8").sample_shape == (3, 32, 32)

    @pytest.mark.parametrize(
        "bad", ["", "resnet18", "unknownarch-F4-int8", "resnet18-wabc-F4-int8"]
    )
    def test_bad_names_rejected(self, bad):
        with pytest.raises(ValueError):
            ModelSpec.parse(bad)

    def test_to_dict_fields(self):
        info = ModelSpec.parse("resnet18-w0.25-F4-int8").to_dict()
        assert info["name"] == "resnet18-w0.25-F4-int8"
        assert info["sample_shape"] == [3, 32, 32]
        assert info["backend"] == "fast"


class TestModelRegistry:
    def test_load_is_idempotent_and_shares_plan_cache(self):
        cache = PlanCache()
        registry = ModelRegistry(cache=cache)
        first = registry.load("lenet-F2-fp32")
        second = registry.load("lenet-F2-fp32")
        assert first is second
        assert len(registry) == 1
        assert len(cache) == 1

    def test_variants_live_side_by_side(self):
        registry = ModelRegistry(cache=PlanCache())
        fast = registry.load("lenet-F2-fp32")
        ref = registry.load("lenet-F2-fp32@reference")
        assert fast is not ref
        assert set(registry.names()) == {"lenet-F2-fp32", "lenet-F2-fp32@reference"}
        assert fast.plan.backend == "fast"
        assert ref.plan.backend == "reference"

    def test_unknown_model_raises_keyerror_naming_loaded(self):
        registry = ModelRegistry(cache=PlanCache())
        registry.load("lenet-F2-fp32")
        with pytest.raises(KeyError, match="lenet-F2-fp32"):
            registry.get("resnet18-w0.25-F4-int8")

    def test_loaded_plan_is_calibrated_and_deterministic(self):
        """Two independent registries of the same int8 spec serve
        identical outputs: the calibration pass fixes observer ranges."""
        x = np.random.default_rng(7).standard_normal((1, 1, 28, 28)).astype(
            np.float32
        )
        outs = []
        for _ in range(2):
            registry = ModelRegistry(cache=PlanCache())
            served = registry.load("lenet-F2-int8")
            outs.append(served.plan.run(x))
        np.testing.assert_array_equal(outs[0], outs[1])

    def test_validate_input_accepts_chw_and_nchw(self):
        registry = ModelRegistry(cache=PlanCache())
        served = registry.load("lenet-F2-fp32")
        chw = np.zeros((1, 28, 28), dtype=np.float32)
        assert served.validate_input(chw).shape == (1, 1, 28, 28)
        assert served.validate_input(chw[None]).shape == (1, 1, 28, 28)
        with pytest.raises(ValueError):
            served.validate_input(np.zeros((3, 28, 28), dtype=np.float32))
        with pytest.raises(ValueError):
            served.validate_input(np.zeros((2, 1, 28, 28), dtype=np.float32))

    def test_add_custom_served_model(self):
        class StubPlan:
            backend = "fast"

            def run(self, x):
                return x.sum(axis=(1, 2, 3), keepdims=False)[:, None]

        registry = ModelRegistry(cache=PlanCache())
        spec = ModelSpec.parse("lenet-F2-fp32")
        registry.add(ServedModel(spec=spec, plan=StubPlan(), sample_shape=(1, 28, 28)))
        assert "lenet-F2-fp32" in registry
        assert registry.get("lenet-F2-fp32").plan.run(
            np.ones((2, 1, 28, 28), dtype=np.float32)
        ).shape == (2, 1)
