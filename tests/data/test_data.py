"""Synthetic datasets, loaders, augmentation."""

import numpy as np
import pytest

from repro.data import (
    DataLoader,
    augment_batch,
    make_cifar10_like,
    make_cifar100_like,
    make_mnist_like,
    random_crop,
    random_flip,
    synthetic_images,
)


class TestSyntheticImages:
    def test_shapes_and_dtypes(self):
        ds = synthetic_images(30, 10, channels=3, size=16)
        assert ds.images.shape == (30, 3, 16, 16)
        assert ds.images.dtype == np.float32
        assert ds.labels.shape == (30,)
        assert ds.num_classes == 10

    def test_deterministic(self):
        a = synthetic_images(20, 5, size=12, seed=7)
        b = synthetic_images(20, 5, size=12, seed=7)
        np.testing.assert_array_equal(a.images, b.images)

    def test_seed_changes_samples(self):
        a = synthetic_images(20, 5, size=12, seed=1)
        b = synthetic_images(20, 5, size=12, seed=2)
        assert not np.array_equal(a.images, b.images)

    def test_labels_interleaved_balanced(self):
        ds = synthetic_images(40, 10, size=8)
        counts = np.bincount(ds.labels, minlength=10)
        assert (counts == 4).all()

    def test_prefix_subset_balanced(self):
        ds = synthetic_images(40, 10, size=8).subset(20)
        counts = np.bincount(ds.labels, minlength=10)
        assert (counts == 2).all()

    def test_standardised(self):
        ds = synthetic_images(100, 10, size=16)
        assert abs(ds.images.mean()) < 0.05
        assert abs(ds.images.std() - 1.0) < 0.1

    def test_invalid_sizes_rejected(self):
        with pytest.raises(ValueError):
            synthetic_images(0, 10)
        with pytest.raises(ValueError):
            synthetic_images(10, 0)

    def test_split(self):
        ds = synthetic_images(40, 10, size=8)
        a, b = ds.split(0.5)
        assert len(a) == len(b) == 20


class TestTaskConsistency:
    """Train and test splits must share class prototypes (same task)."""

    def test_cifar10_like_class_means_correlate(self):
        train, test = make_cifar10_like(200, 200, size=16)
        for cls in range(3):
            tr = train.images[train.labels == cls].mean(axis=0).ravel()
            te = test.images[test.labels == cls].mean(axis=0).ravel()
            corr = np.corrcoef(tr, te)[0, 1]
            assert corr > 0.5, f"class {cls} prototypes differ between splits"

    def test_train_test_samples_differ(self):
        train, test = make_cifar10_like(50, 50, size=16)
        assert not np.array_equal(train.images[:10], test.images[:10])

    def test_mnist_like_single_channel(self):
        train, test = make_mnist_like(30, 10, size=20)
        assert train.images.shape[1] == 1
        assert test.images.shape[1] == 1

    def test_cifar100_like_class_count(self):
        train, _ = make_cifar100_like(60, 30, size=16, num_classes=20)
        assert train.num_classes == 20
        assert train.labels.max() == 19


class TestDataLoader:
    def test_batching_covers_dataset(self):
        ds = synthetic_images(25, 5, size=8)
        loader = DataLoader(ds, batch_size=10, shuffle=False)
        batches = list(loader)
        assert len(loader) == 3
        assert [len(b[1]) for b in batches] == [10, 10, 5]

    def test_shuffle_changes_order_across_epochs(self):
        ds = synthetic_images(30, 5, size=8)
        loader = DataLoader(ds, batch_size=30, shuffle=True, seed=0)
        first = next(iter(loader))[1].copy()
        second = next(iter(loader))[1].copy()
        assert not np.array_equal(first, second)

    def test_no_shuffle_preserves_order(self):
        ds = synthetic_images(20, 5, size=8)
        loader = DataLoader(ds, batch_size=20, shuffle=False)
        _, labels = next(iter(loader))
        np.testing.assert_array_equal(labels, ds.labels)

    def test_augment_applied(self):
        ds = synthetic_images(10, 5, size=8)
        marker = lambda imgs, rng: imgs * 0.0
        loader = DataLoader(ds, batch_size=10, augment=marker)
        images, _ = next(iter(loader))
        assert images.sum() == 0

    def test_invalid_batch_size(self):
        ds = synthetic_images(10, 5, size=8)
        with pytest.raises(ValueError):
            DataLoader(ds, batch_size=0)


class TestAugmentation:
    def test_random_crop_preserves_shape(self, rng):
        x = rng.standard_normal((4, 3, 16, 16)).astype(np.float32)
        out = random_crop(x, rng)
        assert out.shape == x.shape

    def test_random_flip_probability_extremes(self, rng):
        x = rng.standard_normal((4, 3, 8, 8)).astype(np.float32)
        never = random_flip(x, rng, p=0.0)
        np.testing.assert_array_equal(never, x)
        always = random_flip(x, rng, p=1.0)
        np.testing.assert_array_equal(always, x[:, :, :, ::-1])

    def test_augment_batch_changes_images(self, rng):
        x = rng.standard_normal((8, 3, 16, 16)).astype(np.float32)
        out = augment_batch(x, rng)
        assert out.shape == x.shape
        assert not np.array_equal(out, x)
