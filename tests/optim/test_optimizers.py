"""Optimizers: convergence and update rules."""

import numpy as np
import pytest

from repro.autograd import Tensor
from repro.nn.module import Parameter
from repro.optim import SGD, Adam, ConstantLR, CosineAnnealingLR, StepLR


def quadratic_loss(p: Parameter) -> Tensor:
    """f(w) = ||w - 3||², minimised at 3."""
    diff = p - 3.0
    return (diff * diff).sum()


def run_steps(opt, p, n=200):
    for _ in range(n):
        opt.zero_grad()
        quadratic_loss(p).backward()
        opt.step()


class TestSGD:
    def test_converges_on_quadratic(self):
        p = Parameter(np.zeros(3, dtype=np.float32))
        run_steps(SGD([p], lr=0.1), p)
        np.testing.assert_allclose(p.data, 3.0, atol=1e-3)

    def test_momentum_converges(self):
        p = Parameter(np.zeros(3, dtype=np.float32))
        run_steps(SGD([p], lr=0.05, momentum=0.9), p)
        np.testing.assert_allclose(p.data, 3.0, atol=1e-3)

    def test_nesterov_converges(self):
        p = Parameter(np.zeros(3, dtype=np.float32))
        run_steps(SGD([p], lr=0.05, momentum=0.9, nesterov=True), p)
        np.testing.assert_allclose(p.data, 3.0, atol=1e-3)

    def test_plain_sgd_update_rule(self):
        p = Parameter(np.array([1.0], dtype=np.float32))
        p.grad = np.array([2.0], dtype=np.float32)
        SGD([p], lr=0.5).step()
        np.testing.assert_allclose(p.data, [0.0])

    def test_weight_decay_pulls_toward_zero(self):
        p = Parameter(np.array([1.0], dtype=np.float32))
        opt = SGD([p], lr=0.1, weight_decay=1.0)
        p.grad = np.zeros(1, dtype=np.float32)
        opt.step()
        assert p.data[0] < 1.0

    def test_nesterov_without_momentum_rejected(self):
        with pytest.raises(ValueError):
            SGD([Parameter(np.zeros(1))], lr=0.1, nesterov=True)

    def test_requires_parameters(self):
        with pytest.raises(ValueError):
            SGD([], lr=0.1)

    def test_missing_grad_treated_as_zero(self):
        p = Parameter(np.array([5.0], dtype=np.float32))
        SGD([p], lr=0.1).step()
        np.testing.assert_allclose(p.data, [5.0])


class TestAdam:
    def test_converges_on_quadratic(self):
        p = Parameter(np.zeros(3, dtype=np.float32))
        run_steps(Adam([p], lr=0.1), p, n=300)
        np.testing.assert_allclose(p.data, 3.0, atol=1e-2)

    def test_first_step_magnitude_is_lr(self):
        # bias correction makes the first Adam step ≈ lr in magnitude
        p = Parameter(np.array([0.0], dtype=np.float32))
        opt = Adam([p], lr=0.01)
        p.grad = np.array([123.0], dtype=np.float32)
        opt.step()
        assert abs(p.data[0] + 0.01) < 1e-4

    def test_beta1_zero_leaves_ungradiented_params_still(self):
        """wiNAS relies on β₁=0: a parameter with zero grad this step
        receives no update even if it had gradients before."""
        p = Parameter(np.array([1.0], dtype=np.float32))
        opt = Adam([p], lr=0.1, betas=(0.0, 0.999))
        p.grad = np.array([1.0], dtype=np.float32)
        opt.step()
        moved = p.data.copy()
        p.grad = np.array([0.0], dtype=np.float32)
        opt.step()
        np.testing.assert_allclose(p.data, moved)

    def test_invalid_betas(self):
        with pytest.raises(ValueError):
            Adam([Parameter(np.zeros(1))], betas=(1.0, 0.9))


class TestSchedulers:
    def _opt(self):
        return SGD([Parameter(np.zeros(1))], lr=1.0)

    def test_cosine_endpoints(self):
        opt = self._opt()
        sched = CosineAnnealingLR(opt, t_max=10)
        assert opt.lr == 1.0
        for _ in range(5):
            sched.step()
        assert opt.lr == pytest.approx(0.5, abs=1e-6)
        for _ in range(5):
            sched.step()
        assert opt.lr == pytest.approx(0.0, abs=1e-6)

    def test_cosine_monotone_decreasing(self):
        opt = self._opt()
        sched = CosineAnnealingLR(opt, t_max=20)
        lrs = []
        for _ in range(20):
            sched.step()
            lrs.append(opt.lr)
        assert all(a >= b for a, b in zip(lrs, lrs[1:]))

    def test_cosine_clamps_after_t_max(self):
        opt = self._opt()
        sched = CosineAnnealingLR(opt, t_max=5, eta_min=0.1)
        for _ in range(10):
            sched.step()
        assert opt.lr == pytest.approx(0.1)

    def test_step_lr(self):
        opt = self._opt()
        sched = StepLR(opt, step_size=2, gamma=0.1)
        sched.step()
        assert opt.lr == pytest.approx(1.0)
        sched.step()
        assert opt.lr == pytest.approx(0.1)

    def test_constant_lr(self):
        opt = self._opt()
        sched = ConstantLR(opt)
        sched.step()
        assert opt.lr == 1.0

    def test_invalid_t_max(self):
        with pytest.raises(ValueError):
            CosineAnnealingLR(self._opt(), t_max=0)
