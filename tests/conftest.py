"""Shared fixtures and hypothesis configuration."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import HealthCheck, settings

# Deterministic, CI-friendly hypothesis profile: these tests exercise
# numerical kernels where each example is comparatively expensive.
settings.register_profile(
    "repro",
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
settings.load_profile("repro")


@pytest.fixture(autouse=True)
def _deterministic_init():
    """Reseed the module-level initialiser RNG before every test so model
    construction is independent of test execution order."""
    from repro.nn import init

    init.set_default_rng(0)
    yield


@pytest.fixture
def rng() -> np.random.Generator:
    return np.random.default_rng(0)


@pytest.fixture
def rng64() -> np.random.Generator:
    """Generator dedicated to float64 gradcheck inputs."""
    return np.random.default_rng(1234)
