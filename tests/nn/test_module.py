"""Module registration, iteration, state, and parameter sharing."""

import numpy as np
import pytest

from repro.autograd import Tensor
from repro.nn.module import Buffer, Module, ModuleList, Parameter, Sequential


class Leaf(Module):
    def __init__(self):
        super().__init__()
        self.weight = Parameter(np.ones(3, dtype=np.float32))
        self.register_buffer("stat", np.zeros(2, dtype=np.float32))

    def forward(self, x):
        return x * self.weight.data.sum()


class Tree(Module):
    def __init__(self):
        super().__init__()
        self.a = Leaf()
        self.b = Leaf()
        self.top = Parameter(np.zeros(1, dtype=np.float32))

    def forward(self, x):
        return self.b(self.a(x))


class TestRegistration:
    def test_parameters_discovered_recursively(self):
        t = Tree()
        names = {n for n, _ in t.named_parameters()}
        assert names == {"top", "a.weight", "b.weight"}

    def test_buffers_discovered(self):
        t = Tree()
        names = {n for n, _ in t.named_buffers()}
        assert names == {"a.stat", "b.stat"}

    def test_reassignment_moves_between_registries(self):
        leaf = Leaf()
        leaf.weight = Buffer(np.zeros(3))
        assert "weight" not in leaf._parameters
        assert "weight" in leaf._buffers

    def test_num_parameters(self):
        assert Tree().num_parameters() == 7

    def test_named_modules(self):
        t = Tree()
        names = {n for n, _ in t.named_modules()}
        assert names == {"", "a", "b"}

    def test_shared_parameters_deduplicated(self):
        t = Tree()
        t.b.weight = t.a.weight  # share
        params = t.parameters()
        assert len(params) == 2  # top + shared weight
        assert sum(1 for _ in t.named_parameters()) == 3  # names keep both


class TestTrainEval:
    def test_mode_propagates(self):
        t = Tree()
        t.eval()
        assert not t.training and not t.a.training
        t.train()
        assert t.training and t.b.training


class TestStateDict:
    def test_roundtrip(self):
        t1, t2 = Tree(), Tree()
        t1.a.weight.data[:] = 7.0
        t1.a.stat.data[:] = 3.0
        t2.load_state_dict(t1.state_dict())
        np.testing.assert_array_equal(t2.a.weight.data, t1.a.weight.data)
        np.testing.assert_array_equal(t2.a.stat.data, t1.a.stat.data)

    def test_state_dict_copies(self):
        t = Tree()
        sd = t.state_dict()
        sd["a.weight"][:] = -1
        assert t.a.weight.data[0] == 1.0

    def test_strict_missing_raises(self):
        t = Tree()
        sd = t.state_dict()
        del sd["a.weight"]
        with pytest.raises(KeyError):
            t.load_state_dict(sd)

    def test_non_strict_ignores_extras(self):
        t = Tree()
        sd = t.state_dict()
        sd["bogus"] = np.zeros(1)
        t.load_state_dict(sd, strict=False)

    def test_shape_mismatch_raises(self):
        t = Tree()
        sd = t.state_dict()
        sd["a.weight"] = np.zeros(5)
        with pytest.raises(ValueError):
            t.load_state_dict(sd)


class TestContainers:
    def test_sequential_applies_in_order(self):
        class AddOne(Module):
            def forward(self, x):
                return x + 1.0

        class Double(Module):
            def forward(self, x):
                return x * 2.0

        seq = Sequential(AddOne(), Double())
        out = seq(Tensor([1.0]))
        np.testing.assert_allclose(out.data, [4.0])
        assert len(seq) == 2
        assert isinstance(seq[0], AddOne)

    def test_module_list_registration(self):
        ml = ModuleList([Leaf(), Leaf()])
        assert len(ml) == 2
        assert len(list(ml)) == 2
        names = {n for n, _ in ml.named_parameters()}
        assert names == {"0.weight", "1.weight"}

    def test_module_list_forward_raises(self):
        with pytest.raises(RuntimeError):
            ModuleList([Leaf()])(Tensor([1.0]))

    def test_zero_grad_clears_all(self):
        t = Tree()
        for p in t.parameters():
            p.grad = np.ones_like(p.data)
        t.zero_grad()
        assert all(p.grad is None for p in t.parameters())
