"""Layer modules vs reference implementations."""

import numpy as np
import pytest

from repro.autograd import Tensor, gradcheck
from repro.nn import functional as F
from repro.nn.layers import (
    AvgPool2d,
    BatchNorm2d,
    Conv2d,
    Flatten,
    GlobalAvgPool2d,
    Identity,
    Linear,
    MaxPool2d,
    ReLU,
)
from repro.winograd.functional import direct_conv2d


class TestLinear:
    def test_forward_matches_numpy(self, rng):
        layer = Linear(4, 3)
        x = rng.standard_normal((5, 4)).astype(np.float32)
        expected = x @ layer.weight.data.T + layer.bias.data
        np.testing.assert_allclose(layer(Tensor(x)).data, expected, rtol=1e-5)

    def test_no_bias(self, rng):
        layer = Linear(4, 3, bias=False)
        assert layer.bias is None
        x = rng.standard_normal((2, 4)).astype(np.float32)
        np.testing.assert_allclose(layer(Tensor(x)).data, x @ layer.weight.data.T, rtol=1e-5)

    def test_gradcheck(self, rng64):
        layer = Linear(3, 2)
        layer.weight.data = layer.weight.data.astype(np.float64)
        layer.bias.data = layer.bias.data.astype(np.float64)
        x = Tensor(rng64.standard_normal((4, 3)), requires_grad=True)
        gradcheck(lambda x_: layer(x_), [x])


class TestConv2d:
    @pytest.mark.parametrize("stride,padding", [(1, 1), (2, 1), (1, 0), (2, 0)])
    def test_matches_direct(self, stride, padding, rng):
        conv = Conv2d(3, 5, 3, stride=stride, padding=padding)
        x = rng.standard_normal((2, 3, 9, 9)).astype(np.float32)
        expected = direct_conv2d(
            x.astype(np.float64),
            conv.weight.data.astype(np.float64),
            bias=conv.bias.data.astype(np.float64),
            padding=padding,
            stride=stride,
        )
        np.testing.assert_allclose(conv(Tensor(x)).data, expected, atol=1e-4)

    def test_1x1_conv(self, rng):
        conv = Conv2d(4, 2, 1)
        x = rng.standard_normal((1, 4, 5, 5)).astype(np.float32)
        y = conv(Tensor(x))
        assert y.shape == (1, 2, 5, 5)
        expected = np.einsum("nchw,kc->nkhw", x, conv.weight.data[:, :, 0, 0]) + \
            conv.bias.data.reshape(1, 2, 1, 1)
        np.testing.assert_allclose(y.data, expected, atol=1e-5)

    def test_grouped_equals_blockwise(self, rng):
        conv = Conv2d(4, 6, 3, padding=1, groups=2)
        x = rng.standard_normal((1, 4, 6, 6)).astype(np.float32)
        y = conv(Tensor(x)).data
        # compute each group separately with direct conv
        for g in range(2):
            xg = x[:, 2 * g : 2 * g + 2].astype(np.float64)
            wg = conv.weight.data[3 * g : 3 * g + 3].astype(np.float64)
            bg = conv.bias.data[3 * g : 3 * g + 3].astype(np.float64)
            expected = direct_conv2d(xg, wg, bias=bg, padding=1)
            np.testing.assert_allclose(y[:, 3 * g : 3 * g + 3], expected, atol=1e-4)

    def test_invalid_groups_raises(self):
        with pytest.raises(ValueError):
            Conv2d(3, 4, 3, groups=2)

    def test_invalid_method_raises(self):
        with pytest.raises(ValueError):
            Conv2d(3, 4, 3, method="winograd")

    def test_records_last_input_hw(self, rng):
        conv = Conv2d(3, 4, 3, padding=1)
        conv(Tensor(rng.standard_normal((1, 3, 7, 9)).astype(np.float32)))
        assert conv.last_input_hw == (7, 9)

    def test_gradcheck_grouped(self, rng64):
        conv = Conv2d(4, 4, 3, padding=1, groups=2)
        conv.weight.data = conv.weight.data.astype(np.float64)
        conv.bias.data = conv.bias.data.astype(np.float64)
        x = Tensor(rng64.standard_normal((1, 4, 5, 5)), requires_grad=True)
        gradcheck(lambda x_: conv(x_), [x])


class TestPooling:
    def test_maxpool_values(self):
        x = np.arange(16, dtype=np.float32).reshape(1, 1, 4, 4)
        out = MaxPool2d(2, 2)(Tensor(x))
        np.testing.assert_array_equal(out.data[0, 0], [[5, 7], [13, 15]])

    def test_maxpool_default_stride_is_kernel(self, rng):
        x = Tensor(rng.standard_normal((1, 2, 6, 6)).astype(np.float32))
        assert MaxPool2d(3)(x).shape == (1, 2, 2, 2)

    def test_avgpool_values(self):
        x = np.arange(16, dtype=np.float32).reshape(1, 1, 4, 4)
        out = AvgPool2d(2, 2)(Tensor(x))
        np.testing.assert_allclose(out.data[0, 0], [[2.5, 4.5], [10.5, 12.5]])

    def test_global_avg_pool(self, rng):
        x = rng.standard_normal((2, 3, 4, 5)).astype(np.float32)
        out = GlobalAvgPool2d()(Tensor(x))
        np.testing.assert_allclose(out.data, x.mean(axis=(2, 3)), rtol=1e-5)

    def test_maxpool_gradient_routes_to_argmax(self):
        x = Tensor(
            np.array([[[[1.0, 2.0], [3.0, 4.0]]]], dtype=np.float32), requires_grad=True
        )
        MaxPool2d(2, 2)(x).sum().backward()
        np.testing.assert_array_equal(x.grad[0, 0], [[0, 0], [0, 1]])


class TestBatchNorm:
    def test_train_normalises_batch(self, rng):
        bn = BatchNorm2d(3)
        x = Tensor((rng.standard_normal((8, 3, 4, 4)) * 5 + 2).astype(np.float32))
        out = bn(x).data
        assert abs(out.mean()) < 1e-4
        assert abs(out.std() - 1.0) < 1e-2

    def test_running_stats_updated_in_train_only(self, rng):
        bn = BatchNorm2d(2)
        x = Tensor((rng.standard_normal((4, 2, 3, 3)) + 10).astype(np.float32))
        bn(x)
        after_train = bn.running_mean.data.copy()
        assert after_train.sum() != 0
        bn.eval()
        bn(x)
        np.testing.assert_array_equal(bn.running_mean.data, after_train)

    def test_eval_uses_running_stats(self, rng):
        bn = BatchNorm2d(2, momentum=1.0)  # running stats = last batch stats
        x = (rng.standard_normal((16, 2, 4, 4)) * 3 + 1).astype(np.float32)
        bn(Tensor(x))
        bn.eval()
        out = bn(Tensor(x)).data
        assert abs(out.mean()) < 0.1

    def test_affine_params_learn(self, rng):
        bn = BatchNorm2d(2)
        x = Tensor(rng.standard_normal((4, 2, 3, 3)).astype(np.float32))
        (bn(x) * 2.0).sum().backward()
        assert bn.weight.grad is not None
        assert bn.bias.grad is not None


class TestSmallModules:
    def test_relu_module(self):
        out = ReLU()(Tensor([-1.0, 2.0]))
        np.testing.assert_array_equal(out.data, [0.0, 2.0])

    def test_flatten(self, rng):
        x = Tensor(rng.standard_normal((2, 3, 4, 5)).astype(np.float32))
        assert Flatten()(x).shape == (2, 60)

    def test_identity(self):
        x = Tensor([1.0])
        assert Identity()(x) is x
