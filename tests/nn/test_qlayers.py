"""Quantized wrappers for standard layers (the tables' INT8 baselines)."""

import numpy as np
import pytest

from repro.autograd import Tensor
from repro.nn.layers import Conv2d, Linear
from repro.nn.qlayers import QuantConv2d, QuantLinear
from repro.quant.qconfig import QConfig, fp32, int8


class TestQuantConv2d:
    def test_fp32_config_matches_plain_conv(self, rng):
        conv = Conv2d(3, 4, 3, padding=1)
        wrapped = QuantConv2d(conv, fp32())
        x = Tensor(rng.standard_normal((2, 3, 8, 8)).astype(np.float32))
        np.testing.assert_allclose(wrapped(x).data, conv(x).data, atol=1e-6)

    def test_int8_output_close_but_not_identical(self, rng):
        conv = Conv2d(3, 4, 3, padding=1)
        wrapped = QuantConv2d(conv, int8())
        x = Tensor(rng.standard_normal((2, 3, 8, 8)).astype(np.float32))
        q = wrapped(x).data
        full = conv(x).data
        err = np.abs(q - full).mean() / np.abs(full).mean()
        assert 0 < err < 0.2

    def test_lower_bits_increase_error(self, rng):
        conv = Conv2d(3, 4, 3, padding=1)
        x = Tensor(rng.standard_normal((2, 3, 8, 8)).astype(np.float32))
        full = conv(x).data
        errors = []
        for bits in (16, 8, 4):
            wrapped = QuantConv2d(conv, QConfig(bits=bits))
            errors.append(float(np.abs(wrapped(x).data - full).mean()))
        assert errors[0] < errors[1] < errors[2]

    def test_gradients_flow_to_conv_params(self, rng):
        conv = Conv2d(3, 4, 3, padding=1)
        wrapped = QuantConv2d(conv, int8())
        x = Tensor(rng.standard_normal((1, 3, 8, 8)).astype(np.float32))
        wrapped(x).sum().backward()
        assert conv.weight.grad is not None
        assert np.abs(conv.weight.grad).sum() > 0

    def test_method_passthrough(self):
        conv = Conv2d(3, 4, 3, method="im2col")
        assert QuantConv2d(conv, int8()).method == "im2col"

    def test_records_shape_for_hardware_model(self, rng):
        conv = Conv2d(3, 4, 3, padding=1)
        wrapped = QuantConv2d(conv, int8())
        wrapped(Tensor(rng.standard_normal((1, 3, 9, 7)).astype(np.float32)))
        assert conv.last_input_hw == (9, 7)

    def test_grouped_conv_supported(self, rng):
        conv = Conv2d(4, 4, 3, padding=1, groups=2)
        wrapped = QuantConv2d(conv, int8())
        out = wrapped(Tensor(rng.standard_normal((1, 4, 6, 6)).astype(np.float32)))
        assert out.shape == (1, 4, 6, 6)


class TestQuantLinear:
    def test_fp32_matches_plain(self, rng):
        linear = Linear(6, 3)
        wrapped = QuantLinear(linear, fp32())
        x = Tensor(rng.standard_normal((4, 6)).astype(np.float32))
        np.testing.assert_allclose(wrapped(x).data, linear(x).data, atol=1e-6)

    def test_int8_quantizes(self, rng):
        linear = Linear(6, 3)
        wrapped = QuantLinear(linear, int8())
        x = Tensor(rng.standard_normal((4, 6)).astype(np.float32))
        out = wrapped(x)
        assert out.shape == (4, 3)
        assert not np.allclose(out.data, linear(x).data)

    def test_eval_mode_propagates_to_quantizers(self):
        wrapped = QuantLinear(Linear(4, 2), int8())
        wrapped.eval()
        assert not wrapped.q_input.training
