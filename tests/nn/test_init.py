"""Weight initialisers."""

import numpy as np
import pytest

from repro.nn import init


class TestFans:
    def test_linear_fans(self):
        assert init._fan((10, 20)) == (20, 10)

    def test_conv_fans(self):
        fan_in, fan_out = init._fan((8, 4, 3, 3))
        assert fan_in == 4 * 9
        assert fan_out == 8 * 9

    def test_unsupported_shape(self):
        with pytest.raises(ValueError):
            init._fan((3,))


class TestDistributions:
    def test_kaiming_normal_std(self):
        w = init.kaiming_normal((256, 128, 3, 3), rng=np.random.default_rng(0))
        expected = np.sqrt(2.0 / (128 * 9))
        assert abs(w.std() - expected) / expected < 0.05
        assert w.dtype == np.float32

    def test_kaiming_uniform_bound(self):
        w = init.kaiming_uniform((64, 64), rng=np.random.default_rng(0))
        bound = np.sqrt(2.0) * np.sqrt(3.0 / 64)
        assert np.abs(w).max() <= bound + 1e-6

    def test_xavier_uniform_bound(self):
        w = init.xavier_uniform((32, 48), rng=np.random.default_rng(0))
        bound = np.sqrt(6.0 / (48 + 32))
        assert np.abs(w).max() <= bound + 1e-6

    def test_uniform_bias_bound(self):
        b = init.uniform_bias((100,), fan_in=25, rng=np.random.default_rng(0))
        assert np.abs(b).max() <= 0.2 + 1e-6

    def test_uniform_bias_zero_fan(self):
        b = init.uniform_bias((4,), fan_in=0)
        np.testing.assert_array_equal(b, 0.0)

    def test_zeros_ones(self):
        assert init.zeros((2, 2)).sum() == 0
        assert init.ones((2, 2)).sum() == 4


class TestDefaultRNG:
    def test_set_default_rng_reproducible(self):
        init.set_default_rng(42)
        a = init.kaiming_normal((4, 4))
        init.set_default_rng(42)
        b = init.kaiming_normal((4, 4))
        np.testing.assert_array_equal(a, b)

    def test_explicit_rng_ignores_default(self):
        init.set_default_rng(0)
        a = init.kaiming_normal((4, 4), rng=np.random.default_rng(7))
        init.set_default_rng(1)
        b = init.kaiming_normal((4, 4), rng=np.random.default_rng(7))
        np.testing.assert_array_equal(a, b)
