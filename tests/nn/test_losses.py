"""Loss functions."""

import numpy as np
import pytest

from repro.autograd import Tensor, gradcheck
from repro.nn.losses import cross_entropy, mse_loss, nll_loss


class TestCrossEntropy:
    def test_uniform_logits_give_log_c(self):
        logits = Tensor(np.zeros((4, 10), dtype=np.float32))
        loss = cross_entropy(logits, np.zeros(4, dtype=np.int64))
        assert loss.item() == pytest.approx(np.log(10), rel=1e-5)

    def test_confident_correct_prediction_near_zero(self):
        logits = np.full((2, 3), -20.0, dtype=np.float32)
        logits[:, 1] = 20.0
        loss = cross_entropy(Tensor(logits), np.array([1, 1]))
        assert loss.item() < 1e-4

    def test_matches_manual_computation(self, rng):
        logits = rng.standard_normal((5, 4)).astype(np.float32)
        targets = rng.integers(0, 4, 5)
        shifted = logits - logits.max(axis=1, keepdims=True)
        logp = shifted - np.log(np.exp(shifted).sum(axis=1, keepdims=True))
        expected = -logp[np.arange(5), targets].mean()
        loss = cross_entropy(Tensor(logits), targets)
        assert loss.item() == pytest.approx(expected, rel=1e-5)

    def test_gradcheck(self, rng64):
        logits = Tensor(rng64.standard_normal((3, 4)), requires_grad=True)
        targets = np.array([0, 2, 1])
        gradcheck(lambda l: cross_entropy(l, targets), [logits])

    def test_gradient_sums_to_zero_per_row(self, rng):
        logits = Tensor(rng.standard_normal((3, 5)).astype(np.float32), requires_grad=True)
        cross_entropy(logits, np.array([0, 1, 2])).backward()
        np.testing.assert_allclose(logits.grad.sum(axis=1), 0.0, atol=1e-6)

    def test_out_of_range_target_raises(self):
        with pytest.raises(ValueError):
            cross_entropy(Tensor(np.zeros((2, 3))), np.array([0, 3]))

    def test_wrong_target_ndim_raises(self):
        with pytest.raises(ValueError):
            cross_entropy(Tensor(np.zeros((2, 3))), np.zeros((2, 3)))


class TestNLL:
    def test_consistency_with_cross_entropy(self, rng):
        from repro.autograd import ops

        logits = rng.standard_normal((4, 6)).astype(np.float32)
        targets = rng.integers(0, 6, 4)
        ce = cross_entropy(Tensor(logits), targets).item()
        nll = nll_loss(ops.log_softmax(Tensor(logits), axis=1), targets).item()
        assert ce == pytest.approx(nll, rel=1e-6)


class TestMSE:
    def test_zero_for_identical(self, rng):
        x = rng.standard_normal(5).astype(np.float32)
        assert mse_loss(Tensor(x), x).item() == 0.0

    def test_value(self):
        loss = mse_loss(Tensor([1.0, 2.0]), np.array([0.0, 0.0], dtype=np.float32))
        assert loss.item() == pytest.approx(2.5)

    def test_gradcheck(self, rng64):
        pred = Tensor(rng64.standard_normal(6), requires_grad=True)
        target = rng64.standard_normal(6)
        gradcheck(lambda p: mse_loss(p, target), [pred])
