"""End-to-end behavioural reproduction at micro scale.

These tests check the paper's *claims* hold in miniature: training works
across every layer type, Winograd-aware INT8 training rescues what a
post-training swap destroys (Table 1 → Table 3), adaptation from a
pretrained model massively outperforms from-scratch retraining (Figure 6),
and flex transforms actually move while static ones stay put.
"""

import numpy as np
import pytest

from repro.autograd import Tensor

# Training-heavy: every test here runs real optimisation loops.  CI's
# quick lane deselects them with -m "not slow"; the full tier-1 suite
# (and the full-tests CI job) still runs everything.
pytestmark = pytest.mark.slow
from repro.data import DataLoader
from repro.data.synthetic import synthetic_images
from repro.experiments.common import train_and_evaluate
from repro.models import ConvSpec, LayerPlan, lenet, resnet18, squeezenet, resnext20
from repro.quant.qconfig import int8
from repro.training.adaptation import transfer_weights
from repro.training.calibrate import calibrate
from repro.training.trainer import evaluate


def _easy_task(n_train=200, n_test=60, size=16, channels=3, seed=11):
    """A low-noise, small-jitter task that micro nets solve in ~3 epochs."""
    train = synthetic_images(
        n_train, 10, channels, size, noise=0.1, max_shift=1, seed=0, proto_seed=seed
    )
    test = synthetic_images(
        n_test, 10, channels, size, noise=0.1, max_shift=1, seed=99, proto_seed=seed
    )
    return (
        DataLoader(train, batch_size=25, seed=0),
        DataLoader(test, batch_size=30, shuffle=False),
        train,
    )


@pytest.fixture(scope="module")
def task():
    return _easy_task()


@pytest.fixture(scope="module")
def big_task():
    # The swap-vs-QAT comparison needs enough data for INT8 F4 training
    # to average out quantization noise.
    return _easy_task(n_train=400, n_test=100)


@pytest.fixture(scope="module")
def trained_source(big_task):
    train_loader, test_loader, _ = big_task
    source = resnet18(width_multiplier=0.125)
    acc, _ = train_and_evaluate(source, train_loader, test_loader, 3, lr=2e-3)
    return source, acc


def _train(model, task, epochs=3, lr=2e-3):
    train_loader, test_loader, _ = task
    acc, _ = train_and_evaluate(model, train_loader, test_loader, epochs, lr=lr)
    return acc


class TestTrainingWorksForEveryLayerType:
    def test_im2row_learns_above_chance(self, task):
        assert _train(resnet18(width_multiplier=0.125), task) > 0.3

    def test_winograd_f2_learns_above_chance(self, task):
        model = resnet18(width_multiplier=0.125, spec=ConvSpec("F2"))
        assert _train(model, task) > 0.3

    def test_winograd_f2_int8_learns_above_chance(self, task):
        model = resnet18(width_multiplier=0.125, spec=ConvSpec("F2", int8()))
        assert _train(model, task, epochs=4) > 0.3

    def test_squeezenet_learns(self, task):
        model = squeezenet(width_multiplier=0.25, spec=ConvSpec("F2", int8()))
        assert _train(model, task, epochs=4) > 0.25

    def test_resnext_grouped_winograd_learns(self, task):
        model = resnext20(width_multiplier=0.25, spec=ConvSpec("F2"))
        assert _train(model, task, epochs=4) > 0.25

    def test_lenet_5x5_winograd_learns(self):
        tl, vl, _ = _easy_task(size=20, channels=1, seed=7)
        model = lenet(spec=ConvSpec("F2", int8(), flex=True), image_size=20)
        acc, _ = train_and_evaluate(model, tl, vl, 5, lr=2e-3)
        assert acc > 0.4


class TestPaperClaims:
    def test_posttraining_int8_f4_swap_collapses_but_qat_rescues(
        self, big_task, trained_source
    ):
        """The central claim of the paper, in miniature."""
        train_loader, test_loader, _ = big_task
        source, src_acc = trained_source
        assert src_acc > 0.6, "source model must be competent"

        # (a) post-training swap → near chance (Table 1)
        swapped = resnet18(
            width_multiplier=0.125, plan=LayerPlan(ConvSpec("F4", int8()))
        )
        transfer_weights(source, swapped)
        calibrate(swapped, train_loader, num_batches=3)
        swap_acc = evaluate(swapped, test_loader)

        # (b) Winograd-aware QAT from scratch recovers most of it (Table 3)
        aware = resnet18(width_multiplier=0.125, spec=ConvSpec("F4", int8(), flex=True))
        aware_acc = _train(aware, big_task, epochs=6)

        assert swap_acc < 0.2, "post-training INT8 F4 swap should collapse"
        assert aware_acc > swap_acc + 0.25, "Winograd-aware QAT must rescue it"

    def test_fp32_swap_is_lossless(self, big_task, trained_source):
        """Table 1's FP32 column: swapping is free without quantization."""
        _, test_loader, _ = big_task
        source, src_acc = trained_source
        swapped = resnet18(width_multiplier=0.125, plan=LayerPlan(ConvSpec("F4")))
        transfer_weights(source, swapped)
        swap_acc = evaluate(swapped, test_loader)
        assert abs(swap_acc - src_acc) < 0.05

    def test_fp32_adaptation_in_one_epoch(self, big_task, trained_source):
        """Figure 6 / §6.1: 'Adapting FP32 models can be done in a single
        epoch' — and it crushes from-scratch training at equal budget."""
        train_loader, test_loader, _ = big_task
        source, src_acc = trained_source

        adapted = resnet18(width_multiplier=0.125, spec=ConvSpec("F4", flex=True))
        transfer_weights(source, adapted)
        adapted_acc, _ = train_and_evaluate(
            adapted, train_loader, test_loader, 1, lr=5e-4
        )
        scratch = resnet18(width_multiplier=0.125, spec=ConvSpec("F4", flex=True))
        scratch_acc, _ = train_and_evaluate(
            scratch, train_loader, test_loader, 1, lr=5e-4
        )
        assert adapted_acc > scratch_acc + 0.2
        assert adapted_acc > src_acc - 0.1

    def test_flex_transforms_drift_during_training(self, task):
        model = resnet18(width_multiplier=0.125, spec=ConvSpec("F4", int8(), flex=True))
        _train(model, task, epochs=1)
        drifts = [conv.transform_drift() for conv in model.conv3x3_modules()]
        assert max(drifts) > 1e-4

    def test_static_transforms_do_not_drift(self, task):
        model = resnet18(width_multiplier=0.125, spec=ConvSpec("F4", int8(), flex=False))
        _train(model, task, epochs=1)
        drifts = [conv.transform_drift() for conv in model.conv3x3_modules()]
        # float32 storage of exact rational transforms costs ~1e-8
        assert max(drifts) < 1e-6

    def test_model_size_preserved_by_winograd_awareness(self):
        """§3.2: Winograd-aware layers don't change model size (flex adds
        only the tiny transform matrices, <0.1% for the paper's net)."""
        base = resnet18(width_multiplier=0.5).num_parameters()
        static = resnet18(width_multiplier=0.5, spec=ConvSpec("F4")).num_parameters()
        flex = resnet18(
            width_multiplier=0.5, spec=ConvSpec("F4", flex=True)
        ).num_parameters()
        assert static == base
        assert base < flex < base * 1.01
