"""Finite-difference verification of every primitive's backward rule."""

import numpy as np
import pytest

from repro.autograd import Tensor, gradcheck, ops


def t64(arr, requires_grad=True):
    return Tensor(np.asarray(arr, dtype=np.float64), requires_grad=requires_grad)


class TestElementwise:
    def test_add(self, rng64):
        a = t64(rng64.standard_normal((3, 4)))
        b = t64(rng64.standard_normal((3, 4)))
        gradcheck(ops.add, [a, b])

    def test_add_broadcast(self, rng64):
        a = t64(rng64.standard_normal((3, 4)))
        b = t64(rng64.standard_normal((4,)))
        gradcheck(ops.add, [a, b])

    def test_sub_broadcast_leading(self, rng64):
        a = t64(rng64.standard_normal((2, 3, 4)))
        b = t64(rng64.standard_normal((1, 3, 1)))
        gradcheck(ops.sub, [a, b])

    def test_mul(self, rng64):
        a = t64(rng64.standard_normal((3, 4)))
        b = t64(rng64.standard_normal((3, 4)))
        gradcheck(ops.mul, [a, b])

    def test_mul_scalar_broadcast(self, rng64):
        a = t64(rng64.standard_normal((3, 4)))
        b = t64(rng64.standard_normal(()))
        gradcheck(ops.mul, [a, b])

    def test_div(self, rng64):
        a = t64(rng64.standard_normal((3, 4)))
        b = t64(rng64.standard_normal((3, 4)) + 3.0)  # bounded away from 0
        gradcheck(ops.div, [a, b])

    def test_neg(self, rng64):
        gradcheck(ops.neg, [t64(rng64.standard_normal((5,)))])

    def test_pow(self, rng64):
        a = t64(np.abs(rng64.standard_normal((4,))) + 0.5)
        gradcheck(lambda x: ops.pow(x, 3.0), [a])

    def test_exp(self, rng64):
        gradcheck(ops.exp, [t64(rng64.standard_normal((4,)))])

    def test_log(self, rng64):
        gradcheck(ops.log, [t64(np.abs(rng64.standard_normal((4,))) + 0.5)])

    def test_sqrt(self, rng64):
        gradcheck(ops.sqrt, [t64(np.abs(rng64.standard_normal((4,))) + 0.5)])

    def test_relu(self, rng64):
        # keep values away from the kink
        vals = rng64.standard_normal((4, 4))
        vals[np.abs(vals) < 0.1] += 0.3
        gradcheck(ops.relu, [t64(vals)])

    def test_sigmoid(self, rng64):
        gradcheck(ops.sigmoid, [t64(rng64.standard_normal((4,)))])

    def test_tanh(self, rng64):
        gradcheck(ops.tanh, [t64(rng64.standard_normal((4,)))])

    def test_maximum(self, rng64):
        a = t64(rng64.standard_normal((4, 4)))
        b = t64(rng64.standard_normal((4, 4)))
        # separate ties
        b.data[np.abs(a.data - b.data) < 0.1] += 0.5
        gradcheck(ops.maximum, [a, b])


class TestLinalg:
    def test_matmul_2d(self, rng64):
        a = t64(rng64.standard_normal((3, 4)))
        b = t64(rng64.standard_normal((4, 5)))
        gradcheck(ops.matmul, [a, b])

    def test_matmul_batched(self, rng64):
        a = t64(rng64.standard_normal((2, 3, 4)))
        b = t64(rng64.standard_normal((2, 4, 5)))
        gradcheck(ops.matmul, [a, b])

    def test_matmul_broadcast_small_lhs(self, rng64):
        # (t, t) @ (N, C, t, t): the Winograd transform pattern — the small
        # matrix's gradient must sum over all broadcast batches.
        a = t64(rng64.standard_normal((3, 3)))
        b = t64(rng64.standard_normal((2, 4, 3, 3)))
        gradcheck(ops.matmul, [a, b])

    def test_matmul_broadcast_small_rhs(self, rng64):
        a = t64(rng64.standard_normal((2, 4, 3, 3)))
        b = t64(rng64.standard_normal((3, 3)))
        gradcheck(ops.matmul, [a, b])


class TestShapeOps:
    def test_reshape(self, rng64):
        a = t64(rng64.standard_normal((3, 4)))
        gradcheck(lambda x: ops.reshape(x, (2, 6)), [a])

    def test_permute(self, rng64):
        a = t64(rng64.standard_normal((2, 3, 4)))
        gradcheck(lambda x: ops.permute(x, (2, 0, 1)), [a])

    def test_sum_all(self, rng64):
        gradcheck(lambda x: ops.sum(x), [t64(rng64.standard_normal((3, 4)))])

    def test_sum_axis_keepdims(self, rng64):
        a = t64(rng64.standard_normal((3, 4, 2)))
        gradcheck(lambda x: ops.sum(x, axis=(0, 2), keepdims=True), [a])

    def test_sum_axis_squeeze(self, rng64):
        a = t64(rng64.standard_normal((3, 4)))
        gradcheck(lambda x: ops.sum(x, axis=1), [a])

    def test_mean(self, rng64):
        a = t64(rng64.standard_normal((3, 4)))
        gradcheck(lambda x: ops.mean(x, axis=0), [a])

    def test_max_axis(self, rng64):
        vals = rng64.standard_normal((3, 5))
        gradcheck(lambda x: ops.max(x, axis=1), [t64(vals)])

    def test_max_all(self, rng64):
        gradcheck(lambda x: ops.max(x), [t64(rng64.standard_normal((3, 4)))])

    def test_log_softmax(self, rng64):
        a = t64(rng64.standard_normal((4, 6)))
        gradcheck(lambda x: ops.log_softmax(x, axis=1), [a])

    def test_pad2d(self, rng64):
        a = t64(rng64.standard_normal((2, 3, 4, 4)))
        gradcheck(lambda x: ops.pad2d(x, (1, 2, 0, 1)), [a])

    def test_slice_axis(self, rng64):
        a = t64(rng64.standard_normal((2, 3, 6, 6)))
        gradcheck(lambda x: ops.slice_axis(x, 2, 1, 4), [a])

    def test_concat(self, rng64):
        a = t64(rng64.standard_normal((2, 3)))
        b = t64(rng64.standard_normal((2, 2)))
        gradcheck(lambda x, y: ops.concat([x, y], axis=1), [a, b])


class TestPatchOps:
    def test_extract_patches_overlapping(self, rng64):
        # stride < kernel: the Winograd tiling case; backward is overlap-add
        a = t64(rng64.standard_normal((1, 2, 6, 6)))
        gradcheck(lambda x: ops.extract_patches(x, (4, 4), (2, 2)), [a])

    def test_extract_patches_non_overlapping(self, rng64):
        a = t64(rng64.standard_normal((1, 2, 6, 6)))
        gradcheck(lambda x: ops.extract_patches(x, (2, 2), (2, 2)), [a])

    def test_extract_patches_stride_one(self, rng64):
        a = t64(rng64.standard_normal((1, 1, 5, 5)))
        gradcheck(lambda x: ops.extract_patches(x, (3, 3), (1, 1)), [a])

    def test_fold_patches(self, rng64):
        patches = t64(rng64.standard_normal((1, 2, 2, 2, 3, 3)))
        gradcheck(lambda p: ops.fold_patches(p, (5, 5), (2, 2)), [patches])


class TestCompositeGraphs:
    def test_winograd_like_composition(self, rng64):
        """The exact op pattern of the Winograd layer, end to end."""
        bt = t64(rng64.standard_normal((4, 4)))
        x = t64(rng64.standard_normal((1, 2, 6, 6)))

        def fn(bt_, x_):
            tiles = ops.extract_patches(x_, (4, 4), (2, 2))
            v = ops.matmul(ops.matmul(bt_, tiles), bt_.transpose())
            return ops.sum(v * v)

        gradcheck(fn, [bt, x])

    def test_bn_like_composition(self, rng64):
        x = t64(rng64.standard_normal((4, 3, 2, 2)))

        def fn(x_):
            mu = ops.mean(x_, axis=(0, 2, 3), keepdims=True)
            c = x_ - mu
            var = ops.mean(c * c, axis=(0, 2, 3), keepdims=True)
            return c * ((var + 1e-5) ** -0.5)

        gradcheck(fn, [x])
