"""Tensor construction, protocol, and backward-graph mechanics."""

import numpy as np
import pytest

from repro.autograd import Tensor, as_tensor, no_grad


class TestConstruction:
    def test_from_list(self):
        t = Tensor([1.0, 2.0, 3.0])
        assert t.shape == (3,)
        assert t.dtype == np.float32

    def test_integer_input_promoted_to_float(self):
        t = Tensor(np.arange(4))
        assert np.issubdtype(t.dtype, np.floating)

    def test_float64_preserved(self):
        t = Tensor(np.zeros(3, dtype=np.float64))
        assert t.dtype == np.float64

    def test_from_tensor_shares_data(self):
        a = Tensor([1.0, 2.0])
        b = Tensor(a)
        assert b.data is a.data

    def test_as_tensor_passthrough(self):
        a = Tensor([1.0])
        assert as_tensor(a) is a

    def test_scalar_item(self):
        assert Tensor(3.5).item() == pytest.approx(3.5)

    def test_len_and_size(self):
        t = Tensor(np.zeros((4, 5)))
        assert len(t) == 4
        assert t.size == 20
        assert t.ndim == 2

    def test_repr_mentions_requires_grad(self):
        assert "requires_grad" in repr(Tensor([1.0], requires_grad=True))
        assert "requires_grad" not in repr(Tensor([1.0]))


class TestBackward:
    def test_scalar_backward_seeds_ones(self):
        x = Tensor([1.0, 2.0], requires_grad=True)
        (x * x).sum().backward()
        np.testing.assert_allclose(x.grad, [2.0, 4.0])

    def test_nonscalar_backward_requires_grad_argument(self):
        x = Tensor([1.0, 2.0], requires_grad=True)
        y = x * 2.0
        with pytest.raises(RuntimeError):
            y.backward()
        y.backward(np.array([1.0, 1.0], dtype=np.float32))
        np.testing.assert_allclose(x.grad, [2.0, 2.0])

    def test_backward_without_requires_grad_raises(self):
        with pytest.raises(RuntimeError):
            Tensor([1.0]).backward()

    def test_grad_accumulates_across_backward_calls(self):
        x = Tensor([3.0], requires_grad=True)
        (x * 2.0).sum().backward()
        (x * 2.0).sum().backward()
        np.testing.assert_allclose(x.grad, [4.0])

    def test_zero_grad(self):
        x = Tensor([3.0], requires_grad=True)
        (x * x).sum().backward()
        x.zero_grad()
        assert x.grad is None

    def test_diamond_graph_accumulates_once_per_path(self):
        x = Tensor([2.0], requires_grad=True)
        y = x * 3.0
        z = (y + y).sum()  # two paths through y
        z.backward()
        np.testing.assert_allclose(x.grad, [6.0])

    def test_branch_not_reaching_output_gets_no_grad(self):
        x = Tensor([1.0], requires_grad=True)
        y = Tensor([1.0], requires_grad=True)
        _unused = y * 5.0
        (x * 2.0).sum().backward()
        assert y.grad is None

    def test_deep_graph_does_not_recurse(self):
        # iterative DFS must survive graphs deeper than the recursion limit
        x = Tensor([1.0], requires_grad=True)
        y = x
        for _ in range(3000):
            y = y + 0.001
        y.sum().backward()
        np.testing.assert_allclose(x.grad, [1.0])

    def test_detach_cuts_graph(self):
        x = Tensor([2.0], requires_grad=True)
        y = (x * x).detach()
        assert not y.requires_grad
        z = Tensor(y.data, requires_grad=True)
        (z * 1.0).sum().backward()
        assert x.grad is None


class TestNoGrad:
    def test_no_grad_blocks_graph(self):
        x = Tensor([1.0], requires_grad=True)
        with no_grad():
            y = x * 2.0
        assert not y.requires_grad
        assert y._ctx is None

    def test_no_grad_restores_state(self):
        x = Tensor([1.0], requires_grad=True)
        with no_grad():
            pass
        y = x * 2.0
        assert y.requires_grad

    def test_no_grad_nested(self):
        with no_grad():
            with no_grad():
                pass
            x = Tensor([1.0], requires_grad=True)
            assert not (x * 1.0).requires_grad


class TestOperators:
    def test_radd_rsub_rmul_rtruediv(self):
        x = Tensor([2.0])
        np.testing.assert_allclose((1.0 + x).data, [3.0])
        np.testing.assert_allclose((1.0 - x).data, [-1.0])
        np.testing.assert_allclose((3.0 * x).data, [6.0])
        np.testing.assert_allclose((4.0 / x).data, [2.0])

    def test_neg_and_pow(self):
        x = Tensor([2.0])
        np.testing.assert_allclose((-x).data, [-2.0])
        np.testing.assert_allclose((x**3).data, [8.0])

    def test_matmul_operator(self):
        a = Tensor(np.eye(2, dtype=np.float32))
        b = Tensor(np.array([[1.0, 2.0], [3.0, 4.0]], dtype=np.float32))
        np.testing.assert_allclose((a @ b).data, b.data)

    def test_fluent_helpers_match_ops(self):
        x = Tensor(np.array([[1.0, -2.0], [3.0, 4.0]], dtype=np.float32))
        np.testing.assert_allclose(x.relu().data, [[1.0, 0.0], [3.0, 4.0]])
        np.testing.assert_allclose(x.transpose().data, x.data.T)
        np.testing.assert_allclose(x.reshape(4).data, x.data.reshape(4))
        assert x.sum().item() == pytest.approx(6.0)
        assert x.mean().item() == pytest.approx(1.5)
        assert x.max().item() == pytest.approx(4.0)
