"""Forward semantics of primitives vs plain NumPy, plus property tests."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st
from hypothesis.extra.numpy import array_shapes, arrays

from repro.autograd import Tensor, ops


def small_arrays(max_dims=3, max_side=5):
    return arrays(
        dtype=np.float64,
        shape=array_shapes(min_dims=1, max_dims=max_dims, min_side=1, max_side=max_side),
        elements=st.floats(-10, 10, allow_nan=False, width=32),
    )


class TestForwardValues:
    def test_log_softmax_rows_normalise(self, rng):
        x = Tensor(rng.standard_normal((4, 7)).astype(np.float32))
        ls = ops.log_softmax(x, axis=1)
        sums = np.exp(ls.data).sum(axis=1)
        np.testing.assert_allclose(sums, 1.0, rtol=1e-5)

    def test_log_softmax_stable_for_large_logits(self):
        x = Tensor(np.array([[1000.0, 1000.0]], dtype=np.float32))
        ls = ops.log_softmax(x, axis=1)
        assert np.isfinite(ls.data).all()
        np.testing.assert_allclose(np.exp(ls.data), [[0.5, 0.5]], rtol=1e-5)

    def test_pad2d_zero_is_identity(self, rng):
        x = Tensor(rng.standard_normal((1, 1, 3, 3)).astype(np.float32))
        assert ops.pad2d(x, 0).data is x.data

    def test_pad2d_values(self):
        x = Tensor(np.ones((1, 1, 2, 2), dtype=np.float32))
        padded = ops.pad2d(x, (1, 0, 0, 2))
        assert padded.shape == (1, 1, 3, 4)
        assert padded.data[0, 0, 0].sum() == 0  # top row zero
        assert padded.data[0, 0, :, -1].sum() == 0  # right col zero

    def test_pad2d_negative_raises(self):
        with pytest.raises(ValueError):
            ops.pad2d(Tensor(np.ones((1, 1, 2, 2))), (-1, 0, 0, 0))

    def test_slice_axis_matches_numpy(self, rng):
        x = rng.standard_normal((2, 5, 3)).astype(np.float32)
        out = ops.slice_axis(Tensor(x), 1, 1, 4)
        np.testing.assert_array_equal(out.data, x[:, 1:4])

    def test_concat_matches_numpy(self, rng):
        a = rng.standard_normal((2, 3)).astype(np.float32)
        b = rng.standard_normal((2, 4)).astype(np.float32)
        out = ops.concat([Tensor(a), Tensor(b)], axis=1)
        np.testing.assert_array_equal(out.data, np.concatenate([a, b], axis=1))

    def test_max_ties_split_gradient(self):
        x = Tensor(np.array([[2.0, 2.0, 1.0]], dtype=np.float32), requires_grad=True)
        ops.max(x, axis=1).sum().backward()
        np.testing.assert_allclose(x.grad, [[0.5, 0.5, 0.0]])

    def test_extract_patches_values(self):
        x = np.arange(16, dtype=np.float32).reshape(1, 1, 4, 4)
        patches = ops.extract_patches(Tensor(x), (2, 2), (2, 2))
        assert patches.shape == (1, 1, 2, 2, 2, 2)
        np.testing.assert_array_equal(patches.data[0, 0, 0, 0], [[0, 1], [4, 5]])
        np.testing.assert_array_equal(patches.data[0, 0, 1, 1], [[10, 11], [14, 15]])

    def test_extract_patches_too_small_raises(self):
        with pytest.raises(ValueError):
            ops.extract_patches(Tensor(np.zeros((1, 1, 2, 2))), (3, 3), (1, 1))

    def test_matmul_rejects_bad_shapes(self):
        with pytest.raises(ValueError):
            ops.matmul(Tensor(np.zeros((2, 3))), Tensor(np.zeros((2, 3))))


class TestAdjointProperty:
    """extract_patches and fold_patches must be adjoint linear maps:
    <extract(x), p> == <x, fold(p)> for all x, p."""

    @pytest.mark.parametrize("kernel,stride,size", [(4, 2, 8), (3, 1, 5), (2, 2, 6), (5, 3, 11)])
    def test_dot_product_identity(self, kernel, stride, size, rng):
        x = rng.standard_normal((2, 3, size, size))
        n_tiles = (size - kernel) // stride + 1
        p = rng.standard_normal((2, 3, n_tiles, n_tiles, kernel, kernel))
        ex = ops.extract_patches(Tensor(x), kernel, stride).data
        fo = ops.fold_patches(Tensor(p), (size, size), stride).data
        lhs = float((ex * p).sum())
        rhs = float((x * fo).sum())
        assert lhs == pytest.approx(rhs, rel=1e-5)


class TestBroadcastingProperties:
    @given(small_arrays())
    def test_add_identity(self, arr):
        out = ops.add(Tensor(arr), Tensor(np.zeros_like(arr)))
        np.testing.assert_allclose(out.data, arr)

    @given(small_arrays())
    def test_mul_by_one(self, arr):
        out = ops.mul(Tensor(arr), Tensor(np.ones(1)))
        np.testing.assert_allclose(out.data, arr)

    @given(small_arrays())
    def test_exp_log_roundtrip(self, arr):
        pos = np.abs(arr) + 1.0
        out = ops.log(ops.exp(Tensor(pos)))
        np.testing.assert_allclose(out.data, pos, rtol=1e-5, atol=1e-6)

    @given(small_arrays())
    def test_sum_matches_numpy(self, arr):
        assert ops.sum(Tensor(arr)).item() == pytest.approx(float(arr.sum()), rel=1e-5, abs=1e-6)

    @given(small_arrays(max_dims=2))
    def test_relu_idempotent(self, arr):
        once = ops.relu(Tensor(arr)).data
        twice = ops.relu(Tensor(once)).data
        np.testing.assert_array_equal(once, twice)

    @given(small_arrays(max_dims=2))
    def test_broadcast_grad_shape_matches_input(self, arr):
        a = Tensor(arr, requires_grad=True)
        b = Tensor(np.float64(2.0), requires_grad=True)
        (a * b).sum().backward()
        assert a.grad.shape == a.shape
        assert b.grad.shape == b.shape
        assert b.grad == pytest.approx(float(arr.sum()), rel=1e-5, abs=1e-6)
