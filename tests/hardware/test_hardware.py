"""The latency model: structure, calibration quality, qualitative shape."""

import numpy as np
import pytest
from scipy import stats

from repro.hardware import (
    CORES,
    ConvShape,
    LatencyTable,
    get_calibrated_model,
    get_core,
)
from repro.hardware.model import ModelParams, conv_latency, gemm_eff, gemm_time_ms
from repro.hardware.network import dtype_from_bits, resnet18_layer_shapes
from repro.paperdata.figure7 import (
    FIGURE7_ALGORITHMS,
    FIGURE7_CHANNEL_CONFIGS,
    FIGURE7_OUTPUT_WIDTHS,
    figure7_grid,
)


@pytest.fixture(scope="module")
def cal():
    return get_calibrated_model()


class TestCores:
    def test_table2_specs(self):
        a73, a53 = get_core("A73"), get_core("a53")
        assert a73.clock_ghz == 2.4 and a73.l1_kb == 64 and a73.l2_kb == 2048
        assert a53.clock_ghz == 1.8 and a53.l1_kb == 32 and a53.l2_kb == 512

    def test_unknown_core(self):
        with pytest.raises(KeyError):
            get_core("M1")

    def test_byte_helpers(self):
        assert get_core("A73").l1_bytes == 64 * 1024


class TestConvShape:
    def test_validation(self):
        with pytest.raises(ValueError):
            ConvShape(0, 4, 8)
        with pytest.raises(ValueError):
            ConvShape(3, 4, 8, groups=2)

    def test_groups_ok(self):
        ConvShape(4, 8, 16, groups=4)


class TestModelStructure:
    def _params(self):
        return ModelParams(
            r_mac=1e6, r_tr=5e5, c_lower=1e-7, o_fix=1e-3,
            alpha_m=4.0, alpha_k=8.0, alpha_n=2.0,
        )

    def test_gemm_eff_bounded(self):
        p = self._params()
        assert 0 < gemm_eff(p, 1, 1, 1) < 1
        assert gemm_eff(p, 1e9, 1e9, 1e9) == pytest.approx(1.0, abs=1e-6)

    def test_gemm_time_scales_linearly_at_large_sizes(self):
        p = self._params()
        t1 = gemm_time_ms(p, 1000, 1000, 1000)
        t2 = gemm_time_ms(p, 2000, 1000, 1000)
        assert t2 / t1 == pytest.approx(2.0, rel=0.01)

    def test_int8_faster_than_fp32(self):
        p = self._params()
        shape = ConvShape(64, 64, 16)
        for algo in ("im2row", "F2", "F4"):
            fp = conv_latency(p, shape, algo, dtype="fp32").total_ms
            i8 = conv_latency(p, shape, algo, dtype="int8").total_ms
            assert i8 < fp

    def test_int16_between_fp32_and_int8(self):
        p = self._params()
        shape = ConvShape(64, 64, 16)
        fp = conv_latency(p, shape, "im2row", dtype="fp32").total_ms
        i16 = conv_latency(p, shape, "im2row", dtype="int16").total_ms
        i8 = conv_latency(p, shape, "im2row", dtype="int8").total_ms
        assert i8 < i16 < fp

    def test_im2col_slower_than_im2row(self):
        p = self._params()
        shape = ConvShape(64, 64, 16)
        assert (
            conv_latency(p, shape, "im2col").total_ms
            > conv_latency(p, shape, "im2row").total_ms
        )

    def test_dense_transforms_cost_more(self):
        p = self._params()
        shape = ConvShape(64, 64, 16)
        sparse = conv_latency(p, shape, "F4", dense_transforms=False)
        dense = conv_latency(p, shape, "F4", dense_transforms=True)
        assert dense.total_ms > sparse.total_ms
        assert dense.gemm_ms == sparse.gemm_ms  # only transform stages change

    def test_ragged_tiles_penalise_mismatched_widths(self):
        """ceil(W/m) waste: F4 at W=8 (exact) vs W=10 (ragged)."""
        p = self._params()
        exact = conv_latency(p, ConvShape(64, 64, 8), "F4").total_ms
        ragged = conv_latency(p, ConvShape(64, 64, 10), "F4").total_ms
        # ragged pays 9 tiles for 10² outputs vs 4 tiles for 8² outputs
        assert ragged / exact > (100 / 64) * 0.9

    def test_unknown_algorithm_rejected(self):
        with pytest.raises(ValueError):
            conv_latency(self._params(), ConvShape(4, 4, 8), "fft")

    def test_unknown_dtype_rejected(self):
        with pytest.raises(ValueError):
            conv_latency(self._params(), ConvShape(4, 4, 8), "im2row", dtype="int4")

    def test_breakdown_totals(self):
        p = self._params()
        b = conv_latency(p, ConvShape(32, 32, 16), "F4")
        assert b.total_ms == pytest.approx(
            b.input_transform_ms + b.gemm_ms + b.output_transform_ms
            + b.lowering_ms + b.overhead_ms
        )
        assert 0 < b.transform_fraction < 1


class TestCalibrationQuality:
    def test_figure7_rank_correlation(self, cal):
        grid = figure7_grid()
        pred, obs = [], []
        for (w, cin, cout, algo), ms in grid.items():
            pred.append(cal.conv_latency(ConvShape(cin, cout, w), algo, core="A73").total_ms)
            obs.append(ms)
        rho = stats.spearmanr(pred, obs).statistic
        assert rho > 0.99

    def test_figure7_winner_agreement(self, cal):
        grid = figure7_grid()
        agree = total = 0
        for cin, cout in FIGURE7_CHANNEL_CONFIGS:
            for w in FIGURE7_OUTPUT_WIDTHS:
                pred = {
                    a: cal.conv_latency(ConvShape(cin, cout, w), a, core="A73").total_ms
                    for a in FIGURE7_ALGORITHMS
                }
                obs = {a: grid[(w, cin, cout, a)] for a in FIGURE7_ALGORITHMS}
                agree += min(pred, key=pred.get) == min(obs, key=obs.get)
                total += 1
        assert agree / total > 0.75

    def test_input_layer_never_benefits_from_winograd(self, cal):
        """Paper finding 1 (Fig. 7/8): im2row wins the 3→32 stem."""
        for w in (8, 16, 24, 32):
            shape = ConvShape(3, 32, w)
            lat = {
                a: cal.conv_latency(shape, a, core="A73").total_ms
                for a in ("im2row", "F2", "F4", "F6")
            }
            assert min(lat, key=lat.get) == "im2row"

    def test_f6_wins_large_inputs(self, cal):
        """Paper finding 2: F6 consistently fastest beyond ~40×40."""
        for w in (40, 48, 56):
            shape = ConvShape(128, 128, w)
            lat = {
                a: cal.conv_latency(shape, a, core="A73").total_ms
                for a in ("im2row", "F2", "F4", "F6")
            }
            assert min(lat, key=lat.get) == "F6"

    def test_transform_fraction_large_for_input_layer(self, cal):
        """Paper: transforms are up to 65% (A73) and 75% (A53) of the
        stem's cost."""
        a73 = cal.conv_latency(ConvShape(3, 32, 32), "F6", core="A73")
        a53 = cal.conv_latency(ConvShape(3, 32, 32), "F6", core="A53")
        assert a73.transform_fraction > 0.5
        assert a53.transform_fraction > 0.7

    def test_table3_orderings_fp32_a73(self, cal):
        im2row = cal.resnet18_latency("im2row", "fp32", "A73")
        im2col = cal.resnet18_latency("im2col", "fp32", "A73")
        wf2 = cal.resnet18_latency("WF2", "fp32", "A73")
        wf4 = cal.resnet18_latency("WF4", "fp32", "A73")
        assert wf4 < wf2 < im2row < im2col

    def test_table3_int8_winograd_beats_int8_im2row(self, cal):
        for core in ("A73", "A53"):
            im2row = cal.resnet18_latency("im2row", "int8", core)
            waf4 = cal.resnet18_latency("WAF4", "int8", core)
            assert waf4 < im2row

    def test_int8_waf4_speedup_factors_close_to_paper(self, cal):
        """Paper: INT8 WAF4 reaches ~2.43× (A73) and ~1.44× (A53) vs
        FP32 im2row; allow generous tolerance on the model."""
        for core, published in (("A73", 2.43), ("A53", 1.44)):
            speedup = (
                cal.resnet18_latency("im2row", "fp32", core)
                / cal.resnet18_latency("WAF4", "int8", core)
            )
            assert published * 0.6 < speedup < published * 1.6

    def test_a53_slower_than_a73(self, cal):
        for plan in ("im2row", "WF4"):
            assert cal.resnet18_latency(plan, "fp32", "A53") > cal.resnet18_latency(
                plan, "fp32", "A73"
            )


class TestNetworkWalker:
    def test_dtype_from_bits(self):
        assert dtype_from_bits(None) == "fp32"
        assert dtype_from_bits(8) == "int8"
        assert dtype_from_bits(10) == "int16"
        assert dtype_from_bits(16) == "int16"

    def test_resnet18_shape_enumeration(self):
        shapes = resnet18_layer_shapes(32)
        roles = [r for r, _ in shapes]
        assert roles.count("stem") == 1
        assert roles.count("block") == 16
        assert roles.count("shortcut") == 4  # 32→64 plus three stage changes
        final = [s for r, s in shapes if r == "block"][-1]
        assert final.out_width == 4 and final.out_channels == 512

    def test_model_latency_walks_real_model(self, cal, rng):
        from repro.hardware.network import model_latency
        from repro.models import ConvSpec, resnet18
        from repro.quant.qconfig import int8

        model = resnet18(width_multiplier=0.125, spec=ConvSpec("F4", int8(), flex=True))
        x = rng.standard_normal((1, 3, 16, 16)).astype(np.float32)
        net = model_latency(model, x, core="A73", calibrated=cal)
        assert net.total_ms > 0
        assert len(net.layers) == 1 + 16 + 4  # stem + blocks + shortcuts
        algos = {l.algorithm for l in net.layers}
        assert "F4" in algos and "F2" in algos and "im2row" in algos
        assert any("F4" in row for row in net.describe())


class TestLatencyTable:
    def test_memoisation(self, cal):
        table = LatencyTable("A73", cal)
        shape = ConvShape(32, 32, 16)
        first = table.latency_ms(shape, "F4")
        second = table.latency_ms(shape, "F4")
        assert first == second
        assert len(table._cache) == 1

    def test_candidates_cover_algorithms(self, cal):
        table = LatencyTable("A73", cal)
        cands = table.candidates(ConvShape(64, 64, 16))
        assert set(cands) == {"im2row", "F2", "F4", "F6"}
        assert all(v > 0 for v in cands.values())
