"""WinogradConv2d: the paper's Figure 2 pipeline as a trainable layer."""

import numpy as np
import pytest

from repro.autograd import Tensor, gradcheck
from repro.nn.layers import Conv2d
from repro.nn.module import Buffer, Parameter
from repro.quant.qconfig import QConfig, int8
from repro.winograd.functional import direct_conv2d
from repro.winograd.layer import WinogradConv2d


class TestForwardEquivalence:
    @pytest.mark.parametrize("m,r", [(2, 3), (4, 3), (6, 3), (2, 5)])
    def test_matches_direct_conv(self, m, r, rng):
        layer = WinogradConv2d(3, 5, kernel_size=r, m=m)
        x = rng.standard_normal((2, 3, 11, 9)).astype(np.float32)
        y = layer(Tensor(x))
        ref = direct_conv2d(
            x.astype(np.float64),
            layer.weight.data.astype(np.float64),
            bias=layer.bias.data.astype(np.float64),
            padding=(r - 1) // 2,
        )
        assert y.shape == ref.shape
        np.testing.assert_allclose(y.data, ref, atol=1e-4)

    def test_matches_im2row_conv_with_same_weights(self, rng):
        conv = Conv2d(4, 6, 3, padding=1)
        wlayer = WinogradConv2d(4, 6, 3, m=4)
        wlayer.weight.data = conv.weight.data.copy()
        wlayer.bias.data = conv.bias.data.copy()
        x = Tensor(rng.standard_normal((2, 4, 8, 8)).astype(np.float32))
        np.testing.assert_allclose(conv(x).data, wlayer(x).data, atol=1e-4)

    def test_grouped_matches_grouped_im2row(self, rng):
        conv = Conv2d(6, 9, 3, padding=1, groups=3)
        wlayer = WinogradConv2d(6, 9, 3, m=2, groups=3)
        wlayer.weight.data = conv.weight.data.copy()
        wlayer.bias.data = conv.bias.data.copy()
        x = Tensor(rng.standard_normal((2, 6, 8, 8)).astype(np.float32))
        np.testing.assert_allclose(conv(x).data, wlayer(x).data, atol=1e-4)

    def test_ragged_tiling_cropped_correctly(self, rng):
        # 7x7 output with m=4 needs ceil(7/4)=2 tiles → 8x8, cropped to 7
        layer = WinogradConv2d(2, 2, 3, m=4)
        x = rng.standard_normal((1, 2, 7, 7)).astype(np.float32)
        y = layer(Tensor(x))
        assert y.shape == (1, 2, 7, 7)
        ref = direct_conv2d(
            x.astype(np.float64),
            layer.weight.data.astype(np.float64),
            bias=layer.bias.data.astype(np.float64),
            padding=1,
        )
        np.testing.assert_allclose(y.data, ref, atol=1e-4)

    def test_no_bias(self, rng):
        layer = WinogradConv2d(2, 3, 3, m=2, bias=False)
        assert layer.bias is None
        y = layer(Tensor(rng.standard_normal((1, 2, 6, 6)).astype(np.float32)))
        assert y.shape == (1, 3, 6, 6)


class TestGradients:
    def test_gradcheck_weights_and_input(self, rng64):
        layer = WinogradConv2d(2, 2, 3, m=2, bias=True)
        # promote to float64 for finite differences
        layer.weight.data = layer.weight.data.astype(np.float64)
        layer.bias.data = layer.bias.data.astype(np.float64)
        layer.BT.data = layer.BT.data.astype(np.float64)
        layer.G.data = layer.G.data.astype(np.float64)
        layer.AT.data = layer.AT.data.astype(np.float64)
        x = Tensor(rng64.standard_normal((1, 2, 6, 6)), requires_grad=True)
        gradcheck(lambda x_: layer(x_), [x])

    def test_gradcheck_flex_transforms(self, rng64):
        layer = WinogradConv2d(2, 2, 3, m=2, flex=True, bias=False)
        for p in (layer.weight, layer.BT, layer.G, layer.AT):
            p.data = p.data.astype(np.float64)
        x = Tensor(rng64.standard_normal((1, 2, 4, 4)))

        def fn(bt, g, at):
            layer.BT.data = bt.data
            layer.G.data = g.data
            layer.AT.data = at.data
            return layer(x)

        # finite differences directly on the transform parameters
        bt = Tensor(layer.BT.data.copy(), requires_grad=True)
        g = Tensor(layer.G.data.copy(), requires_grad=True)
        at = Tensor(layer.AT.data.copy(), requires_grad=True)
        out = layer(x)
        out.sum().backward()
        analytic = {
            "BT": layer.BT.grad.copy(),
            "G": layer.G.grad.copy(),
            "AT": layer.AT.grad.copy(),
        }
        from repro.autograd.gradcheck import numerical_gradient

        for name, param, tensor in (("BT", layer.BT, bt), ("G", layer.G, g), ("AT", layer.AT, at)):
            def probe(t=tensor, p=param):
                old = p.data
                p.data = t.data
                try:
                    return layer(x)
                finally:
                    p.data = old

            numeric = numerical_gradient(lambda t: probe(t), [tensor], 0)
            np.testing.assert_allclose(analytic[name], numeric, atol=2e-3, rtol=1e-2)

    def test_static_transforms_get_no_grad(self, rng):
        layer = WinogradConv2d(2, 2, 3, m=2, flex=False)
        x = Tensor(rng.standard_normal((1, 2, 4, 4)).astype(np.float32))
        layer(x).sum().backward()
        assert isinstance(layer.BT, Buffer)
        assert layer.BT.grad is None
        assert layer.weight.grad is not None

    def test_flex_transforms_are_parameters(self):
        layer = WinogradConv2d(2, 2, 3, m=2, flex=True)
        names = {name for name, _ in layer.named_parameters()}
        assert {"BT", "G", "AT", "weight", "bias"} <= names

    def test_quantized_backward_flows_ste(self, rng):
        layer = WinogradConv2d(2, 3, 3, m=4, qconfig=int8(), flex=True)
        x = Tensor(rng.standard_normal((1, 2, 8, 8)).astype(np.float32), requires_grad=True)
        layer(x).sum().backward()
        assert x.grad is not None
        assert np.abs(layer.weight.grad).sum() > 0
        assert np.abs(layer.G.grad).sum() > 0


class TestQuantizedBehaviour:
    def test_int8_static_f6_error_much_larger_than_f2(self, rng):
        """The layer-level version of Table 1's collapse."""
        x = rng.standard_normal((1, 8, 12, 12)).astype(np.float32)
        errors = {}
        for m in (2, 6):
            layer = WinogradConv2d(8, 8, 3, m=m, qconfig=int8(), bias=False)
            ref = direct_conv2d(
                x.astype(np.float64), layer.weight.data.astype(np.float64), padding=1
            )
            y = layer(Tensor(x))
            errors[m] = float(np.abs(y.data - ref).mean() / np.abs(ref).mean())
        assert errors[6] > 5 * errors[2]

    def test_calibration_mode_toggles_all_quantizers(self):
        layer = WinogradConv2d(2, 2, 3, m=2, qconfig=int8())
        layer.set_calibrating(True)
        from repro.quant.quantizer import Quantizer

        assert all(q.calibrating for q in layer.modules() if isinstance(q, Quantizer))
        layer.set_calibrating(False)
        assert not any(q.calibrating for q in layer.modules() if isinstance(q, Quantizer))

    def test_eval_uses_frozen_ranges(self, rng):
        layer = WinogradConv2d(2, 2, 3, m=2, qconfig=int8())
        x = Tensor(rng.standard_normal((1, 2, 6, 6)).astype(np.float32))
        layer.train()
        layer(x)
        frozen = layer.q_input.running_max_abs.data.copy()
        layer.eval()
        big = Tensor(100 * rng.standard_normal((1, 2, 6, 6)).astype(np.float32))
        layer(big)
        np.testing.assert_array_equal(layer.q_input.running_max_abs.data, frozen)


class TestConstructionAndAdaptation:
    def test_rejects_bad_groups(self):
        with pytest.raises(ValueError, match="groups"):
            WinogradConv2d(3, 4, 3, m=2, groups=2)

    def test_rejects_non_nchw(self, rng):
        layer = WinogradConv2d(2, 2, 3, m=2)
        with pytest.raises(ValueError, match="NCHW"):
            layer(Tensor(rng.standard_normal((2, 6, 6)).astype(np.float32)))

    def test_rejects_wrong_channels(self, rng):
        layer = WinogradConv2d(2, 2, 3, m=2)
        with pytest.raises(ValueError, match="channels"):
            layer(Tensor(rng.standard_normal((1, 3, 6, 6)).astype(np.float32)))

    def test_from_conv2d_copies_weights(self, rng):
        conv = Conv2d(3, 4, 3, padding=1)
        layer = WinogradConv2d.from_conv2d(conv, m=4)
        np.testing.assert_array_equal(layer.weight.data, conv.weight.data)
        np.testing.assert_array_equal(layer.bias.data, conv.bias.data)
        x = Tensor(rng.standard_normal((1, 3, 8, 8)).astype(np.float32))
        np.testing.assert_allclose(conv(x).data, layer(x).data, atol=1e-4)

    def test_from_conv2d_rejects_stride(self):
        conv = Conv2d(3, 4, 3, stride=2, padding=1)
        with pytest.raises(ValueError, match="strided"):
            WinogradConv2d.from_conv2d(conv, m=2)

    def test_transform_drift_zero_at_init(self):
        layer = WinogradConv2d(2, 2, 3, m=4, flex=True)
        assert layer.transform_drift() < 1e-6

    def test_transform_drift_after_training_step(self, rng):
        layer = WinogradConv2d(2, 2, 3, m=4, flex=True)
        x = Tensor(rng.standard_normal((1, 2, 8, 8)).astype(np.float32))
        layer(x).sum().backward()
        for p in (layer.BT, layer.G, layer.AT):
            p.data -= 0.01 * p.grad
        assert layer.transform_drift() > 0

    def test_repr(self):
        layer = WinogradConv2d(3, 4, 3, m=4, flex=True, qconfig=int8())
        text = repr(layer)
        assert "F(4x4,3x3)" in text and "-flex" in text and "int8" in text

    def test_mults_per_output_property(self):
        layer = WinogradConv2d(3, 4, 3, m=2)
        assert layer.t == 4
        assert layer.reference_transform.multiplications_per_output == pytest.approx(4.0)
