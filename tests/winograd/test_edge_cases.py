"""Edge cases across the Winograd stack."""

import numpy as np
import pytest

from repro.autograd import Tensor
from repro.quant.qconfig import QConfig, int8
from repro.winograd.functional import direct_conv2d
from repro.winograd.layer import WinogradConv2d
from repro.winograd.transforms import get_transform


class TestMinimalSpatialSizes:
    def test_input_exactly_one_tile(self, rng):
        """4×4 input with F2 'same' padding: exactly (4/2)² tiles."""
        layer = WinogradConv2d(2, 2, 3, m=2)
        x = rng.standard_normal((1, 2, 4, 4)).astype(np.float32)
        y = layer(Tensor(x))
        ref = direct_conv2d(
            x.astype(np.float64),
            layer.weight.data.astype(np.float64),
            bias=layer.bias.data.astype(np.float64),
            padding=1,
        )
        np.testing.assert_allclose(y.data, ref, atol=1e-4)

    def test_output_smaller_than_one_tile(self, rng):
        """2×2 output with m=6: one ragged tile, heavy cropping."""
        layer = WinogradConv2d(2, 2, 3, m=6)
        x = rng.standard_normal((1, 2, 2, 2)).astype(np.float32)
        y = layer(Tensor(x))
        assert y.shape == (1, 2, 2, 2)
        ref = direct_conv2d(
            x.astype(np.float64),
            layer.weight.data.astype(np.float64),
            bias=layer.bias.data.astype(np.float64),
            padding=1,
        )
        np.testing.assert_allclose(y.data, ref, atol=1e-4)

    def test_non_square_input(self, rng):
        layer = WinogradConv2d(1, 1, 3, m=4)
        x = rng.standard_normal((1, 1, 5, 17)).astype(np.float32)
        y = layer(Tensor(x))
        assert y.shape == (1, 1, 5, 17)
        ref = direct_conv2d(
            x.astype(np.float64),
            layer.weight.data.astype(np.float64),
            bias=layer.bias.data.astype(np.float64),
            padding=1,
        )
        np.testing.assert_allclose(y.data, ref, atol=1e-4)

    def test_too_small_input_raises(self, rng):
        layer = WinogradConv2d(1, 1, 5, m=2, padding=0)
        with pytest.raises(ValueError, match="too small"):
            layer(Tensor(rng.standard_normal((1, 1, 3, 3)).astype(np.float32)))


class TestBatchAndChannelExtremes:
    def test_batch_of_one(self, rng):
        layer = WinogradConv2d(3, 4, 3, m=2)
        y = layer(Tensor(rng.standard_normal((1, 3, 6, 6)).astype(np.float32)))
        assert y.shape == (1, 4, 6, 6)

    def test_single_channel_in_and_out(self, rng):
        layer = WinogradConv2d(1, 1, 3, m=4)
        x = rng.standard_normal((3, 1, 8, 8)).astype(np.float32)
        ref = direct_conv2d(
            x.astype(np.float64),
            layer.weight.data.astype(np.float64),
            bias=layer.bias.data.astype(np.float64),
            padding=1,
        )
        np.testing.assert_allclose(layer(Tensor(x)).data, ref, atol=1e-4)

    def test_depthwise_style_groups(self, rng):
        """groups == channels: each filter sees exactly one channel."""
        layer = WinogradConv2d(4, 4, 3, m=2, groups=4)
        x = Tensor(rng.standard_normal((1, 4, 6, 6)).astype(np.float32))
        assert layer(x).shape == (1, 4, 6, 6)


class TestQuantizedEdges:
    def test_zero_input_is_stable(self):
        layer = WinogradConv2d(2, 2, 3, m=4, qconfig=int8())
        y = layer(Tensor(np.zeros((1, 2, 8, 8), dtype=np.float32)))
        assert np.isfinite(y.data).all()

    def test_large_magnitude_input_is_finite(self, rng):
        layer = WinogradConv2d(2, 2, 3, m=6, qconfig=int8())
        x = Tensor((1e4 * rng.standard_normal((1, 2, 10, 10))).astype(np.float32))
        assert np.isfinite(layer(x).data).all()

    def test_two_bit_extreme_quantization(self, rng):
        layer = WinogradConv2d(2, 2, 3, m=2, qconfig=QConfig(bits=2))
        y = layer(Tensor(rng.standard_normal((1, 2, 6, 6)).astype(np.float32)))
        assert np.isfinite(y.data).all()

    def test_mixed_stage_config_runs(self, rng):
        qc = QConfig(bits=8, stage_bits={"hadamard": 16, "input_transformed": 12})
        layer = WinogradConv2d(2, 2, 3, m=4, qconfig=qc)
        y = layer(Tensor(rng.standard_normal((1, 2, 8, 8)).astype(np.float32)))
        assert np.isfinite(y.data).all()
        assert layer.q_hadamard.bits == 16
        assert layer.q_input_t.bits == 12
        assert layer.q_weight.bits == 8


class TestTransformEdgeCases:
    def test_f1_is_direct_convolution(self, rng):
        """F(1, r) degenerates to a plain dot product per output."""
        tr = get_transform(1, 3)
        assert tr.t == 3
        assert tr.multiplications_per_output == pytest.approx(9.0)

    def test_rect_kernel_rejected(self):
        from repro.nn.layers import Conv2d
        from repro.winograd.layer import WinogradConv2d

        conv = Conv2d(2, 2, (3, 5), padding=1)
        with pytest.raises(ValueError, match="square"):
            WinogradConv2d.from_conv2d(conv, m=2)
