"""Exactness and structure of the Cook–Toom construction."""

from fractions import Fraction

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.winograd.cook_toom import (
    INFINITY,
    cook_toom,
    cook_toom_1d_exact,
    default_points,
)


class TestExactIdentity:
    """Aᵀ[(Gg) ⊙ (Bᵀd)] must equal correlation *exactly* over ℚ."""

    @pytest.mark.parametrize("m,r", [(1, 3), (2, 2), (2, 3), (3, 3), (4, 3), (6, 3),
                                     (2, 5), (4, 5), (6, 5), (8, 3)])
    def test_matches_correlation(self, m, r):
        ct = cook_toom_1d_exact(m, r)
        rng = np.random.default_rng(m * 100 + r)
        d = [Fraction(int(v)) for v in rng.integers(-50, 50, ct.n)]
        g = [Fraction(int(v)) for v in rng.integers(-50, 50, r)]
        expected = [sum(d[j + k] * g[k] for k in range(r)) for j in range(m)]
        assert ct.apply_1d_exact(d, g) == expected

    @given(
        m=st.integers(1, 5),
        r=st.integers(2, 5),
        data=st.data(),
    )
    def test_property_random_rationals(self, m, r, data):
        ct = cook_toom_1d_exact(m, r)
        rationals = st.fractions(
            min_value=-10, max_value=10, max_denominator=8
        )
        d = data.draw(st.lists(rationals, min_size=ct.n, max_size=ct.n))
        g = data.draw(st.lists(rationals, min_size=r, max_size=r))
        expected = [sum(d[j + k] * g[k] for k in range(r)) for j in range(m)]
        assert ct.apply_1d_exact(d, g) == expected

    def test_custom_points_still_exact(self):
        points = (0, 1, -1, Fraction(1, 3), Fraction(-1, 3), INFINITY)
        ct = cook_toom_1d_exact(4, 3, points=points)
        d = [Fraction(i) for i in (1, -2, 3, 0, 5, -1)]
        g = [Fraction(i) for i in (2, 1, -1)]
        expected = [sum(d[j + k] * g[k] for k in range(3)) for j in range(4)]
        assert ct.apply_1d_exact(d, g) == expected


class TestCanonicalMatrices:
    def test_f23_recovers_standard_matrices(self):
        """F(2,3) with points [0,1,-1,∞] must match Lavin & Gray up to
        per-row sign conventions."""
        BT, G, AT = cook_toom(2, 3)
        # |BT| of the published F(2,3) transform
        expected_abs_bt = np.array(
            [[1, 0, 1, 0], [0, 1, 1, 0], [0, 1, 1, 0], [0, 1, 0, 1]], dtype=float
        )
        np.testing.assert_allclose(np.abs(BT), expected_abs_bt)
        np.testing.assert_allclose(np.abs(G[0]), [1, 0, 0])
        np.testing.assert_allclose(np.abs(G[1]), [0.5, 0.5, 0.5])
        np.testing.assert_allclose(np.abs(G[3]), [0, 0, 1])
        assert AT.shape == (2, 4)

    def test_f43_recovers_standard_matrices(self):
        BT, G, AT = cook_toom(4, 3)
        np.testing.assert_allclose(np.abs(BT[0]), [4, 0, 5, 0, 1, 0])
        np.testing.assert_allclose(np.abs(BT[5]), [0, 4, 0, 5, 0, 1])
        np.testing.assert_allclose(np.abs(G[1]), [1 / 6, 1 / 6, 1 / 6], rtol=1e-12)
        np.testing.assert_allclose(np.abs(AT[0]), [1, 1, 1, 1, 1, 0])

    def test_bt_is_integral_for_default_points(self):
        for m, r in [(2, 3), (4, 3), (6, 3)]:
            BT, _, _ = cook_toom(m, r)
            np.testing.assert_allclose(BT, np.round(BT), atol=1e-12)

    def test_dynamic_range_grows_with_tile_size(self):
        """The root cause of the paper's numerical collapse."""
        ranges = []
        for m in (2, 4, 6):
            BT, _, AT = cook_toom(m, 3)
            ranges.append(max(np.abs(BT).max(), np.abs(AT).max()))
        assert ranges[0] < ranges[1] < ranges[2]


class TestValidation:
    def test_duplicate_points_rejected(self):
        with pytest.raises(ValueError, match="distinct"):
            cook_toom_1d_exact(2, 3, points=(0, 1, 1, INFINITY))

    def test_two_infinities_rejected(self):
        with pytest.raises(ValueError, match="infinity"):
            cook_toom_1d_exact(2, 3, points=(0, INFINITY, 1, INFINITY))

    def test_wrong_point_count_rejected(self):
        with pytest.raises(ValueError, match="needs"):
            cook_toom_1d_exact(2, 3, points=(0, 1, INFINITY))

    def test_nonpositive_sizes_rejected(self):
        with pytest.raises(ValueError):
            cook_toom_1d_exact(0, 3)
        with pytest.raises(ValueError):
            cook_toom_1d_exact(2, 0)

    def test_default_points_structure(self):
        pts = default_points(5)
        assert len(pts) == 6
        assert pts[-1] is INFINITY
        assert pts[0] == 0
        assert len(set(pts[:-1])) == 5

    def test_default_points_exhaustion(self):
        with pytest.raises(ValueError, match="no default point table"):
            default_points(100)

    def test_as_float_dtype(self):
        ct = cook_toom_1d_exact(2, 3)
        bt32, g32, at32 = ct.as_float(np.float32)
        assert bt32.dtype == np.float32
        assert g32.shape == (4, 3)
        assert at32.shape == (2, 4)

    def test_apply_validates_lengths(self):
        ct = cook_toom_1d_exact(2, 3)
        with pytest.raises(ValueError):
            ct.apply_1d_exact([1, 2, 3], [1, 2, 3])
