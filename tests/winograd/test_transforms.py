"""Transform registry and metadata."""

import numpy as np
import pytest

from repro.winograd.cook_toom import INFINITY
from repro.winograd.transforms import (
    PAPER_CONFIGS,
    WinogradTransform,
    get_paper_transform,
    get_transform,
    tile_size,
)


class TestTileSize:
    @pytest.mark.parametrize("m,r,t", [(2, 3, 4), (4, 3, 6), (6, 3, 8), (2, 5, 6), (6, 5, 10)])
    def test_values(self, m, r, t):
        assert tile_size(m, r) == t
        assert get_transform(m, r).t == t


class TestMultiplicationsPerOutput:
    def test_paper_values_for_3x3(self):
        """§3.1: direct 9 mpo, F2 → 4 mpo, F4 → 2.25 mpo."""
        assert get_transform(2, 3).multiplications_per_output == pytest.approx(4.0)
        assert get_transform(4, 3).multiplications_per_output == pytest.approx(2.25)
        assert get_transform(6, 3).multiplications_per_output == pytest.approx((8 / 6) ** 2)

    def test_savings_grow_with_m(self):
        mpos = [get_transform(m, 3).multiplications_per_output for m in (2, 4, 6)]
        assert mpos[0] > mpos[1] > mpos[2]


class TestSparsity:
    def test_f2_sparsity_matches_paper(self):
        """§A.2: F2 ratios are 50%, 33%, 25% for BT, G, AT."""
        bt, g, at = get_transform(2, 3).sparsity()
        assert bt == pytest.approx(0.50)
        assert g == pytest.approx(1 / 3, abs=0.01)
        assert at == pytest.approx(0.25)

    def test_larger_tiles_are_denser(self):
        """§A.2 expects lower sparsity for larger transforms."""
        bt2 = get_transform(2, 3).sparsity()[0]
        bt6 = get_transform(6, 3).sparsity()[0]
        assert bt6 < bt2


class TestRegistry:
    def test_paper_names(self):
        assert set(PAPER_CONFIGS) == {"F2", "F4", "F6"}
        tr = get_paper_transform("F4")
        assert (tr.m, tr.r) == (4, 3)

    def test_unknown_paper_name(self):
        with pytest.raises(KeyError):
            get_paper_transform("F8")

    def test_caching_returns_equal_matrices(self):
        a = get_transform(4, 3)
        b = get_transform(4, 3)
        np.testing.assert_array_equal(a.BT, b.BT)

    def test_custom_points_produce_different_transform(self):
        default = get_transform(4, 3)
        custom = get_transform(4, 3, points=(0, 1, -1, 3, -3, INFINITY))
        assert not np.allclose(default.BT, custom.BT)

    def test_copies_are_fresh(self):
        tr = get_transform(2, 3)
        bt, g, at = tr.copies(np.float32)
        bt[0, 0] = 999
        assert tr.BT[0, 0] != 999
        assert bt.dtype == np.float32

    def test_points_recorded(self):
        tr = get_transform(2, 3)
        assert tr.points[-1] is INFINITY
        assert len(tr.points) == 4
