"""Reference Winograd convolution vs direct convolution."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.quant.quantizer import fake_quant_array
from repro.winograd.functional import (
    direct_conv2d,
    winograd_conv2d,
    winograd_output_shape,
)
from repro.winograd.transforms import get_transform


class TestEquivalence:
    @pytest.mark.parametrize("m,r,pad", [(2, 3, 1), (4, 3, 1), (6, 3, 1), (2, 5, 2), (4, 5, 2)])
    def test_matches_direct(self, m, r, pad, rng):
        tr = get_transform(m, r)
        x = rng.standard_normal((2, 3, 14, 10))
        w = rng.standard_normal((4, 3, r, r))
        b = rng.standard_normal(4)
        yw = winograd_conv2d(x, w, tr, bias=b, padding=pad)
        yd = direct_conv2d(x, w, bias=b, padding=pad)
        np.testing.assert_allclose(yw, yd, atol=1e-9)

    def test_no_padding(self, rng):
        tr = get_transform(2, 3)
        x = rng.standard_normal((1, 2, 8, 8))
        w = rng.standard_normal((3, 2, 3, 3))
        yw = winograd_conv2d(x, w, tr, padding=0)
        yd = direct_conv2d(x, w, padding=0)
        assert yw.shape == (1, 3, 6, 6)
        np.testing.assert_allclose(yw, yd, atol=1e-9)

    @given(
        h=st.integers(5, 16),
        w_=st.integers(5, 16),
        cin=st.integers(1, 4),
        cout=st.integers(1, 4),
        m=st.sampled_from([2, 4, 6]),
    )
    @settings(max_examples=15)
    def test_property_arbitrary_shapes(self, h, w_, cin, cout, m):
        rng = np.random.default_rng(h * 1000 + w_ * 10 + cin + cout)
        tr = get_transform(m, 3)
        x = rng.standard_normal((1, cin, h, w_))
        wt = rng.standard_normal((cout, cin, 3, 3))
        yw = winograd_conv2d(x, wt, tr, padding=1)
        yd = direct_conv2d(x, wt, padding=1)
        assert yw.shape == yd.shape == (1, cout, h, w_)
        np.testing.assert_allclose(yw, yd, atol=1e-8)

    def test_output_shape_helper(self):
        assert winograd_output_shape(32, 32, 3, 1) == (32, 32)
        assert winograd_output_shape(10, 8, 5, 0) == (6, 4)


class TestNumericalError:
    """FP32 error must grow with tile size — the paper's core observation."""

    def _error(self, m, dtype):
        rng = np.random.default_rng(0)
        tr = get_transform(m, 3, dtype=np.float64)
        x = rng.standard_normal((1, 16, 16, 16)).astype(dtype)
        w = (rng.standard_normal((16, 16, 3, 3)) / 3).astype(dtype)
        ref = direct_conv2d(x.astype(np.float64), w.astype(np.float64), padding=1)
        y = winograd_conv2d(x, w, tr, padding=1)
        return float(np.abs(y.astype(np.float64) - ref).mean())

    def test_fp32_error_grows_with_tile(self):
        errors = [self._error(m, np.float32) for m in (2, 4, 6)]
        assert errors[0] < errors[1] < errors[2]

    def test_fp64_error_negligible(self):
        assert self._error(6, np.float64) < 1e-10


class TestQuantHook:
    def test_hook_sees_all_stages(self, rng):
        tr = get_transform(4, 3)
        seen = []
        hook = lambda a, stage: (seen.append(stage), a)[1]
        x = rng.standard_normal((1, 2, 8, 8))
        w = rng.standard_normal((2, 2, 3, 3))
        winograd_conv2d(x, w, tr, padding=1, quant=hook)
        assert seen == [
            "input",
            "weight",
            "weight_transformed",
            "input_transformed",
            "hadamard",
            "output",
        ]

    def test_int8_hook_collapses_f6_but_not_f2(self, rng):
        x = rng.standard_normal((1, 8, 12, 12))
        w = rng.standard_normal((8, 8, 3, 3)) / 3
        ref = direct_conv2d(x, w, padding=1)
        quant = lambda a, stage: fake_quant_array(a, 8)
        errors = {}
        for m in (2, 6):
            tr = get_transform(m, 3)
            y = winograd_conv2d(x, w, tr, padding=1, quant=quant)
            errors[m] = float(np.abs(y - ref).mean() / np.abs(ref).mean())
        assert errors[2] < 0.2  # F2 survives INT8
        assert errors[6] > 1.0  # F6 output is garbage — Table 1's collapse

    def test_validates_filter_size(self, rng):
        tr = get_transform(2, 3)
        with pytest.raises(ValueError, match="transform expects"):
            winograd_conv2d(
                rng.standard_normal((1, 1, 8, 8)), rng.standard_normal((1, 1, 5, 5)), tr
            )

    def test_validates_channel_match(self, rng):
        tr = get_transform(2, 3)
        with pytest.raises(ValueError, match="channel mismatch"):
            winograd_conv2d(
                rng.standard_normal((1, 2, 8, 8)), rng.standard_normal((1, 3, 3, 3)), tr
            )


class TestDirectConv:
    def test_stride_two(self, rng):
        x = rng.standard_normal((1, 2, 8, 8))
        w = rng.standard_normal((3, 2, 3, 3))
        y = direct_conv2d(x, w, padding=1, stride=2)
        assert y.shape == (1, 3, 4, 4)

    def test_is_cross_correlation(self):
        # kernel with a single 1 at position (0, 0) shifts the image
        x = np.zeros((1, 1, 4, 4))
        x[0, 0, 1, 1] = 1.0
        w = np.zeros((1, 1, 3, 3))
        w[0, 0, 0, 0] = 1.0
        y = direct_conv2d(x, w, padding=1)
        assert y[0, 0, 2, 2] == 1.0
        assert y.sum() == 1.0
