"""The `python -m repro.cli` entry point."""

import pytest

from repro.cli import EXPERIMENTS, build_parser, main


class TestParser:
    def test_list_command(self):
        args = build_parser().parse_args(["list"])
        assert args.command == "list"

    def test_run_command_defaults(self):
        args = build_parser().parse_args(["run", "figure7"])
        assert args.experiment == "figure7"
        assert args.scale == "smoke"
        assert args.seed == 0

    def test_unknown_experiment_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "table99"])

    def test_unknown_scale_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "table1", "--scale", "huge"])

    def test_every_experiment_module_importable(self):
        import importlib

        for name in EXPERIMENTS:
            module = importlib.import_module(f"repro.experiments.{name}")
            assert callable(module.run)


class TestMain:
    def test_list_prints_all(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        for name in EXPERIMENTS:
            assert name in out

    @pytest.mark.slow
    def test_run_fast_experiment(self, capsys, tmp_path):
        out_file = tmp_path / "fig8.txt"
        assert main(["run", "figure8", "--out", str(out_file)]) == 0
        assert "figure8_layer_breakdown" in capsys.readouterr().out
        assert out_file.exists()
        assert "im2row" in out_file.read_text()

    def test_infer_compiles_and_reports(self, capsys):
        assert (
            main(
                [
                    "infer",
                    "--model",
                    "lenet",
                    "--algorithm",
                    "F2",
                    "--batch",
                    "2",
                    "--repeats",
                    "1",
                    "--compare",
                    "--describe",
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "engine[fast]" in out
        assert "speedup" in out
        assert "winograd_conv2d" in out  # --describe lists the plan steps
