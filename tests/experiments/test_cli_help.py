"""``repro <cmd> --help`` contracts (ISSUE 6 satellite).

Every serving-era subcommand must (a) exit 0 from ``--help``, (b) list
each documented flag, and (c) point at the docs/ tree so ``--help`` and
the runbook (docs/operations.md) cannot drift apart silently.
"""

import pytest

from repro.cli import build_parser, main

#: Subcommand → flags its --help must document.  Keep in sync with the
#: flag tables in docs/operations.md.
DOCUMENTED_FLAGS = {
    "infer": [
        "--model", "--algorithm", "--quant", "--width", "--batch",
        "--backend", "--repeats", "--seed", "--threads", "--compare",
        "--describe",
    ],
    "compile": ["-o", "--out", "--seed", "--inspect"],
    "serve": [
        "--model", "--host", "--port", "--workers", "--worker-replicas",
        "--executor-threads", "--threads", "--max-batch-size",
        "--max-wait-ms", "--max-queue", "--deadline-ms", "--trace-rate",
        "--tenant-rate", "--tenant-burst", "--chaos", "--drain-trace-out",
        "--state-dir", "--ladder", "--autoscale", "--autoscale-min",
        "--autoscale-max", "--circuit-threshold",
    ],
    "bench": ["--quick", "--seed", "--out", "--threads"],
    "loadgen": [
        "--url", "--model", "--concurrency", "--requests", "--deadline-ms",
        "--sweep", "--quick", "--workers", "--workers-scale", "--out",
        "--dump-slowest", "--dump-out", "--open-loop", "--duration",
        "--priority", "--tenant", "--seed", "--overload",
    ],
    "profile": [
        "--batch", "--repeats", "--seed", "--threads", "--backends", "--out",
    ],
    "trace": [
        "--url", "--export", "--request-id", "--model", "--workers",
        "--requests",
    ],
}


def _help_text(capsys, command) -> str:
    with pytest.raises(SystemExit) as info:
        build_parser().parse_args([command, "--help"])
    assert info.value.code == 0, f"{command} --help must exit 0"
    return capsys.readouterr().out


class TestHelpContracts:
    @pytest.mark.parametrize("command", sorted(DOCUMENTED_FLAGS))
    def test_help_exits_zero_and_lists_every_flag(self, capsys, command):
        text = _help_text(capsys, command)
        missing = [f for f in DOCUMENTED_FLAGS[command] if f not in text]
        assert not missing, f"{command} --help missing flags: {missing}"

    @pytest.mark.parametrize("command", sorted(DOCUMENTED_FLAGS))
    def test_help_points_at_docs_tree(self, capsys, command):
        assert "docs/" in _help_text(capsys, command)

    def test_top_level_help_exits_zero(self, capsys):
        with pytest.raises(SystemExit) as info:
            build_parser().parse_args(["--help"])
        assert info.value.code == 0
        out = capsys.readouterr().out
        for command in DOCUMENTED_FLAGS:
            assert command in out


class TestCompileCommand:
    def test_compile_then_inspect_roundtrip(self, capsys, tmp_path):
        out = str(tmp_path / "lenet.rpln")
        assert main(
            ["compile", "lenet-F2-fp32@reference", "-o", out]
        ) == 0
        text = capsys.readouterr().out
        assert "compiled lenet-F2-fp32@reference" in text
        assert out in text
        assert main(["compile", "--inspect", out]) == 0
        inspected = capsys.readouterr().out
        assert '"model": "lenet-F2-fp32@reference"' in inspected
        assert '"format_version": 2' in inspected

    def test_compile_without_model_errors(self, capsys):
        assert main(["compile"]) == 2
        assert "variant name" in capsys.readouterr().err

    def test_compile_bad_name_errors(self, capsys):
        assert main(["compile", "not-a-model-name!"]) == 2
        assert "error" in capsys.readouterr().err

    def test_inspect_missing_file_errors(self, capsys, tmp_path):
        assert main(["compile", "--inspect", str(tmp_path / "no.rpln")]) == 2
        assert "error" in capsys.readouterr().err
