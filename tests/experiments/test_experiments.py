"""Experiment harness: scales, reports, and the training-free experiments.

Training-heavy experiments (Tables 1/3/4/5, Figures 4/5/6/9) are exercised
end-to-end by the benchmark suite (`pytest benchmarks/ --benchmark-only`);
here we cover the harness plumbing and the analysis-only experiments.
"""

import pytest

from repro.experiments import ablation_dense_transforms, ablation_points
from repro.experiments import ablation_quant_stages, figure7, figure8
from repro.experiments.common import (
    ExperimentReport,
    format_table,
    get_scale,
)


class TestScales:
    def test_known_scales(self):
        for name in ("smoke", "quick", "paper"):
            cfg = get_scale(name)
            assert cfg.name == name
            assert cfg.train_size > 0

    def test_paper_scale_matches_protocol(self):
        cfg = get_scale("paper")
        assert cfg.epochs == 120  # §5.1
        assert cfg.batch_size == 64  # §5.2
        assert cfg.width_multiplier == 1.0
        assert cfg.train_size == 50000

    def test_unknown_scale(self):
        with pytest.raises(KeyError):
            get_scale("galactic")

    def test_loaders_cifar10(self):
        cfg = get_scale("smoke")
        train_loader, test_loader, train, test = cfg.loaders("cifar10", seed=0)
        assert train.num_classes == 10
        assert train.images.shape[1] == 3
        assert len(train_loader) > 0

    def test_loaders_mnist_single_channel(self):
        cfg = get_scale("smoke")
        _, _, train, _ = cfg.loaders("mnist", seed=0)
        assert train.images.shape[1] == 1

    def test_loaders_cifar100_classes(self):
        cfg = get_scale("smoke")
        _, _, train, _ = cfg.loaders("cifar100", seed=0)
        assert train.num_classes == cfg.num_classes_c100

    def test_loaders_unknown_dataset(self):
        with pytest.raises(ValueError):
            get_scale("smoke").loaders("imagenet")


class TestReport:
    def test_add_find_column(self):
        rep = ExperimentReport("x", "smoke")
        rep.add(a=1, b="one")
        rep.add(a=2, b="two")
        assert rep.column("a") == [1, 2]
        assert rep.find(a=2)["b"] == "two"
        with pytest.raises(KeyError):
            rep.find(a=3)

    def test_format_contains_rows_and_notes(self):
        rep = ExperimentReport("demo", "smoke")
        rep.add(metric=0.5)
        rep.notes.append("hello")
        text = rep.format()
        assert "demo" in text and "0.500" in text and "hello" in text

    def test_format_table_empty(self):
        assert format_table([]) == "(empty)"

    def test_format_table_ragged_rows(self):
        text = format_table([{"a": 1}, {"b": 2.5}])
        assert "a" in text and "b" in text


class TestAnalysisExperiments:
    """The training-free experiments must run end to end in seconds."""

    def test_figure7_report(self):
        rep = figure7.run()
        assert len(rep.rows) == 60  # 12 widths × 5 channel configs
        assert any("winner agreement" in n for n in rep.notes)

    def test_figure8_report(self):
        rep = figure8.run()
        assert len(rep.rows) == 2 * 3 * 5  # cores × layers × algorithms
        im2row_rows = [r for r in rep.rows if r["algorithm"] == "im2row"]
        assert all(r["ratio"] == pytest.approx(1.0) for r in im2row_rows)

    def test_ablation_points_report(self):
        rep = ablation_points.run()
        assert {r["points"] for r in rep.rows} == {"default", "integers", "reciprocals"}

    def test_ablation_dense_report(self):
        rep = ablation_dense_transforms.run()
        assert len(rep.rows) == 4  # 2 cores × 2 dtypes

    def test_ablation_quant_stages_report(self):
        rep = ablation_quant_stages.run()
        stage_rows = [r for r in rep.rows if "→" in str(r["stages"])]
        assert len(stage_rows) == 6
