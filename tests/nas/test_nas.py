"""wiNAS: search spaces, mixed op mechanics, and search behaviour."""

import numpy as np
import pytest

from repro.autograd import Tensor
from repro.data import DataLoader, make_cifar10_like
from repro.hardware.model import ConvShape
from repro.models import resnet18
from repro.nas import Candidate, MixedConv2d, SearchConfig, WiNAS, wa_space, waq_space
from repro.nn.losses import cross_entropy
from repro.optim import Adam


class TestSearchSpace:
    def test_wa_space_has_4_candidates(self):
        space = wa_space("int8")
        assert len(space) == 4
        assert {c.algorithm for c in space} == {"im2row", "F2", "F4", "F6"}
        assert all(c.precision == "int8" for c in space)

    def test_waq_space_is_product(self):
        space = waq_space()
        assert len(space) == 12
        assert {(c.algorithm, c.precision) for c in space} == {
            (a, p)
            for a in ("im2row", "F2", "F4", "F6")
            for p in ("fp32", "int16", "int8")
        }

    def test_candidate_validation(self):
        with pytest.raises(ValueError):
            Candidate("fft")
        with pytest.raises(ValueError):
            Candidate("F2", "int4")

    def test_candidate_to_spec(self):
        spec = Candidate("F4", "int8").to_spec()
        assert spec.algorithm == "F4"
        assert spec.qconfig.bits == 8
        assert spec.flex

    def test_im2row_candidate_never_flex(self):
        spec = Candidate("im2row", "int8", flex=True).to_spec()
        assert not spec.flex


class TestMixedOp:
    def _op(self, candidates=None, seed=0):
        return MixedConv2d(4, 6, candidates or wa_space("fp32"), seed=seed)

    def test_shared_weights_across_paths(self):
        op = self._op()
        weights = set()
        for path in op.paths:
            target = path.conv if hasattr(path, "conv") else path
            weights.add(id(target.weight))
        assert weights == {id(op.weight)}

    def test_parameters_deduplicated(self):
        op = self._op()
        weight_count = sum(1 for p in op.parameters() if p.data.shape == op.weight.shape)
        assert weight_count == 1

    def test_probabilities_normalised(self):
        op = self._op()
        probs = op.probabilities()
        assert probs.shape == (4,)
        assert probs.sum() == pytest.approx(1.0)

    def test_weight_mode_samples_single_path(self, rng):
        op = self._op()
        op.mode = "weight"
        op(Tensor(rng.standard_normal((1, 4, 8, 8)).astype(np.float32)))
        assert len(op._last_sampled) == 1

    def test_arch_mode_samples_two_paths(self, rng):
        op = self._op()
        op.mode = "arch"
        op(Tensor(rng.standard_normal((1, 4, 8, 8)).astype(np.float32)))
        assert len(op._last_sampled) == 2
        assert op._last_sampled[0] != op._last_sampled[1]

    def test_eval_uses_argmax_path(self, rng):
        op = self._op()
        op.alpha.data[2] = 5.0
        op.eval()
        out = op(Tensor(rng.standard_normal((1, 4, 8, 8)).astype(np.float32)))
        assert out.shape == (1, 6, 8, 8)
        assert op.chosen() is op.candidates[2]

    def test_arch_mode_gradients_reach_alpha(self, rng):
        # Candidates share weights, so at init only *numerically different*
        # paths (e.g. fp32 vs int8) can create a preference for alpha.
        op = MixedConv2d(
            4, 6, [Candidate("im2row", "fp32"), Candidate("im2row", "int8")], seed=0
        )
        op.mode = "arch"
        x = Tensor(rng.standard_normal((2, 4, 8, 8)).astype(np.float32))
        out = op(x)
        (out * out).mean().backward()
        assert op.alpha.grad is not None
        assert np.abs(op.alpha.grad).sum() > 0

    def test_arch_mode_identical_paths_give_zero_alpha_grad(self, rng):
        """With shared weights and no quantization, all candidates compute
        the same function — alpha must receive (numerically) no gradient."""
        op = self._op()
        op.mode = "arch"
        x = Tensor(rng.standard_normal((2, 4, 8, 8)).astype(np.float32))
        (op(x) * 1.0).mean().backward()
        assert op.alpha.grad is not None
        assert np.abs(op.alpha.grad).max() < 1e-3

    def test_alpha_gradient_only_on_sampled_pair(self, rng):
        op = self._op()
        op.mode = "arch"
        x = Tensor(rng.standard_normal((1, 4, 8, 8)).astype(np.float32))
        (op(x) * 1.0).sum().backward()
        nonzero = np.nonzero(op.alpha.grad)[0]
        assert set(nonzero) <= set(op._last_sampled)

    def test_expected_latency_differentiable(self):
        op = self._op()
        op.set_latencies([1.0, 2.0, 3.0, 4.0])
        lat = op.expected_latency()
        assert lat.item() == pytest.approx(2.5)  # uniform alpha
        lat.backward()
        assert op.alpha.grad is not None

    def test_expected_latency_requires_population(self):
        with pytest.raises(RuntimeError):
            self._op().expected_latency()

    def test_set_latencies_validates_length(self):
        with pytest.raises(ValueError):
            self._op().set_latencies([1.0, 2.0])

    def test_latency_gradient_points_to_faster_ops(self):
        """Gradient descent on E[lat] must shift probability to fast ops."""
        op = self._op()
        op.set_latencies([1.0, 10.0, 10.0, 10.0])
        opt = Adam([op.alpha], lr=0.5)
        for _ in range(30):
            opt.zero_grad()
            op.expected_latency().backward()
            opt.step()
        assert op.argmax_index() == 0


@pytest.mark.slow
class TestWiNAS:
    def _setup(self, candidates, lambda2=0.05, epochs=1):
        train, _ = make_cifar10_like(80, 40, size=16, seed=0)
        tr, val = train.split(0.5)
        plan = WiNAS.make_plan(candidates)
        model = resnet18(width_multiplier=0.125, plan=plan)
        nas = WiNAS(model, SearchConfig(epochs=epochs, lambda2=lambda2))
        nas.populate_latencies(train.images[:2])
        loaders = (
            DataLoader(tr, batch_size=20, seed=0),
            DataLoader(val, batch_size=20, seed=1),
        )
        return nas, loaders

    def test_requires_mixed_ops(self):
        model = resnet18(width_multiplier=0.125)
        with pytest.raises(ValueError):
            WiNAS(model)

    def test_model_has_16_mixed_ops(self):
        nas, _ = self._setup(wa_space("fp32"))
        assert len(nas.mixed_ops) == 16

    def test_populate_latencies_fills_all_ops(self):
        nas, _ = self._setup(wa_space("int8"))
        assert all(op.latencies_ms is not None for op in nas.mixed_ops)
        assert all(len(op.latencies_ms) == 4 for op in nas.mixed_ops)
        assert all((op.latencies_ms > 0).all() for op in nas.mixed_ops)
        assert nas.expected_latency_ms() > 0

    def test_arch_and_weight_params_disjoint(self):
        nas, _ = self._setup(wa_space("fp32"))
        arch_ids = {id(p) for p in nas.arch_params}
        weight_ids = {id(p) for p in nas.weight_params}
        assert not arch_ids & weight_ids

    def test_search_returns_plan_with_16_choices(self):
        nas, (tr, val) = self._setup(wa_space("int8"))
        result = nas.search(tr, val, epochs=1)
        assert len(result.chosen) == 16
        assert result.expected_latency_ms > 0
        assert len(result.history) == 1
        assert len(result.describe()) == 16

    def test_high_lambda2_prefers_faster_plans(self):
        """The paper's λ₂ knob: more latency pressure → faster networks."""
        fast_nas, (tr, val) = self._setup(wa_space("int8"), lambda2=50.0)
        fast = fast_nas.search(tr, val, epochs=1)
        slow_nas, (tr2, val2) = self._setup(wa_space("int8"), lambda2=0.0)
        slow = slow_nas.search(tr2, val2, epochs=1)
        assert fast.expected_latency_ms <= slow.expected_latency_ms * 1.05

    def test_derived_plan_builds_trainable_model(self, rng):
        nas, (tr, val) = self._setup(wa_space("int8"))
        result = nas.search(tr, val, epochs=1)
        final = resnet18(width_multiplier=0.125, plan=result.plan)
        x = Tensor(rng.standard_normal((2, 3, 16, 16)).astype(np.float32))
        logits = final(x)
        cross_entropy(logits, np.array([0, 1])).backward()
        grads = [p for p in final.parameters() if p.grad is not None]
        assert grads

    def test_waq_space_search_runs(self):
        nas, (tr, val) = self._setup(waq_space())
        result = nas.search(tr, val, epochs=1)
        precisions = {c.precision for c in result.chosen}
        assert precisions <= {"fp32", "int16", "int8"}
