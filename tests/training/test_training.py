"""Trainer, metrics, calibration, adaptation."""

import numpy as np
import pytest

from repro.autograd import Tensor
from repro.data import DataLoader, make_cifar10_like
from repro.models import ConvSpec, LayerPlan, lenet, resnet18
from repro.quant.qconfig import int8
from repro.quant.quantizer import Quantizer
from repro.training import (
    Meter,
    TrainConfig,
    Trainer,
    accuracy,
    adapt_to_winograd,
    calibrate,
    set_calibrating,
)
from repro.training.adaptation import canonical_state_dict, transfer_weights
from repro.training.trainer import evaluate


@pytest.fixture(scope="module")
def tiny_task():
    train, test = make_cifar10_like(80, 40, size=16, seed=3)
    return (
        DataLoader(train, batch_size=20, seed=0),
        DataLoader(test, batch_size=20, shuffle=False),
        train,
    )


class TestMetrics:
    def test_accuracy_perfect(self):
        logits = np.eye(4, dtype=np.float32)
        assert accuracy(logits, np.arange(4)) == 1.0

    def test_accuracy_zero(self):
        logits = np.eye(2, dtype=np.float32)
        assert accuracy(logits, np.array([1, 0])) == 0.0

    def test_accuracy_accepts_tensor(self):
        assert accuracy(Tensor(np.eye(3, dtype=np.float32)), np.arange(3)) == 1.0

    def test_meter_weighted_mean(self):
        m = Meter()
        m.update(1.0, weight=1)
        m.update(0.0, weight=3)
        assert m.mean == pytest.approx(0.25)
        m.reset()
        assert m.mean == 0.0


class TestTrainer:
    def test_loss_decreases(self, tiny_task):
        train_loader, test_loader, _ = tiny_task
        model = resnet18(width_multiplier=0.125)
        trainer = Trainer(model, train_loader, test_loader, TrainConfig(epochs=2, lr=2e-3))
        history = trainer.fit()
        assert len(history) == 2
        assert history[-1].train_loss < history[0].train_loss

    def test_history_tracks_val_accuracy(self, tiny_task):
        train_loader, test_loader, _ = tiny_task
        model = resnet18(width_multiplier=0.125)
        trainer = Trainer(model, train_loader, test_loader, TrainConfig(epochs=1))
        trainer.fit()
        assert trainer.history[0].val_accuracy is not None

    def test_sgd_option(self, tiny_task):
        train_loader, _, _ = tiny_task
        model = resnet18(width_multiplier=0.125)
        trainer = Trainer(
            model, train_loader, config=TrainConfig(epochs=1, optimizer="sgd", lr=0.01)
        )
        trainer.fit()

    def test_unknown_optimizer_rejected(self, tiny_task):
        train_loader, _, _ = tiny_task
        with pytest.raises(ValueError):
            Trainer(
                resnet18(width_multiplier=0.125),
                train_loader,
                config=TrainConfig(optimizer="lamb"),
            )

    def test_evaluate_requires_loader(self, tiny_task):
        train_loader, _, _ = tiny_task
        trainer = Trainer(resnet18(width_multiplier=0.125), train_loader)
        with pytest.raises(ValueError):
            trainer.evaluate()

    def test_evaluate_restores_train_mode(self, tiny_task):
        _, test_loader, _ = tiny_task
        model = resnet18(width_multiplier=0.125)
        evaluate(model, test_loader)
        assert model.training


class TestCalibration:
    def test_set_calibrating_counts_quantizers(self):
        model = lenet(spec=ConvSpec("F2", int8()))
        n = set_calibrating(model, True)
        assert n > 0
        assert all(q.calibrating for q in model.modules() if isinstance(q, Quantizer))
        set_calibrating(model, False)

    def test_calibrate_updates_ranges_not_weights(self, tiny_task):
        train_loader, _, _ = tiny_task
        model = resnet18(width_multiplier=0.125, spec=ConvSpec("F2", int8()))
        weights_before = {
            name: p.data.copy() for name, p in model.named_parameters()
        }
        calibrate(model, train_loader, num_batches=2)
        for name, p in model.named_parameters():
            np.testing.assert_array_equal(p.data, weights_before[name])
        quantizers = [q for q in model.modules() if isinstance(q, Quantizer) if q.enabled]
        assert any(q.initialized.data[0] for q in quantizers)

    def test_calibrate_leaves_calibration_mode_off(self):
        from repro.data import make_mnist_like

        train, _ = make_mnist_like(40, 20, size=20, seed=0)
        loader = DataLoader(train, batch_size=20, seed=0)
        model = lenet(spec=ConvSpec("F2", int8()), image_size=20)
        calibrate(model, loader, num_batches=1)
        assert not any(
            q.calibrating for q in model.modules() if isinstance(q, Quantizer)
        )


class TestAdaptation:
    def test_canonical_names_strip_wrappers(self):
        model = resnet18(width_multiplier=0.125, spec=ConvSpec("im2row", int8()))
        canon = canonical_state_dict(model)
        assert any(k.endswith("conv1.weight") for k in canon)
        assert not any(".conv.weight" in k for k in canon)

    def test_transfer_im2row_to_winograd(self, rng):
        src = resnet18(width_multiplier=0.125, spec=ConvSpec("im2row"))
        dst = resnet18(width_multiplier=0.125, spec=ConvSpec("F4", int8(), flex=True))
        copied, skipped = transfer_weights(src, dst)
        assert copied > 50
        np.testing.assert_array_equal(
            dst.blocks[0].conv1.weight.data, src.blocks[0].conv1.weight.data
        )
        # transforms are NOT transferred — they stay at Cook–Toom init
        assert dst.blocks[0].conv1.transform_drift() < 1e-6

    def test_transfer_preserves_fp32_predictions_for_f2(self, rng, tiny_task):
        """FP32 post-training swap to F2 must be accuracy-neutral (Table 1)."""
        _, test_loader, _ = tiny_task
        src = resnet18(width_multiplier=0.125, spec=ConvSpec("im2row"))
        dst = resnet18(width_multiplier=0.125, spec=ConvSpec("F2"))
        transfer_weights(src, dst)
        x = Tensor(rng.standard_normal((4, 3, 16, 16)).astype(np.float32))
        src.eval(), dst.eval()
        np.testing.assert_allclose(src(x).data, dst(x).data, atol=1e-3)

    def test_transfer_mismatched_widths_raises(self):
        src = resnet18(width_multiplier=0.125)
        dst = resnet18(width_multiplier=0.25)
        with pytest.raises(ValueError):
            transfer_weights(src, dst)

    def test_adapt_returns_target(self):
        src = resnet18(width_multiplier=0.125)
        dst = resnet18(width_multiplier=0.125, spec=ConvSpec("F4", flex=True))
        assert adapt_to_winograd(src, dst) is dst
