"""Integrity of the embedded paper data."""

import pytest

from repro.paperdata import (
    FIGURE7_ALGORITHMS,
    FIGURE7_CHANNEL_CONFIGS,
    FIGURE7_OUTPUT_WIDTHS,
    FIGURE5_LENET,
    FIGURE9_ARCHITECTURES,
    TABLE1_ACCURACY,
    TABLE2_CORES,
    TABLE3_ROWS,
    TABLE4_SQUEEZENET,
    TABLE5_RESNEXT,
    figure7_grid,
    figure7_latency,
)


class TestFigure7:
    def test_grid_is_complete(self):
        grid = figure7_grid()
        assert len(grid) == 12 * 5 * 4  # widths × channel configs × algorithms

    def test_lookup_matches_grid(self):
        assert figure7_latency(24, 256, 512, "im2row") == 251.771
        assert figure7_latency(2, 3, 32, "F2") == 0.008

    def test_unknown_cell_raises(self):
        with pytest.raises(KeyError):
            figure7_latency(3, 3, 32, "im2row")
        with pytest.raises(KeyError):
            figure7_latency(2, 3, 32, "fft")

    def test_all_latencies_positive(self):
        assert all(v > 0 for v in figure7_grid().values())

    def test_known_shape_claims(self):
        """The three §6.2 observations hold in the raw published data."""
        grid = figure7_grid()
        # (1) im2row wins the 3→32 input column everywhere
        for w in FIGURE7_OUTPUT_WIDTHS:
            best = min(FIGURE7_ALGORITHMS, key=lambda a: grid[(w, 3, 32, a)])
            assert best == "im2row"
        # (2) F6 is fastest for wide outputs in deep columns
        for cin, cout in ((128, 192), (192, 256), (256, 512)):
            best = min(FIGURE7_ALGORITHMS, key=lambda a: grid[(24, cin, cout, a)])
            assert best == "F6"
        # (3) F4 beats F6 at width 16 (tiling alternation)
        assert grid[(16, 128, 192, "F4")] < grid[(16, 128, 192, "F6")]


class TestTables:
    def test_table1_structure(self):
        assert set(TABLE1_ACCURACY) == {"direct", "F2", "F4", "F6"}
        for row in TABLE1_ACCURACY.values():
            assert set(row) == {32, 16, 8}

    def test_table1_collapse_encoded(self):
        assert TABLE1_ACCURACY["F4"][8] < 20
        assert TABLE1_ACCURACY["F2"][8] > 90

    def test_table2_matches_cores_module(self):
        from repro.hardware import get_core

        for name, spec in TABLE2_CORES.items():
            core = get_core(name)
            assert core.clock_ghz == spec["clock_ghz"]
            assert core.l1_kb == spec["l1_kb"]
            assert core.l2_kb == spec["l2_kb"]

    def test_table3_speedup_consistency(self):
        """Published speedups: WAF4 INT8 = 2.43× on A73 (35 ms vs 85 ms)."""
        row = next(r for r in TABLE3_ROWS if r["conv"] == "WAF4" and r["bits"] == 8)
        assert 85.0 / row["a73"] == pytest.approx(2.43, abs=0.01)

    def test_table4_and_5_encode_the_collapse(self):
        t4 = {(r[0], r[1], r[2]): r[3] for r in TABLE4_SQUEEZENET}
        t5 = {(r[0], r[1], r[2]): r[3] for r in TABLE5_RESNEXT}
        for table in (t4, t5):
            assert table[("WAF4", 8, "static")] < table[("WAF4", 8, "flex")] - 10

    def test_figure5_flex_dominates_static(self):
        assert FIGURE5_LENET["F4-flex"] > FIGURE5_LENET["F4"]
        assert FIGURE5_LENET["F6-flex"] > FIGURE5_LENET["F6"]

    def test_figure9_architectures_have_20_layers(self):
        for name, layers in FIGURE9_ARCHITECTURES.items():
            assert len(layers) == 20, name
            for algo, prec in layers:
                assert algo in ("im2row", "F2", "F4", "F6")
                assert prec in ("fp32", "int16", "int8")

    def test_figure9_waq_keeps_first_layer_high_precision(self):
        for name, layers in FIGURE9_ARCHITECTURES.items():
            assert layers[0][1] == "fp32"
