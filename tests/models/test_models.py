"""Model zoo: shapes, parameter counts, plan mechanics."""

import numpy as np
import pytest

from repro.autograd import Tensor
from repro.models import (
    ConvSpec,
    LayerPlan,
    lenet,
    resnet18,
    resnext20,
    spec_from_name,
    squeezenet,
    uniform_plan,
)
from repro.models.resnet import NUM_SEARCHABLE_LAYERS, TAIL_F2_LAYERS
from repro.nn.qlayers import QuantConv2d
from repro.quant.qconfig import fp32, int8
from repro.winograd.layer import WinogradConv2d


class TestConvSpec:
    def test_winograd_properties(self):
        spec = ConvSpec("F4", int8(), flex=True)
        assert spec.is_winograd
        assert spec.m == 4
        assert spec.name == "F4-flex@int8"

    def test_im2row_has_no_m(self):
        with pytest.raises(ValueError):
            ConvSpec("im2row").m

    def test_flex_on_im2row_rejected(self):
        with pytest.raises(ValueError):
            ConvSpec("im2row", flex=True)

    def test_unknown_algorithm_rejected(self):
        with pytest.raises(ValueError):
            ConvSpec("fft")

    def test_build_dispatches_to_layer_types(self):
        assert isinstance(ConvSpec("F2").build(4, 4), WinogradConv2d)
        assert isinstance(ConvSpec("im2row", int8()).build(4, 4), QuantConv2d)
        from repro.nn.layers import Conv2d

        assert isinstance(ConvSpec("im2row").build(4, 4), Conv2d)

    @pytest.mark.parametrize(
        "name,algo,flex",
        [
            ("F2", "F2", False),
            ("F4-flex", "F4", True),
            ("WAF4", "F4", False),
            ("WAF2-flex", "F2", True),
            ("im2row", "im2row", False),
            ("im2col", "im2col", False),
        ],
    )
    def test_spec_from_name(self, name, algo, flex):
        spec = spec_from_name(name)
        assert spec.algorithm == algo
        assert spec.flex == flex

    def test_spec_from_name_rejects_flex_im2row(self):
        with pytest.raises(ValueError):
            spec_from_name("im2row-flex")


class TestUniformPlan:
    def test_tail_pinned_to_f2_for_large_tiles(self):
        plan = uniform_plan(ConvSpec("F4"), 16, TAIL_F2_LAYERS)
        assert plan.spec_for(0).algorithm == "F4"
        for idx in TAIL_F2_LAYERS:
            assert plan.spec_for(idx).algorithm == "F2"

    def test_f2_plan_not_modified(self):
        plan = uniform_plan(ConvSpec("F2"), 16, TAIL_F2_LAYERS)
        assert not plan.overrides

    def test_im2row_plan_not_modified(self):
        plan = uniform_plan(ConvSpec("im2row"), 16, TAIL_F2_LAYERS)
        assert not plan.overrides

    def test_out_of_range_tail_rejected(self):
        with pytest.raises(ValueError):
            uniform_plan(ConvSpec("F4"), 4, (10,))


class TestResNet18:
    def test_output_shape(self, rng):
        model = resnet18(width_multiplier=0.125)
        x = Tensor(rng.standard_normal((2, 3, 16, 16)).astype(np.float32))
        assert model(x).shape == (2, 10)

    def test_full_width_param_count_near_11m(self):
        """The paper quotes ~11M parameters at multiplier 1.0."""
        n = resnet18(width_multiplier=1.0).num_parameters()
        assert 10.5e6 < n < 11.8e6

    def test_smallest_width_param_count_near_paper(self):
        """Paper: models range from ~215K (×0.125) to 11M (×1.0)."""
        n = resnet18(width_multiplier=0.125).num_parameters()
        assert 1.2e5 < n < 3e5

    def test_width_scales_params_monotonically(self):
        counts = [
            resnet18(width_multiplier=w).num_parameters() for w in (0.125, 0.25, 0.5)
        ]
        assert counts[0] < counts[1] < counts[2]

    def test_has_16_searchable_layers(self):
        model = resnet18(width_multiplier=0.125, spec=ConvSpec("F2"))
        assert len(model.conv3x3_modules()) == NUM_SEARCHABLE_LAYERS

    def test_stem_is_standard_conv_even_in_winograd_plan(self):
        model = resnet18(width_multiplier=0.125, spec=ConvSpec("F4"))
        assert not isinstance(model.stem, WinogradConv2d)

    def test_f4_plan_pins_tail_blocks_to_f2(self):
        model = resnet18(width_multiplier=0.125, spec=ConvSpec("F4"))
        convs = model.conv3x3_modules()
        assert all(isinstance(c, WinogradConv2d) for c in convs)
        assert convs[0].m == 4
        for idx in TAIL_F2_LAYERS:
            assert convs[idx].m == 2

    def test_num_classes(self, rng):
        model = resnet18(num_classes=100, width_multiplier=0.125)
        x = Tensor(rng.standard_normal((1, 3, 16, 16)).astype(np.float32))
        assert model(x).shape == (1, 100)

    def test_downsampling_halves_resolution_three_times(self, rng):
        model = resnet18(width_multiplier=0.125)
        x = Tensor(rng.standard_normal((1, 3, 32, 32)).astype(np.float32))
        model(x)
        # stage-4 convs saw 4×4 inputs (32 → 16 → 8 → 4)
        assert model.conv3x3_modules()[-1].last_input_hw == (4, 4)

    def test_int8_plan_forward_finite(self, rng):
        model = resnet18(width_multiplier=0.125, spec=ConvSpec("F4", int8(), flex=True))
        x = Tensor(rng.standard_normal((2, 3, 16, 16)).astype(np.float32))
        assert np.isfinite(model(x).data).all()


class TestLeNet:
    def test_output_shape(self, rng):
        model = lenet()
        x = Tensor(rng.standard_normal((2, 1, 28, 28)).astype(np.float32))
        assert model(x).shape == (2, 10)

    def test_uses_5x5_kernels(self):
        model = lenet(spec=ConvSpec("F2"))
        assert model.conv1.kernel_size == 5
        assert model.conv1.t == 6  # F(2x2, 5x5) → 6x6 tiles

    def test_f6_uses_10x10_tiles(self):
        """The hardest case in Figure 5: F(6×6, 5×5) on 10×10 tiles."""
        model = lenet(spec=ConvSpec("F6"))
        assert model.conv1.t == 10

    def test_custom_image_size(self, rng):
        model = lenet(image_size=20)
        x = Tensor(rng.standard_normal((1, 1, 20, 20)).astype(np.float32))
        assert model(x).shape == (1, 10)


class TestSqueezeNet:
    def test_output_shape(self, rng):
        model = squeezenet(width_multiplier=0.25)
        x = Tensor(rng.standard_normal((2, 3, 32, 32)).astype(np.float32))
        assert model(x).shape == (2, 10)

    def test_has_8_searchable_layers(self):
        model = squeezenet(width_multiplier=0.25, spec=ConvSpec("F2"))
        winograd = [m for m in model.modules() if isinstance(m, WinogradConv2d)]
        assert len(winograd) == 8

    def test_fire_concat_doubles_expand_channels(self, rng):
        model = squeezenet(width_multiplier=0.25)
        x = Tensor(rng.standard_normal((1, 3, 16, 16)).astype(np.float32))
        assert np.isfinite(model(x).data).all()


class TestResNeXt:
    def test_output_shape(self, rng):
        model = resnext20(width_multiplier=0.25)
        x = Tensor(rng.standard_normal((2, 3, 16, 16)).astype(np.float32))
        assert model(x).shape == (2, 10)

    def test_has_6_searchable_grouped_layers(self):
        model = resnext20(width_multiplier=0.25, spec=ConvSpec("F4"))
        winograd = [m for m in model.modules() if isinstance(m, WinogradConv2d)]
        assert len(winograd) == 6
        assert all(m.groups == 8 for m in winograd)

    def test_cardinality_divides_widths(self):
        model = resnext20(width_multiplier=0.5)
        for block in model.blocks:
            assert block.conv3.in_channels % 8 == 0
