"""Engine-level tracing contracts (ISSUE 7 tentpole).

Covers the span recorder itself (ring wrap, fork/env gating helpers),
the per-step spans the executor emits, the structural well-formedness
of span trees, the Chrome exporter's schema, the reference-backend
bit-identity of traced vs untraced runs, and the ``profile_plan``
sum-vs-median sanity bound.
"""

import json

import numpy as np
import pytest

from repro.engine import compile_model
from repro.models.common import ConvSpec
from repro.models.lenet import lenet
from repro.obs.export import (
    to_chrome_trace,
    validate_chrome_trace,
    write_chrome_trace,
)
from repro.obs.profile import format_profile_table, profile_plan
from repro.obs.trace import (
    Span,
    TraceBuffer,
    build_span_trees,
    env_enabled,
    filter_request,
    validate_span_tree,
)


def _plan_and_input(backend="fast", batch=4, seed=0):
    model = lenet(spec=ConvSpec("F2"))
    model.eval()
    rng = np.random.default_rng(seed)
    x = rng.standard_normal((batch, 1, 28, 28)).astype(np.float32)
    return compile_model(model, backend=backend), x


class TestTraceBuffer:
    def test_record_and_snapshot_order(self):
        buf = TraceBuffer(capacity=8)
        for i in range(5):
            buf.record(f"s{i}", "test", start_ns=i, end_ns=i + 1)
        names = [s.name for s in buf.snapshot()]
        assert names == ["s0", "s1", "s2", "s3", "s4"]
        assert len(buf) == 5
        assert buf.dropped == 0

    def test_ring_wrap_counts_dropped_and_keeps_newest(self):
        buf = TraceBuffer(capacity=4)
        for i in range(10):
            buf.record(f"s{i}", "test", start_ns=i, end_ns=i + 1)
        assert buf.dropped == 6
        assert [s.name for s in buf.snapshot()] == ["s6", "s7", "s8", "s9"]

    def test_clear_resets_everything(self):
        buf = TraceBuffer(capacity=2)
        buf.record("a", "test", 0, 1)
        buf.record("b", "test", 0, 1)
        buf.record("c", "test", 0, 1)
        buf.clear()
        assert len(buf) == 0 and buf.dropped == 0
        assert buf.snapshot() == []

    def test_capacity_must_be_positive(self):
        with pytest.raises(ValueError):
            TraceBuffer(capacity=0)

    def test_span_dict_round_trip(self):
        span = Span("k", "kernel", 10, 5, attrs={"step": 3},
                    parent_id="p", request_id="r-1", proc="w-0", lane=2)
        clone = Span.from_dict(json.loads(json.dumps(span.to_dict())))
        assert clone.to_dict() == span.to_dict()

    def test_env_enabled_values(self, monkeypatch):
        for value, expected in (
            ("1", True), ("true", True), ("on", True), ("YES", True),
            ("0", False), ("", False), ("off", False),
        ):
            monkeypatch.setenv("REPRO_TRACE", value)
            assert env_enabled() is expected


class TestEngineSpans:
    def test_one_step_span_per_plan_step(self):
        plan, x = _plan_and_input()
        buf = TraceBuffer()
        plan.run(x, trace=buf)
        spans = buf.snapshot()
        roots = [s for s in spans if s.cat == "engine" and s.name == "plan_run"]
        steps = [s for s in spans if s.cat == "kernel"
                 and "chunk_index" not in s.attrs]
        assert len(roots) == 1
        assert len(steps) == len(plan)
        assert sorted(s.attrs["step"] for s in steps) == list(range(len(plan)))
        assert roots[0].attrs["backend"] == "fast"
        for s in steps:
            assert s.parent_id == roots[0].span_id
            assert s.attrs["domain"] in ("fp32", "winograd", "int8",
                                         "int8-wino")

    def test_span_tree_well_formed(self):
        plan, x = _plan_and_input()
        buf = TraceBuffer()
        plan.run(x, trace=buf)
        problems = validate_span_tree(buf.snapshot())
        assert problems == []

    def test_threaded_chunked_run_has_chunk_spans_under_steps(self):
        plan, x = _plan_and_input(batch=8)
        buf = TraceBuffer()
        plan.run(x, threads=2, trace=buf)
        spans = buf.snapshot()
        chunks = [s for s in spans if "chunk_index" in s.attrs]
        assert chunks, "threads=2 on batch=8 must chunk at least one step"
        steps_by_id = {s.span_id: s for s in spans
                       if s.cat == "kernel" and "chunk_index" not in s.attrs}
        for c in chunks:
            assert c.parent_id in steps_by_id
        assert validate_span_tree(spans) == []

    def test_untraced_run_emits_nothing_and_accepts_trace_none(self):
        plan, x = _plan_and_input()
        out_plain = plan.run(x)
        out_none = plan.run(x, trace=None)
        np.testing.assert_array_equal(out_plain, out_none)

    def test_reference_backend_bit_identical_traced_vs_untraced(self):
        plan, x = _plan_and_input(backend="reference")
        untraced = plan.run(x)
        buf = TraceBuffer()
        traced = plan.run(x, trace=buf)
        np.testing.assert_array_equal(traced, untraced)
        assert len(buf) == len(plan) + 1  # steps + plan_run root
        # reference runs with planning=False: no arena, slot_bytes None
        assert all(
            s.attrs.get("slot_bytes") is None
            for s in buf.snapshot() if s.cat == "kernel"
        )

    def test_fast_backend_bit_identical_traced_vs_untraced(self):
        plan, x = _plan_and_input(backend="fast")
        np.testing.assert_array_equal(
            plan.run(x, trace=TraceBuffer()), plan.run(x)
        )


class TestSpanUtilities:
    def _family(self):
        root = Span("root", "t", 0, 100, span_id="r")
        child = Span("child", "t", 10, 50, span_id="c", parent_id="r",
                     request_id="req-1")
        grand = Span("grand", "t", 20, 20, span_id="g", parent_id="c")
        other = Span("other", "t", 0, 10, span_id="o")
        return [root, child, grand, other]

    def test_filter_request_includes_descendants(self):
        spans = self._family()
        got = {s.span_id for s in filter_request(spans, "req-1")}
        assert got == {"c", "g"}

    def test_filter_request_matches_batch_request_ids_attr(self):
        spans = self._family()
        spans[0].attrs["request_ids"] = ["req-9"]
        got = {s.span_id for s in filter_request(spans, "req-9")}
        assert got == {"r", "c", "g"}

    def test_build_span_trees_nests_and_sorts(self):
        trees = build_span_trees(self._family())
        assert [t["name"] for t in trees] == ["root", "other"]
        root = trees[0]
        assert root["children"][0]["name"] == "child"
        assert root["children"][0]["children"][0]["name"] == "grand"

    def test_validate_span_tree_flags_orphans_and_overlap(self):
        orphan = Span("lost", "t", 0, 1, parent_id="nope")
        assert any("orphan" in p for p in validate_span_tree([orphan]))
        parent = Span("p", "t", 0, 10, span_id="p")
        escapee = Span("e", "t", 5, 100_000_000, span_id="e", parent_id="p")
        problems = validate_span_tree([parent, escapee])
        assert any("ends after parent" in p for p in problems)


class TestChromeExport:
    def test_export_schema_validates_and_loads(self, tmp_path):
        plan, x = _plan_and_input()
        buf = TraceBuffer()
        plan.run(x, trace=buf)
        doc = to_chrome_trace(buf.snapshot(), default_proc="main")
        assert validate_chrome_trace(doc) == []
        path = tmp_path / "trace.json"
        write_chrome_trace(str(path), buf.snapshot())
        loaded = json.loads(path.read_text())
        assert validate_chrome_trace(loaded) == []
        complete = [e for e in loaded["traceEvents"] if e["ph"] == "X"]
        assert len(complete) == len(buf)
        # ts/dur are microseconds
        root = next(e for e in complete if e["name"] == "plan_run")
        span = next(s for s in buf.snapshot() if s.name == "plan_run")
        assert root["dur"] == pytest.approx(span.dur_ns / 1000, rel=1e-6)

    def test_validator_rejects_malformed_documents(self):
        assert validate_chrome_trace([]) != []
        assert validate_chrome_trace({"traceEvents": []}) != []
        assert validate_chrome_trace(
            {"traceEvents": [{"ph": "X", "name": "a", "pid": 0, "tid": 0,
                              "ts": 0, "dur": -5, "cat": "c"}]}
        ) != []

    def test_distinct_procs_get_distinct_pids(self):
        spans = [
            Span("a", "t", 0, 1, proc="frontend"),
            Span("b", "t", 0, 1, proc="worker-0"),
        ]
        doc = to_chrome_trace(spans, default_proc="frontend")
        pids = {e["args"]["name"]: e["pid"] for e in doc["traceEvents"]
                if e["ph"] == "M" and e["name"] == "process_name"}
        assert set(pids) == {"frontend", "worker-0"}
        assert pids["frontend"] != pids["worker-0"]


class TestProfile:
    def test_profile_rows_cover_every_step_and_sum_sane(self):
        plan, x = _plan_and_input()
        prof = profile_plan(plan, x, repeats=3)
        assert [r["index"] for r in prof["steps"]] == list(range(len(plan)))
        assert prof["step_sum_ms"] > 0
        # The per-run pairing bounds the dispatch overhead; keep the
        # test bound generous (CI hosts are noisy), the acceptance
        # target is 10%.
        assert abs(prof["sum_vs_median_pct"]) < 25.0
        table = format_profile_table(prof)
        assert "steps sum" in table and "whole-plan median" in table
