"""Concurrent client against the dynamic-batching inference server.

Starts an in-process server (unless ``--url`` points at one you started
with ``repro serve``), fires a wave of concurrent single-sample requests
from worker threads, and shows how the server coalesced them into engine
batches — plus the ``/metrics`` summary the server keeps.

Run:  python examples/serve_client.py
      python examples/serve_client.py --url http://127.0.0.1:8100 \
          --model resnet18-w0.25-F4-int8 --concurrency 16
"""

import argparse
import threading

import numpy as np

from repro.serve import (
    BatchPolicy,
    ModelRegistry,
    ServeClient,
    start_in_background,
)


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--url", default=None, help="running server (default: in-process)")
    parser.add_argument("--model", default="resnet18-w0.25-F4-int8")
    parser.add_argument("--concurrency", type=int, default=16)
    parser.add_argument("--requests", type=int, default=4, help="per worker")
    args = parser.parse_args()

    handle = None
    if args.url is None:
        print(f"starting in-process server with {args.model} ...")
        registry = ModelRegistry()
        registry.load(args.model)
        handle = start_in_background(
            registry, policy=BatchPolicy(max_batch_size=16, max_wait_ms=4.0)
        )
        args.url = handle.base_url
        print(f"serving on {args.url}")

    try:
        with ServeClient(args.url) as probe:
            target = next(
                m for m in probe.models()["models"] if m["name"] == args.model
            )
        shape = tuple(target["sample_shape"])
        rng = np.random.default_rng(0)
        samples = rng.standard_normal((8, *shape)).astype(np.float32)

        batch_sizes, latencies = [], []
        lock = threading.Lock()

        def worker(worker_id: int) -> None:
            # One keep-alive connection per thread (clients are cheap but
            # not thread-safe), single-sample requests with a 2 s SLO.
            with ServeClient(args.url) as client:
                for j in range(args.requests):
                    response = client.predict_raw(
                        samples[(worker_id + j) % len(samples)],
                        model=args.model,
                        deadline_ms=2000,
                        encoding="b64",
                    )
                    with lock:
                        batch_sizes.append(response["batch_size"])
                        latencies.append(response["queue_ms"] + response["run_ms"])

        threads = [
            threading.Thread(target=worker, args=(i,))
            for i in range(args.concurrency)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()

        total = len(latencies)
        print(
            f"\n{total} requests from {args.concurrency} concurrent clients:"
            f"\n  engine batches rode in: sizes {sorted(set(batch_sizes))}"
            f" (mean {np.mean(batch_sizes):.1f} — dynamic batching at work)"
            f"\n  server-side latency: p50 {np.percentile(latencies, 50):.1f} ms,"
            f" p99 {np.percentile(latencies, 99):.1f} ms"
        )

        with ServeClient(args.url) as probe:
            metrics = probe.metrics()
        served = metrics["models"][args.model]
        print(
            f"  /metrics: {served['responses_total']} responses, "
            f"mean batch {served['mean_batch_size']:.2f}, "
            f"plan-cache hit rate {metrics['plan_cache']['hit_rate']:.2f}, "
            f"{metrics['throughput_rps']:.1f} req/s since start"
        )
    finally:
        if handle is not None:
            handle.stop()
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
