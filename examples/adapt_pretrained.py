"""Figure 6 workflow: adapt a pre-trained standard CNN to Winograd-aware.

The deployment story the paper's §6.1 sells: you already have a trained
FP32 model with normal convolutions; instead of retraining 120 epochs with
Winograd-aware layers, copy its weights into the Winograd-aware twin and
fine-tune for a few epochs (one epoch suffices in FP32, ~20 at INT8 —
2.8× cheaper than from scratch).  Works only with learnable transforms.

Run:  python examples/adapt_pretrained.py
"""

from repro.data import DataLoader, make_cifar10_like
from repro.models import ConvSpec, resnet18
from repro.quant import int8
from repro.training import TrainConfig, Trainer, adapt_to_winograd, calibrate
from repro.training.trainer import evaluate

train_set, test_set = make_cifar10_like(num_train=600, num_test=200, size=16)
train_loader = DataLoader(train_set, batch_size=40, seed=0)
test_loader = DataLoader(test_set, batch_size=40, shuffle=False)

# --- Step 1: the "existing" model: standard convolutions, FP32 ------------
source = resnet18(width_multiplier=0.25, spec=ConvSpec("im2row"))
Trainer(
    source, train_loader, test_loader, TrainConfig(epochs=4, lr=2e-3, verbose=True)
).fit()
source_acc = evaluate(source, test_loader)
print(f"\npre-trained FP32 standard model: {source_acc:.3f}")

# --- Step 2: FP32 Winograd-aware twin — adapted in ONE epoch --------------
fp32_twin = resnet18(width_multiplier=0.25, spec=ConvSpec("F4", flex=True))
adapt_to_winograd(source, fp32_twin)
Trainer(
    fp32_twin, train_loader, test_loader, TrainConfig(epochs=1, lr=5e-4)
).fit()
print(f"FP32 F4-flex after 1 adaptation epoch:  {evaluate(fp32_twin, test_loader):.3f}")

# --- Step 3: INT8 Winograd-aware twin — calibrate, then fine-tune ----------
int8_twin = resnet18(width_multiplier=0.25, spec=ConvSpec("F4", int8(), flex=True))
adapt_to_winograd(source, int8_twin)
calibrate(int8_twin, train_loader, num_batches=4)  # warm up the observers
Trainer(
    int8_twin, train_loader, test_loader, TrainConfig(epochs=3, lr=1e-3)
).fit()
print(f"INT8 F4-flex after 3 adaptation epochs: {evaluate(int8_twin, test_loader):.3f}")

# --- Contrast: INT8 from scratch with the same short budget -----------------
scratch = resnet18(width_multiplier=0.25, spec=ConvSpec("F4", int8(), flex=True))
Trainer(
    scratch, train_loader, test_loader, TrainConfig(epochs=3, lr=1e-3)
).fit()
print(f"INT8 F4-flex from scratch, same budget: {evaluate(scratch, test_loader):.3f}")
