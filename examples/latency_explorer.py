"""Explore the calibrated Arm-CPU latency model (Figures 7 & 8).

Prints, for a chosen layer shape, each convolution algorithm's latency
breakdown on both cores — the tool you'd use to answer "should this layer
be F4 or F6?" before reaching for the full wiNAS search — and then
cross-checks the model against *this host*: each algorithm is compiled
into a single-layer inference plan (repro.engine) and wall-clocked.

Run:  python examples/latency_explorer.py [inCh] [outCh] [outWidth]
"""

import sys

import numpy as np

from repro.engine import compile_model, measure_plan_ms
from repro.hardware import ConvShape, get_calibrated_model
from repro.models.common import spec_from_name
from repro.paperdata import figure7_grid

cin = int(sys.argv[1]) if len(sys.argv) > 1 else 128
cout = int(sys.argv[2]) if len(sys.argv) > 2 else 128
width = int(sys.argv[3]) if len(sys.argv) > 3 else 16

cal = get_calibrated_model()
shape = ConvShape(cin, cout, width)
grid = figure7_grid()

print(f"3x3 convolution, {cin}->{cout} channels, {width}x{width} output\n")
for core in ("A73", "A53"):
    print(f"--- Cortex-{core} (FP32 / INT8, ms) ---")
    base = cal.conv_latency(shape, "im2row", core=core).total_ms
    for algo in ("im2row", "im2col", "F2", "F4", "F6"):
        fp = cal.conv_latency(shape, algo, core=core)
        i8 = cal.conv_latency(shape, algo, dtype="int8", core=core)
        published = grid.get((width, cin, cout, algo))
        pub = f"  (paper A73 fp32: {published:7.3f})" if published and core == "A73" else ""
        stages = (
            f"[transforms {fp.input_transform_ms + fp.output_transform_ms:6.3f}"
            f" + gemm {fp.gemm_ms + fp.lowering_ms:6.3f}]"
            if algo.startswith("F")
            else ""
        )
        print(
            f"  {algo:7s} fp32 {fp.total_ms:8.3f} ({base / fp.total_ms:4.2f}x)"
            f"  int8 {i8.total_ms:8.3f} {stages}{pub}"
        )
    print()

print("dense (learned/flex) transform penalty for F4, per §A.2:")
for core in ("A73", "A53"):
    sparse = cal.conv_latency(shape, "F4", core=core).total_ms
    dense = cal.conv_latency(shape, "F4", core=core, dense_transforms=True).total_ms
    print(f"  {core}: {sparse:.3f} → {dense:.3f} ms (+{100 * (dense / sparse - 1):.0f}%)")

print("\n--- this host: compiled single-layer plans (repro.engine, fast) ---")
x = np.random.default_rng(0).standard_normal((1, cin, width, width)).astype(np.float32)


def _host_ms(algo: str) -> float:
    layer = spec_from_name(algo).build(cin, cout, kernel_size=3)
    layer.eval()
    return measure_plan_ms(compile_model(layer, backend="fast"), x, repeats=5, warmup=2)


base_ms = _host_ms("im2row")
print(f"  im2row  {base_ms:8.3f} ms  (1.00x vs im2row)")
for algo in ("F2", "F4", "F6"):
    ms = _host_ms(algo)
    print(f"  {algo:7s} {ms:8.3f} ms  ({base_ms / ms:4.2f}x vs im2row)")
