"""Quickstart: Winograd-aware quantized training in ~40 lines.

Trains a small INT8 ResNet-18 with F4 Winograd convolutions and learnable
(flex) transforms on the synthetic CIFAR-10 stand-in, then prints accuracy
and the modelled mobile-CPU latency of the result.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro.data import DataLoader, make_cifar10_like
from repro.hardware import model_latency
from repro.models import ConvSpec, resnet18
from repro.quant import int8
from repro.training import TrainConfig, Trainer

# 1. Data: a deterministic synthetic 10-class image task (stand-in for
#    CIFAR-10 — no network access in this environment).
train_set, test_set = make_cifar10_like(num_train=600, num_test=200, size=16)
train_loader = DataLoader(train_set, batch_size=40, seed=0)
test_loader = DataLoader(test_set, batch_size=40, shuffle=False)

# 2. Model: the paper's CIFAR ResNet-18 with every 3×3 convolution as a
#    Winograd-aware F(4×4, 3×3) layer, all pipeline stages fake-quantized
#    to INT8, and the Cook–Toom transforms registered as learnable
#    parameters ("-flex").  The last two residual blocks stay F2 and the
#    stem stays a standard convolution, per the paper's §5.1 policy.
model = resnet18(
    width_multiplier=0.25,
    spec=ConvSpec("F2", int8(), flex=True),
)
print(f"model: {model.num_parameters():,} parameters")

# 3. Train with the paper's recipe (Adam + cosine annealing).
trainer = Trainer(
    model,
    train_loader,
    val_loader=test_loader,
    config=TrainConfig(epochs=4, lr=2e-3, verbose=True),
)
trainer.fit()

# 4. Evaluate and price the network on the modelled Arm cores.
accuracy = trainer.evaluate()
print(f"\nfinal INT8 Winograd-aware accuracy: {accuracy:.3f}")
for core in ("A73", "A53"):
    latency = model_latency(model, test_set.images[:1], core=core)
    print(f"modelled conv latency on Cortex-{core}: {latency.total_ms:.2f} ms")
