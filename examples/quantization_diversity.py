"""Quantization diversity (§3.2 / §7): mixed bit-widths inside one layer.

The Winograd-aware pipeline has six quantization points; the paper
hypothesises that relaxing the noisiest intermediate stages could recover
the INT8 accuracy gap for large tiles.  This example measures each stage's
contribution to the layer-level output error, then trains two LeNets whose
only difference is a 16-bit Hadamard stage.

Run:  python examples/quantization_diversity.py
"""

import numpy as np

from repro.autograd import Tensor
from repro.data import DataLoader, make_mnist_like
from repro.models import ConvSpec, LayerPlan, lenet
from repro.quant import QConfig, STAGES, int8
from repro.training import TrainConfig, Trainer
from repro.training.trainer import evaluate
from repro.winograd import WinogradConv2d
from repro.winograd.functional import direct_conv2d

# --- Part 1: per-stage error anatomy of one F4 layer at INT8 ---------------
rng = np.random.default_rng(0)
x = rng.standard_normal((2, 8, 12, 12)).astype(np.float32)

print("single F(4x4,3x3) layer, relative output error vs FP64 direct conv:")
for label, qc in [("all INT8", int8())] + [
    (f"{stage} → INT16", int8().with_stage(stage, 16)) for stage in STAGES
]:
    layer = WinogradConv2d(8, 8, 3, m=4, qconfig=qc, bias=False)
    ref = direct_conv2d(
        x.astype(np.float64), layer.weight.data.astype(np.float64), padding=1
    )
    err = np.abs(layer(Tensor(x)).data - ref).mean() / np.abs(ref).mean()
    print(f"  {label:28s} {err:8.4f}")

# --- Part 2: does a 16-bit Hadamard stage help real training? --------------
train_set, test_set = make_mnist_like(400, 150, size=20)
train_loader = DataLoader(train_set, batch_size=25, seed=0)
test_loader = DataLoader(test_set, batch_size=25, shuffle=False)

for label, qc in [
    ("uniform INT8", int8()),
    ("INT8 + Hadamard@16", int8().with_stage("hadamard", 16)),
]:
    model = lenet(plan=LayerPlan(ConvSpec("F4", qc, flex=True)), image_size=20)
    Trainer(
        model, train_loader, test_loader, TrainConfig(epochs=4, lr=2e-3)
    ).fit()
    print(f"LeNet F4-flex, {label:22s}: accuracy {evaluate(model, test_loader):.3f}")
