"""Multi-process sharded serving walkthrough (``repro serve --workers``).

Starts the same model twice — in-process (``workers=0``) and sharded
across forked worker processes with shared-memory tensor transport —
then demonstrates the ISSUE 5 guarantees end to end:

1. responses from the sharded server are **bit-identical** to the
   in-process ones (reference backend, deterministic per-spec seeds);
2. ``/metrics`` exposes the worker pool: per-worker queue depth, shm
   ring bytes, restarts, and each worker's own plan-cache stats;
3. kill a worker with ``SIGKILL`` mid-traffic — the batch is retried on
   a respawned worker, the client just sees a correct response, and
   ``worker_restarts`` ticks from 0 to 1.

Run:  python examples/serve_workers.py
      python examples/serve_workers.py --model lenet-F2-fp32@reference \
          --workers 4 --replicas 2
"""

import argparse
import os
import signal
import time

import numpy as np

from repro.serve import (
    BatchPolicy,
    ModelRegistry,
    ServeClient,
    start_in_background,
    wait_until_ready,
)


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--model", default="lenet-F2-fp32@reference")
    parser.add_argument("--workers", type=int, default=2)
    parser.add_argument("--replicas", type=int, default=None)
    parser.add_argument("--requests", type=int, default=8)
    args = parser.parse_args()
    policy = BatchPolicy(max_batch_size=4, max_wait_ms=2.0)

    # -- baseline: the exact single-process path -----------------------------
    registry0 = ModelRegistry()
    served = registry0.load(args.model)
    xs = np.random.default_rng(0).standard_normal(
        (args.requests,) + served.sample_shape
    ).astype(np.float32)
    with start_in_background(registry0, policy=policy) as handle:
        wait_until_ready(handle.base_url)
        with ServeClient(handle.base_url) as client:
            baseline = [
                client.predict(x, model=served.name, encoding="b64") for x in xs
            ]
    print(f"in-process baseline: {len(baseline)} responses from {served.name}")

    # -- sharded: lazy front-end, workers compile their own plans ------------
    registry = ModelRegistry(lazy=True)
    registry.load(args.model)
    with start_in_background(
        registry, policy=policy,
        workers=args.workers,
        worker_replicas=args.replicas or args.workers,
    ) as handle:
        wait_until_ready(handle.base_url, timeout=120)
        with ServeClient(handle.base_url) as client:
            outs = [
                client.predict(x, model=served.name, encoding="b64") for x in xs
            ]
            identical = all(
                np.array_equal(a, b) for a, b in zip(outs, baseline)
            )
            print(f"workers={args.workers}: bit-identical to in-process: "
                  f"{identical}")

            pool = client.metrics()["worker_pool"]
            print(f"placement: {pool['assignments']}")
            print(f"shm transport: {pool['shm_bytes_total']} bytes of ring "
                  f"segments across {pool['count']} workers")
            for worker in pool["per_worker"]:
                print(
                    f"  worker {worker['worker']} pid={worker['pid']} "
                    f"queue={worker['queue_depth']} "
                    f"served={worker.get('requests_total', 0)} "
                    f"plans={worker.get('plan_cache', {}).get('size', '?')}"
                )

            # -- fault injection: SIGKILL a worker under traffic -------------
            victim = pool["per_worker"][0]["pid"]
            print(f"\nkill -9 {victim} (worker 0) ...")
            os.kill(victim, signal.SIGKILL)
            replayed = [
                client.predict(x, model=served.name, encoding="b64") for x in xs
            ]
            still_identical = all(
                np.array_equal(a, b) for a, b in zip(replayed, baseline)
            )
            print(f"traffic after the kill: bit-identical: {still_identical} "
                  "(surviving replica + retry cover the gap)")
            # The health monitor (2 s interval) respawns the dead worker;
            # wait it out and watch worker_restarts tick.
            deadline = time.monotonic() + 30
            restarts = 0
            while time.monotonic() < deadline and restarts == 0:
                time.sleep(0.5)
                pool = client.metrics()["worker_pool"]
                restarts = pool["worker_restarts"]
            print(f"worker_restarts: {restarts} "
                  f"(worker 0 respawned as pid="
                  f"{pool['per_worker'][0].get('pid')})")
    return 0 if identical and still_identical else 1


if __name__ == "__main__":
    raise SystemExit(main())
