"""wiNAS: search a ResNet-18 for the best per-layer conv algorithm.

Reproduces the paper's §4 pipeline at laptop scale: build the
over-parameterised network whose every 3×3 layer superposes
{im2row, F2, F4, F6} at INT8, run the two-stage ProxylessNAS-style search
with a latency term from the calibrated Cortex-A73 model, then derive and
train the discovered architecture end to end.

Run:  python examples/winas_search.py [lambda2]
"""

import sys

from repro.data import DataLoader, make_cifar10_like
from repro.models import resnet18
from repro.nas import SearchConfig, WiNAS, wa_space
from repro.training import TrainConfig, Trainer

lambda2 = float(sys.argv[1]) if len(sys.argv) > 1 else 0.02

# Search data: the paper splits the training set into weight/arch halves.
train_set, test_set = make_cifar10_like(num_train=500, num_test=200, size=16)
weight_half, arch_half = train_set.split(0.5)
weight_loader = DataLoader(weight_half, batch_size=25, seed=0)
arch_loader = DataLoader(arch_half, batch_size=25, seed=1)

# Over-parameterised model: every searchable 3×3 conv is a MixedConv2d
# holding all four INT8 candidates with shared filters.
plan = WiNAS.make_plan(wa_space("int8"))
supernet = resnet18(width_multiplier=0.25, plan=plan)

nas = WiNAS(supernet, SearchConfig(epochs=2, lambda2=lambda2, verbose=True))
nas.populate_latencies(train_set.images[:25])
print(f"initial E[latency] = {nas.expected_latency_ms():.3f} ms (λ₂={lambda2})")

result = nas.search(weight_loader, arch_loader)
print(f"\nsearched E[latency] = {result.expected_latency_ms:.3f} ms")
print("discovered per-layer plan (cf. paper Figure 9):")
for line in result.describe():
    print("  " + line)

# Train the derived architecture end to end, as the paper does post-search.
final = resnet18(width_multiplier=0.25, plan=result.plan)
trainer = Trainer(
    final,
    DataLoader(train_set, batch_size=40, seed=0),
    val_loader=DataLoader(test_set, batch_size=40, shuffle=False),
    config=TrainConfig(epochs=3, lr=2e-3, verbose=True),
)
trainer.fit()
print(f"\nderived architecture accuracy: {trainer.evaluate():.3f}")
