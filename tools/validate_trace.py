#!/usr/bin/env python
"""Validate an exported Chrome trace-event JSON file (CI smoke job).

Checks that the file ``repro trace --export`` wrote is a loadable
Perfetto document and that it actually covers the layers the
observability smoke exercised:

* schema-valid per :func:`repro.obs.export.validate_chrome_trace`
  (top-level object, ``traceEvents`` list, every ``X`` event with
  numeric ``ts`` and non-negative ``dur``, metadata events well-formed);
* at least ``--min-events`` complete events;
* every process named in ``--expect-procs`` (comma-separated) appears
  as a ``process_name`` metadata entry — e.g.
  ``frontend,worker-0,worker-1`` for a ``--workers 2`` run;
* every span name in ``--expect-spans`` occurs at least once — the CI
  job asks for ``queue_wait,batch,worker_roundtrip,plan_run`` so a
  trace that silently lost a layer fails the build.

Usage::

    python tools/validate_trace.py trace.json \
        --expect-procs frontend,worker-0 \
        --expect-spans queue_wait,batch,plan_run

Exits 0 when valid, 1 with a problem listing otherwise.
"""

from __future__ import annotations

import argparse
import json
import pathlib
import sys

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.obs.export import validate_chrome_trace  # noqa: E402


def validate_file(
    path: str,
    min_events: int = 1,
    expect_procs: list = (),
    expect_spans: list = (),
) -> list:
    """Return a list of human-readable problems (empty when valid)."""
    try:
        with open(path) as fh:
            doc = json.load(fh)
    except (OSError, json.JSONDecodeError) as exc:
        return [f"{path}: unreadable trace: {exc}"]
    problems = validate_chrome_trace(doc)
    if problems:
        return [f"{path}: {p}" for p in problems]
    events = doc["traceEvents"]
    complete = [e for e in events if e.get("ph") == "X"]
    if len(complete) < min_events:
        problems.append(
            f"{path}: only {len(complete)} complete events "
            f"(expected >= {min_events})"
        )
    procs = {
        e["args"]["name"]
        for e in events
        if e.get("ph") == "M" and e.get("name") == "process_name"
    }
    for proc in expect_procs:
        if proc not in procs:
            problems.append(
                f"{path}: process {proc!r} missing (have {sorted(procs)})"
            )
    names = {e["name"] for e in complete}
    for span in expect_spans:
        if span not in names:
            problems.append(f"{path}: no span named {span!r} in the trace")
    return problems


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("trace", help="Chrome trace-event JSON file")
    parser.add_argument(
        "--min-events", type=int, default=1,
        help="minimum complete ('X') events required (default 1)",
    )
    parser.add_argument(
        "--expect-procs", default="",
        help="comma-separated process names that must appear",
    )
    parser.add_argument(
        "--expect-spans", default="",
        help="comma-separated span names that must appear",
    )
    args = parser.parse_args(argv)
    problems = validate_file(
        args.trace,
        min_events=args.min_events,
        expect_procs=[p for p in args.expect_procs.split(",") if p],
        expect_spans=[s for s in args.expect_spans.split(",") if s],
    )
    if problems:
        print("trace validation failed:")
        for problem in problems:
            print(f"  - {problem}")
        return 1
    with open(args.trace) as fh:
        count = len(json.load(fh)["traceEvents"])
    print(f"trace ok: {args.trace} ({count} events)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
