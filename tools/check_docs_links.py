#!/usr/bin/env python
"""Check intra-repo markdown links (CI docs job).

Walks every tracked ``*.md`` file, extracts inline links and bare
reference paths, and fails when a relative link points at a file that
does not exist — the cheap way to keep docs/ and the README from
rotting as files move.  Checked:

* inline links ``[text](target)`` with a relative target (external
  schemes like https:, mailto: are skipped);
* anchors on internal links (``architecture.md#layer-map``): the target
  file must contain a heading whose GitHub slug matches;
* fenced code blocks are ignored (shell examples routinely mention
  paths that only exist at runtime, like compiled artifacts).

Usage::

    python tools/check_docs_links.py            # repo root inferred
    python tools/check_docs_links.py --root DIR
"""

from __future__ import annotations

import argparse
import pathlib
import re
import sys

INLINE_LINK = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")
HEADING = re.compile(r"^#{1,6}\s+(.*?)\s*#*\s*$", re.MULTILINE)
FENCE = re.compile(r"```.*?```", re.DOTALL)
SKIP_SCHEMES = ("http://", "https://", "mailto:", "ftp://")
SKIP_DIRS = {".git", ".venv", "node_modules", "__pycache__"}


def github_slug(heading: str) -> str:
    """GitHub's anchor slug: lowercase, drop punctuation, spaces → dashes."""
    text = re.sub(r"[`*_]", "", heading.strip().lower())
    text = re.sub(r"[^\w\- ]", "", text)
    return text.replace(" ", "-")


def heading_slugs(path: pathlib.Path) -> set:
    text = FENCE.sub("", path.read_text(encoding="utf-8"))
    return {github_slug(m.group(1)) for m in HEADING.finditer(text)}


def markdown_files(root: pathlib.Path):
    for path in sorted(root.rglob("*.md")):
        if not SKIP_DIRS.intersection(path.relative_to(root).parts):
            yield path


def check_file(path: pathlib.Path, root: pathlib.Path) -> list:
    failures = []
    text = FENCE.sub("", path.read_text(encoding="utf-8"))
    for match in INLINE_LINK.finditer(text):
        target = match.group(1)
        if target.startswith(SKIP_SCHEMES) or target.startswith("#"):
            continue
        rel, _, anchor = target.partition("#")
        resolved = (path.parent / rel).resolve()
        where = f"{path.relative_to(root)}: link '{target}'"
        if not resolved.exists():
            failures.append(f"{where} -> missing file {rel}")
            continue
        if anchor and resolved.suffix == ".md":
            if github_slug(anchor) not in heading_slugs(resolved):
                failures.append(
                    f"{where} -> no heading '#{anchor}' in {rel}"
                )
    return failures


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--root",
        default=str(pathlib.Path(__file__).resolve().parent.parent),
        help="repository root (default: this script's grandparent)",
    )
    args = parser.parse_args(argv)
    root = pathlib.Path(args.root).resolve()

    failures, checked = [], 0
    for path in markdown_files(root):
        checked += 1
        failures.extend(check_file(path, root))
    for failure in failures:
        print(f"BROKEN: {failure}", file=sys.stderr)
    print(f"checked {checked} markdown files: {len(failures)} broken links")
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
