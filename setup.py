"""Setup shim: this environment ships without the `wheel` package, so
`pip install -e .` (PEP 660) cannot build editable wheels offline.
`python setup.py develop` provides the equivalent editable install."""
from setuptools import setup

setup()
