"""Packaging for the repro distribution.

This environment ships without the `wheel` package, so `pip install -e .`
(PEP 660) cannot build editable wheels offline; `python setup.py develop`
provides the equivalent editable install (after which `import repro`
works without PYTHONPATH=src).
"""

from setuptools import find_packages, setup

setup(
    name="repro-winograd-aware",
    version="1.0.0",
    description=(
        "Reproduction of 'Searching for Winograd-aware Quantized Networks' "
        "(Fernandez-Marques et al., MLSys 2020)"
    ),
    package_dir={"": "src"},
    packages=find_packages("src"),
    entry_points={"console_scripts": ["repro = repro.cli:main"]},
    python_requires=">=3.10",
    install_requires=["numpy"],
    extras_require={
        "test": ["pytest", "pytest-benchmark", "hypothesis"],
    },
)
