"""The serving model registry: named variants → compiled plans.

A served variant is fully described by a :class:`ModelSpec` — architecture
× width multiplier × conv algorithm ``F(m, r)`` × precision × engine
backend — and addressed by its canonical name, e.g.
``resnet18-w0.25-F4-int8``.  :class:`ModelRegistry` builds the model,
compiles it through the process-wide :data:`~repro.engine.cache.plan_cache`
(so repeated loads and signature-identical variants share plans) and hands
the server a :class:`ServedModel` with everything the batcher needs:
the plan, the per-sample input shape, and the spec metadata for
``/models``.
"""

from __future__ import annotations

import dataclasses
import os
import re
import threading
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.engine import get_cached_plan
from repro.engine.cache import PlanCache

#: architecture → (input channels, image size, default width multiplier).
ARCHITECTURES: Dict[str, Tuple[int, int, Optional[float]]] = {
    "lenet": (1, 28, None),
    "resnet18": (3, 32, 0.25),
    "squeezenet": (3, 32, 0.5),
    "resnext20": (3, 32, 0.5),
}

_NAME_RE = re.compile(
    r"^(?P<arch>[a-z0-9]+)"
    r"(?:-w(?P<width>\d+(?:\.\d+)?))?"
    r"-(?P<algorithm>[A-Za-z0-9]+(?:-flex)?)"
    r"-(?P<precision>[a-z0-9]+)"
    r"(?:@(?P<backend>[a-z][a-z0-9]*))?$"
)


@dataclass(frozen=True)
class ModelSpec:
    """One served variant: architecture × width × algorithm × precision."""

    architecture: str = "resnet18"
    width: Optional[float] = None  # None → architecture default
    algorithm: str = "F4"
    precision: str = "fp32"
    backend: str = "fast"
    seed: int = 0

    def __post_init__(self):
        if self.architecture not in ARCHITECTURES:
            raise ValueError(
                f"unknown architecture {self.architecture!r}; "
                f"expected one of {sorted(ARCHITECTURES)}"
            )

    @property
    def effective_width(self) -> Optional[float]:
        default = ARCHITECTURES[self.architecture][2]
        return default if self.width is None else self.width

    @property
    def sample_shape(self) -> Tuple[int, int, int]:
        """Per-sample (C, H, W) this variant accepts."""
        channels, size, _ = ARCHITECTURES[self.architecture]
        return (channels, size, size)

    @property
    def name(self) -> str:
        """Canonical name, e.g. ``resnet18-w0.25-F4-int8``."""
        parts = [self.architecture]
        width = self.effective_width
        if width is not None:
            parts.append(f"w{width:g}")
        parts.append(self.algorithm)
        parts.append(self.precision)
        name = "-".join(parts)
        if self.backend != "fast":
            name += f"@{self.backend}"
        return name

    @classmethod
    def parse(cls, name: str) -> "ModelSpec":
        """Parse a canonical name (``arch[-wW]-ALGO-prec[@backend]``)."""
        match = _NAME_RE.match(name.strip())
        if match is None:
            raise ValueError(
                f"cannot parse model name {name!r}; expected e.g. "
                "'resnet18-w0.25-F4-int8' or 'lenet-F2-fp32@reference'"
            )
        width = match.group("width")
        return cls(
            architecture=match.group("arch"),
            width=float(width) if width is not None else None,
            algorithm=match.group("algorithm"),
            precision=match.group("precision"),
            backend=match.group("backend") or "fast",
        )

    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "architecture": self.architecture,
            "width": self.effective_width,
            "algorithm": self.algorithm,
            "precision": self.precision,
            "backend": self.backend,
            "sample_shape": list(self.sample_shape),
        }


def build_model(spec: ModelSpec):
    """Instantiate the smoke model a spec describes.

    Returns ``(model, (channels, image_size))`` — also used by the
    ``repro infer`` CLI so the two entry points cannot drift apart.
    """
    from repro.models.common import spec_from_name
    from repro.quant.qconfig import from_name

    rng = np.random.default_rng(spec.seed)
    conv_spec = spec_from_name(spec.algorithm, from_name(spec.precision))
    channels, image_size, _ = ARCHITECTURES[spec.architecture]
    width = spec.effective_width
    if spec.architecture == "lenet":
        from repro.models.lenet import lenet

        model = lenet(spec=conv_spec, rng=rng)
    elif spec.architecture == "resnet18":
        from repro.models.resnet import resnet18

        model = resnet18(width_multiplier=width, spec=conv_spec, rng=rng)
    elif spec.architecture == "squeezenet":
        from repro.models.squeezenet import squeezenet

        model = squeezenet(width_multiplier=width, spec=conv_spec, rng=rng)
    else:  # resnext20 — __post_init__ already validated the name
        from repro.models.resnext import resnext20

        model = resnext20(width_multiplier=width, spec=conv_spec, rng=rng)
    model.eval()
    return model, (channels, image_size)


@dataclass
class ServedModel:
    """A loaded variant: spec + compiled plan, ready for the batcher.

    ``plan`` is ``None`` for lazily loaded variants (multi-process
    serving: the front-end only validates inputs and routes — each
    worker process compiles its own plan from the spec name, or maps
    the recorded ``artifact`` if one was given).

    ``version`` identifies this deployment of the variant for blue/green
    cutover (``v1`` for the boot-time load, assigned by
    :meth:`ModelRegistry.install` on later deploys); ``artifact`` is the
    plan-artifact path the plan was (or will be, for lazy loads) mapped
    from, ``None`` for plans compiled in-process.
    """

    spec: ModelSpec
    plan: object  # CompiledPlan (duck-typed: tests serve stubs with .run)
    sample_shape: Tuple[int, int, int] = (3, 32, 32)
    model: object = None
    version: str = "v1"
    artifact: Optional[str] = None
    #: Worker-pool plan key for this deployment (``name#version`` for
    #: blue/green deploys; ``None`` → the plain variant name, i.e. the
    #: boot-time load).  Set by the server in worker mode so the old
    #: version keeps serving under its own key while it drains.
    worker_key: Optional[str] = None

    @property
    def name(self) -> str:
        return self.spec.name

    def describe(self) -> dict:
        info = self.spec.to_dict()
        info["sample_shape"] = list(self.sample_shape)
        info["lazy"] = self.plan is None
        info["version"] = self.version
        info["artifact"] = self.artifact
        if hasattr(self.plan, "steps"):
            info["plan_steps"] = len(self.plan.steps)
            info["plan_ops"] = list(self.plan.ops_used())
        if hasattr(self.plan, "memory_report"):
            report = self.plan.memory_report()
            info["memory"] = {
                "planned": any(
                    e.get("planned") for e in report["planned_shapes"]
                ),
                "arena_bytes": report["arena_bytes"],
                "steady_state_allocations": report["steady_state_allocations"],
            }
        return info

    def validate_input(self, x: np.ndarray) -> np.ndarray:
        """Coerce one sample to float32 NCHW with batch dim 1.

        Zero-copy for arrays already in float32 C order (the b64 request
        path hands ``np.frombuffer`` views straight through): ``asarray``
        ``[None]`` and ``ascontiguousarray`` below all stay views then.
        """
        arr = np.asarray(x, dtype=np.float32)
        if arr.shape == self.sample_shape:
            arr = arr[None]
        if arr.ndim != 4 or arr.shape[0] != 1 or arr.shape[1:] != self.sample_shape:
            raise ValueError(
                f"model {self.name!r} expects one sample of shape "
                f"{self.sample_shape}, got {tuple(np.shape(x))}"
            )
        return np.ascontiguousarray(arr)


def compile_served(spec: ModelSpec, cache: Optional[PlanCache] = None) -> ServedModel:
    """Build, calibrate, compile, and warm one variant — the single
    compile path shared by :meth:`ModelRegistry.load`, the worker
    processes, and ``repro compile``, so an artifact written by the CLI
    is byte-for-byte the plan a server would have compiled itself.
    """
    model, (channels, image_size) = build_model(spec)
    calib_rng = np.random.default_rng(spec.seed)
    calib = calib_rng.standard_normal(
        (4, channels, image_size, image_size)
    ).astype(np.float32)
    if spec.backend == "int8":
        # Calibrate the *model* observers before compiling: the
        # int8 backend wires integer handoffs between quantized
        # layers only for ranges frozen at compile time, so an
        # eager eval pass (which freezes cold observers from its
        # first batch, deterministically per spec seed) lets the
        # plan come up fully native instead of half cold.
        from repro.autograd import Tensor, no_grad

        with no_grad():
            model(Tensor(calib))
    plan = get_cached_plan(
        model,
        (1, channels, image_size, image_size),
        backend=spec.backend,
        cache=cache,
    )
    # Deterministic calibration run: freezes any cold activation
    # quantizer range into the plan *before* it sees traffic, so
    # concurrent first requests cannot race the one-shot range
    # observation and responses are reproducible per spec seed.
    plan.run(calib)
    return ServedModel(
        spec=spec,
        plan=plan,
        sample_shape=(channels, image_size, image_size),
        model=model,
    )


def is_artifact_path(spec_or_name) -> bool:
    """Heuristic: does a ``--model`` value name a plan-artifact file
    (vs a canonical variant name)?  Path separators and the ``.rpln``
    extension are never valid in variant names, so there is no overlap.
    """
    if not isinstance(spec_or_name, str):
        return False
    from repro.engine.artifact import EXTENSION

    return (
        spec_or_name.endswith(EXTENSION)
        or os.path.sep in spec_or_name
        or os.path.isfile(spec_or_name)
    )


def load_artifact_served(path: str, lazy: bool = False) -> ServedModel:
    """A :class:`ServedModel` from a plan artifact written by
    ``repro compile`` (see docs/artifact-format.md).

    The canonical variant name comes from the manifest's ``extra.model``
    entry, so the served name (and hence routing, metrics, and the spec
    seed baked into responses) is identical whether the plan was mapped
    or compiled.  ``lazy=True`` records the spec + artifact path without
    mapping tensors — the multi-process front-end mode, where only the
    workers map the file.  ``version`` is the artifact's content hash
    (first 12 hex chars), so ``/models`` distinguishes deployments of
    the same variant name.
    """
    from repro.engine.artifact import (
        ArtifactFormatError,
        content_hash,
        load_plan,
        read_manifest,
    )

    path = os.path.abspath(path)
    manifest = read_manifest(path)
    spec_name = (manifest.get("extra") or {}).get("model")
    if not spec_name:
        raise ArtifactFormatError(
            f"{path}: manifest records no 'extra.model' variant name "
            "(not written by 'repro compile'?)"
        )
    spec = ModelSpec.parse(spec_name)
    seed = (manifest.get("extra") or {}).get("seed")
    if seed is not None:
        spec = dataclasses.replace(spec, seed=int(seed))
    version = content_hash(path)[:12]
    plan = None if lazy else load_plan(path)
    return ServedModel(
        spec=spec,
        plan=plan,
        sample_shape=spec.sample_shape,
        version=version,
        artifact=path,
    )


class ModelRegistry:
    """Loads and holds served variants side by side.

    Compilation goes through :func:`repro.engine.get_cached_plan`, so the
    LRU plan cache (and its hit/miss accounting, exposed on ``/metrics``)
    is shared with every other engine consumer in the process.

    ``lazy=True`` records specs without building or compiling anything —
    the mode the multi-process server front-end runs in: it needs only
    sample shapes (input validation) and names (routing); the worker
    processes each compile their own plans from the same spec names (or
    map the recorded artifacts), so plans exist in at most ``replicas``
    processes instead of also in the front-end.

    Blue/green support: :meth:`install` atomically replaces a name's
    active :class:`ServedModel` keeping the replaced one as the rollback
    target; :meth:`rollback` swaps them back (see docs/operations.md
    'Blue/green deploys and rollback').
    """

    def __init__(self, cache: Optional[PlanCache] = None, lazy: bool = False):
        self._cache = cache
        self.lazy = lazy
        self._lock = threading.RLock()
        self._models: Dict[str, ServedModel] = {}
        self._previous: Dict[str, ServedModel] = {}
        self._deploys: Dict[str, int] = {}

    def load(self, spec_or_name) -> ServedModel:
        """Build + compile a variant (idempotent per canonical name).

        Accepts a :class:`ModelSpec`, a canonical variant name, or a
        plan-artifact path (``*.rpln``, mapped instead of compiled —
        docs/operations.md 'Compile-then-deploy').  On a lazy registry
        this only validates and records the spec (and artifact path).
        """
        if is_artifact_path(spec_or_name):
            served = load_artifact_served(spec_or_name, lazy=self.lazy)
            with self._lock:
                existing = self._models.get(served.name)
                if existing is not None:
                    return existing
                self._models[served.name] = served
                return served
        spec = (
            ModelSpec.parse(spec_or_name)
            if isinstance(spec_or_name, str)
            else spec_or_name
        )
        with self._lock:
            existing = self._models.get(spec.name)
            if existing is not None:
                return existing
            if self.lazy:
                served = ServedModel(
                    spec=spec, plan=None, sample_shape=spec.sample_shape
                )
                self._models[spec.name] = served
                return served
            served = compile_served(spec, cache=self._cache)
            self._models[spec.name] = served
            return served

    def add(self, served: ServedModel) -> ServedModel:
        """Register an externally built :class:`ServedModel` (tests, probes)."""
        with self._lock:
            self._models[served.name] = served
            return served

    # -- blue/green ---------------------------------------------------------
    def install(self, served: ServedModel) -> Optional[ServedModel]:
        """Atomically make ``served`` the active deployment of its name.

        The replaced :class:`ServedModel` (returned, or ``None`` on a
        first install) is kept as the one-deep rollback target.  If the
        incoming version string is empty or collides with the active
        one, a fresh ``v<n>`` is assigned from the per-name deploy
        counter so ``/models`` can always tell deployments apart.
        """
        with self._lock:
            old = self._models.get(served.name)
            count = self._deploys.get(served.name, 1) + 1
            self._deploys[served.name] = count
            if not served.version or (
                old is not None and served.version == old.version
            ):
                served.version = f"v{count}"
            if old is not None:
                self._previous[served.name] = old
            self._models[served.name] = served
            return old

    def previous(self, name: str) -> Optional[ServedModel]:
        with self._lock:
            return self._previous.get(name)

    def rollback(self, name: str) -> ServedModel:
        """Swap a name's active deployment with its rollback target.

        Raises :class:`KeyError` when no previous deployment exists.
        Swapping (rather than popping) means rollback is itself
        reversible — the regressed version stays available for
        inspection or a forward re-deploy.
        """
        with self._lock:
            previous = self._previous.get(name)
            if previous is None:
                raise KeyError(f"model {name!r} has no previous version")
            active = self._models[name]
            self._models[name] = previous
            self._previous[name] = active
            return previous

    def remove(self, name: str) -> None:
        """Forget a name entirely (failed first deploy — nothing to
        roll back to)."""
        with self._lock:
            self._models.pop(name, None)
            self._previous.pop(name, None)

    def artifact_paths(self) -> Dict[str, str]:
        """name → artifact path for every artifact-backed variant (what
        the worker router forwards so workers ``mmap`` instead of
        compiling)."""
        with self._lock:
            return {
                name: served.artifact
                for name, served in self._models.items()
                if served.artifact is not None
            }

    def get(self, name: str) -> ServedModel:
        with self._lock:
            served = self._models.get(name)
        if served is None:
            raise KeyError(
                f"unknown model {name!r}; loaded: {self.names() or '(none)'}"
            )
        return served

    def names(self) -> List[str]:
        with self._lock:
            return list(self._models)

    def describe(self) -> List[dict]:
        with self._lock:
            infos = []
            for name, served in self._models.items():
                info = served.describe()
                previous = self._previous.get(name)
                info["previous_version"] = (
                    previous.version if previous is not None else None
                )
                infos.append(info)
            return infos

    def __len__(self) -> int:
        with self._lock:
            return len(self._models)

    def __contains__(self, name: str) -> bool:
        with self._lock:
            return name in self._models
