"""The dynamic micro-batcher: concurrent requests → engine batches.

One :class:`DynamicBatcher` runs per served model.  Requests arrive as
single samples ``(1, C, H, W)`` on a bounded asyncio queue; a collector
coroutine pulls the first request, then keeps absorbing more until either
``max_batch_size`` is reached or ``max_wait_ms`` has elapsed, stacks the
group into one array, and executes the compiled plan **once** on a worker
thread (NumPy kernels release the GIL inside BLAS, so plan execution off
the event loop gives real parallelism).  Per-sample outputs are then
sliced back to each request's future.  Every engine kernel is
row-independent along the batch axis, so coalescing is invisible to the
caller: bit-exactly on the ``reference`` backend (fixed-size per-tile
kernels), and to float tolerance on ``fast`` (large fused GEMMs, whose
BLAS blocking — and hence last-ulp rounding — can vary with batch shape).

Failure policy:

* queue full → :class:`QueueSaturated` (the server maps it to HTTP 429);
* request older than its deadline at formation or dispatch time → never
  executed, :class:`DeadlineExceeded` (HTTP 504);
* kernel failure → the whole batch gets :class:`ExecutionFailed` (HTTP 500).

Overload behaviour (ISSUE 8): the queue is a **priority queue** — the
admission layer (:mod:`repro.serve.admission`) tags each request with a
priority level and under backlog the collector forms batches from the
most important traffic first.  Batch formation is **deadline-aware**:

* a request already past its deadline when the collector picks it up is
  expelled *at formation* — typed 504, never stacked, never executed
  (the batch span's ``request_ids`` attr lists only executed members,
  which is what the overload benchmark's never-executed assertion
  checks against);
* the collector tracks an EWMA of recent batch run times and closes a
  forming batch early (``close_reason="deadline_risk"``) as soon as
  waiting any longer would push its tightest member past its deadline —
  a tight-deadline request is never coalesced behind a wait it cannot
  afford.
"""

from __future__ import annotations

import asyncio
import functools
import inspect
import itertools
import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass
from typing import List, Optional

import numpy as np

from repro.obs import trace as obs_trace
from repro.serve.metrics import ModelMetrics


class QueueSaturated(RuntimeError):
    """The model's request queue is full (backpressure — retry later)."""


class BatcherStopped(RuntimeError):
    """Submission raced a batcher that has stopped (blue/green cutover
    drained it between lookup and submit).  The server retries against
    the freshly installed batcher, so clients never observe it."""


class DeadlineExceeded(RuntimeError):
    """The request expired in the queue before a batch picked it up."""


class ExecutionFailed(RuntimeError):
    """Plan execution raised; carries the original error message."""


@dataclass(frozen=True)
class BatchPolicy:
    """Coalescing policy knobs.

    ``max_batch_size=1`` degenerates to batch-1 serving (the loadgen
    baseline); ``max_wait_ms`` bounds the latency cost a request can pay
    waiting for co-riders.
    """

    max_batch_size: int = 8
    max_wait_ms: float = 2.0
    max_queue: int = 128
    default_deadline_ms: float = 2000.0

    def __post_init__(self):
        if self.max_batch_size < 1:
            raise ValueError("max_batch_size must be >= 1")
        if self.max_wait_ms < 0:
            raise ValueError("max_wait_ms must be >= 0")
        if self.max_queue < 1:
            raise ValueError("max_queue must be >= 1")

    def to_dict(self) -> dict:
        return {
            "max_batch_size": self.max_batch_size,
            "max_wait_ms": self.max_wait_ms,
            "max_queue": self.max_queue,
            "default_deadline_ms": self.default_deadline_ms,
        }


@dataclass
class BatchedResult:
    """What a request's future resolves to."""

    output: np.ndarray  # (1, ...) — this request's slice of the batch output
    batch_size: int
    queue_ms: float
    run_ms: float


class _Pending:
    __slots__ = (
        "x",
        "future",
        "deadline",
        "t_enqueue",
        "request_id",
        "trace_parent",
        "t_enqueue_ns",
        "priority",
    )

    def __init__(
        self, x, future, deadline, t_enqueue, request_id=None, trace_parent=None,
        priority=1,
    ):
        self.x = x
        self.future = future
        self.deadline = deadline  # absolute time.monotonic(), or None
        self.t_enqueue = t_enqueue
        self.request_id = request_id  # ingress id (X-Request-Id)
        self.priority = priority  # admission level; lower = more important
        #: Span id of the request's ingress root span when this request
        #: was sampled for tracing; ``None`` means untraced.
        self.trace_parent = trace_parent
        self.t_enqueue_ns = (
            obs_trace.now_ns() if trace_parent is not None else 0
        )


class DynamicBatcher:
    """Coalesces submitted samples into engine batches for one plan."""

    def __init__(
        self,
        plan,
        policy: Optional[BatchPolicy] = None,
        executor: Optional[ThreadPoolExecutor] = None,
        metrics: Optional[ModelMetrics] = None,
        name: str = "",
        max_inflight: int = 2,
        threads: Optional[int] = None,
        tracer: Optional["obs_trace.TraceBuffer"] = None,
    ):
        self.plan = plan
        self.policy = policy or BatchPolicy()
        self.metrics = metrics or ModelMetrics()
        self.name = name
        self.max_inflight = max(1, max_inflight)
        #: Server-shared span sink; spans are recorded only for batches
        #: that contain at least one sampled request, so an untraced
        #: deployment takes a single truthiness check per batch.
        self.tracer = tracer
        # Duck-typed plans (test stubs) may not accept run(trace=...);
        # detect once so traced batches degrade gracefully.
        self._plan_traceable = self._accepts_trace(plan)
        #: Engine threads per coalesced batch: each dispatched batch fans
        #: its chunkable steps out across the engine worker pool, so one
        #: big batch exploits the cores that batch-level pipelining
        #: (max_inflight) alone would leave idle.  ``None`` keeps the
        #: plan/REPRO_THREADS default.
        self.threads = threads
        self._executor = executor
        self._owns_executor = executor is None
        self._queue: Optional[asyncio.PriorityQueue] = None
        #: FIFO tiebreak within a priority level (and keeps the queue
        #: from ever comparing two _Pending objects).
        self._seq = itertools.count()
        #: EWMA of recent batch run times (ms) — the collector's estimate
        #: of what dispatching *now* would cost, for deadline-risk closes.
        self._run_est_ms: Optional[float] = None
        self._task: Optional[asyncio.Task] = None
        self._inflight: Optional[asyncio.Semaphore] = None
        self._pending_runs: set = set()
        #: Background permit-retirement tasks from a downward
        #: :meth:`resize_inflight`; cancelled at stop().
        self._retire_tasks: set = set()
        self._stopped = False
        #: Requests accepted but not yet resolved (queued, collected, or
        #: executing).  Maintained via future done-callbacks on the event
        #: loop, so reaching 0 means every accepted request has been
        #: answered — the drain condition for blue/green cutover.
        self._outstanding = 0

    @staticmethod
    def _accepts_trace(plan) -> bool:
        try:
            return "trace" in inspect.signature(plan.run).parameters
        except (TypeError, ValueError):
            return False

    # -- lifecycle ----------------------------------------------------------
    async def start(self) -> None:
        if self._task is not None:
            return
        if self._executor is None:
            self._executor = ThreadPoolExecutor(
                max_workers=2, thread_name_prefix=f"serve-{self.name or 'model'}"
            )
        self._queue = asyncio.PriorityQueue(maxsize=self.policy.max_queue)
        self._inflight = asyncio.Semaphore(self.max_inflight)
        self._task = asyncio.get_running_loop().create_task(self._collector())

    def resize_inflight(self, new_max: int) -> None:
        """Retarget the concurrent-batch cap without a batcher swap —
        the autoscaler's companion lever (replicas + 1 pipelined
        batches in worker mode).  Growing releases permits immediately;
        shrinking retires permits as running batches return them, so
        nothing in flight is interrupted.  Event-loop only.
        """
        new_max = max(1, int(new_max))
        delta = new_max - self.max_inflight
        self.max_inflight = new_max
        if self._inflight is None or delta == 0:
            return
        if delta > 0:
            for _ in range(delta):
                self._inflight.release()
            return
        loop = asyncio.get_running_loop()
        for _ in range(-delta):
            task = loop.create_task(self._inflight.acquire())
            self._retire_tasks.add(task)
            task.add_done_callback(self._retire_tasks.discard)

    async def stop(self) -> None:
        self._stopped = True
        for task in list(self._retire_tasks):
            task.cancel()
        if self._task is None:
            return
        task, self._task = self._task, None
        task.cancel()
        try:
            await task
        except asyncio.CancelledError:
            pass
        if self._pending_runs:  # let in-flight batches finish delivering
            await asyncio.gather(*self._pending_runs, return_exceptions=True)
        # Fail anything still queued so no submitter hangs forever.
        while self._queue is not None and not self._queue.empty():
            _, _, pending = self._queue.get_nowait()
            if not pending.future.done():
                pending.future.set_exception(BatcherStopped("batcher stopped"))
        if self._owns_executor and self._executor is not None:
            self._executor.shutdown(wait=False)
            self._executor = None

    async def drain_and_stop(self, timeout: float = 60.0) -> bool:
        """Let every accepted request finish, then stop — the blue/green
        retirement path (docs/operations.md 'Blue/green deploys and
        rollback'): the server first swaps the active-batcher pointer so
        no new requests arrive here, then drains this one, so cutover
        drops nothing.

        Returns ``True`` when the batcher emptied within ``timeout``
        (``False`` means stop() fired with requests still unresolved —
        they fail with :class:`BatcherStopped` rather than hanging).
        """
        deadline = time.monotonic() + timeout
        grace = 0
        while time.monotonic() < deadline:
            if self._outstanding > 0:
                grace = 0
            else:
                # A handler scheduled before the pointer swap may hold a
                # reference and submit after we observe 0 — linger a few
                # loop iterations before declaring the queue dry.
                grace += 1
                if grace >= 5:
                    break
            await asyncio.sleep(0.01)
        drained = self._outstanding == 0
        await self.stop()
        return drained

    @property
    def running(self) -> bool:
        return self._task is not None

    def outstanding(self) -> int:
        """Accepted-but-unresolved requests (0 = fully drained)."""
        return self._outstanding

    def qsize(self) -> int:
        return self._queue.qsize() if self._queue is not None else 0

    def queue_fill(self) -> float:
        """Current queue fill fraction — the admission layer's input."""
        return self.qsize() / max(1, self.policy.max_queue)

    # -- submission ---------------------------------------------------------
    async def submit(
        self,
        x: np.ndarray,
        deadline_ms: Optional[float] = None,
        request_id: Optional[str] = None,
        trace_parent: Optional[str] = None,
        priority: Optional[int] = None,
    ) -> BatchedResult:
        """Queue one ``(1, C, H, W)`` sample; resolves when its batch ran.

        ``deadline_ms`` counts from submission; ``None`` uses the policy
        default and any value <= 0 disables the deadline.
        ``request_id`` is the ingress id (flows into latency exemplars);
        ``trace_parent`` — the request's root span id — marks the request
        as sampled for tracing.  ``priority`` is the admission level
        (lower = more important; default ``standard``): under backlog the
        collector serves lower levels first, FIFO within a level.
        """
        if self._stopped:
            raise BatcherStopped(f"model {self.name!r}: batcher stopped")
        if self._queue is None:
            raise RuntimeError("batcher not started")
        now = time.monotonic()
        if deadline_ms is None:
            deadline_ms = self.policy.default_deadline_ms
        deadline = now + deadline_ms / 1e3 if deadline_ms and deadline_ms > 0 else None
        future = asyncio.get_running_loop().create_future()
        level = 1 if priority is None else int(priority)
        pending = _Pending(
            x, future, deadline, now, request_id, trace_parent, priority=level
        )
        try:
            self._queue.put_nowait((level, next(self._seq), pending))
        except asyncio.QueueFull:
            self.metrics.on_reject()
            raise QueueSaturated(
                f"model {self.name!r}: queue full "
                f"({self.policy.max_queue} requests waiting)"
            ) from None
        self._outstanding += 1
        future.add_done_callback(self._on_request_done)
        self.metrics.on_enqueue()
        return await future

    def _on_request_done(self, _future) -> None:
        self._outstanding -= 1

    # -- collector loop -----------------------------------------------------
    def _expel_if_expired(self, pending: _Pending) -> Optional[_Pending]:
        """Formation-time deadline gate: a request already past its
        deadline is expelled with a typed 504 *before* it is stacked —
        it never occupies a batch slot and never executes."""
        if pending.future.done():  # client gave up / was cancelled
            return None
        now = time.monotonic()
        if pending.deadline is not None and now > pending.deadline:
            self.metrics.on_deadline_exceeded()
            pending.future.set_exception(
                DeadlineExceeded(
                    f"model {self.name!r}: expired at batch formation "
                    f"after {(now - pending.t_enqueue) * 1e3:.1f} ms in queue"
                )
            )
            return None
        return pending

    def _deadline_slack_s(self, batch: List[_Pending], now: float) -> Optional[float]:
        """Seconds the forming batch can still wait before its tightest
        member would miss its deadline, given the EWMA run estimate.
        ``None`` = unconstrained (no deadlines, or no estimate yet)."""
        if self._run_est_ms is None:
            return None
        est_s = self._run_est_ms / 1e3
        slack = None
        for pending in batch:
            if pending.deadline is None:
                continue
            s = pending.deadline - est_s - now
            slack = s if slack is None else min(slack, s)
        return slack

    async def _collect_batch(self) -> tuple:
        """First request blocks; then absorb until full or the wait
        expires.  Returns ``(batch, close_reason)`` where the reason is
        ``"size"`` (hit max_batch_size), ``"deadline"`` (the max_wait_ms
        budget ran out), ``"deadline_risk"`` (waiting longer would push
        a member past its deadline), or ``"drain"`` (nothing left to
        coalesce under a zero-wait policy)."""
        batch: List[_Pending] = []
        while not batch:
            _, _, pending = await self._queue.get()
            pending = self._expel_if_expired(pending)
            if pending is not None:
                batch.append(pending)
        budget_s = self.policy.max_wait_ms / 1e3
        start = time.monotonic()
        reason = "size"
        while len(batch) < self.policy.max_batch_size:
            # Greedily drain whatever is already queued — free coalescing
            # even with max_wait_ms=0.
            try:
                _, _, pending = self._queue.get_nowait()
                pending = self._expel_if_expired(pending)
                if pending is not None:
                    batch.append(pending)
                continue
            except asyncio.QueueEmpty:
                pass
            now = time.monotonic()
            wait = budget_s - (now - start)
            risk = False
            slack = self._deadline_slack_s(batch, now)
            if slack is not None and slack < wait:
                # A member cannot afford the full coalescing wait:
                # shrink the window so it dispatches in time.
                wait = slack
                risk = True
            if wait <= 0:
                reason = (
                    "deadline_risk" if risk
                    else ("drain" if budget_s <= 0 else "deadline")
                )
                break
            try:
                _, _, pending = await asyncio.wait_for(
                    self._queue.get(), timeout=wait
                )
            except asyncio.TimeoutError:
                reason = "deadline_risk" if risk else "deadline"
                break
            pending = self._expel_if_expired(pending)
            if pending is not None:
                batch.append(pending)
        return batch, reason

    async def _collector(self) -> None:
        """Collect batches and dispatch them; up to ``max_inflight``
        batches execute concurrently on the worker pool (pipelining: the
        next batch coalesces while the previous one runs — on multi-core
        hosts batches also overlap inside the executor)."""
        loop = asyncio.get_running_loop()
        while True:
            batch, close_reason = await self._collect_batch()
            await self._inflight.acquire()
            task = loop.create_task(self._execute(batch, close_reason))
            self._pending_runs.add(task)
            task.add_done_callback(self._pending_runs.discard)

    async def _execute(self, batch: List[_Pending], close_reason: str = "size") -> None:
        """Run one coalesced batch and distribute per-request slices.

        Deadlines are judged here — actual dispatch time, i.e. after any
        wait for an in-flight execution slot — so a request that aged out
        while earlier batches ran is rejected without ever executing.
        """
        loop = asyncio.get_running_loop()
        try:
            t_dispatch = time.monotonic()
            t_dispatch_ns = obs_trace.now_ns()
            live: List[_Pending] = []
            for pending in batch:
                if pending.future.done():  # client gave up / was cancelled
                    continue
                if pending.deadline is not None and t_dispatch > pending.deadline:
                    self.metrics.on_deadline_exceeded()
                    pending.future.set_exception(
                        DeadlineExceeded(
                            f"model {self.name!r}: request waited "
                            f"{(t_dispatch - pending.t_enqueue) * 1e3:.1f} ms, "
                            "past its deadline"
                        )
                    )
                    continue
                live.append(pending)
            if not live:
                return
            stacked = (
                live[0].x
                if len(live) == 1
                else np.concatenate([p.x for p in live], axis=0)
            )
            traced = (
                [p for p in live if p.trace_parent is not None]
                if self.tracer is not None
                else []
            )
            local_spans = obs_trace.TraceBuffer(8192) if traced else None
            try:
                kwargs = {}
                if self.threads is not None:
                    kwargs["threads"] = self.threads
                if local_spans is not None and self._plan_traceable:
                    kwargs["trace"] = local_spans
                if kwargs:
                    run = functools.partial(self.plan.run, stacked, **kwargs)
                else:  # duck-typed plans (test stubs) need no extra kwargs
                    run = functools.partial(self.plan.run, stacked)
                out = await loop.run_in_executor(self._executor, run)
            except BaseException as exc:  # kernel failure / teardown cancel:
                # fail the whole batch so no submitter is left hanging.
                self.metrics.on_error(len(live))
                failure = (
                    BatcherStopped("batcher stopped")
                    if isinstance(exc, asyncio.CancelledError)
                    else ExecutionFailed(f"plan execution failed: {exc}")
                )
                for pending in live:
                    if not pending.future.done():
                        pending.future.set_exception(failure)
                return
        finally:
            self._inflight.release()
        t_done = time.monotonic()
        t_done_ns = obs_trace.now_ns()
        run_ms = (t_done - t_dispatch) * 1e3
        # EWMA run-time estimate for deadline-risk batch closes.  The
        # smoothing is deliberately heavy (0.8) so one slow outlier does
        # not collapse every forming batch to size 1.
        self._run_est_ms = (
            run_ms if self._run_est_ms is None
            else 0.8 * self._run_est_ms + 0.2 * run_ms
        )
        self.metrics.on_batch(len(live), run_ms)
        if traced:
            self._record_batch_spans(
                live, traced, local_spans, close_reason,
                t_dispatch_ns, t_done_ns, run_ms,
            )
        offset = 0
        for pending in live:
            n = pending.x.shape[0]
            result = BatchedResult(
                output=out[offset : offset + n],
                batch_size=len(live),
                queue_ms=(t_dispatch - pending.t_enqueue) * 1e3,
                run_ms=run_ms,
            )
            offset += n
            if not pending.future.done():
                pending.future.set_result(result)
            self.metrics.on_response(
                latency_ms=(t_done - pending.t_enqueue) * 1e3,
                queue_ms=result.queue_ms,
                request_id=pending.request_id,
            )

    def _record_batch_spans(
        self,
        live: List[_Pending],
        traced: List[_Pending],
        local_spans: Optional["obs_trace.TraceBuffer"],
        close_reason: str,
        t_dispatch_ns: int,
        t_done_ns: int,
        run_ms: float,
    ) -> None:
        """Emit the serving-layer spans for one traced batch: per-request
        queue-wait, the batch-formation span (who coalesced, why it
        closed), the execution span, and the engine/transport spans the
        plan recorded — re-parented under the execution span so the whole
        timeline hangs together."""
        tracer = self.tracer
        request_ids = [p.request_id for p in live if p.request_id is not None]
        batch_id = obs_trace.new_span_id()
        exec_id = obs_trace.new_span_id()
        for p in traced:
            tracer.add(
                obs_trace.Span(
                    "queue_wait",
                    "serve",
                    p.t_enqueue_ns,
                    max(0, t_dispatch_ns - p.t_enqueue_ns),
                    attrs={"model": self.name},
                    parent_id=p.trace_parent,
                    request_id=p.request_id,
                    proc="frontend",
                )
            )
        t_formed = min(p.t_enqueue_ns for p in traced)
        tracer.add(
            obs_trace.Span(
                "batch",
                "serve",
                t_formed,
                max(0, t_done_ns - t_formed),
                attrs={
                    "model": self.name,
                    "size": len(live),
                    "close_reason": close_reason,
                    "request_ids": request_ids,
                },
                span_id=batch_id,
                proc="frontend",
            )
        )
        tracer.add(
            obs_trace.Span(
                "batch_exec",
                "serve",
                t_dispatch_ns,
                max(0, t_done_ns - t_dispatch_ns),
                attrs={"model": self.name, "run_ms": run_ms},
                span_id=exec_id,
                parent_id=batch_id,
                proc="frontend",
            )
        )
        if local_spans is not None:
            for span in local_spans.snapshot():
                if span.parent_id is None:
                    span.parent_id = exec_id
                tracer.add(span)
                # Step-level kernel spans feed the sampled per-step
                # histograms on /metrics; the step index disambiguates
                # layers that share a kernel label (three `linear`s).
                if span.cat == "kernel" and "chunk_index" not in span.attrs:
                    label = f"{span.attrs.get('step', '?')}:{span.name}"
                    self.metrics.observe_step(label, span.dur_ns / 1e6)
