"""Front-end side of multi-process sharded serving (ISSUE 5).

:class:`WorkerRouter` owns ``N`` forked worker processes (see
:mod:`repro.serve.workers`) and routes each dispatched batch to one of
them over the shared-memory slot ring:

* **Per-model affinity** — every model is consistently placed on
  ``replicas`` of the ``N`` workers (rendezvous hashing over
  ``(model, worker)``), so each model's plans compile in at most
  ``replicas`` processes instead of all of them; among its replicas a
  batch goes to the worker with the shallowest queue.
* **Health + respawn** — a background monitor notices dead workers and
  respawns them (fresh process, fresh plan cache); ``worker_restarts``
  is counted per respawn and exposed on ``/metrics``.
* **In-flight retry** — a batch that was queued on (or being executed
  by) a worker that died is transparently re-submitted to a respawned
  worker.  Plan execution is pure (arenas are per-run, observers are
  frozen at compile time), so the retried batch is bit-identical to
  what the lost worker would have produced.

Failure mapping: a worker *execution* error (the model raised) is
:class:`WorkerError` — deterministic, never retried, surfaced as
HTTP 500.  A worker *death* is :class:`WorkerDied` — retried up to
``max_retries`` times before giving up.  A damaged response payload
(checksum mismatch over the shm/pipe transport) is
:class:`TransportCorrupt`, a ``WorkerDied`` subclass retried the same
way but *without* killing the worker — the plan run was fine, only the
payload in flight was not.

Watchdog (ISSUE 8): two independent mechanisms bound how long a wedged
worker can hold traffic.  The monitor's ``probe_hang`` ages an
outstanding ping and kills workers silent past ``hang_timeout``
(catches SIGSTOP/livelock with *no* traffic in flight); each dispatch
additionally bounds its own reply wait with ``reply_timeout`` — a
worker that swallowed a batch without answering is killed and the batch
retried, so no request ever hangs indefinitely.  Both kill paths are
counted (``watchdog_kills``) and exposed via ``stats()`` / ``/metrics``.
"""

from __future__ import annotations

import hashlib
import multiprocessing
import threading
import time
import zlib
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.obs.trace import Span, new_span_id, now_ns
from repro.serve.workers import (
    DEFAULT_SLOTS,
    required_slot_bytes,
    slot_view,
    spawn_worker,
)


class WorkerError(RuntimeError):
    """Plan execution failed inside a worker (deterministic — not retried)."""


class WorkerDied(RuntimeError):
    """The worker process vanished with this request in flight."""


class TransportCorrupt(WorkerDied):
    """Response payload failed its checksum crossing shm/pipe transport.

    Subclasses :class:`WorkerDied` so the router's retry loop picks it
    up, but the retry path leaves the worker alive: plan execution is
    deterministic, so re-running the batch reproduces the true bytes.
    """


class _Waiter:
    __slots__ = ("event", "kind", "payload")

    def __init__(self):
        self.event = threading.Event()
        self.kind = None  # "ok" | "err" | "pong" | "died"
        self.payload = None


class _WorkerHandle:
    """Parent-side view of one worker process: pipe, shm ring, pending map."""

    def __init__(
        self,
        worker_id: int,
        spec_names: Sequence[str],
        plans: Optional[dict],
        slot_bytes: int,
        num_slots: int,
        threads: Optional[int],
        ctx,
        artifacts: Optional[Dict[str, str]] = None,
        reply_timeout: float = 120.0,
        chaos: Optional[str] = None,
        chaos_generation: int = 0,
    ):
        self.worker_id = worker_id
        self.spec_names = list(spec_names)
        self.slot_bytes = slot_bytes
        self.num_slots = num_slots
        #: Hard bound on one batch's reply wait: a worker that ate the
        #: message without answering (hang after recv, dropped reply) is
        #: killed and the batch retried.  Must exceed the slowest
        #: honest batch; chaos tests shrink it to keep suites fast.
        self.reply_timeout = reply_timeout
        #: Router-installed callback counting watchdog kills (reply
        #: timeouts here, hang-probe kills in the monitor).
        self.on_watchdog_kill = None
        self.shm, self.conn, self.process = spawn_worker(
            ctx, worker_id, spec_names, plans, slot_bytes, num_slots, threads,
            artifacts, chaos, chaos_generation,
        )
        self._send_lock = threading.Lock()
        self._state_lock = threading.Lock()
        self._pending: Dict[int, _Waiter] = {}
        self._req_counter = 0
        self._slots: List[int] = list(range(num_slots))
        self._slot_cv = threading.Condition()
        self._dead = False
        self._reader: Optional[threading.Thread] = None
        self.last_stats: dict = {}
        #: (waiter, sent_at) of the monitor's outstanding hang probe.
        self._hang_probe = None

    # -- lifecycle ----------------------------------------------------------
    def wait_ready(self, timeout: float) -> None:
        if not self.conn.poll(timeout):
            self.close(terminate=True)
            raise RuntimeError(
                f"worker {self.worker_id} did not become ready in {timeout:g}s"
            )
        msg = self.conn.recv()
        if msg[0] == "fail":
            self.close(terminate=True)
            raise RuntimeError(f"worker {self.worker_id} failed to load: {msg[2]}")
        assert msg[0] == "ready", msg
        self._reader = threading.Thread(
            target=self._read_loop, daemon=True,
            name=f"serve-worker-reader-{self.worker_id}",
        )
        self._reader.start()

    def alive(self) -> bool:
        return not self._dead and self.process.is_alive()

    @property
    def pid(self) -> Optional[int]:
        return self.process.pid

    def inflight(self) -> int:
        with self._state_lock:
            return len(self._pending)

    @property
    def shm_bytes(self) -> int:
        return self.slot_bytes * self.num_slots

    def close(self, terminate: bool = False) -> None:
        """Tear down pipe/process/shm (idempotent)."""
        self._mark_dead()
        try:
            if not terminate and self.process.is_alive():
                with self._send_lock:
                    self.conn.send(("stop",))
        except (BrokenPipeError, OSError):
            pass
        self.process.join(timeout=5)
        if self.process.is_alive():
            self.process.terminate()
            self.process.join(timeout=5)
        try:
            self.conn.close()
        except OSError:
            pass
        try:
            # BufferError: a dispatch thread may still hold a transient
            # numpy view over shm.buf (the worker died under it); the
            # mapping then lives until process exit, but the segment name
            # is still unlinked below so no /dev/shm entry leaks.
            self.shm.close()
        except (BufferError, OSError):
            pass
        try:
            self.shm.unlink()
        except (FileNotFoundError, OSError):
            pass

    # -- reader -------------------------------------------------------------
    def _read_loop(self) -> None:
        while True:
            try:
                msg = self.conn.recv()
            except (EOFError, OSError):
                break
            kind = msg[0]
            req_id = msg[1]
            with self._state_lock:
                waiter = self._pending.pop(req_id, None)
            if waiter is None:
                continue  # request already abandoned
            waiter.kind = kind
            waiter.payload = msg[2:]
            waiter.event.set()
        self._mark_dead()

    def _mark_dead(self) -> None:
        with self._state_lock:
            if self._dead:
                return
            self._dead = True
            pending, self._pending = self._pending, {}
        for waiter in pending.values():
            waiter.kind = "died"
            waiter.event.set()

    # -- slot ring ----------------------------------------------------------
    def _claim_slot(self, timeout: float) -> int:
        with self._slot_cv:
            deadline = time.monotonic() + timeout
            while not self._slots:
                remaining = deadline - time.monotonic()
                if remaining <= 0 or self._dead:
                    raise WorkerDied(
                        f"worker {self.worker_id}: no free shm slot"
                    ) if self._dead else WorkerError(
                        f"worker {self.worker_id}: shm ring exhausted "
                        f"({self.num_slots} slots) for {timeout:g}s"
                    )
                self._slot_cv.wait(remaining)
            return self._slots.pop()

    def _release_slot(self, slot: int) -> None:
        with self._slot_cv:
            self._slots.append(slot)
            self._slot_cv.notify()

    # -- requests -----------------------------------------------------------
    def _post(self, message: tuple, waiter: _Waiter, req_id: int) -> None:
        with self._state_lock:
            if self._dead:
                raise WorkerDied(f"worker {self.worker_id} is down")
            self._pending[req_id] = waiter
        try:
            with self._send_lock:
                self.conn.send(message)
        except (BrokenPipeError, OSError):
            self._mark_dead()
            raise WorkerDied(f"worker {self.worker_id} pipe closed") from None

    def _next_req_id(self) -> int:
        with self._state_lock:
            self._req_counter += 1
            return self._req_counter

    def run(
        self,
        model: str,
        x: np.ndarray,
        threads: Optional[int] = None,
        slot_timeout: float = 120.0,
        trace_into=None,
    ) -> np.ndarray:
        """Execute one batch on this worker; raises WorkerDied/WorkerError.

        ``trace_into`` (a :class:`~repro.obs.trace.TraceBuffer`) records
        the transport spans — ``shm_write``, ``worker_roundtrip``,
        ``shm_read`` — and collects the worker's engine spans returned
        over the pipe, re-parented under the roundtrip span.  The
        roundtrip is the only *parentless* span this method emits, so
        callers (the batcher) can hang the whole subtree off their own
        exec span by re-parenting roots.
        """
        x = np.ascontiguousarray(np.asarray(x, dtype=np.float32))
        traced = trace_into is not None
        rt_id = new_span_id() if traced else None
        t_start = now_ns() if traced else 0
        slot = self._claim_slot(slot_timeout)
        try:
            inline = None
            t_write = now_ns() if traced else 0
            if x.nbytes <= self.slot_bytes:
                slot_view(self.shm, slot, self.slot_bytes, x.shape)[...] = x
            else:  # counted fallback: tensor too big for the ring slot
                inline = x.tobytes()
            if traced:
                trace_into.record(
                    "shm_write", "transport", t_write,
                    attrs={"bytes": x.nbytes, "slot": slot,
                           "inline": inline is not None},
                    parent_id=rt_id, proc="frontend",
                )
            req_id = self._next_req_id()
            waiter = _Waiter()
            self._post(
                ("run", req_id, model, slot, x.shape, threads, inline,
                 traced),
                waiter, req_id,
            )
            if not waiter.event.wait(self.reply_timeout):
                # The worker accepted the batch and went silent — hung
                # after recv, or the reply was dropped.  The message is
                # unrecoverable in this process (re-sending would double
                # execute on a worker that merely stalled), so kill it:
                # the reader's EOF fails the other pending waiters and
                # the router's retry path re-runs this batch elsewhere,
                # bit-identically.
                with self._state_lock:
                    self._pending.pop(req_id, None)
                if self.on_watchdog_kill is not None:
                    self.on_watchdog_kill("reply_timeout")
                try:
                    self.process.kill()
                except OSError:
                    pass
                if traced:
                    trace_into.record(
                        "worker_roundtrip", "transport", t_start,
                        attrs={"worker": self.worker_id, "model": model,
                               "error": "reply_timeout"},
                        span_id=rt_id, proc="frontend",
                    )
                raise WorkerDied(
                    f"worker {self.worker_id}: no reply in "
                    f"{self.reply_timeout:g}s, presumed wedged (killed)"
                )
            if waiter.kind == "ok":
                payload = waiter.payload
                # Pre-checksum workers (old artifact mid-upgrade) send a
                # 5-tuple; treat the missing crc as "don't verify".
                crc = payload[5] if len(payload) > 5 else None
                out_slot, out_shape, run_ms, out_inline, spans = payload[:5]
                t_read = now_ns() if traced else 0
                if out_inline is not None:
                    out = np.frombuffer(
                        out_inline, dtype=np.float32
                    ).reshape(out_shape).copy()
                else:
                    # Copy out before the slot is released for reuse.
                    out = slot_view(
                        self.shm, out_slot, self.slot_bytes, out_shape
                    ).copy()
                if crc is not None and zlib.crc32(out.tobytes()) != crc:
                    raise TransportCorrupt(
                        f"worker {self.worker_id}: response checksum "
                        f"mismatch for {model!r} batch {tuple(out_shape)}"
                    )
                if traced:
                    trace_into.record(
                        "shm_read", "transport", t_read,
                        attrs={"bytes": out.nbytes, "slot": out_slot,
                               "inline": out_inline is not None},
                        parent_id=rt_id, proc="frontend",
                    )
                    for d in spans or ():
                        span = Span.from_dict(d)
                        if span.parent_id is None:
                            span.parent_id = rt_id
                        trace_into.add(span)
                    trace_into.record(
                        "worker_roundtrip", "transport", t_start,
                        attrs={"worker": self.worker_id, "model": model,
                               "run_ms": round(run_ms, 3)},
                        span_id=rt_id, proc="frontend",
                    )
                return out
            if traced:
                # Close the roundtrip even on failure so the shm_write
                # child never dangles as an orphan in the buffer.
                trace_into.record(
                    "worker_roundtrip", "transport", t_start,
                    attrs={"worker": self.worker_id, "model": model,
                           "error": waiter.kind or "died"},
                    span_id=rt_id, proc="frontend",
                )
            if waiter.kind == "err":
                _slot, message = waiter.payload
                raise WorkerError(
                    f"worker {self.worker_id}: plan execution failed: {message}"
                )
            raise WorkerDied(f"worker {self.worker_id} died mid-batch")
        finally:
            self._release_slot(slot)

    def load_model(self, key: str, artifact: str, timeout: float = 60.0) -> float:
        """Tell this worker to mmap ``artifact`` under plan key ``key``.

        Returns the worker-side load time in ms; raises
        :class:`WorkerError` when the worker rejected the artifact and
        :class:`WorkerDied` on a lost worker.
        """
        req_id = self._next_req_id()
        waiter = _Waiter()
        self._post(("load", req_id, key, artifact), waiter, req_id)
        if not waiter.event.wait(timeout):
            with self._state_lock:
                self._pending.pop(req_id, None)
            raise WorkerError(
                f"worker {self.worker_id}: load of {key!r} timed out"
            )
        if waiter.kind == "loaded":
            ms, err = waiter.payload
            if err is not None:
                raise WorkerError(
                    f"worker {self.worker_id}: failed to load {key!r}: {err}"
                )
            if key not in self.spec_names:
                self.spec_names.append(key)
            return ms
        raise WorkerDied(f"worker {self.worker_id} died during load")

    def unload_model(self, key: str, timeout: float = 10.0) -> None:
        """Drop a drained plan key on this worker (best effort)."""
        req_id = self._next_req_id()
        waiter = _Waiter()
        self._post(("unload", req_id, key), waiter, req_id)
        waiter.event.wait(timeout)
        if key in self.spec_names:
            self.spec_names.remove(key)

    def probe_hang(self) -> float:
        """Non-blocking liveness probe (monitor thread only).

        Keeps one ping outstanding; returns how long the current one has
        gone unanswered (0 when the worker is keeping up).  A worker that
        is alive but wedged — SIGSTOP, uninterruptible syscall, livelock
        — answers nothing, so this age growing past the router's
        ``hang_timeout`` is the signal to kill and respawn it.  The
        worker answers pings in arrival order between batches, so the
        age stays below the longest single batch on a healthy worker.
        """
        probe = self._hang_probe
        if probe is not None:
            waiter, sent_at = probe
            if not waiter.event.is_set():
                return time.monotonic() - sent_at
            if waiter.kind == "pong":
                (self.last_stats,) = waiter.payload
            self._hang_probe = None
        req_id = self._next_req_id()
        waiter = _Waiter()
        self._post(("ping", req_id), waiter, req_id)
        self._hang_probe = (waiter, time.monotonic())
        return 0.0

    def ping(self, timeout: float = 5.0) -> Optional[dict]:
        """Round-trip a stats snapshot (None on timeout)."""
        if not self.alive():
            raise WorkerDied(f"worker {self.worker_id} is down")
        req_id = self._next_req_id()
        waiter = _Waiter()
        self._post(("ping", req_id), waiter, req_id)
        if not waiter.event.wait(timeout):
            with self._state_lock:
                self._pending.pop(req_id, None)
            return None
        if waiter.kind == "pong":
            (stats,) = waiter.payload
            self.last_stats = stats
            return stats
        raise WorkerDied(f"worker {self.worker_id} died during ping")


class WorkerRouter:
    """The worker pool: affinity routing, health checks, respawn + retry."""

    def __init__(
        self,
        model_names: Sequence[str],
        sample_shapes: Sequence[tuple],
        workers: int,
        replicas: Optional[int] = None,
        max_batch_size: int = 8,
        num_slots: int = DEFAULT_SLOTS,
        slot_bytes: Optional[int] = None,
        threads: Optional[int] = None,
        plans: Optional[dict] = None,
        health_interval: Optional[float] = 2.0,
        hang_timeout: float = 60.0,
        max_retries: int = 2,
        ready_timeout: float = 300.0,
        artifacts: Optional[Dict[str, str]] = None,
        reply_timeout: float = 120.0,
        chaos: Optional[str] = None,
    ):
        # ``health_interval=None`` disables the monitor entirely — and
        # with it both dead-worker respawn-without-traffic AND the
        # hang_timeout detection below; only the submit retry path then
        # recovers workers, and a wedged-but-alive worker can hold its
        # dispatch thread indefinitely.  Meant for tests that need
        # deterministic respawn accounting, not for serving.
        if workers < 1:
            raise ValueError("WorkerRouter needs workers >= 1")
        try:
            self._ctx = multiprocessing.get_context("fork")
        except ValueError as exc:  # pragma: no cover - non-POSIX
            raise RuntimeError(
                "multi-process serving requires the fork start method "
                "(POSIX); run with workers=0 on this platform"
            ) from exc
        self.workers = workers
        self.replicas = max(1, min(workers, replicas if replicas else 2))
        #: Per-model replica-count overrides (the autoscaler's lever);
        #: models absent here use the pool-wide ``replicas`` default.
        self._replica_overrides: Dict[str, int] = {}
        self.model_names = list(model_names)
        self.threads = threads
        self.num_slots = num_slots
        self.slot_bytes = slot_bytes or required_slot_bytes(
            sample_shapes, max_batch_size
        )
        self.max_retries = max_retries
        self.ready_timeout = ready_timeout
        self.health_interval = health_interval
        self.reply_timeout = reply_timeout
        #: Chaos spec string (:mod:`repro.chaos`); validated here so a
        #: typo fails at construction, not silently inside workers.
        self.chaos = chaos
        if chaos:
            from repro.chaos import parse_chaos_spec

            parse_chaos_spec(chaos)
        #: A worker that answers no ping for this long while claiming to
        #: be alive is treated as hung and killed.  Must comfortably
        #: exceed the longest single batch (pings are answered between
        #: batches).
        self.hang_timeout = hang_timeout
        self._plans = plans
        #: Plan key → ``.rpln`` artifact path.  Keys listed here boot in
        #: workers by mmapping the artifact instead of compiling — and a
        #: respawned worker re-mmaps them, so blue/green versions
        #: (``name#version`` keys, unparseable as specs) survive worker
        #: deaths.
        self.artifacts: Dict[str, str] = dict(artifacts or {})
        self._lock = threading.Lock()
        #: Last fully populated stats() entry per worker slot, served
        #: (tagged ``stale: true``) when the live worker is gone.
        self._last_per_worker: Dict[int, dict] = {}
        self._handles: List[Optional[_WorkerHandle]] = [None] * workers
        self._restarts = [0] * workers
        self._watchdog_kills = 0
        self._retries = 0
        self._corrupt_responses = 0
        self._rotor = 0
        self._stop = threading.Event()
        self._monitor: Optional[threading.Thread] = None
        self._started = False

    # -- placement ----------------------------------------------------------
    def replicas_for(self, model: str) -> int:
        """Effective replica count for one model (override or default)."""
        with self._lock:
            return self._replica_overrides.get(model, self.replicas)

    def assigned_workers(self, model: str) -> List[int]:
        """Rendezvous hashing: stable per-model worker subset.

        The ranking is a pure function of ``(model, worker)``, so
        changing a model's replica count only grows or shrinks the
        *prefix* taken from it: scale-up adds workers without moving any
        existing replica, scale-down retires exactly the lowest-ranked
        ones — no traffic on a surviving replica ever re-shuffles.
        """
        ranked = sorted(
            range(self.workers),
            key=lambda w: hashlib.sha1(f"{model}|{w}".encode()).hexdigest(),
        )
        return ranked[: self.replicas_for(model)]

    def set_replicas(self, model: str, count: int) -> List[int]:
        """Resize one model's replica set (the autoscaler's actuator).

        Scale-up broadcasts artifact-backed plan keys to the newly
        assigned workers *before* the override lands, so the first
        batch after the resize never waits on a load (spec-named models
        boot on demand in the worker instead).  Scale-down simply
        shrinks the rendezvous prefix: retired workers stop receiving
        new batches but finish what they already hold — nothing
        in-flight is dropped — and keep the plan warm so a re-expansion
        is instant.  Returns the new assignment.
        """
        count = max(1, min(self.workers, int(count)))
        before = set(self.assigned_workers(model))
        ranked = sorted(
            range(self.workers),
            key=lambda w: hashlib.sha1(f"{model}|{w}".encode()).hexdigest(),
        )
        added = [w for w in ranked[:count] if w not in before]
        with self._lock:
            artifact = self.artifacts.get(model)
        if artifact is not None and added and self._started:
            # Load *before* the override lands: a worker must never be
            # routable for a key it cannot serve (versioned keys cannot
            # compile on demand).  Any refusal aborts the whole resize.
            for worker_id in added:
                handle = self._handle_for(worker_id, timeout=60.0)
                handle.load_model(model, artifact, timeout=60.0)
        with self._lock:
            self._replica_overrides[model] = count
        return self.assigned_workers(model)

    def _names_for(self, worker_id: int) -> List[str]:
        return [
            name for name in self.model_names
            if worker_id in self.assigned_workers(name)
        ]

    # -- lifecycle ----------------------------------------------------------
    def start(self) -> "WorkerRouter":
        if self._started:
            return self
        handles = []
        try:
            for worker_id in range(self.workers):
                handles.append(self._spawn(worker_id))
            # Workers warm their plans concurrently; wait for each in turn.
            for handle in handles:
                handle.wait_ready(self.ready_timeout)
        except BaseException:
            # wait_ready closes the failing handle itself; the siblings
            # (already forked, each holding a shm segment) must not leak.
            for handle in handles:
                handle.close(terminate=True)
            raise
        with self._lock:
            self._handles = handles
        self._started = True
        if self.health_interval:
            self._monitor = threading.Thread(
                target=self._monitor_loop, daemon=True, name="serve-worker-monitor"
            )
            self._monitor.start()
        return self

    def _spawn(self, worker_id: int) -> _WorkerHandle:
        with self._lock:
            artifacts = dict(self.artifacts)
            generation = self._restarts[worker_id]
        handle = _WorkerHandle(
            worker_id,
            self._names_for(worker_id),
            self._plans,
            self.slot_bytes,
            self.num_slots,
            self.threads,
            self._ctx,
            artifacts=artifacts,
            reply_timeout=self.reply_timeout,
            chaos=self.chaos,
            chaos_generation=generation,
        )
        handle.on_watchdog_kill = self._note_watchdog_kill
        return handle

    def _note_watchdog_kill(self, reason: str) -> None:
        with self._lock:
            self._watchdog_kills += 1

    def stop(self) -> None:
        self._stop.set()
        if self._monitor is not None:
            self._monitor.join(timeout=10)
            self._monitor = None
        with self._lock:
            handles, self._handles = self._handles, [None] * self.workers
        for handle in handles:
            if handle is not None:
                handle.close()
        self._started = False

    # -- health -------------------------------------------------------------
    def _monitor_loop(self) -> None:
        while not self._stop.wait(self.health_interval):
            with self._lock:
                snapshot = list(enumerate(self._handles))
            for worker_id, handle in snapshot:
                if handle is None:
                    continue
                try:
                    if handle.alive():
                        # Hang detection: alive but unresponsive past
                        # the timeout → kill; the reader notices the
                        # EOF, fails its pending batches (they retry on
                        # a replica) and the next branch respawns it.
                        try:
                            if handle.probe_hang() > self.hang_timeout:
                                self._note_watchdog_kill("hang_probe")
                                handle.process.kill()
                        except WorkerDied:
                            pass
                    if not handle.alive():
                        self._respawn(handle)
                except Exception:  # noqa: BLE001 — keep monitoring
                    # A failed respawn (slow compile past the ready
                    # timeout, transient OOM, shm exhaustion) must not
                    # kill the monitor: the dead marker stays in place
                    # and the next tick — or the submit retry path —
                    # tries again.
                    pass

    def _respawn(self, dead: _WorkerHandle) -> None:
        """Replace ``dead`` with a fresh process (idempotent per handle)."""
        worker_id = dead.worker_id
        with self._lock:
            if self._handles[worker_id] is not dead:
                return  # someone else already respawned it
            # Mark the slot as in-transition so concurrent respawns wait.
            self._handles[worker_id] = None
        dead.close(terminate=True)
        try:
            fresh = self._spawn(worker_id)
            fresh.wait_ready(self.ready_timeout)
        except BaseException:
            # Restore the dead marker on *any* failure (fork/shm errors
            # included, not just a missed ready) so the slot is never
            # orphaned as None: the monitor's alive() check and the
            # submit retry path both keep trying against the marker.
            with self._lock:
                self._handles[worker_id] = dead
            raise
        with self._lock:
            self._handles[worker_id] = fresh
            self._restarts[worker_id] += 1

    def _respawn_quietly(self, dead: _WorkerHandle) -> None:
        try:
            self._respawn(dead)
        except Exception:  # noqa: BLE001 — the monitor keeps retrying
            pass

    def _handle_for(self, worker_id: int, timeout: float = 60.0) -> _WorkerHandle:
        deadline = time.monotonic() + timeout
        while True:
            with self._lock:
                handle = self._handles[worker_id]
            if handle is not None:
                return handle
            if time.monotonic() > deadline:
                raise WorkerError(f"worker {worker_id} unavailable")
            time.sleep(0.01)  # a respawn is in flight

    # -- routing ------------------------------------------------------------
    def _pick(self, model: str) -> _WorkerHandle:
        """Shallowest-queue live replica; blocks only when none is up.

        Replicas mid-respawn (``None`` slots) are skipped while a live
        sibling exists, so one worker death never stalls traffic that a
        healthy replica could absorb.
        """
        candidates = self.assigned_workers(model)
        with self._lock:
            self._rotor += 1
            rotor = self._rotor
            handles = [self._handles[w] for w in candidates]
        live = [h for h in handles if h is not None and h.alive()]
        if not live:
            # Nothing healthy: wait for a respawn to land on the first
            # replica (the monitor / background respawns keep trying).
            live = [self._handle_for(candidates[0])]
        depth = min(h.inflight() for h in live)
        shallowest = [h for h in live if h.inflight() == depth]
        return shallowest[rotor % len(shallowest)]

    def submit(
        self,
        model: str,
        x: np.ndarray,
        threads: Optional[int] = None,
        trace_into=None,
    ) -> np.ndarray:
        """Route one batch; retries on worker death, never on model error.

        A death triggers the respawn on a *background* thread: the retry
        fails over to a live replica immediately instead of absorbing
        the fork + recompile latency inline (only when no replica is
        left does ``_pick`` wait for the respawn)."""
        if not self._started:
            raise RuntimeError("WorkerRouter not started")
        x = np.ascontiguousarray(np.asarray(x, dtype=np.float32))
        last: Optional[BaseException] = None
        for attempt in range(self.max_retries + 1):
            if attempt and last is not None:
                time.sleep(0.05 * attempt)  # brief backoff between losses
            handle = self._pick(model)
            try:
                return handle.run(
                    model, x, threads=threads, trace_into=trace_into
                )
            except TransportCorrupt as exc:
                # The worker is fine — only the payload in flight was
                # damaged.  Retry without killing anything.
                last = exc
                with self._lock:
                    self._corrupt_responses += 1
                    self._retries += 1
            except WorkerDied as exc:
                last = exc
                with self._lock:
                    self._retries += 1
                threading.Thread(
                    target=self._respawn_quietly, args=(handle,), daemon=True,
                    name=f"serve-worker-respawn-{handle.worker_id}",
                ).start()
        raise WorkerError(
            f"model {model!r}: batch lost to dying workers "
            f"{self.max_retries + 1} times: {last}"
        )

    # -- blue/green deploys -------------------------------------------------
    def load_model(
        self, key: str, artifact: str, timeout: float = 60.0
    ) -> Dict[int, float]:
        """Broadcast a ``("load", key, artifact)`` to ``key``'s replicas.

        Every assigned live worker mmaps the artifact before this
        returns, so the first request after cutover never waits on a
        lazy load.  The (key, artifact) pair is also recorded so
        respawned workers re-mmap it.  Returns worker_id → load ms.
        Raises :class:`WorkerError` if *any* replica rejects the
        artifact — the deploy must not proceed on a half-loaded pool.
        """
        if not self._started:
            raise RuntimeError("WorkerRouter not started")
        with self._lock:
            self.artifacts[key] = artifact
            if key not in self.model_names:
                self.model_names.append(key)
        try:
            times: Dict[int, float] = {}
            for worker_id in self.assigned_workers(key):
                handle = self._handle_for(worker_id, timeout=timeout)
                times[worker_id] = handle.load_model(key, artifact, timeout)
            return times
        except BaseException:
            with self._lock:
                self.artifacts.pop(key, None)
                if key in self.model_names:
                    self.model_names.remove(key)
            raise

    def unload_model(self, key: str) -> None:
        """Retire a drained plan key everywhere (best effort)."""
        with self._lock:
            self.artifacts.pop(key, None)
            if key in self.model_names:
                self.model_names.remove(key)
            handles = [h for h in self._handles if h is not None]
        for handle in handles:
            if key in handle.spec_names and handle.alive():
                try:
                    handle.unload_model(key)
                except (WorkerDied, WorkerError):
                    pass

    def respawning(self) -> bool:
        """True while any worker slot is down or mid-respawn — the
        ``/healthz`` "worker respawning" degradation signal."""
        if not self._started:
            return False
        with self._lock:
            handles = list(self._handles)
        return any(h is None or not h.alive() for h in handles)

    # -- metrics ------------------------------------------------------------
    def restarts_total(self) -> int:
        with self._lock:
            return sum(self._restarts)

    def watchdog_kills_total(self) -> int:
        with self._lock:
            return self._watchdog_kills

    def retries_total(self) -> int:
        with self._lock:
            return self._retries

    def corrupt_responses_total(self) -> int:
        with self._lock:
            return self._corrupt_responses

    def stats(self, refresh: bool = True, ping_timeout: float = 2.0) -> dict:
        with self._lock:
            handles = list(self._handles)
            restarts = list(self._restarts)
            watchdog_kills = self._watchdog_kills
            retries = self._retries
            corrupt = self._corrupt_responses
            overrides = dict(self._replica_overrides)
        per_worker = []
        cache_totals = {"size": 0, "hits": 0, "misses": 0}
        for worker_id, handle in enumerate(handles):
            if handle is None:
                # Mid-respawn: serve the last-known entry (tagged stale)
                # instead of omitting the worker — a scrape racing a
                # crash still sees every slot, with honest freshness.
                entry = dict(self._last_per_worker.get(worker_id, {}))
                entry.update(
                    worker=worker_id, alive=False, respawning=True,
                    stale=True, restarts=restarts[worker_id],
                )
                per_worker.append(entry)
                continue
            if refresh and handle.alive():
                try:
                    handle.ping(timeout=ping_timeout)
                except WorkerDied:
                    pass
            stats = handle.last_stats
            alive = handle.alive()
            entry = {
                "worker": worker_id,
                "pid": handle.pid,
                "alive": alive,
                # A worker that died mid-scrape reports its last-known
                # counters rather than erroring; ``stale`` marks them.
                "stale": not alive,
                "queue_depth": handle.inflight(),
                "restarts": restarts[worker_id],
                "shm_bytes": handle.shm_bytes,
                "models": handle.spec_names,
            }
            for key in ("requests_total", "errors_total",
                        "inline_requests", "inline_responses"):
                if key in stats:
                    entry[key] = stats[key]
            if "plan_cache" in stats:
                entry["plan_cache"] = stats["plan_cache"]
                for key in cache_totals:
                    cache_totals[key] += stats["plan_cache"].get(key, 0)
            if "plan_memory" in stats:
                entry["plan_memory"] = stats["plan_memory"]
            if alive:
                self._last_per_worker[worker_id] = dict(entry)
            per_worker.append(entry)
        lookups = cache_totals["hits"] + cache_totals["misses"]
        return {
            "count": self.workers,
            "replicas": self.replicas,
            "replica_overrides": overrides,
            "worker_restarts": sum(restarts),
            "watchdog_kills": watchdog_kills,
            "retries_total": retries,
            "corrupt_responses_total": corrupt,
            "chaos": self.chaos,
            "shm_bytes_total": sum(
                h.shm_bytes for h in handles if h is not None
            ),
            "queue_depth_total": sum(
                h.inflight() for h in handles if h is not None
            ),
            "assignments": {
                name: self.assigned_workers(name) for name in self.model_names
            },
            "plan_cache": dict(
                cache_totals,
                hit_rate=cache_totals["hits"] / lookups if lookups else 0.0,
            ),
            "per_worker": per_worker,
        }


class WorkerPlanProxy:
    """Duck-typed stand-in for ``CompiledPlan`` that executes remotely.

    The :class:`~repro.serve.batcher.DynamicBatcher` only calls
    ``plan.run(batch[, threads=])`` from its executor thread; this proxy
    forwards that call to the router (which blocks until a worker
    answers), so the whole batching/deadline/backpressure layer works
    unchanged on top of process workers.
    """

    def __init__(self, router: WorkerRouter, model: str):
        self.router = router
        self.model = model

    def run(
        self,
        x: np.ndarray,
        threads: Optional[int] = None,
        trace=None,
    ) -> np.ndarray:
        return self.router.submit(
            self.model, x, threads=threads, trace_into=trace
        )
