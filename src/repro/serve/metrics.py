"""Serving metrics: counters, latency percentiles, batch-size histogram.

Everything here is updated from the batcher loop and the worker pool and
read from the ``/metrics`` handler, so every structure takes a lock.
Latencies go into a fixed-size ring (:class:`LatencyWindow`): percentiles
are computed over the most recent ``capacity`` observations, which keeps
``/metrics`` O(window) regardless of server uptime.
"""

from __future__ import annotations

import threading
import time
from typing import Dict, List, Optional

import numpy as np


class LatencyWindow:
    """Ring buffer of the last ``capacity`` latency observations (ms)."""

    def __init__(self, capacity: int = 4096):
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.capacity = capacity
        self._buf = np.zeros(capacity, dtype=np.float64)
        self._count = 0  # total observations ever
        self._lock = threading.Lock()

    def observe(self, value_ms: float) -> None:
        with self._lock:
            self._buf[self._count % self.capacity] = value_ms
            self._count += 1

    def __len__(self) -> int:
        with self._lock:
            return min(self._count, self.capacity)

    def values(self) -> np.ndarray:
        with self._lock:
            n = min(self._count, self.capacity)
            return self._buf[:n].copy()

    def summary(self) -> dict:
        values = self.values()
        if values.size == 0:
            return {"count": 0}
        p50, p95, p99 = np.percentile(values, [50, 95, 99])
        return {
            "count": int(values.size),
            "mean_ms": float(values.mean()),
            "p50_ms": float(p50),
            "p95_ms": float(p95),
            "p99_ms": float(p99),
            "max_ms": float(values.max()),
        }


class ModelMetrics:
    """Per-model serving counters + latency windows."""

    def __init__(self, window: int = 4096):
        self._lock = threading.Lock()
        self.requests_total = 0  # accepted into the queue
        self.responses_total = 0  # completed successfully
        self.rejected_total = 0  # backpressure (429)
        self.deadline_exceeded_total = 0  # expired before execution (504)
        self.errors_total = 0  # kernel / internal failures (500)
        self.batches_total = 0
        self.batched_samples_total = 0
        self.batch_size_hist: Dict[int, int] = {}
        self.latency = LatencyWindow(window)  # end-to-end, enqueue → reply
        self.queue = LatencyWindow(window)  # enqueue → batch dispatch
        self.run = LatencyWindow(window)  # plan execution per batch

    # -- writers ------------------------------------------------------------
    def on_enqueue(self) -> None:
        with self._lock:
            self.requests_total += 1

    def on_reject(self) -> None:
        with self._lock:
            self.rejected_total += 1

    def on_deadline_exceeded(self, n: int = 1) -> None:
        with self._lock:
            self.deadline_exceeded_total += n

    def on_error(self, n: int = 1) -> None:
        with self._lock:
            self.errors_total += n

    def on_batch(self, size: int, run_ms: float) -> None:
        with self._lock:
            self.batches_total += 1
            self.batched_samples_total += size
            self.batch_size_hist[size] = self.batch_size_hist.get(size, 0) + 1
        self.run.observe(run_ms)

    def on_response(self, latency_ms: float, queue_ms: float) -> None:
        with self._lock:
            self.responses_total += 1
        self.latency.observe(latency_ms)
        self.queue.observe(queue_ms)

    # -- readers ------------------------------------------------------------
    def mean_batch_size(self) -> float:
        with self._lock:
            if self.batches_total == 0:
                return 0.0
            return self.batched_samples_total / self.batches_total

    def snapshot(self) -> dict:
        with self._lock:
            counters = {
                "requests_total": self.requests_total,
                "responses_total": self.responses_total,
                "rejected_total": self.rejected_total,
                "deadline_exceeded_total": self.deadline_exceeded_total,
                "errors_total": self.errors_total,
                "batches_total": self.batches_total,
                "batched_samples_total": self.batched_samples_total,
                "batch_size_hist": {
                    str(k): v for k, v in sorted(self.batch_size_hist.items())
                },
            }
        counters["mean_batch_size"] = (
            counters["batched_samples_total"] / counters["batches_total"]
            if counters["batches_total"]
            else 0.0
        )
        counters["latency"] = self.latency.summary()
        counters["queue"] = self.queue.summary()
        counters["run"] = self.run.summary()
        return counters


class ServerMetrics:
    """Whole-server view: per-model metrics + uptime + plan-cache stats."""

    def __init__(self, window: int = 4096):
        self._lock = threading.Lock()
        self._window = window
        self._models: Dict[str, ModelMetrics] = {}
        self.started = time.monotonic()

    def for_model(self, name: str) -> ModelMetrics:
        with self._lock:
            metrics = self._models.get(name)
            if metrics is None:
                metrics = self._models[name] = ModelMetrics(self._window)
            return metrics

    def model_names(self) -> List[str]:
        with self._lock:
            return list(self._models)

    def uptime_s(self) -> float:
        return time.monotonic() - self.started

    def snapshot(self, plan_cache_stats: Optional[dict] = None) -> dict:
        uptime = self.uptime_s()
        with self._lock:
            models = {name: m.snapshot() for name, m in self._models.items()}
        responses = sum(m["responses_total"] for m in models.values())
        requests = sum(m["requests_total"] for m in models.values())
        snap = {
            "uptime_s": uptime,
            "requests_total": requests,
            "responses_total": responses,
            "throughput_rps": responses / uptime if uptime > 0 else 0.0,
            "models": models,
        }
        if plan_cache_stats is not None:
            snap["plan_cache"] = plan_cache_stats
        return snap
