"""Serving metrics: counters, latency percentiles, batch-size histogram.

Everything here is updated from the batcher loop and the worker pool and
read from the ``/metrics`` handler, so every structure takes a lock.
Latencies go into a fixed-size ring (:class:`LatencyWindow`): percentiles
are computed over the most recent ``capacity`` observations, which keeps
``/metrics`` O(window) regardless of server uptime.
"""

from __future__ import annotations

import threading
import time
from typing import Dict, List, Optional

import numpy as np

#: Cumulative-histogram bucket upper bounds (ms) for request latency —
#: fixed at import so Prometheus series are stable across restarts.
LATENCY_BUCKETS_MS = (1.0, 2.0, 5.0, 10.0, 20.0, 50.0, 100.0, 200.0, 500.0, 1000.0, 2000.0, 5000.0)

#: Bucket bounds (ms) for per-step kernel histograms (sampled at the
#: server's trace rate; steps are short, so the grid is finer).
STEP_BUCKETS_MS = (0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0, 25.0, 50.0, 100.0)

#: Bound on distinct per-step series one model may create (defensive —
#: step labels come from the compiler, but a runaway plan should degrade
#: to a dropped series, not an unbounded /metrics page).
MAX_STEP_SERIES = 512


class LatencyWindow:
    """Ring buffer of the last ``capacity`` latency observations (ms)."""

    def __init__(self, capacity: int = 4096):
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.capacity = capacity
        self._buf = np.zeros(capacity, dtype=np.float64)
        self._count = 0  # total observations ever
        self._lock = threading.Lock()

    def observe(self, value_ms: float) -> None:
        with self._lock:
            self._buf[self._count % self.capacity] = value_ms
            self._count += 1

    def __len__(self) -> int:
        with self._lock:
            return min(self._count, self.capacity)

    def values(self) -> np.ndarray:
        with self._lock:
            n = min(self._count, self.capacity)
            return self._buf[:n].copy()

    def summary(self) -> dict:
        values = self.values()
        if values.size == 0:
            return {"count": 0}
        p50, p95, p99 = np.percentile(values, [50, 95, 99])
        return {
            "count": int(values.size),
            "mean_ms": float(values.mean()),
            "p50_ms": float(p50),
            "p95_ms": float(p95),
            "p99_ms": float(p99),
            "max_ms": float(values.max()),
        }


class ModelMetrics:
    """Per-model serving counters + latency windows."""

    def __init__(self, window: int = 4096):
        self._lock = threading.Lock()
        self.requests_total = 0  # accepted into the queue
        self.responses_total = 0  # completed successfully
        self.rejected_total = 0  # backpressure (429)
        self.shed_total = 0  # admission-control sheds (429, pre-queue)
        self.deadline_exceeded_total = 0  # expired before execution (504)
        self.errors_total = 0  # kernel / internal failures (500)
        self.batches_total = 0
        self.batched_samples_total = 0
        self.batch_size_hist: Dict[int, int] = {}
        self.latency = LatencyWindow(window)  # end-to-end, enqueue → reply
        self.queue = LatencyWindow(window)  # enqueue → batch dispatch
        self.run = LatencyWindow(window)  # plan execution per batch
        # Lifetime cumulative histogram of end-to-end latency (Prometheus
        # exposition); bucket i counts observations <= LATENCY_BUCKETS_MS[i],
        # the final slot is +Inf.  ``latency_exemplars`` keeps the most
        # recent request id that landed in each bucket so a scraped p99
        # spike can be joined back to its /trace timeline.
        self.latency_bucket_counts = [0] * (len(LATENCY_BUCKETS_MS) + 1)
        self.latency_sum_ms = 0.0
        self.latency_count = 0
        self.latency_exemplars: Dict[int, tuple] = {}  # bucket idx -> (request_id, ms)
        # Per-step kernel histograms: label -> [count, sum_ms, buckets[]].
        self.steps: Dict[str, list] = {}

    # -- writers ------------------------------------------------------------
    def on_enqueue(self) -> None:
        with self._lock:
            self.requests_total += 1

    def on_reject(self) -> None:
        with self._lock:
            self.rejected_total += 1

    def on_shed(self) -> None:
        """Admission control refused the request before it touched the
        queue (watermark or tenant bucket — HTTP 429).  Counted into
        ``rejected_total`` as well: that counter remains "every 429 this
        model answered", with ``shed_total`` the admission subset."""
        with self._lock:
            self.shed_total += 1
            self.rejected_total += 1

    def on_deadline_exceeded(self, n: int = 1) -> None:
        with self._lock:
            self.deadline_exceeded_total += n

    def on_error(self, n: int = 1) -> None:
        with self._lock:
            self.errors_total += n

    def on_batch(self, size: int, run_ms: float) -> None:
        with self._lock:
            self.batches_total += 1
            self.batched_samples_total += size
            self.batch_size_hist[size] = self.batch_size_hist.get(size, 0) + 1
        self.run.observe(run_ms)

    def on_response(
        self,
        latency_ms: float,
        queue_ms: float,
        request_id: Optional[str] = None,
    ) -> None:
        bucket = 0
        while (
            bucket < len(LATENCY_BUCKETS_MS)
            and latency_ms > LATENCY_BUCKETS_MS[bucket]
        ):
            bucket += 1
        with self._lock:
            self.responses_total += 1
            self.latency_bucket_counts[bucket] += 1
            self.latency_sum_ms += latency_ms
            self.latency_count += 1
            if request_id is not None:
                self.latency_exemplars[bucket] = (request_id, latency_ms)
        self.latency.observe(latency_ms)
        self.queue.observe(queue_ms)

    def observe_step(self, label: str, ms: float) -> None:
        """One sampled per-step kernel latency (fed by traced batches at
        the server's trace rate)."""
        with self._lock:
            entry = self.steps.get(label)
            if entry is None:
                if len(self.steps) >= MAX_STEP_SERIES:
                    return
                entry = self.steps[label] = [
                    0,
                    0.0,
                    [0] * (len(STEP_BUCKETS_MS) + 1),
                ]
            entry[0] += 1
            entry[1] += ms
            bucket = 0
            while bucket < len(STEP_BUCKETS_MS) and ms > STEP_BUCKETS_MS[bucket]:
                bucket += 1
            entry[2][bucket] += 1

    # -- readers ------------------------------------------------------------
    def mean_batch_size(self) -> float:
        with self._lock:
            if self.batches_total == 0:
                return 0.0
            return self.batched_samples_total / self.batches_total

    def snapshot(self) -> dict:
        with self._lock:
            counters = {
                "requests_total": self.requests_total,
                "responses_total": self.responses_total,
                "rejected_total": self.rejected_total,
                "shed_total": self.shed_total,
                "deadline_exceeded_total": self.deadline_exceeded_total,
                "errors_total": self.errors_total,
                "batches_total": self.batches_total,
                "batched_samples_total": self.batched_samples_total,
                "batch_size_hist": {
                    str(k): v for k, v in sorted(self.batch_size_hist.items())
                },
            }
        counters["mean_batch_size"] = (
            counters["batched_samples_total"] / counters["batches_total"]
            if counters["batches_total"]
            else 0.0
        )
        counters["latency"] = self.latency.summary()
        counters["queue"] = self.queue.summary()
        counters["run"] = self.run.summary()
        with self._lock:
            counters["steps"] = {
                label: {
                    "count": entry[0],
                    "mean_ms": entry[1] / entry[0] if entry[0] else 0.0,
                }
                for label, entry in sorted(self.steps.items())
            }
        return counters

    def prom_data(self) -> dict:
        """The lifetime-histogram state the Prometheus renderer needs
        (bucket counts, sums, exemplars, per-step histograms) — not part
        of the JSON snapshot, which stays window-based summaries."""
        with self._lock:
            return {
                "counters": {
                    "requests_total": self.requests_total,
                    "responses_total": self.responses_total,
                    "rejected_total": self.rejected_total,
                    "shed_total": self.shed_total,
                    "deadline_exceeded_total": self.deadline_exceeded_total,
                    "errors_total": self.errors_total,
                    "batches_total": self.batches_total,
                    "batched_samples_total": self.batched_samples_total,
                },
                "latency_buckets": list(self.latency_bucket_counts),
                "latency_sum_ms": self.latency_sum_ms,
                "latency_count": self.latency_count,
                "exemplars": dict(self.latency_exemplars),
                "steps": {
                    label: (entry[0], entry[1], list(entry[2]))
                    for label, entry in self.steps.items()
                },
            }


class ServerMetrics:
    """Whole-server view: per-model metrics + uptime + plan-cache stats."""

    def __init__(self, window: int = 4096):
        self._lock = threading.Lock()
        self._window = window
        self._models: Dict[str, ModelMetrics] = {}
        self.started = time.monotonic()

    def for_model(self, name: str) -> ModelMetrics:
        with self._lock:
            metrics = self._models.get(name)
            if metrics is None:
                metrics = self._models[name] = ModelMetrics(self._window)
            return metrics

    def model_names(self) -> List[str]:
        with self._lock:
            return list(self._models)

    def uptime_s(self) -> float:
        return time.monotonic() - self.started

    def snapshot(self, plan_cache_stats: Optional[dict] = None) -> dict:
        uptime = self.uptime_s()
        with self._lock:
            models = {name: m.snapshot() for name, m in self._models.items()}
        responses = sum(m["responses_total"] for m in models.values())
        requests = sum(m["requests_total"] for m in models.values())
        snap = {
            "uptime_s": uptime,
            "requests_total": requests,
            "responses_total": responses,
            "throughput_rps": responses / uptime if uptime > 0 else 0.0,
            "models": models,
        }
        if plan_cache_stats is not None:
            snap["plan_cache"] = plan_cache_stats
        return snap
