"""Served-latency probe: per-request latency under concurrent load.

WiNAS's ``latency_source="measured"`` times isolated single-sample plan
runs; a deployed model instead sees its latency shaped by queueing and
micro-batching.  :func:`served_latency_ms` reproduces that regime without
HTTP: it spins a private event loop, runs the candidate's plan behind a
:class:`~repro.serve.batcher.DynamicBatcher`, drives it with
``concurrency`` closed-loop clients, and reports the mean end-to-end
(enqueue → response) latency per request.
"""

from __future__ import annotations

import asyncio
import time
from typing import List, Optional

import numpy as np

from repro.serve.batcher import BatchPolicy, DynamicBatcher


def served_latency_ms(
    plan,
    x: np.ndarray,
    concurrency: int = 8,
    requests_per_client: int = 4,
    policy: Optional[BatchPolicy] = None,
    threads: Optional[int] = None,
    workers: int = 0,
) -> float:
    """Mean per-request latency (ms) of ``plan`` under concurrent load.

    ``x`` is one sample ``(1, C, H, W)``.  Must be called from a thread
    with no running event loop (it owns a private one).  ``threads``
    sets the engine threads per dispatched batch, mirroring a server
    started with ``--threads``; ``workers`` mirrors ``--workers``:
    batches then execute in forked worker processes (the plan object is
    inherited through fork — no registry round trip), so the probe sees
    the per-request latency of the *sharded* deployment, IPC included.
    """
    x = np.ascontiguousarray(np.asarray(x, dtype=np.float32))
    if policy is None:
        policy = BatchPolicy(
            max_batch_size=max(1, concurrency),
            max_wait_ms=1.0,
            max_queue=max(64, 4 * concurrency),
            default_deadline_ms=0,  # probes never expire
        )

    router = None
    run_plan = plan
    if workers and workers > 0:
        from repro.serve.router import WorkerPlanProxy, WorkerRouter

        router = WorkerRouter(
            model_names=["probe"],
            sample_shapes=[tuple(x.shape[1:])],
            workers=workers,
            replicas=workers,  # one candidate: use every worker
            max_batch_size=policy.max_batch_size,
            threads=threads,
            plans={"probe": plan},
        ).start()
        run_plan = WorkerPlanProxy(router, "probe")

    async def main() -> float:
        batcher = DynamicBatcher(
            run_plan, policy=policy, name="probe", threads=threads,
            max_inflight=max(2, workers or 1),
        )
        await batcher.start()
        latencies: List[float] = []
        try:
            await batcher.submit(x)  # warmup: first run pays page-in costs

            async def client() -> None:
                for _ in range(requests_per_client):
                    start = time.perf_counter()
                    await batcher.submit(x)
                    latencies.append((time.perf_counter() - start) * 1e3)

            await asyncio.gather(*(client() for _ in range(concurrency)))
        finally:
            await batcher.stop()
        return float(np.mean(latencies))

    try:
        return asyncio.run(main())
    finally:
        if router is not None:
            router.stop()
