"""Minimal stdlib HTTP client for the inference server.

One :class:`ServeClient` wraps one keep-alive ``http.client`` connection,
so it is cheap per request but **not thread-safe** — concurrent callers
(the load generator, ``examples/serve_client.py``) create one client per
thread.  Outputs come back as ``float32`` arrays: JSON carries the exact
decimal form of each float32 value, so the round trip through the wire is
bit-exact.

Failure surface: timeouts raise :class:`ServeTimeout` (connect vs read
phase split via ``connect_timeout`` / ``read_timeout``), refused or
dropped connections raise :class:`ServeConnectionError`, and non-2xx
responses raise :class:`ServeError` carrying the parsed ``Retry-After``.
Passing a :class:`RetryPolicy` opts the client into bounded retries with
jittered exponential backoff and a retry *budget* — see
docs/operations.md ("Overload & incident runbook").
"""

from __future__ import annotations

import base64
import datetime
import email.utils
import http.client
import json
import random
import socket
import time
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple
from urllib.parse import urlsplit

import numpy as np


class ServeClientError(RuntimeError):
    """Base class for everything a failed request can raise."""


class ServeError(ServeClientError):
    """Non-2xx response from the server.

    ``retry_after`` carries the server's ``Retry-After`` header (seconds,
    parsed) when present — 429 sheds and 503 drain responses set it.
    ``reason`` is the body's machine-readable refusal class when the
    server sent one (``"circuit_open"``, ``"draining"``, …).
    """

    def __init__(
        self,
        status: int,
        message: str,
        retry_after: Optional[float] = None,
        reason: Optional[str] = None,
    ):
        super().__init__(f"HTTP {status}: {message}")
        self.status = status
        self.message = message
        self.retry_after = retry_after
        self.reason = reason


class ServeCircuitOpen(ServeError):
    """The model's circuit breaker refused the request (503 with
    ``reason: circuit_open``).

    Distinct from a generic 503 because the right client behaviour
    differs: the server is healthy and *deliberately* failing fast on a
    broken model, so with a :class:`RetryPolicy` the client waits out
    the server's ``Retry-After`` verbatim — no exponential backoff, and
    **no retry-budget spend**, since honouring an explicit server hold
    adds no load to an overloaded system.
    """


class ServeTimeout(ServeClientError):
    """A connect or read deadline elapsed (``phase`` says which)."""

    def __init__(self, phase: str, timeout_s: Optional[float], detail: str = ""):
        suffix = f": {detail}" if detail else ""
        super().__init__(f"{phase} timed out after {timeout_s}s{suffix}")
        self.phase = phase
        self.timeout_s = timeout_s


class ServeConnectionError(ServeClientError):
    """TCP connect failed, or the connection dropped mid-request."""


@dataclass(frozen=True)
class RetryPolicy:
    """Client-side retry schedule for transient failures.

    Retries shed/drain responses (429, 503) and transport failures
    (:class:`ServeTimeout`, :class:`ServeConnectionError`) with capped
    exponential backoff plus jitter.  A server ``Retry-After`` hint is
    honoured when it exceeds the computed backoff.  The *retry budget*
    bounds total sleep per client: each backoff spends from it, each
    success refills a little, and an exhausted budget fails fast instead
    of amplifying an overload (see docs/operations.md, "Overload &
    incident runbook").
    """

    max_attempts: int = 4
    base_backoff_s: float = 0.025
    max_backoff_s: float = 1.0
    jitter: float = 0.5
    budget_s: float = 16.0
    success_refill_s: float = 0.1
    retry_statuses: Tuple[int, ...] = (429, 503)

    def __post_init__(self):
        if self.max_attempts < 1:
            raise ValueError("max_attempts must be >= 1")
        if not 0.0 <= self.jitter <= 1.0:
            raise ValueError("jitter must be in [0, 1]")
        if self.base_backoff_s < 0 or self.max_backoff_s < 0:
            raise ValueError("backoff times must be >= 0")

    def backoff_s(self, attempt: int, rng: random.Random) -> float:
        """Backoff before retry number ``attempt`` (0-based): capped
        exponential, jittered down by up to ``jitter`` of itself."""
        raw = min(self.max_backoff_s, self.base_backoff_s * (2.0 ** attempt))
        return raw * (1.0 - self.jitter * rng.random())


def _parse_retry_after(
    header: Optional[str], now: Optional[float] = None
) -> Optional[float]:
    """``Retry-After`` seconds as a float, or None for garbage.

    RFC 9110 allows both delta-seconds and an HTTP-date; proxies in
    front of this server rewrite to the date form, so both are parsed.
    A date is converted to a delay against ``now`` (seconds since the
    epoch; defaults to the wall clock — injectable for tests), and
    negative values — past dates, negative deltas — clamp to 0 ("retry
    immediately") instead of leaking a negative sleep into the policy.
    """
    if header is None:
        return None
    try:
        value = float(header)
    except ValueError:
        try:
            when = email.utils.parsedate_to_datetime(header)
        except (TypeError, ValueError):
            return None
        if when is None:
            return None
        if when.tzinfo is None:  # RFC 5322 parse of a legacy date form
            when = when.replace(tzinfo=datetime.timezone.utc)
        value = when.timestamp() - (time.time() if now is None else now)
    return max(value, 0.0)


class ServeClient:
    """Talks to one server over one persistent connection."""

    def __init__(
        self,
        base_url: str,
        timeout: float = 30.0,
        connect_timeout: Optional[float] = None,
        read_timeout: Optional[float] = None,
        retry: Optional[RetryPolicy] = None,
        retry_seed: Optional[int] = None,
    ):
        parts = urlsplit(base_url)
        if parts.scheme not in ("http", ""):
            raise ValueError(f"only http:// is supported, got {base_url!r}")
        self.host = parts.hostname or "127.0.0.1"
        self.port = parts.port or 80
        self.timeout = timeout
        #: TCP handshake deadline; defaults to ``timeout``.
        self.connect_timeout = (
            timeout if connect_timeout is None else connect_timeout
        )
        #: Per-request response deadline; defaults to ``timeout``.
        self.read_timeout = timeout if read_timeout is None else read_timeout
        #: ``None`` (the default) keeps every failure a single raise;
        #: a :class:`RetryPolicy` makes ``request`` retry transient ones.
        self.retry = retry
        self._retry_rng = random.Random(retry_seed)
        self._retry_budget_s = retry.budget_s if retry is not None else 0.0
        self._conn: Optional[http.client.HTTPConnection] = None
        #: Response headers of the most recent request (lower-cased keys)
        #: — how callers read the echoed ``X-Request-Id``.
        self.last_response_headers: Dict[str, str] = {}

    # -- transport ----------------------------------------------------------
    def _connection(self) -> http.client.HTTPConnection:
        if self._conn is None:
            self._conn = http.client.HTTPConnection(
                self.host, self.port, timeout=self.connect_timeout
            )
        return self._conn

    def _ensure_connected(self) -> http.client.HTTPConnection:
        """Connect (if needed) with the connect deadline, then switch the
        socket to the read deadline.  Maps failures to typed errors."""
        conn = self._connection()
        if conn.sock is None:
            try:
                conn.connect()
            except socket.timeout as exc:
                self.close()
                raise ServeTimeout(
                    "connect", self.connect_timeout, str(exc)
                ) from exc
            except OSError as exc:
                self.close()
                raise ServeConnectionError(
                    f"connect to {self.host}:{self.port} failed: {exc}"
                ) from exc
        if conn.sock is not None:
            conn.sock.settimeout(self.read_timeout)
        return conn

    def connect(self) -> "ServeClient":
        """Eagerly establish the keep-alive TCP connection.

        ``request`` connects lazily, which folds connection setup (DNS,
        handshake, accept-queue wait) into whatever is timed around the
        *first* request.  Latency-measuring callers (the closed-loop
        load generator) connect explicitly beforehand so their timers
        cover only request → full-body-read.
        """
        self._ensure_connected()
        return self

    def close(self) -> None:
        if self._conn is not None:
            self._conn.close()
            self._conn = None

    def __enter__(self) -> "ServeClient":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def _request_once(
        self,
        method: str,
        path: str,
        body: Optional[bytes],
        send_headers: Dict[str, str],
    ) -> dict:
        """One round trip, typed failures, no retry schedule.

        A connection that drops mid-request gets one silent reconnect
        (the server may have raced a keep-alive close between requests);
        a second failure — or any read timeout — raises typed.
        """
        for attempt in (0, 1):
            conn = self._ensure_connected()
            try:
                conn.request(method, path, body=body, headers=send_headers)
                response = conn.getresponse()
                data = response.read()
                break
            except socket.timeout as exc:
                self.close()
                raise ServeTimeout(
                    "read", self.read_timeout, f"{method} {path}"
                ) from exc
            except (http.client.HTTPException, OSError) as exc:
                # A raced keep-alive close: reconnect once, then give up.
                self.close()
                if attempt:
                    raise ServeConnectionError(
                        f"{method} {path} failed: {exc}"
                    ) from exc
        self.last_response_headers = {
            k.lower(): v for k, v in response.getheaders()
        }
        retry_after = _parse_retry_after(response.getheader("Retry-After"))
        content_type = response.getheader("Content-Type", "")
        if data and not content_type.startswith("application/json"):
            # Non-JSON bodies (the Prometheus exposition) come back raw.
            if response.status >= 300:
                raise ServeError(
                    response.status,
                    data.decode(errors="replace"),
                    retry_after=retry_after,
                )
            return {"text": data.decode(), "content_type": content_type}
        parsed = json.loads(data.decode()) if data else {}
        if response.status >= 300:
            reason = parsed.get("reason") if isinstance(parsed, dict) else None
            error_cls = (
                ServeCircuitOpen if reason == "circuit_open" else ServeError
            )
            raise error_cls(
                response.status,
                parsed.get("error", data.decode(errors="replace")),
                retry_after=retry_after,
                reason=reason,
            )
        return parsed

    def request(
        self,
        method: str,
        path: str,
        payload: Optional[dict] = None,
        headers: Optional[Dict[str, str]] = None,
    ) -> dict:
        """One logical request; ``headers`` adds/overrides request headers
        (e.g. ``{"X-Request-Id": ...}`` or an ``Accept`` preference).

        With a :class:`RetryPolicy`, transient failures (429/503,
        timeouts, dropped connections) are retried with jittered backoff
        until the policy's attempt count or retry budget runs out; the
        final failure re-raises as-is.
        """
        body = json.dumps(payload).encode() if payload is not None else None
        send_headers = {"Content-Type": "application/json"} if body else {}
        if headers:
            send_headers.update(headers)
        policy = self.retry
        attempts = policy.max_attempts if policy is not None else 1
        for attempt in range(attempts):
            retry_after: Optional[float] = None
            try:
                result = self._request_once(method, path, body, send_headers)
                if policy is not None:
                    self._retry_budget_s = min(
                        policy.budget_s,
                        self._retry_budget_s + policy.success_refill_s,
                    )
                return result
            except ServeError as exc:
                if policy is None or exc.status not in policy.retry_statuses:
                    raise
                last_error: ServeClientError = exc
                retry_after = exc.retry_after
            except (ServeTimeout, ServeConnectionError) as exc:
                if policy is None:
                    raise
                last_error = exc
            if attempt + 1 >= attempts:
                raise last_error
            if isinstance(last_error, ServeCircuitOpen) and retry_after:
                # An open circuit is the server deliberately failing
                # fast: honour its Retry-After verbatim and spend no
                # retry budget — this wait amplifies nothing.
                time.sleep(retry_after)
                continue
            delay = max(
                policy.backoff_s(attempt, self._retry_rng), retry_after or 0.0
            )
            if delay > self._retry_budget_s:
                # Budget exhausted: fail fast rather than pile more load
                # (and more latency) onto an already-struggling server.
                raise last_error
            self._retry_budget_s -= delay
            time.sleep(delay)
        raise last_error  # unreachable; keeps the type checker honest

    # -- API ----------------------------------------------------------------
    @staticmethod
    def encode_sample(x: np.ndarray, encoding: str = "json"):
        """One sample → wire form: nested lists (json) or base64 float32
        bytes (b64 — ~20× less encode/parse work per request)."""
        arr = np.ascontiguousarray(np.asarray(x, dtype="<f4"))
        if encoding == "json":
            return arr.tolist()
        if encoding == "b64":
            return base64.b64encode(arr.tobytes()).decode("ascii")
        raise ValueError(f"unknown encoding {encoding!r} (json or b64)")

    def healthz(self) -> dict:
        return self.request("GET", "/healthz")

    def models(self) -> dict:
        return self.request("GET", "/models")

    def metrics(self) -> dict:
        return self.request("GET", "/metrics")

    def metrics_text(self) -> str:
        """The Prometheus exposition (``Accept: text/plain``)."""
        result = self.request(
            "GET", "/metrics", headers={"Accept": "text/plain"}
        )
        return result["text"]

    def trace(
        self, request_id: Optional[str] = None, format: str = "chrome"
    ) -> dict:
        """Fetch the server's span buffer (``GET /trace``)."""
        query = f"?format={format}"
        if request_id is not None:
            query += f"&request_id={request_id}"
        return self.request("GET", f"/trace{query}")

    def predict_raw(
        self,
        x: np.ndarray,
        model: Optional[str] = None,
        deadline_ms: Optional[float] = None,
        encoding: str = "json",
        request_id: Optional[str] = None,
        priority: Optional[str] = None,
        tenant: Optional[str] = None,
    ) -> dict:
        """POST one sample (C, H, W); returns the full response dict.

        ``priority`` is an admission class name (``interactive`` /
        ``standard`` / ``batch``); ``tenant`` feeds the per-tenant rate
        limiter.  Both ride in the request body.
        """
        payload = {"input": self.encode_sample(x, encoding)}
        if encoding != "json":
            payload["encoding"] = encoding
        if model is not None:
            payload["model"] = model
        if deadline_ms is not None:
            payload["deadline_ms"] = deadline_ms
        if priority is not None:
            payload["priority"] = priority
        if tenant is not None:
            payload["tenant"] = tenant
        headers = (
            {"X-Request-Id": request_id} if request_id is not None else None
        )
        return self.request("POST", "/predict", payload, headers=headers)

    @staticmethod
    def decode_output(payload, response: dict) -> np.ndarray:
        """Wire form → float32 array (b64 responses carry raw bytes plus
        an ``output_shape``; JSON carries exact-decimal nested lists)."""
        if response.get("encoding") == "b64":
            flat = np.frombuffer(base64.b64decode(payload), dtype="<f4")
            return flat.reshape(response["output_shape"]).copy()
        return np.asarray(payload, dtype=np.float32)

    def predict(
        self,
        x: np.ndarray,
        model: Optional[str] = None,
        deadline_ms: Optional[float] = None,
        encoding: str = "json",
        priority: Optional[str] = None,
        tenant: Optional[str] = None,
    ) -> np.ndarray:
        """POST one sample; returns the output as a float32 array."""
        response = self.predict_raw(
            x,
            model=model,
            deadline_ms=deadline_ms,
            encoding=encoding,
            priority=priority,
            tenant=tenant,
        )
        return self.decode_output(response["output"], response)

    def predict_many(
        self,
        samples: List[np.ndarray],
        model: Optional[str] = None,
        deadline_ms: Optional[float] = None,
        encoding: str = "json",
    ) -> Tuple[List[np.ndarray], List[dict]]:
        """POST several samples in one request (server batches them)."""
        payload = {"inputs": [self.encode_sample(s, encoding) for s in samples]}
        if encoding != "json":
            payload["encoding"] = encoding
        if model is not None:
            payload["model"] = model
        if deadline_ms is not None:
            payload["deadline_ms"] = deadline_ms
        response = self.request("POST", "/predict", payload)
        outputs = [self.decode_output(o, response) for o in response["outputs"]]
        return outputs, response["meta"]


def wait_until_ready(base_url: str, timeout: float = 10.0) -> dict:
    """Poll ``/healthz`` until the server answers (or raise TimeoutError)."""
    deadline = time.monotonic() + timeout
    last_error: Optional[Exception] = None
    while time.monotonic() < deadline:
        try:
            with ServeClient(base_url, timeout=2.0) as client:
                return client.healthz()
        except Exception as exc:  # noqa: BLE001 — retrying until the deadline
            last_error = exc
            time.sleep(0.05)
    raise TimeoutError(f"server at {base_url} not ready: {last_error}")
