"""Minimal stdlib HTTP client for the inference server.

One :class:`ServeClient` wraps one keep-alive ``http.client`` connection,
so it is cheap per request but **not thread-safe** — concurrent callers
(the load generator, ``examples/serve_client.py``) create one client per
thread.  Outputs come back as ``float32`` arrays: JSON carries the exact
decimal form of each float32 value, so the round trip through the wire is
bit-exact.
"""

from __future__ import annotations

import base64
import http.client
import json
import socket
import time
from typing import Dict, List, Optional, Tuple
from urllib.parse import urlsplit

import numpy as np


class ServeError(RuntimeError):
    """Non-2xx response from the server."""

    def __init__(self, status: int, message: str):
        super().__init__(f"HTTP {status}: {message}")
        self.status = status
        self.message = message


class ServeClient:
    """Talks to one server over one persistent connection."""

    def __init__(self, base_url: str, timeout: float = 30.0):
        parts = urlsplit(base_url)
        if parts.scheme not in ("http", ""):
            raise ValueError(f"only http:// is supported, got {base_url!r}")
        self.host = parts.hostname or "127.0.0.1"
        self.port = parts.port or 80
        self.timeout = timeout
        self._conn: Optional[http.client.HTTPConnection] = None
        #: Response headers of the most recent request (lower-cased keys)
        #: — how callers read the echoed ``X-Request-Id``.
        self.last_response_headers: Dict[str, str] = {}

    # -- transport ----------------------------------------------------------
    def _connection(self) -> http.client.HTTPConnection:
        if self._conn is None:
            self._conn = http.client.HTTPConnection(
                self.host, self.port, timeout=self.timeout
            )
        return self._conn

    def connect(self) -> "ServeClient":
        """Eagerly establish the keep-alive TCP connection.

        ``request`` connects lazily, which folds connection setup (DNS,
        handshake, accept-queue wait) into whatever is timed around the
        *first* request.  Latency-measuring callers (the closed-loop
        load generator) connect explicitly beforehand so their timers
        cover only request → full-body-read.
        """
        conn = self._connection()
        if conn.sock is None:
            conn.connect()
        return self

    def close(self) -> None:
        if self._conn is not None:
            self._conn.close()
            self._conn = None

    def __enter__(self) -> "ServeClient":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def request(
        self,
        method: str,
        path: str,
        payload: Optional[dict] = None,
        headers: Optional[Dict[str, str]] = None,
    ) -> dict:
        """One round trip; ``headers`` adds/overrides request headers
        (e.g. ``{"X-Request-Id": ...}`` or an ``Accept`` preference)."""
        body = json.dumps(payload).encode() if payload is not None else None
        send_headers = {"Content-Type": "application/json"} if body else {}
        if headers:
            send_headers.update(headers)
        for attempt in (0, 1):
            conn = self._connection()
            try:
                conn.request(method, path, body=body, headers=send_headers)
                response = conn.getresponse()
                data = response.read()
                break
            except (
                http.client.HTTPException,
                ConnectionError,
                socket.timeout,
            ):
                # A raced keep-alive close: reconnect once, then give up.
                self.close()
                if attempt:
                    raise
        self.last_response_headers = {
            k.lower(): v for k, v in response.getheaders()
        }
        content_type = response.getheader("Content-Type", "")
        if data and not content_type.startswith("application/json"):
            # Non-JSON bodies (the Prometheus exposition) come back raw.
            if response.status >= 300:
                raise ServeError(response.status, data.decode(errors="replace"))
            return {"text": data.decode(), "content_type": content_type}
        parsed = json.loads(data.decode()) if data else {}
        if response.status >= 300:
            raise ServeError(
                response.status, parsed.get("error", data.decode(errors="replace"))
            )
        return parsed

    # -- API ----------------------------------------------------------------
    @staticmethod
    def encode_sample(x: np.ndarray, encoding: str = "json"):
        """One sample → wire form: nested lists (json) or base64 float32
        bytes (b64 — ~20× less encode/parse work per request)."""
        arr = np.ascontiguousarray(np.asarray(x, dtype="<f4"))
        if encoding == "json":
            return arr.tolist()
        if encoding == "b64":
            return base64.b64encode(arr.tobytes()).decode("ascii")
        raise ValueError(f"unknown encoding {encoding!r} (json or b64)")

    def healthz(self) -> dict:
        return self.request("GET", "/healthz")

    def models(self) -> dict:
        return self.request("GET", "/models")

    def metrics(self) -> dict:
        return self.request("GET", "/metrics")

    def metrics_text(self) -> str:
        """The Prometheus exposition (``Accept: text/plain``)."""
        result = self.request(
            "GET", "/metrics", headers={"Accept": "text/plain"}
        )
        return result["text"]

    def trace(
        self, request_id: Optional[str] = None, format: str = "chrome"
    ) -> dict:
        """Fetch the server's span buffer (``GET /trace``)."""
        query = f"?format={format}"
        if request_id is not None:
            query += f"&request_id={request_id}"
        return self.request("GET", f"/trace{query}")

    def predict_raw(
        self,
        x: np.ndarray,
        model: Optional[str] = None,
        deadline_ms: Optional[float] = None,
        encoding: str = "json",
        request_id: Optional[str] = None,
    ) -> dict:
        """POST one sample (C, H, W); returns the full response dict."""
        payload = {"input": self.encode_sample(x, encoding)}
        if encoding != "json":
            payload["encoding"] = encoding
        if model is not None:
            payload["model"] = model
        if deadline_ms is not None:
            payload["deadline_ms"] = deadline_ms
        headers = (
            {"X-Request-Id": request_id} if request_id is not None else None
        )
        return self.request("POST", "/predict", payload, headers=headers)

    @staticmethod
    def decode_output(payload, response: dict) -> np.ndarray:
        """Wire form → float32 array (b64 responses carry raw bytes plus
        an ``output_shape``; JSON carries exact-decimal nested lists)."""
        if response.get("encoding") == "b64":
            flat = np.frombuffer(base64.b64decode(payload), dtype="<f4")
            return flat.reshape(response["output_shape"]).copy()
        return np.asarray(payload, dtype=np.float32)

    def predict(
        self,
        x: np.ndarray,
        model: Optional[str] = None,
        deadline_ms: Optional[float] = None,
        encoding: str = "json",
    ) -> np.ndarray:
        """POST one sample; returns the output as a float32 array."""
        response = self.predict_raw(
            x, model=model, deadline_ms=deadline_ms, encoding=encoding
        )
        return self.decode_output(response["output"], response)

    def predict_many(
        self,
        samples: List[np.ndarray],
        model: Optional[str] = None,
        deadline_ms: Optional[float] = None,
        encoding: str = "json",
    ) -> Tuple[List[np.ndarray], List[dict]]:
        """POST several samples in one request (server batches them)."""
        payload = {"inputs": [self.encode_sample(s, encoding) for s in samples]}
        if encoding != "json":
            payload["encoding"] = encoding
        if model is not None:
            payload["model"] = model
        if deadline_ms is not None:
            payload["deadline_ms"] = deadline_ms
        response = self.request("POST", "/predict", payload)
        outputs = [self.decode_output(o, response) for o in response["outputs"]]
        return outputs, response["meta"]


def wait_until_ready(base_url: str, timeout: float = 10.0) -> dict:
    """Poll ``/healthz`` until the server answers (or raise TimeoutError)."""
    deadline = time.monotonic() + timeout
    last_error: Optional[Exception] = None
    while time.monotonic() < deadline:
        try:
            with ServeClient(base_url, timeout=2.0) as client:
                return client.healthz()
        except Exception as exc:  # noqa: BLE001 — retrying until the deadline
            last_error = exc
            time.sleep(0.05)
    raise TimeoutError(f"server at {base_url} not ready: {last_error}")
