"""Ingress admission control: priority classes + per-tenant token buckets.

Sits in front of the batcher queue (ISSUE 8).  Two independent gates,
both answering HTTP 429 with ``Retry-After`` when they shed:

* **Priority watermarks** — requests carry a priority class
  (``interactive`` < ``standard`` < ``batch``; lower level = more
  important).  As the batcher queue fills, lower-importance classes are
  shed first: ``batch`` traffic sheds at 50% fill, ``standard`` at
  75%, ``interactive`` only at 95%.  Under overload the queue's
  remaining headroom is therefore reserved for the traffic with the
  tightest deadlines — which is what keeps the tight class's p99 inside
  its deadline at 2x capacity (the gated ``overload_goodput`` entry in
  ``BENCH_serve.json`` measures exactly this).
* **Per-tenant token buckets** — optional (``tenant_rate`` requests/s,
  burst ``tenant_burst``); one bucket per ``tenant`` string.  A tenant
  over its rate is shed with ``Retry-After`` set to when its bucket
  refills, so one noisy client cannot starve the rest.

Admission never queues and never blocks: the decision is O(1) at
ingress, and a shed request costs the server nothing downstream.  See
docs/operations.md "Overload & incident runbook".
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field
from typing import Dict, Optional

#: Priority class name -> level.  Lower level = more important = shed last.
PRIORITY_LEVELS = {"interactive": 0, "standard": 1, "batch": 2}

DEFAULT_PRIORITY = "standard"

#: Queue-fill fraction above which each class is shed.
DEFAULT_WATERMARKS = {"batch": 0.50, "standard": 0.75, "interactive": 0.95}


class RequestShed(Exception):
    """Admission refused the request (HTTP 429 + ``Retry-After``)."""

    def __init__(self, reason: str, retry_after: float, priority: str,
                 tenant: Optional[str] = None):
        super().__init__(reason)
        self.reason = reason
        self.retry_after = retry_after
        self.priority = priority
        self.tenant = tenant


def resolve_priority(name: Optional[str]) -> str:
    """Validate/normalise a request's priority class (400 on typo —
    silently downgrading a mistyped ``interactive`` would be cruel)."""
    if name is None or name == "":
        return DEFAULT_PRIORITY
    key = str(name).strip().lower()
    if key not in PRIORITY_LEVELS:
        raise ValueError(
            f"unknown priority {name!r} "
            f"(one of: {', '.join(sorted(PRIORITY_LEVELS))})"
        )
    return key


@dataclass
class AdmissionPolicy:
    """Knobs for the ingress gate (``repro serve --tenant-rate/-burst``).

    ``tenant_rate <= 0`` disables the per-tenant buckets entirely —
    the default, matching the pre-admission behaviour for untagged
    traffic.  Watermark shedding is always on; with an empty queue it
    never triggers, so single-tenant low-load callers see no change.
    """

    tenant_rate: float = 0.0
    tenant_burst: float = 10.0
    shed_watermarks: Dict[str, float] = field(
        default_factory=lambda: dict(DEFAULT_WATERMARKS)
    )

    def __post_init__(self):
        if self.tenant_rate < 0:
            raise ValueError("tenant_rate must be >= 0")
        if self.tenant_burst <= 0:
            raise ValueError("tenant_burst must be > 0")
        for name in self.shed_watermarks:
            if name not in PRIORITY_LEVELS:
                raise ValueError(f"watermark for unknown priority {name!r}")

    def to_dict(self) -> dict:
        return {
            "tenant_rate": self.tenant_rate,
            "tenant_burst": self.tenant_burst,
            "shed_watermarks": dict(self.shed_watermarks),
        }


class TokenBucket:
    """Classic token bucket; caller provides the clock for testability."""

    __slots__ = ("rate", "burst", "tokens", "updated")

    def __init__(self, rate: float, burst: float, now: float):
        self.rate = rate
        self.burst = burst
        self.tokens = burst
        self.updated = now

    def take(self, now: float, cost: float = 1.0):
        """Try to spend ``cost`` tokens.  Returns ``(ok, retry_after_s)``;
        ``retry_after`` is how long until the bucket holds ``cost``."""
        elapsed = max(0.0, now - self.updated)
        self.tokens = min(self.burst, self.tokens + elapsed * self.rate)
        self.updated = now
        if self.tokens >= cost:
            self.tokens -= cost
            return True, 0.0
        needed = cost - self.tokens
        retry_after = needed / self.rate if self.rate > 0 else 1.0
        return False, retry_after


class AdmissionController:
    """The ingress gate: one per server, shared across models.

    ``admit`` raises :class:`RequestShed` or returns the resolved
    priority level for the batcher's priority queue.  Thread-safe (the
    server calls it from the event loop; tests call it directly).
    """

    #: ``/healthz`` reports ``degraded (shedding)`` while a shed
    #: happened within this many seconds.
    SHED_RECENT_S = 5.0

    def __init__(self, policy: Optional[AdmissionPolicy] = None,
                 clock=time.monotonic):
        self.policy = policy or AdmissionPolicy()
        self._clock = clock
        self._lock = threading.Lock()
        self._buckets: Dict[str, TokenBucket] = {}
        self.shed_total = 0
        self.shed_by_reason: Dict[str, int] = {}
        self.admitted_total = 0
        self._last_shed_at: Optional[float] = None

    def _shed(self, reason: str, retry_after: float, priority: str,
              tenant: Optional[str]) -> None:
        with self._lock:
            self.shed_total += 1
            self.shed_by_reason[reason] = self.shed_by_reason.get(reason, 0) + 1
            self._last_shed_at = self._clock()
        raise RequestShed(reason, retry_after, priority, tenant)

    def admit(self, priority: str, queue_fill: float,
              tenant: Optional[str] = None) -> int:
        """Gate one request.

        ``queue_fill`` is the target batcher queue's current fill
        fraction (``qsize / max_queue``).  Returns the priority *level*
        (int) on admission; raises :class:`RequestShed` otherwise.
        Tenant buckets are checked first — a rate-limited tenant is
        shed even on an idle server.
        """
        level = PRIORITY_LEVELS[priority]
        if tenant is not None and self.policy.tenant_rate > 0:
            now = self._clock()
            with self._lock:
                bucket = self._buckets.get(tenant)
                if bucket is None:
                    bucket = self._buckets[tenant] = TokenBucket(
                        self.policy.tenant_rate, self.policy.tenant_burst, now
                    )
                ok, retry_after = bucket.take(now)
            if not ok:
                self._shed(
                    f"tenant {tenant!r} over its rate "
                    f"({self.policy.tenant_rate:g} rps)",
                    retry_after, priority, tenant,
                )
        watermark = self.policy.shed_watermarks.get(priority, 1.0)
        if queue_fill >= watermark:
            # Retry-After scales with how far past the watermark we
            # are: deep overload tells clients to back off harder.
            overshoot = max(0.0, queue_fill - watermark)
            self._shed(
                f"queue {queue_fill:.0%} full, past the "
                f"{priority} watermark ({watermark:.0%})",
                round(0.05 + 0.5 * overshoot, 3), priority, tenant,
            )
        with self._lock:
            self.admitted_total += 1
        return level

    def shedding_recently(self) -> bool:
        with self._lock:
            last = self._last_shed_at
        return last is not None and (self._clock() - last) < self.SHED_RECENT_S

    def snapshot(self) -> dict:
        with self._lock:
            return {
                "policy": self.policy.to_dict(),
                "admitted_total": self.admitted_total,
                "shed_total": self.shed_total,
                "shed_by_reason": dict(self.shed_by_reason),
                "tenants_tracked": len(self._buckets),
            }
