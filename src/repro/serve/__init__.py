"""Dynamic-batching inference serving over compiled Winograd plans.

The serving stack, bottom to top:

* :mod:`repro.serve.registry` — named model variants (architecture ×
  width × F(m, r) × precision × backend) compiled through the shared
  LRU plan cache;
* :mod:`repro.serve.batcher` — per-model dynamic micro-batcher with a
  max-batch-size / max-wait-ms policy, per-request deadlines and bounded-
  queue backpressure;
* :mod:`repro.serve.metrics` — throughput, latency percentiles and
  batch-size histograms behind ``/metrics``;
* :mod:`repro.serve.server` — the asyncio HTTP frontend (``/predict``,
  ``/models``, ``/healthz``, ``/metrics``), stdlib only;
* :mod:`repro.serve.workers` / :mod:`repro.serve.router` — multi-process
  sharded serving: forked worker processes (own plan cache + arenas per
  worker) fed over ``multiprocessing.shared_memory`` slot rings, with
  per-model placement, health-checked respawn and in-flight batch retry
  (``repro serve --workers N``; ``workers=0`` keeps the exact
  in-process path);
* :mod:`repro.serve.admission` — ingress admission control: priority
  classes (``interactive``/``standard``/``batch``), watermark shedding
  and per-tenant token buckets (HTTP 429 + ``Retry-After``);
* :mod:`repro.serve.client` / :mod:`repro.serve.loadgen` — client (typed
  timeouts, optional retry policy with backoff + budget) and the closed-
  and open-loop load generators (``repro loadgen``, ``BENCH_serve.json``);
* :mod:`repro.serve.probe` — served-latency measurement for WiNAS's
  ``latency_source="served"``;
* :mod:`repro.serve.selfheal` / :mod:`repro.serve.autoscale` — the
  self-healing control plane: per-model circuit breakers (typed 503 +
  ``Retry-After``), a hysteresis replica autoscaler, the brownout
  ladder (``--ladder model=fallback``), and the crash-consistent state
  journal (``--state-dir``) replayed on boot
  (docs/operations.md 'Self-healing & autoscaling runbook').

Fault injection for the resilience test suite lives in
:mod:`repro.chaos` (``repro serve --chaos`` / ``REPRO_CHAOS``).

Quickstart::

    from repro.serve import ModelRegistry, InferenceServer, BatchPolicy

    registry = ModelRegistry()
    registry.load("resnet18-w0.25-F4-int8")
    server = InferenceServer(registry, policy=BatchPolicy(max_batch_size=16))
    # asyncio.run(server.serve_forever()), or: repro serve --model ...
"""

from repro.serve.admission import (
    AdmissionController,
    AdmissionPolicy,
    RequestShed,
    TokenBucket,
    resolve_priority,
)
from repro.serve.batcher import (
    BatchedResult,
    BatcherStopped,
    BatchPolicy,
    DeadlineExceeded,
    DynamicBatcher,
    ExecutionFailed,
    QueueSaturated,
)
from repro.serve.autoscale import (
    AutoscalePolicy,
    ModelSignals,
    ReplicaAutoscaler,
    ScaleDecision,
)
from repro.serve.client import (
    RetryPolicy,
    ServeCircuitOpen,
    ServeClient,
    ServeClientError,
    ServeConnectionError,
    ServeError,
    ServeTimeout,
    wait_until_ready,
)
from repro.serve.loadgen import (
    benchmark_serving,
    check_bit_identity,
    measure_overload_goodput,
    measure_selfheal_goodput,
    poisson_arrivals,
    run_load,
    run_open_loop,
)
from repro.serve.metrics import LatencyWindow, ModelMetrics, ServerMetrics
from repro.serve.probe import served_latency_ms
from repro.serve.registry import (
    ModelRegistry,
    ModelSpec,
    ServedModel,
    build_model,
    compile_served,
    load_artifact_served,
)
from repro.serve.router import (
    WorkerDied,
    WorkerError,
    WorkerPlanProxy,
    WorkerRouter,
)
from repro.serve.selfheal import (
    BrownoutLadder,
    CircuitBreaker,
    JournalState,
    SelfHealController,
    SelfHealPolicy,
    ServeConfigError,
    StateJournal,
    parse_ladder_spec,
    validate_topology,
)
from repro.serve.server import InferenceServer, ServerHandle, start_in_background

__all__ = [
    "AdmissionController",
    "AdmissionPolicy",
    "AutoscalePolicy",
    "BatchPolicy",
    "BatchedResult",
    "BatcherStopped",
    "BrownoutLadder",
    "CircuitBreaker",
    "DeadlineExceeded",
    "DynamicBatcher",
    "ExecutionFailed",
    "InferenceServer",
    "JournalState",
    "LatencyWindow",
    "ModelMetrics",
    "ModelRegistry",
    "ModelSignals",
    "ModelSpec",
    "QueueSaturated",
    "ReplicaAutoscaler",
    "RequestShed",
    "RetryPolicy",
    "ScaleDecision",
    "SelfHealController",
    "SelfHealPolicy",
    "ServeCircuitOpen",
    "ServeClient",
    "ServeClientError",
    "ServeConfigError",
    "ServeConnectionError",
    "ServeError",
    "ServeTimeout",
    "ServedModel",
    "ServerHandle",
    "ServerMetrics",
    "StateJournal",
    "TokenBucket",
    "WorkerDied",
    "WorkerError",
    "WorkerPlanProxy",
    "WorkerRouter",
    "benchmark_serving",
    "build_model",
    "check_bit_identity",
    "compile_served",
    "load_artifact_served",
    "measure_overload_goodput",
    "measure_selfheal_goodput",
    "parse_ladder_spec",
    "poisson_arrivals",
    "resolve_priority",
    "run_load",
    "run_open_loop",
    "served_latency_ms",
    "start_in_background",
    "validate_topology",
    "wait_until_ready",
]
