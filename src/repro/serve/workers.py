"""Worker-process side of multi-process sharded serving (ISSUE 5).

A worker is a **forked** child process that owns its entire inference
stack: its own :class:`~repro.serve.registry.ModelRegistry`, its own
:class:`~repro.engine.cache.PlanCache`, and its own arena pools (the
fork-safety guards in :mod:`repro.engine.memplan` / :mod:`repro.engine.pool`
guarantee it inherits neither parent arenas nor the parent's thread
pool).  The GIL therefore stops mattering across workers: tile
transforms, requant and pooling steps run truly in parallel with the
front-end's HTTP handling and with every other worker.

Transport — the shared-memory slot ring
---------------------------------------

Request/response tensors never travel through the control pipe.  Each
worker owns one ``multiprocessing.shared_memory`` segment carved into
``num_slots`` fixed-size slots (a ring: the parent claims a free slot,
the response releases it).  One request uses **one** slot for both
directions:

* the front-end writes the stacked batch into the slot and sends only a
  tiny header (``req_id``, model name, slot index, shape) over the pipe;
* the worker maps an ``np.ndarray`` view straight onto the slot and
  hands that view to ``CompiledPlan.run`` — the engine reads its input
  directly out of shared memory (b64/JSON decode stays in the
  front-end, exactly as for in-process serving);
* the worker writes the output back into the same slot (the input has
  been consumed by then) and answers with the output shape; the
  front-end views + copies it out and releases the slot.

So tensor bytes are never pickled and never cross the pipe: the only
whole-tensor passes are the unavoidable write into and read out of the
ring segment.  A tensor that does not fit its slot (mis-sized policy,
giant output) falls back to inline pickled bytes over the pipe and is
*counted* (``inline_requests`` / ``inline_responses`` in the worker
stats) so the degradation is visible in ``/metrics``, not silent.

The segment is created by the parent and **inherited through fork** —
workers never attach by name, so there is exactly one resource-tracker
registration (the parent's) and unlink happens exactly once, at
:meth:`router shutdown <repro.serve.router.WorkerRouter.stop>`.

Protocol (pipe messages, parent → worker)::

    ("run",  req_id, model, slot, shape, threads, inline|None, trace)
    ("ping", req_id)
    ("load", req_id, key, artifact_path)      mmap a compiled-plan artifact
    ("unload", req_id, key)                   retire a served plan key
    ("stop",)

worker → parent::

    ("ready", worker_id)                      once, after models loaded
    ("ok",   req_id, slot, out_shape, run_ms, inline|None, spans|None, crc32)
    ("err",  req_id, slot, message)           execution failed (→ HTTP 500)
    ("pong", req_id, stats)
    ("loaded", req_id, ms|None, err|None)     answer to "load"/"unload"

``crc32`` is ``zlib.crc32`` of the response tensor bytes, computed by
the worker *before* the payload crosses the transport.  The front-end
recomputes it after copy-out; a mismatch means the shm slot or pipe
payload was damaged in flight and the batch is retried (the plan run
itself is pure, so a retry is bit-identical) — see
:class:`repro.serve.router.TransportCorrupt`.

Chaos (ISSUE 8): ``worker_main`` optionally takes a chaos spec string
(:mod:`repro.chaos`).  Faults are injected at the protocol boundaries —
boot stall before ``ready``, crash/hang before executing a batch, reply
delay/drop/corruption after executing it — never inside the engine, so
every injected fault exercises exactly the recovery path a real
infrastructure failure would.

``trace`` (observability, ISSUE 7) asks the worker to run the plan with
a local span buffer; the ``ok`` reply then carries the per-step engine
spans as plain dicts (``Span.to_dict``) tagged ``proc="worker-<id>"`` —
span timestamps are ``monotonic_ns`` so parent and worker spans share
one clock axis.  Untraced runs send ``trace=False`` and ``spans=None``:
the extra tuple fields cost nothing on the hot path.

Artifact-backed serving (ISSUE 6): when the parent passes an
``artifacts`` map (plan key → ``.rpln`` path), the worker boots those
keys by **mmapping** the compiled-plan artifact
(:func:`repro.engine.artifact.load_plan`) instead of compiling — the
weight pages are shared copy-on-write across every worker mapping the
same file, and cold start drops from seconds (build + calibrate +
compile + warm) to milliseconds.  Blue/green cutover sends ``"load"``
with a *versioned* key (``name#version``) so the old plan keeps serving
under its own key until the router drains it.
"""

from __future__ import annotations

import os
import signal
import time
import zlib
from typing import Dict, List, Optional, Sequence

import numpy as np

#: Default number of ring slots per worker: enough for the batcher to
#: pipeline a couple of batches into a worker while one executes.
DEFAULT_SLOTS = 4


def slot_view(shm, slot: int, slot_bytes: int, shape, dtype=np.float32) -> np.ndarray:
    """An ndarray view onto one ring slot (no copy)."""
    return np.ndarray(tuple(shape), dtype=dtype, buffer=shm.buf,
                      offset=slot * slot_bytes)


def _run_plan(
    plan, x: np.ndarray, threads: Optional[int], trace=None
) -> np.ndarray:
    kwargs = {}
    if threads is not None:
        kwargs["threads"] = threads
    if trace is not None:
        # Only the traced path pays the signature check (duck-typed stub
        # plans in the tests accept neither kwarg).
        import inspect

        try:
            if "trace" in inspect.signature(plan.run).parameters:
                kwargs["trace"] = trace
        except (TypeError, ValueError):
            pass
    if kwargs:
        return plan.run(x, **kwargs)
    return plan.run(x)  # duck-typed plans need no extra kwargs


def worker_main(
    worker_id: int,
    conn,
    shm,
    slot_bytes: int,
    num_slots: int,
    spec_names: Sequence[str],
    plans: Optional[Dict[str, object]],
    threads: Optional[int],
    artifacts: Optional[Dict[str, str]] = None,
    chaos: Optional[str] = None,
    chaos_generation: int = 0,
) -> None:
    """Entry point of one worker process (called in the forked child).

    ``spec_names`` are the canonical model names this worker serves
    (its affinity slice — *not* every model the server loaded); each is
    built and compiled here, in this process, against this worker's own
    plan cache.  ``plans`` instead carries pre-built plan objects for
    the probe's plan-mode (inherited through fork, no registry needed).
    ``artifacts`` maps plan keys to ``.rpln`` paths — those keys boot by
    mmapping the artifact (no compiler in the loop; see
    docs/operations.md 'Compile-then-deploy').

    ``chaos`` is a fault-injection spec string (:mod:`repro.chaos`);
    ``chaos_generation`` is this worker slot's respawn count, mixed into
    the injector scope so a respawned worker draws a fresh — still
    deterministic — fault sequence instead of re-hitting the exact
    fault that killed its predecessor.
    """
    # The parent handles SIGINT; a ^C must not kill workers before the
    # router gets to drain and stop them in order.
    signal.signal(signal.SIGINT, signal.SIG_IGN)

    injector = None
    error_storm_until = 0.0
    if chaos:
        import threading

        from repro.chaos import ChaosInjector, parse_chaos_spec

        injector = ChaosInjector(
            parse_chaos_spec(chaos),
            scope=f"worker-{worker_id}/gen-{chaos_generation}",
        )
        if injector.roll("worker_slow_start"):
            time.sleep(injector.duration_s("worker_slow_start"))
        if injector.roll("crash_storm"):
            # Crash *wave*: this generation boots healthy, serves for
            # the window, then dies.  Each respawned generation re-rolls
            # (fresh scope), so a high probability sustains rolling
            # crashes across the pool — the autoscaler/journal drill.
            timer = threading.Timer(
                injector.duration_s("crash_storm"), os._exit, args=(23,)
            )
            timer.daemon = True
            timer.start()

    from repro.engine.artifact import load_plan
    from repro.engine.cache import PlanCache
    from repro.serve.registry import ModelRegistry

    cache = PlanCache()
    registry = ModelRegistry(cache=cache)
    artifacts = dict(artifacts or {})
    served: Dict[str, object] = {}

    def boot(name: str):
        if name in artifacts:
            # Hash verification happened at deploy time in the parent;
            # workers map without rehashing so respawn stays fast.
            return load_plan(artifacts[name], verify=False)
        return registry.load(name).plan

    try:
        if plans:
            served.update(plans)
        for name in spec_names:
            if name not in served:
                served[name] = boot(name)
    except BaseException as exc:  # noqa: BLE001 — surfaced to the parent
        try:
            conn.send(("fail", worker_id, f"{type(exc).__name__}: {exc}"))
        finally:
            conn.close()
        return

    stats = {
        "requests_total": 0,
        "errors_total": 0,
        "inline_requests": 0,
        "inline_responses": 0,
    }
    conn.send(("ready", worker_id))

    def snapshot() -> dict:
        snap = dict(stats)
        snap.update(
            pid=os.getpid(),
            models=sorted(served),
            plan_cache=cache.stats(),
            plan_memory=cache.memory_stats(),
        )
        return snap

    while True:
        try:
            msg = conn.recv()
        except (EOFError, OSError):
            break  # parent died or closed: exit quietly
        kind = msg[0]
        if kind == "stop":
            break
        if kind == "ping":
            conn.send(("pong", msg[1], snapshot()))
            continue
        if kind == "load":
            # ("load", req_id, key, artifact_path): mmap a new plan
            # version under ``key`` (blue/green deploy broadcast).
            _, req_id, key, artifact_path = msg
            try:
                t0 = time.perf_counter()
                artifacts[key] = artifact_path
                served[key] = load_plan(artifact_path, verify=False)
                conn.send(
                    ("loaded", req_id, (time.perf_counter() - t0) * 1e3, None)
                )
            except BaseException as exc:  # noqa: BLE001 — parent decides
                artifacts.pop(key, None)
                conn.send(
                    ("loaded", req_id, None, f"{type(exc).__name__}: {exc}")
                )
            continue
        if kind == "unload":
            # ("unload", req_id, key): drop a drained plan version; the
            # mmap closes when the last reference dies.
            _, req_id, key = msg
            served.pop(key, None)
            artifacts.pop(key, None)
            conn.send(("loaded", req_id, 0.0, None))
            continue
        # ("run", req_id, model, slot, shape, threads, inline, trace)
        _, req_id, model, slot, shape, req_threads, inline, want_trace = msg
        if injector is not None:
            # Pre-execution faults: the batch is *lost*, not half-run —
            # the parent's reply timeout / reader EOF turns either into
            # WorkerDied and the router retries it bit-identically.
            if injector.roll("worker_crash"):
                os._exit(17)
            if injector.roll("worker_hang"):
                while True:  # livelock: alive, answering nothing —
                    time.sleep(60)  # only the watchdog gets us out
            # error_storm: a *deterministic* model-error burst — the
            # worker answers with a typed ("err", ...) (→ HTTP 500,
            # never retried, worker stays alive) for the whole window.
            # Consecutive 500s are exactly what trips the circuit
            # breaker (repro.serve.selfheal.CircuitBreaker).
            if time.monotonic() < error_storm_until or injector.roll(
                "error_storm"
            ):
                if time.monotonic() >= error_storm_until:
                    error_storm_until = (
                        time.monotonic() + injector.duration_s("error_storm")
                    )
                stats["errors_total"] += 1
                conn.send(
                    ("err", req_id, slot,
                     "chaos error_storm: injected deterministic model error")
                )
                continue
        try:
            plan = served.get(model)
            if plan is None:
                # Late affinity change (a model loaded after spawn):
                # compile — or mmap — on demand in this worker.
                plan = served[model] = boot(model)
            if inline is not None:
                stats["inline_requests"] += 1
                x = np.frombuffer(inline, dtype=np.float32).reshape(shape)
            else:
                x = slot_view(shm, slot, slot_bytes, shape)
            buf = None
            exec_id = None
            t0_ns = 0
            if want_trace:
                from repro.obs.trace import TraceBuffer, new_span_id, now_ns

                buf = TraceBuffer(capacity=8192)
                exec_id = new_span_id()
                t0_ns = now_ns()
            t0 = time.perf_counter()
            out = _run_plan(
                plan,
                x,
                req_threads if req_threads is not None else threads,
                trace=buf,
            )
            run_ms = (time.perf_counter() - t0) * 1e3
            spans_payload = None
            if buf is not None:
                proc = f"worker-{worker_id}"
                # Engine roots (plan_run) nest under this worker_exec span.
                for span in buf.snapshot():
                    if span.parent_id is None:
                        span.parent_id = exec_id
                buf.record(
                    "worker_exec",
                    "worker",
                    t0_ns,
                    attrs={"model": model, "run_ms": round(run_ms, 3)},
                    span_id=exec_id,
                    proc=proc,
                )
                spans_payload = []
                for span in buf.snapshot():
                    d = span.to_dict()
                    if not d.get("proc"):
                        d["proc"] = proc
                    spans_payload.append(d)
            out = np.ascontiguousarray(out, dtype=np.float32)
            stats["requests_total"] += 1
            out_bytes = out.tobytes()
            # Checksum over the *true* output, before any transport (or
            # injected corruption) can touch the payload.
            crc = zlib.crc32(out_bytes)
            if injector is not None:
                if injector.roll("shm_delay"):
                    time.sleep(injector.duration_s("shm_delay"))
                if injector.roll("pipe_drop"):
                    # Executed, never answered: the parent's reply
                    # timeout converts this into WorkerDied + retry.
                    continue
            corrupt = injector is not None and injector.roll("corrupt_response")
            if out.nbytes <= slot_bytes:
                # The input has been fully consumed: reuse the slot for
                # the response (zero-copy back to the front-end).
                view = slot_view(shm, slot, slot_bytes, out.shape)
                view[...] = out
                if corrupt and out.nbytes:
                    flat = view.reshape(-1).view(np.uint8)
                    flat[injector.pick_index(flat.size)] ^= 0xFF
                conn.send(("ok", req_id, slot, out.shape, run_ms, None,
                           spans_payload, crc))
            else:
                stats["inline_responses"] += 1
                if corrupt and out_bytes:
                    damaged = bytearray(out_bytes)
                    damaged[injector.pick_index(len(damaged))] ^= 0xFF
                    out_bytes = bytes(damaged)
                conn.send(("ok", req_id, slot, out.shape, run_ms,
                           out_bytes, spans_payload, crc))
        except BaseException as exc:  # noqa: BLE001 — batch fails, worker lives
            stats["errors_total"] += 1
            try:
                conn.send(("err", req_id, slot, f"{type(exc).__name__}: {exc}"))
            except (BrokenPipeError, OSError):
                break
    conn.close()


def required_slot_bytes(sample_shapes: Sequence[tuple], max_batch_size: int) -> int:
    """Slot capacity covering the largest stacked request batch.

    Outputs (logits) are far smaller than inputs for every served
    architecture, so sizing by the input side covers both directions;
    anything bigger falls back to inline transport and is counted.
    """
    per_sample = max(
        (int(np.prod(shape)) for shape in sample_shapes), default=0
    )
    return max(64 * 1024, 4 * per_sample * max(1, max_batch_size))


def spawn_worker(
    ctx,
    worker_id: int,
    spec_names: Sequence[str],
    plans: Optional[Dict[str, object]],
    slot_bytes: int,
    num_slots: int,
    threads: Optional[int],
    artifacts: Optional[Dict[str, str]] = None,
    chaos: Optional[str] = None,
    chaos_generation: int = 0,
):
    """Create (shm, parent_conn, process) for one worker; fork-only.

    Returns before the worker is ready — the caller waits for the
    ``("ready", ...)`` message (see ``_WorkerHandle.start``).
    """
    from multiprocessing import shared_memory

    shm = shared_memory.SharedMemory(create=True, size=slot_bytes * num_slots)
    parent_conn, child_conn = ctx.Pipe(duplex=True)
    process = ctx.Process(
        target=worker_main,
        args=(worker_id, child_conn, shm, slot_bytes, num_slots,
              list(spec_names), plans, threads, artifacts, chaos,
              chaos_generation),
        daemon=True,
        name=f"repro-serve-worker-{worker_id}",
    )
    process.start()
    child_conn.close()
    return shm, parent_conn, process
