"""Self-healing control plane: circuit breakers, brownout ladder,
crash-consistent state journal, and the controller that ties them to the
:class:`~repro.serve.autoscale.ReplicaAutoscaler`.

The control loop closes ROADMAP's "replica autoscaling driven by
/metrics queue depths" item: PR 8 produced the *signals* (queue fill,
shed and deadline-miss counters, watchdog stats) — this module turns
them into *actions* the server applies and journals, so a serving
process operates itself and survives its own crash
(docs/operations.md 'Self-healing & autoscaling runbook').

Four pieces, all driven by an injectable clock so tests can script
entire incident timelines without sleeping:

* :class:`CircuitBreaker` — per model.  ``threshold`` *consecutive*
  deterministic model errors (HTTP 500s: the worker executed and
  failed, retries will not help) open the circuit: requests fail fast
  with 503 + ``Retry-After`` and ``reason: circuit_open`` before they
  ever touch a batcher or worker.  After ``open_s`` the circuit
  half-opens and admits nothing but an operator-invisible probe batch;
  a passing probe closes it, a failing one re-opens it.
* :class:`BrownoutLadder` — an operator-declared fallback chain per
  model (e.g. ``fp32@fast → int8@int8 → int8@turbo``: the paper's own
  accuracy/latency frontier used as a degradation axis).  Sustained
  shed/deadline pressure steps the model *down* one rung (served via
  the blue/green batcher swap, stamped on responses as
  ``X-Served-Variant``); sustained calm steps it back up.
* :class:`StateJournal` — an append-only, CRC-framed, fsync'd record
  of every control-plane decision (deploys, scale events, ladder
  moves).  Replay is torn-tail tolerant: a ``kill -9`` mid-append
  costs at most the half-written record, never the file.
* :class:`SelfHealController` — the pure decision core.  Each tick it
  reads one :class:`~repro.serve.autoscale.ModelSignals` per model and
  returns the :class:`Action` list the server should apply; the server
  owns all side effects (router scaling, batcher swaps, journal
  appends), which keeps this class trivially testable.
"""

from __future__ import annotations

import json
import os
import time
import zlib
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.serve.autoscale import (
    AutoscalePolicy,
    ModelSignals,
    ReplicaAutoscaler,
    ScaleDecision,
)


class ServeConfigError(ValueError):
    """Inconsistent serving topology, rejected at boot (never at the
    first request): replicas > workers, ladder variants missing from
    the registry, ``--state-dir`` pointing at a file, …"""


# --------------------------------------------------------------------------
# Circuit breaker
# --------------------------------------------------------------------------

CIRCUIT_CLOSED = "closed"
CIRCUIT_OPEN = "open"
CIRCUIT_HALF_OPEN = "half_open"

#: Prometheus-friendly numeric encoding of the circuit state.
CIRCUIT_STATE_CODE = {CIRCUIT_CLOSED: 0, CIRCUIT_HALF_OPEN: 1, CIRCUIT_OPEN: 2}


class CircuitBreaker:
    """Consecutive-failure circuit for one model.

    Only *deterministic* model errors count (``ExecutionFailed`` → HTTP
    500: the plan ran and raised, or a worker answered with a typed
    error).  Sheds, deadline misses and transport faults never trip it —
    those are load or infrastructure, not a broken model, and the
    watchdog/admission layers already own them.
    """

    def __init__(
        self,
        threshold: int = 5,
        open_s: float = 2.0,
        clock: Callable[[], float] = time.monotonic,
    ):
        if threshold < 1:
            raise ValueError("circuit threshold must be >= 1")
        if open_s <= 0:
            raise ValueError("circuit open_s must be > 0")
        self.threshold = threshold
        self.open_s = open_s
        self._clock = clock
        self._consecutive = 0
        self._state = CIRCUIT_CLOSED
        self._opened_at = float("-inf")
        self._probe_inflight = False
        self.opens_total = 0
        self.closes_total = 0

    @property
    def state(self) -> str:
        # OPEN lazily decays to HALF_OPEN once the hold-off elapses.
        if (
            self._state == CIRCUIT_OPEN
            and self._clock() - self._opened_at >= self.open_s
        ):
            self._state = CIRCUIT_HALF_OPEN
        return self._state

    def allow(self) -> Tuple[bool, float]:
        """Gate one client request: ``(admitted, retry_after_s)``.

        Half-open still refuses client traffic — only the controller's
        probe batch may test the model, so a recovering model is never
        probed by a thundering herd of real requests.
        """
        state = self.state
        if state == CIRCUIT_CLOSED:
            return True, 0.0
        if state == CIRCUIT_OPEN:
            remaining = self.open_s - (self._clock() - self._opened_at)
            return False, max(0.05, remaining)
        return False, self.open_s  # half-open: wait one probe cycle

    def record_success(self) -> None:
        self._consecutive = 0
        if self._state == CIRCUIT_HALF_OPEN:
            self._close()

    def record_error(self) -> None:
        self._consecutive += 1
        if self._state == CIRCUIT_CLOSED and self._consecutive >= self.threshold:
            self._open()

    def ready_for_probe(self) -> bool:
        return self.state == CIRCUIT_HALF_OPEN and not self._probe_inflight

    def begin_probe(self) -> None:
        self._probe_inflight = True

    def probe_result(self, ok: bool) -> None:
        self._probe_inflight = False
        if ok:
            self._close()
        else:
            self._open()

    def _open(self) -> None:
        self._state = CIRCUIT_OPEN
        self._opened_at = self._clock()
        self.opens_total += 1

    def _close(self) -> None:
        self._state = CIRCUIT_CLOSED
        self._consecutive = 0
        self.closes_total += 1

    def snapshot(self) -> dict:
        state = self.state
        return {
            "state": state,
            "consecutive_errors": self._consecutive,
            "threshold": self.threshold,
            "open_s": self.open_s,
            "opens_total": self.opens_total,
            "closes_total": self.closes_total,
        }


# --------------------------------------------------------------------------
# Brownout ladder
# --------------------------------------------------------------------------

def parse_ladder_spec(text: str) -> Tuple[str, List[str]]:
    """Parse one ``--ladder`` flag: ``model=fallback1>fallback2``.

    Position 0 of the ladder is always the model itself; the listed
    variants are the degradation rungs in order.  Raises
    :class:`ServeConfigError` on malformed input.
    """
    if "=" not in text:
        raise ServeConfigError(
            f"ladder spec {text!r}: expected 'model=variant>variant...'"
        )
    model, _, chain = text.partition("=")
    model = model.strip()
    variants = [v.strip() for v in chain.split(">") if v.strip()]
    if not model or not variants:
        raise ServeConfigError(
            f"ladder spec {text!r}: needs a model name and at least one "
            "fallback variant"
        )
    seen = {model}
    for variant in variants:
        if variant in seen:
            raise ServeConfigError(
                f"ladder spec {text!r}: variant {variant!r} repeats"
            )
        seen.add(variant)
    return model, variants


class BrownoutLadder:
    """Degradation ladder for one model.

    ``chain`` is the full serving order: ``chain[0]`` is the model's
    own (full-quality) variant, later entries degrade.  ``position``
    indexes the rung currently serving.  The ladder only *decides*;
    the server performs the actual blue/green batcher swap.
    """

    def __init__(
        self,
        model: str,
        fallbacks: Sequence[str],
        down_after_ticks: int = 3,
        up_after_ticks: int = 6,
        step_cooldown_s: float = 5.0,
        clock: Callable[[], float] = time.monotonic,
    ):
        if not fallbacks:
            raise ServeConfigError(f"ladder for {model!r} has no fallbacks")
        self.model = model
        self.chain: List[str] = [model, *fallbacks]
        self.position = 0
        self.down_after_ticks = max(1, down_after_ticks)
        self.up_after_ticks = max(1, up_after_ticks)
        self.step_cooldown_s = step_cooldown_s
        self._clock = clock
        self._pressure_ticks = 0
        self._calm_ticks = 0
        self._last_step_at = float("-inf")
        self.steps_down_total = 0
        self.steps_up_total = 0

    @property
    def variant(self) -> str:
        return self.chain[self.position]

    def set_position(self, position: int) -> None:
        """Journal-replay entry point: restore a persisted rung."""
        self.position = max(0, min(len(self.chain) - 1, int(position)))

    def observe(self, pressure: bool) -> Optional[Tuple[str, int]]:
        """One tick: returns ``(direction, new_position)`` or ``None``."""
        now = self._clock()
        if pressure:
            self._pressure_ticks += 1
            self._calm_ticks = 0
        else:
            self._calm_ticks += 1
            self._pressure_ticks = 0
        if now - self._last_step_at < self.step_cooldown_s:
            return None
        if (
            pressure
            and self._pressure_ticks >= self.down_after_ticks
            and self.position < len(self.chain) - 1
        ):
            self.position += 1
            self._pressure_ticks = 0
            self._last_step_at = now
            self.steps_down_total += 1
            return ("down", self.position)
        if (
            not pressure
            and self._calm_ticks >= self.up_after_ticks
            and self.position > 0
        ):
            self.position -= 1
            self._calm_ticks = 0
            self._last_step_at = now
            self.steps_up_total += 1
            return ("up", self.position)
        return None

    def snapshot(self) -> dict:
        return {
            "chain": list(self.chain),
            "position": self.position,
            "variant": self.variant,
            "pressure_ticks": self._pressure_ticks,
            "calm_ticks": self._calm_ticks,
            "steps_down_total": self.steps_down_total,
            "steps_up_total": self.steps_up_total,
        }


# --------------------------------------------------------------------------
# Crash-consistent state journal
# --------------------------------------------------------------------------

JOURNAL_NAME = "journal.log"
_JOURNAL_HEADER = "REPRO-JOURNAL v1"


class StateJournal:
    """Append-only, checksummed, fsync'd control-plane journal.

    Format (docs/operations.md 'Self-healing & autoscaling runbook'):
    a header line, then one record per line::

        REPRO-JOURNAL v1
        <crc32-of-json as 8 hex digits> <compact json>\\n

    Every append is flushed and ``fsync``'d before returning, so an
    acknowledged decision survives ``kill -9``.  Replay verifies each
    line's CRC and stops at the first bad or partial record — a torn
    tail (the expected crash artifact) silently truncates, and the next
    append overwrites it.  Replayed state is last-writer-wins per
    ``(event, model)``, so the journal needs no compaction to stay
    correct, only to stay small — :meth:`compact` rewrites it to the
    current effective records via atomic rename.
    """

    def __init__(self, state_dir: str, fsync: bool = True):
        if os.path.exists(state_dir) and not os.path.isdir(state_dir):
            raise ServeConfigError(
                f"--state-dir {state_dir!r} is a file, not a directory"
            )
        os.makedirs(state_dir, exist_ok=True)
        self.state_dir = state_dir
        self.path = os.path.join(state_dir, JOURNAL_NAME)
        self._fsync = fsync
        self._fh = None
        self.appends_total = 0
        self.torn_records = 0

    # -- write path ---------------------------------------------------------
    def _ensure_open(self):
        if self._fh is None:
            fresh = not os.path.exists(self.path)
            self._fh = open(self.path, "a", encoding="utf-8")
            if fresh or os.path.getsize(self.path) == 0:
                self._fh.write(_JOURNAL_HEADER + "\n")
                self._flush()
        return self._fh

    def _flush(self) -> None:
        self._fh.flush()
        if self._fsync:
            os.fsync(self._fh.fileno())

    def append(self, record: dict) -> None:
        payload = json.dumps(record, sort_keys=True, separators=(",", ":"))
        crc = zlib.crc32(payload.encode("utf-8")) & 0xFFFFFFFF
        fh = self._ensure_open()
        fh.write(f"{crc:08x} {payload}\n")
        self._flush()
        self.appends_total += 1

    def close(self) -> None:
        if self._fh is not None:
            self._fh.close()
            self._fh = None

    # -- read path ----------------------------------------------------------
    def replay(self) -> List[dict]:
        """Read every intact record, oldest first.

        Stops at the first record that fails framing, CRC, or JSON —
        anything after a corruption point is untrustworthy, and the
        common case (a half-written tail from ``kill -9``) is exactly
        one such record at EOF.
        """
        if not os.path.exists(self.path):
            return []
        records: List[dict] = []
        self.torn_records = 0
        with open(self.path, "rb") as fh:
            raw = fh.read()
        lines = raw.split(b"\n")
        # A file not ending in \n has a torn final line; split() leaves
        # it as the last element (complete files leave b"" there).
        for index, line in enumerate(lines):
            if index == 0:
                if line.decode("utf-8", "replace").strip() != _JOURNAL_HEADER:
                    self.torn_records += 1
                    return []
                continue
            if line == b"":
                continue
            parts = line.split(b" ", 1)
            if len(parts) != 2 or len(parts[0]) != 8:
                self.torn_records += 1
                break
            try:
                expected = int(parts[0], 16)
            except ValueError:
                self.torn_records += 1
                break
            if zlib.crc32(parts[1]) & 0xFFFFFFFF != expected:
                self.torn_records += 1
                break
            try:
                record = json.loads(parts[1].decode("utf-8"))
            except (UnicodeDecodeError, json.JSONDecodeError):
                self.torn_records += 1
                break
            if not isinstance(record, dict):
                self.torn_records += 1
                break
            records.append(record)
        return records

    def compact(self, records: List[dict]) -> None:
        """Atomically rewrite the journal to exactly ``records``."""
        self.close()
        tmp = self.path + ".tmp"
        with open(tmp, "w", encoding="utf-8") as fh:
            fh.write(_JOURNAL_HEADER + "\n")
            for record in records:
                payload = json.dumps(
                    record, sort_keys=True, separators=(",", ":")
                )
                crc = zlib.crc32(payload.encode("utf-8")) & 0xFFFFFFFF
                fh.write(f"{crc:08x} {payload}\n")
            fh.flush()
            os.fsync(fh.fileno())
        os.replace(tmp, self.path)
        dir_fd = os.open(self.state_dir, os.O_RDONLY)
        try:
            os.fsync(dir_fd)
        finally:
            os.close(dir_fd)

    def snapshot(self) -> dict:
        return {
            "path": self.path,
            "appends_total": self.appends_total,
            "torn_records": self.torn_records,
        }


@dataclass
class JournalState:
    """Effective control-plane state after last-writer-wins replay."""

    #: model → {"artifact": path, "version": content hash} for every
    #: dynamically deployed model (POST /models); boot re-installs them.
    deploys: Dict[str, dict] = field(default_factory=dict)
    #: model → replica count chosen by the autoscaler.
    replicas: Dict[str, int] = field(default_factory=dict)
    #: model → {"position": int, "variant": str} ladder rung.
    ladders: Dict[str, dict] = field(default_factory=dict)

    @classmethod
    def from_records(cls, records: List[dict]) -> "JournalState":
        state = cls()
        for record in records:
            event = record.get("event")
            model = record.get("model")
            if not isinstance(model, str):
                continue
            if event == "deploy":
                state.deploys[model] = {
                    "artifact": record.get("artifact"),
                    "version": record.get("version"),
                }
            elif event == "remove":
                state.deploys.pop(model, None)
                state.replicas.pop(model, None)
                state.ladders.pop(model, None)
            elif event == "scale":
                try:
                    state.replicas[model] = int(record["replicas"])
                except (KeyError, TypeError, ValueError):
                    continue
            elif event == "ladder":
                try:
                    state.ladders[model] = {
                        "position": int(record["position"]),
                        "variant": record.get("variant"),
                    }
                except (KeyError, TypeError, ValueError):
                    continue
        return state

    def to_records(self) -> List[dict]:
        """The compacted journal equivalent to this state."""
        records: List[dict] = []
        for model, deploy in sorted(self.deploys.items()):
            records.append({"event": "deploy", "model": model, **deploy})
        for model, replicas in sorted(self.replicas.items()):
            records.append(
                {"event": "scale", "model": model, "replicas": replicas}
            )
        for model, rung in sorted(self.ladders.items()):
            records.append({"event": "ladder", "model": model, **rung})
        return records


# --------------------------------------------------------------------------
# Policy + boot-time validation
# --------------------------------------------------------------------------

@dataclass(frozen=True)
class SelfHealPolicy:
    """Everything the self-healing loop needs, bundled for the server."""

    autoscale: Optional[AutoscalePolicy] = None
    #: model → ordered fallback variants (ladder rungs below the model).
    ladders: Dict[str, List[str]] = field(default_factory=dict)
    circuit_threshold: int = 5
    circuit_open_s: float = 2.0
    #: Control-loop tick period (the server's asyncio task; tests call
    #: :meth:`SelfHealController.tick` directly instead).
    interval_s: float = 0.25
    ladder_down_after_ticks: int = 3
    ladder_up_after_ticks: int = 6
    ladder_step_cooldown_s: float = 5.0

    def to_dict(self) -> dict:
        return {
            "autoscale": self.autoscale.to_dict() if self.autoscale else None,
            "ladders": {m: list(v) for m, v in self.ladders.items()},
            "circuit_threshold": self.circuit_threshold,
            "circuit_open_s": self.circuit_open_s,
            "interval_s": self.interval_s,
        }


def validate_topology(
    *,
    workers: int = 0,
    worker_replicas: int = 0,
    state_dir: Optional[str] = None,
    selfheal: Optional[SelfHealPolicy] = None,
    registry=None,
) -> None:
    """Boot-time topology validation (ISSUE 9 satellite): every
    inconsistency is a typed :class:`ServeConfigError` raised *before*
    the server binds a socket, never a first-request surprise."""
    if workers < 0:
        raise ServeConfigError(f"--workers must be >= 0 (got {workers})")
    if worker_replicas < 0:
        raise ServeConfigError(
            f"--worker-replicas must be >= 0 (got {worker_replicas})"
        )
    if workers > 0 and worker_replicas > workers:
        raise ServeConfigError(
            f"--worker-replicas {worker_replicas} exceeds --workers "
            f"{workers}: a model cannot have more replicas than there "
            "are worker processes"
        )
    if state_dir is not None and os.path.exists(state_dir) and (
        not os.path.isdir(state_dir)
    ):
        raise ServeConfigError(
            f"--state-dir {state_dir!r} is a file, not a directory"
        )
    if selfheal is None:
        return
    if selfheal.circuit_threshold < 1:
        raise ServeConfigError(
            f"--circuit-threshold must be >= 1 "
            f"(got {selfheal.circuit_threshold})"
        )
    if selfheal.autoscale is not None and workers <= 0:
        raise ServeConfigError(
            "replica autoscaling requires worker mode (--workers N): "
            "in-process serving has nothing to scale"
        )
    if selfheal.autoscale is not None and (
        selfheal.autoscale.max_replicas > workers
    ):
        raise ServeConfigError(
            f"--autoscale-max {selfheal.autoscale.max_replicas} exceeds "
            f"--workers {workers}"
        )
    for model, fallbacks in selfheal.ladders.items():
        if registry is not None and model not in registry:
            raise ServeConfigError(
                f"--ladder model {model!r} is not in the registry"
            )
        for variant in fallbacks:
            if registry is not None and variant not in registry:
                raise ServeConfigError(
                    f"--ladder variant {variant!r} (fallback of {model!r}) "
                    "is not in the registry"
                )


# --------------------------------------------------------------------------
# Controller
# --------------------------------------------------------------------------

@dataclass(frozen=True)
class Action:
    """One side effect the server should apply after a tick."""

    kind: str  # "scale" | "ladder" | "probe"
    model: str
    #: scale → target replica count; ladder → target position.
    value: int = 0
    #: ladder → target variant name.
    variant: str = ""
    direction: str = ""
    reason: str = ""


class SelfHealController:
    """The pure decision core of the self-healing loop.

    Owns one :class:`CircuitBreaker` per model, one
    :class:`BrownoutLadder` per laddered model, and the shared
    :class:`~repro.serve.autoscale.ReplicaAutoscaler`.  The server calls
    :meth:`tick` with fresh per-model signals and applies the returned
    actions; request handlers call :meth:`record_success` /
    :meth:`record_error` inline as responses resolve.
    """

    def __init__(
        self,
        policy: SelfHealPolicy,
        clock: Callable[[], float] = time.monotonic,
    ):
        self.policy = policy
        self._clock = clock
        self.autoscaler = (
            ReplicaAutoscaler(policy.autoscale, clock)
            if policy.autoscale is not None
            else None
        )
        self._circuits: Dict[str, CircuitBreaker] = {}
        self._ladders: Dict[str, BrownoutLadder] = {
            model: BrownoutLadder(
                model,
                fallbacks,
                down_after_ticks=policy.ladder_down_after_ticks,
                up_after_ticks=policy.ladder_up_after_ticks,
                step_cooldown_s=policy.ladder_step_cooldown_s,
                clock=clock,
            )
            for model, fallbacks in policy.ladders.items()
        }
        self._last_shed: Dict[str, int] = {}
        self._last_miss: Dict[str, int] = {}
        self.ticks_total = 0

    # -- circuit plumbing (called inline from the request path) -------------
    def circuit(self, model: str) -> CircuitBreaker:
        breaker = self._circuits.get(model)
        if breaker is None:
            breaker = self._circuits[model] = CircuitBreaker(
                threshold=self.policy.circuit_threshold,
                open_s=self.policy.circuit_open_s,
                clock=self._clock,
            )
        return breaker

    def allow(self, model: str) -> Tuple[bool, float]:
        return self.circuit(model).allow()

    def record_success(self, model: str) -> None:
        self.circuit(model).record_success()

    def record_error(self, model: str) -> None:
        self.circuit(model).record_error()

    def ladder(self, model: str) -> Optional[BrownoutLadder]:
        return self._ladders.get(model)

    def ladders(self) -> Dict[str, BrownoutLadder]:
        return dict(self._ladders)

    # -- the control tick ---------------------------------------------------
    def tick(self, signals: Dict[str, ModelSignals]) -> List[Action]:
        """One pass over every model; returns the actions to apply.

        Ordering inside a tick: circuit probes first (a broken model
        must not also be scaled or degraded on error noise), then
        autoscale, then the ladder — and the ladder only considers
        stepping down once the autoscaler has no capacity left to add
        (at max replicas, or no autoscaler), so quality is sacrificed
        strictly after parallelism is exhausted.
        """
        self.ticks_total += 1
        actions: List[Action] = []
        for model, sig in signals.items():
            breaker = self.circuit(model)
            if breaker.ready_for_probe():
                actions.append(
                    Action(
                        "probe",
                        model,
                        reason="circuit half-open: probe batch",
                    )
                )
            if breaker.state != CIRCUIT_CLOSED:
                # Error storms produce sheds/misses as a side effect;
                # reacting to them would scale or degrade a model whose
                # problem is not load.  Keep the delta baselines fresh
                # so recovery starts from a clean slate.
                self._last_shed[model] = sig.shed_total
                self._last_miss[model] = sig.deadline_exceeded_total
                continue
            at_capacity = True
            if self.autoscaler is not None:
                decision = self.autoscaler.observe(model, sig)
                if decision is not None:
                    actions.append(
                        Action(
                            "scale",
                            model,
                            value=decision.to_replicas,
                            direction=decision.direction,
                            reason=decision.reason,
                        )
                    )
                at_capacity = (
                    sig.replicas >= self.autoscaler.policy.max_replicas
                )
            ladder = self._ladders.get(model)
            if ladder is not None:
                shed_delta = max(
                    0, sig.shed_total - self._last_shed.get(model, sig.shed_total)
                )
                miss_delta = max(
                    0,
                    sig.deadline_exceeded_total
                    - self._last_miss.get(model, sig.deadline_exceeded_total),
                )
                pressure = (shed_delta > 0 or miss_delta > 0) and at_capacity
                move = ladder.observe(pressure)
                if move is not None:
                    direction, position = move
                    actions.append(
                        Action(
                            "ladder",
                            model,
                            value=position,
                            variant=ladder.chain[position],
                            direction=direction,
                            reason=(
                                f"sustained shed/deadline pressure"
                                if direction == "down"
                                else "pressure subsided"
                            ),
                        )
                    )
            self._last_shed[model] = sig.shed_total
            self._last_miss[model] = sig.deadline_exceeded_total
        return actions

    def snapshot(self) -> dict:
        return {
            "ticks_total": self.ticks_total,
            "autoscale": (
                self.autoscaler.snapshot() if self.autoscaler else None
            ),
            "circuits": {
                model: breaker.snapshot()
                for model, breaker in self._circuits.items()
            },
            "ladders": {
                model: ladder.snapshot()
                for model, ladder in self._ladders.items()
            },
        }


__all__ = [
    "Action",
    "BrownoutLadder",
    "CIRCUIT_CLOSED",
    "CIRCUIT_HALF_OPEN",
    "CIRCUIT_OPEN",
    "CIRCUIT_STATE_CODE",
    "CircuitBreaker",
    "JournalState",
    "SelfHealController",
    "SelfHealPolicy",
    "ServeConfigError",
    "StateJournal",
    "parse_ladder_spec",
    "validate_topology",
]
