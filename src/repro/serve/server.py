"""Asyncio HTTP/1.1 inference server over compiled Winograd plans.

Stdlib only (``asyncio`` + ``json``): a hand-rolled HTTP/1.1 handler with
keep-alive, four routes, one :class:`~repro.serve.batcher.DynamicBatcher`
per served model, and one shared worker :class:`ThreadPoolExecutor` that
runs plan execution off the event loop.

Routes::

    POST /predict   {"model": name, "input": [C][H][W], "deadline_ms"?: f}
                    → {"model", "output", "batch_size", "queue_ms", "run_ms"}
                    (or "inputs": [sample, ...] → "outputs" + "meta")
    GET  /models    loaded variants with spec + plan metadata
    GET  /healthz   {"status": "ok", "models": [...], "uptime_s": ...}
    GET  /metrics   throughput, p50/p95/p99 latency, batch-size histogram,
                    plan-cache hit rate (see README "Serving")

Failure mapping: bad request → 400, unknown model/route → 404, queue
saturated → 429 (with ``Retry-After``), kernel failure → 500, deadline
expired in queue → 504.
"""

from __future__ import annotations

import asyncio
import base64
import binascii
import json
import os
import threading
from concurrent.futures import ThreadPoolExecutor
from typing import Dict, Optional

import numpy as np

from repro.engine.cache import PlanCache, plan_cache
from repro.serve.batcher import (
    BatchPolicy,
    DeadlineExceeded,
    DynamicBatcher,
    ExecutionFailed,
    QueueSaturated,
)
from repro.serve.metrics import ServerMetrics
from repro.serve.registry import ModelRegistry

_STATUS_TEXT = {
    200: "OK",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    413: "Payload Too Large",
    429: "Too Many Requests",
    500: "Internal Server Error",
    504: "Gateway Timeout",
}

#: Upper bound on accepted request bodies (a 3×32×32 sample serialises to
#: ~100 kB of JSON; 32 MiB leaves room for large multi-sample requests).
MAX_BODY_BYTES = 32 * 1024 * 1024


class _HttpError(Exception):
    def __init__(self, status: int, message: str, retry_after: Optional[float] = None):
        super().__init__(message)
        self.status = status
        self.message = message
        self.retry_after = retry_after


def default_executor_threads() -> int:
    return max(2, min(8, os.cpu_count() or 2))


class InferenceServer:
    """The serving frontend: registry + batchers + HTTP listener.

    ``workers`` selects the execution substrate:

    * ``workers=0`` (default) — **in-process** serving, the exact
      pre-ISSUE-5 path: batches execute on this process's executor
      threads against the registry's compiled plans.  All existing
      bit-identity guarantees are pinned on this mode.
    * ``workers=N>0`` — **multi-process sharded** serving: a
      :class:`~repro.serve.router.WorkerRouter` forks ``N`` worker
      processes, each owning its plan cache and arena pools, and every
      dispatched batch travels over the shared-memory slot ring.  Each
      model is placed on ``worker_replicas`` workers (consistent
      rendezvous placement), dead workers are respawned and in-flight
      batches retried.  The registry may then be *lazy* (specs only, no
      front-end compilation).
    """

    def __init__(
        self,
        registry: ModelRegistry,
        policy: Optional[BatchPolicy] = None,
        host: str = "127.0.0.1",
        port: int = 8100,
        workers: int = 0,
        metrics: Optional[ServerMetrics] = None,
        cache: Optional[PlanCache] = None,
        threads: Optional[int] = None,
        executor_threads: Optional[int] = None,
        worker_replicas: Optional[int] = None,
        worker_health_interval: Optional[float] = 2.0,
    ):
        self.registry = registry
        self.policy = policy or BatchPolicy()
        self.host = host
        self.port = port  # updated to the bound port after start()
        self.workers = int(workers or 0)
        self.worker_replicas = worker_replicas
        self.worker_health_interval = worker_health_interval
        self.metrics = metrics or ServerMetrics()
        self.cache = cache if cache is not None else plan_cache
        #: Engine threads per dispatched batch (``repro serve --threads``,
        #: default the REPRO_THREADS environment setting): batches fan
        #: their chunkable steps out across the shared engine pool, so
        #: cores are used even when one model carries all the traffic.
        #: With process workers this is forwarded to each worker's runs.
        self.threads = threads
        #: Threads that push batches off the event loop.  In worker mode
        #: each of these blocks on a worker round-trip, so the pool must
        #: cover every in-flight batch across all models.
        self.executor_threads = executor_threads
        self._batchers: Dict[str, DynamicBatcher] = {}
        self._executor: Optional[ThreadPoolExecutor] = None
        self._server: Optional[asyncio.AbstractServer] = None
        self._router = None  # WorkerRouter when workers > 0

    # -- lifecycle ----------------------------------------------------------
    async def start(self) -> None:
        if self._server is not None:
            return
        if self.workers > 0 and self._router is None:
            from repro.serve.router import WorkerRouter

            router = WorkerRouter(
                model_names=self.registry.names(),
                sample_shapes=[
                    self.registry.get(name).sample_shape
                    for name in self.registry.names()
                ],
                workers=self.workers,
                replicas=self.worker_replicas,
                max_batch_size=self.policy.max_batch_size,
                threads=self.threads,
                health_interval=self.worker_health_interval,
            )
            # Fork before serving traffic: the child must not inherit
            # live connections or a mid-flight event loop.
            self._router = await asyncio.get_running_loop().run_in_executor(
                None, router.start
            )
        try:
            if self.executor_threads:
                pool_size = self.executor_threads
            elif self.workers > 0:
                # Must cover every admissible in-flight batch across all
                # models (each batcher admits replicas+1), plus one
                # thread for the /metrics worker-stats round trip.
                per_model = self._router.replicas + 1
                pool_size = max(
                    4, len(self.registry.names()) * per_model + 1
                )
            else:
                pool_size = default_executor_threads()
            self._executor = ThreadPoolExecutor(
                max_workers=pool_size, thread_name_prefix="serve-dispatch"
            )
            for name in self.registry.names():
                await self._ensure_batcher(name)
            self._server = await asyncio.start_server(
                self._handle_connection, self.host, self.port
            )
            self.port = self._server.sockets[0].getsockname()[1]
        except BaseException:
            # A failed bind (or batcher bring-up) must not leak the
            # already-forked worker pool and its shm segments.
            await self.stop()
            raise

    async def stop(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        for batcher in self._batchers.values():
            await batcher.stop()
        self._batchers.clear()
        if self._executor is not None:
            self._executor.shutdown(wait=False)
            self._executor = None
        if self._router is not None:
            router, self._router = self._router, None
            await asyncio.get_running_loop().run_in_executor(None, router.stop)

    async def serve_forever(self) -> None:
        await self.start()
        assert self._server is not None
        async with self._server:
            await self._server.serve_forever()

    async def _ensure_batcher(self, name: str) -> DynamicBatcher:
        batcher = self._batchers.get(name)
        if batcher is None:
            served = self.registry.get(name)
            if self._router is not None:
                from repro.serve.router import WorkerPlanProxy

                plan = WorkerPlanProxy(self._router, name)
                # Process workers execute truly in parallel (no GIL), so
                # keep one batch in flight per replica plus one coalescing.
                max_inflight = self._router.replicas + 1
            else:
                plan = served.plan
                if plan is None:
                    raise _HttpError(
                        500,
                        f"model {name!r} was loaded lazily but the server "
                        "runs in-process (workers=0)",
                    )
                # Concurrent batches only pay off with real parallelism:
                # on a single-core host one full batch beats two
                # interleaved half-batches (cache + fixed costs) — and
                # admission must never exceed the dispatch pool actually
                # configured, or half-batches just queue on its threads.
                max_inflight = max(
                    1,
                    min(
                        self.executor_threads or default_executor_threads(),
                        os.cpu_count() or 1,
                    ),
                )
            batcher = DynamicBatcher(
                plan,
                policy=self.policy,
                executor=self._executor,
                metrics=self.metrics.for_model(name),
                name=name,
                max_inflight=max_inflight,
                threads=self.threads,
            )
            await batcher.start()
            self._batchers[name] = batcher
        return batcher

    # -- HTTP plumbing ------------------------------------------------------
    async def _handle_connection(self, reader, writer) -> None:
        try:
            while True:
                request_line = await reader.readline()
                if not request_line:
                    break
                try:
                    method, target, _version = request_line.decode("latin1").split()
                except ValueError:
                    await self._write_json(
                        writer, 400, {"error": "malformed request line"}, close=True
                    )
                    break
                headers: Dict[str, str] = {}
                while True:
                    line = await reader.readline()
                    if line in (b"\r\n", b"\n", b""):
                        break
                    key, _, value = line.decode("latin1").partition(":")
                    headers[key.strip().lower()] = value.strip()
                length = int(headers.get("content-length", "0") or 0)
                if length > MAX_BODY_BYTES:
                    await self._write_json(
                        writer,
                        413,
                        {"error": f"body exceeds {MAX_BODY_BYTES} bytes"},
                        close=True,
                    )
                    break
                body = await reader.readexactly(length) if length else b""
                close = headers.get("connection", "").lower() == "close"
                path = target.split("?", 1)[0]
                try:
                    status, payload, retry_after = 200, await self._route(
                        method, path, body
                    ), None
                except _HttpError as exc:
                    status, payload, retry_after = (
                        exc.status,
                        {"error": exc.message, "status": exc.status},
                        exc.retry_after,
                    )
                await self._write_json(
                    writer, status, payload, close=close, retry_after=retry_after
                )
                if close:
                    break
        except (
            asyncio.IncompleteReadError,
            asyncio.CancelledError,  # loop teardown with the connection open
            ConnectionResetError,
            BrokenPipeError,
        ):
            pass
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError):  # pragma: no cover
                pass

    @staticmethod
    async def _write_json(
        writer,
        status: int,
        payload: dict,
        close: bool = False,
        retry_after: Optional[float] = None,
    ) -> None:
        body = json.dumps(payload).encode()
        headers = [
            f"HTTP/1.1 {status} {_STATUS_TEXT.get(status, 'Unknown')}",
            "Content-Type: application/json",
            f"Content-Length: {len(body)}",
            f"Connection: {'close' if close else 'keep-alive'}",
        ]
        if retry_after is not None:
            headers.append(f"Retry-After: {retry_after:g}")
        writer.write(("\r\n".join(headers) + "\r\n\r\n").encode() + body)
        await writer.drain()

    # -- routing ------------------------------------------------------------
    async def _route(self, method: str, path: str, body: bytes) -> dict:
        if path == "/predict":
            if method != "POST":
                raise _HttpError(405, "/predict requires POST")
            return await self._predict(body)
        if method not in ("GET", "HEAD"):
            raise _HttpError(405, f"{path} requires GET")
        if path == "/healthz":
            return {
                "status": "ok",
                "models": self.registry.names(),
                "uptime_s": self.metrics.uptime_s(),
            }
        if path == "/models":
            return {"models": self.registry.describe(), "policy": self.policy.to_dict()}
        if path == "/metrics":
            snap = self.metrics.snapshot(plan_cache_stats=self.cache.stats())
            snap["policy"] = self.policy.to_dict()
            snap["workers"] = self.workers
            snap["engine_threads"] = self.threads
            snap["plan_memory"] = self.cache.memory_stats()
            if self._router is not None:
                # Per-worker queue depth / restarts / shm bytes, plus the
                # workers' own plan-cache and arena stats (each worker
                # owns its cache — the front-end one above stays cold in
                # worker mode).  The stats ping blocks on worker round
                # trips, so it runs off the event loop.
                snap["worker_pool"] = await asyncio.get_running_loop(
                ).run_in_executor(
                    self._executor, lambda: self._router.stats(refresh=True)
                )
            return snap
        raise _HttpError(404, f"no route {path!r}")

    @staticmethod
    def _cancel_all(tasks) -> None:
        """Cancel a failed multi-sample request's sibling submissions.

        A cancelled future is skipped at batch dispatch, so accepted
        siblings neither burn engine time nor inflate the response
        metrics after the client has already received the error."""
        for task in tasks:
            if not task.done():
                task.cancel()

    @staticmethod
    def _decode_b64(sample, served) -> np.ndarray:
        """Decode one ``encoding: "b64"`` sample — zero-copy past decode.

        The wire form is base64 of raw little-endian float32 bytes in C
        order, shaped like the model's sample.  ``np.frombuffer`` views
        the decoded bytes directly and the reshape (plus the batch-axis
        expansion in ``validate_input``) stays a view, so the only
        full-tensor pass between the socket and the engine's input
        register is the unavoidable base64 decode itself.
        """
        if not isinstance(sample, str):
            raise _HttpError(400, "b64 encoding expects base64 strings")
        try:
            raw = base64.b64decode(sample, validate=True)
        except (binascii.Error, ValueError) as exc:
            raise _HttpError(400, f"invalid base64 sample: {exc}")
        expected = int(np.prod(served.sample_shape)) * 4
        if len(raw) != expected:
            raise _HttpError(
                400,
                f"b64 sample has {len(raw)} bytes; model {served.name!r} "
                f"expects {expected} (float32 {served.sample_shape})",
            )
        return np.frombuffer(raw, dtype="<f4").reshape(served.sample_shape)

    @staticmethod
    def _encode_output(output: np.ndarray, encoding: str):
        """One request's output slice → wire form.

        ``b64`` requests get their outputs back as base64 float32 too:
        the encode is two bulk passes (tobytes + b64) instead of
        ``tolist()``'s per-element float formatting, and the round trip
        is bit-exact by construction rather than via decimal repr.
        """
        if encoding == "b64":
            return base64.b64encode(
                np.ascontiguousarray(output, dtype="<f4").tobytes()
            ).decode("ascii")
        return output.tolist()

    async def _predict(self, body: bytes) -> dict:
        try:
            request = json.loads(body.decode() or "{}")
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise _HttpError(400, f"invalid JSON body: {exc}")
        if not isinstance(request, dict):
            raise _HttpError(400, "body must be a JSON object")
        names = self.registry.names()
        name = request.get("model")
        if name is None:
            if len(names) != 1:
                raise _HttpError(
                    400, f"'model' is required when {len(names)} models are loaded"
                )
            name = names[0]
        try:
            served = self.registry.get(name)
        except KeyError as exc:
            raise _HttpError(404, str(exc))
        deadline_ms = request.get("deadline_ms")
        if deadline_ms is not None and not isinstance(deadline_ms, (int, float)):
            raise _HttpError(400, "'deadline_ms' must be a number")
        encoding = request.get("encoding", "json")
        if encoding not in ("json", "b64"):
            raise _HttpError(400, f"unknown encoding {encoding!r} (json or b64)")

        if "inputs" in request:
            raw_samples = request["inputs"]
            if not isinstance(raw_samples, list) or not raw_samples:
                raise _HttpError(400, "'inputs' must be a non-empty list of samples")
            single = False
        elif "input" in request:
            raw_samples = [request["input"]]
            single = True
        else:
            raise _HttpError(400, "missing 'input' (one sample) or 'inputs' (list)")

        try:
            if encoding == "b64":
                raw_samples = [self._decode_b64(s, served) for s in raw_samples]
            samples = [served.validate_input(s) for s in raw_samples]
        except (ValueError, TypeError) as exc:
            raise _HttpError(400, str(exc))

        batcher = await self._ensure_batcher(name)
        tasks = []
        try:
            if len(samples) == 1:  # hot path: no gather/task machinery
                results = [await batcher.submit(samples[0], deadline_ms=deadline_ms)]
            else:
                tasks = [
                    asyncio.ensure_future(batcher.submit(s, deadline_ms=deadline_ms))
                    for s in samples
                ]
                results = await asyncio.gather(*tasks)
        except QueueSaturated as exc:
            self._cancel_all(tasks)
            raise _HttpError(429, str(exc), retry_after=0.05)
        except DeadlineExceeded as exc:
            self._cancel_all(tasks)
            raise _HttpError(504, str(exc))
        except ExecutionFailed as exc:
            self._cancel_all(tasks)
            raise _HttpError(500, str(exc))

        if single:
            result = results[0]
            response = {
                "model": name,
                "output": self._encode_output(result.output[0], encoding),
                "batch_size": result.batch_size,
                "queue_ms": result.queue_ms,
                "run_ms": result.run_ms,
            }
        else:
            response = {
                "model": name,
                "outputs": [
                    self._encode_output(r.output[0], encoding) for r in results
                ],
                "meta": [
                    {
                        "batch_size": r.batch_size,
                        "queue_ms": r.queue_ms,
                        "run_ms": r.run_ms,
                    }
                    for r in results
                ],
            }
        if encoding == "b64":
            response["encoding"] = "b64"
            response["output_shape"] = list(results[0].output[0].shape)
        return response


# ---------------------------------------------------------------------------
# Background runner (tests, benchmarks, examples)
# ---------------------------------------------------------------------------


class ServerHandle:
    """A server running on a daemon thread with its own event loop."""

    def __init__(self, server: InferenceServer):
        self.server = server
        self._ready = threading.Event()
        self._failure: Optional[BaseException] = None
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._stop_event: Optional[asyncio.Event] = None
        self._thread = threading.Thread(target=self._run, daemon=True)

    @property
    def base_url(self) -> str:
        return f"http://{self.server.host}:{self.server.port}"

    def start(self, timeout: float = 30.0) -> "ServerHandle":
        if not self._thread.is_alive() and not self._ready.is_set():
            self._thread.start()
        if not self._ready.wait(timeout):
            raise RuntimeError("server did not become ready in time")
        if self._failure is not None:
            raise RuntimeError("server failed to start") from self._failure
        return self

    def _run(self) -> None:
        async def main():
            self._stop_event = asyncio.Event()
            try:
                await self.server.start()
            except BaseException as exc:
                self._failure = exc
                self._ready.set()
                return
            self._loop = asyncio.get_running_loop()
            self._ready.set()
            try:
                await self._stop_event.wait()
            finally:
                await self.server.stop()

        asyncio.run(main())

    def stop(self, timeout: float = 10.0) -> None:
        if self._loop is not None and self._stop_event is not None:
            self._loop.call_soon_threadsafe(self._stop_event.set)
        self._thread.join(timeout)

    def __enter__(self) -> "ServerHandle":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.stop()


def start_in_background(
    registry: ModelRegistry,
    policy: Optional[BatchPolicy] = None,
    host: str = "127.0.0.1",
    port: int = 0,
    workers: int = 0,
    threads: Optional[int] = None,
    executor_threads: Optional[int] = None,
    worker_replicas: Optional[int] = None,
    worker_health_interval: Optional[float] = 2.0,
) -> ServerHandle:
    """Start an :class:`InferenceServer` on a daemon thread (ephemeral port
    by default) and block until it accepts connections.

    ``workers=0`` serves in-process (the default); ``workers=N`` forks
    ``N`` sharded worker processes (see :class:`InferenceServer`).
    """
    server = InferenceServer(
        registry, policy=policy, host=host, port=port, workers=workers,
        threads=threads, executor_threads=executor_threads,
        worker_replicas=worker_replicas,
        worker_health_interval=worker_health_interval,
    )
    return ServerHandle(server).start(timeout=300.0)
