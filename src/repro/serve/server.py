"""Asyncio HTTP/1.1 inference server over compiled Winograd plans.

Stdlib only (``asyncio`` + ``json``): a hand-rolled HTTP/1.1 handler with
keep-alive, four routes, one :class:`~repro.serve.batcher.DynamicBatcher`
per served model, and one shared worker :class:`ThreadPoolExecutor` that
runs plan execution off the event loop.

Routes::

    POST /predict   {"model": name, "input": [C][H][W], "deadline_ms"?: f}
                    → {"model", "output", "batch_size", "queue_ms", "run_ms"}
                    (or "inputs": [sample, ...] → "outputs" + "meta")
    GET  /models    loaded variants with spec + plan metadata
    GET  /healthz   {"status": "ok", "models": [...], "uptime_s": ...}
    GET  /metrics   throughput, p50/p95/p99 latency, batch-size histogram,
                    plan-cache hit rate (see README "Serving"); with
                    ``Accept: text/plain`` the Prometheus exposition
                    instead (docs/observability.md)
    GET  /trace     the span ring buffer as Chrome trace-event JSON
                    (``?request_id=``, ``?format=chrome|spans``)

Every request gets an id at ingress (``X-Request-Id`` respected or
generated, echoed on the response); ``/predict`` requests are sampled
into end-to-end traces at ``trace_rate``.

Failure mapping: bad request → 400, unknown model/route → 404, queue
saturated → 429 (with ``Retry-After``), kernel failure → 500, deadline
expired in queue → 504.
"""

from __future__ import annotations

import asyncio
import base64
import binascii
import json
import os
import threading
import urllib.parse
import uuid
from concurrent.futures import ThreadPoolExecutor
from typing import Dict, List, Optional

import numpy as np

from repro.engine.cache import PlanCache, plan_cache
from repro.obs import trace as obs_trace
from repro.obs.export import to_chrome_trace
from repro.serve.admission import (
    AdmissionController,
    AdmissionPolicy,
    RequestShed,
    resolve_priority,
)
from repro.serve.batcher import (
    BatcherStopped,
    BatchPolicy,
    DeadlineExceeded,
    DynamicBatcher,
    ExecutionFailed,
    QueueSaturated,
)
from repro.serve.metrics import ServerMetrics
from repro.serve.prom import PROM_CONTENT_TYPE, render_prometheus, wants_prometheus
from repro.serve.autoscale import ModelSignals
from repro.serve.registry import ModelRegistry, ServedModel
from repro.serve.selfheal import (
    CIRCUIT_CLOSED,
    JournalState,
    SelfHealController,
    SelfHealPolicy,
    StateJournal,
    validate_topology,
)

_STATUS_TEXT = {
    200: "OK",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    409: "Conflict",
    413: "Payload Too Large",
    429: "Too Many Requests",
    500: "Internal Server Error",
    503: "Service Unavailable",
    504: "Gateway Timeout",
}

#: Upper bound on accepted request bodies (a 3×32×32 sample serialises to
#: ~100 kB of JSON; 32 MiB leaves room for large multi-sample requests).
MAX_BODY_BYTES = 32 * 1024 * 1024


class _HttpError(Exception):
    def __init__(
        self,
        status: int,
        message: str,
        retry_after: Optional[float] = None,
        reason: Optional[str] = None,
    ):
        super().__init__(message)
        self.status = status
        self.message = message
        self.retry_after = retry_after
        #: Machine-readable refusal class (e.g. ``"circuit_open"``,
        #: ``"draining"``) — clients branch on this, not on prose.
        self.reason = reason


class _RawResponse:
    """A non-JSON route result (e.g. the Prometheus exposition)."""

    __slots__ = ("body", "content_type")

    def __init__(self, body: bytes, content_type: str):
        self.body = body
        self.content_type = content_type


def default_executor_threads() -> int:
    return max(2, min(8, os.cpu_count() or 2))


class InferenceServer:
    """The serving frontend: registry + batchers + HTTP listener.

    ``workers`` selects the execution substrate:

    * ``workers=0`` (default) — **in-process** serving, the exact
      pre-ISSUE-5 path: batches execute on this process's executor
      threads against the registry's compiled plans.  All existing
      bit-identity guarantees are pinned on this mode.
    * ``workers=N>0`` — **multi-process sharded** serving: a
      :class:`~repro.serve.router.WorkerRouter` forks ``N`` worker
      processes, each owning its plan cache and arena pools, and every
      dispatched batch travels over the shared-memory slot ring.  Each
      model is placed on ``worker_replicas`` workers (consistent
      rendezvous placement), dead workers are respawned and in-flight
      batches retried.  The registry may then be *lazy* (specs only, no
      front-end compilation).
    """

    def __init__(
        self,
        registry: ModelRegistry,
        policy: Optional[BatchPolicy] = None,
        host: str = "127.0.0.1",
        port: int = 8100,
        workers: int = 0,
        metrics: Optional[ServerMetrics] = None,
        cache: Optional[PlanCache] = None,
        threads: Optional[int] = None,
        executor_threads: Optional[int] = None,
        worker_replicas: Optional[int] = None,
        worker_health_interval: Optional[float] = 2.0,
        trace_rate: Optional[float] = None,
        trace_buffer: Optional["obs_trace.TraceBuffer"] = None,
        admission: Optional[AdmissionPolicy] = None,
        chaos: Optional[str] = None,
        worker_reply_timeout: float = 120.0,
        selfheal: Optional[SelfHealPolicy] = None,
        state_dir: Optional[str] = None,
    ):
        self.registry = registry
        self.policy = policy or BatchPolicy()
        self.host = host
        self.port = port  # updated to the bound port after start()
        self.workers = int(workers or 0)
        self.worker_replicas = worker_replicas
        self.worker_health_interval = worker_health_interval
        # Boot-time topology validation (ISSUE 9 satellite): raise the
        # typed ServeConfigError here, before any socket or fork.
        validate_topology(
            workers=self.workers,
            worker_replicas=worker_replicas or 0,
            state_dir=state_dir,
            selfheal=selfheal,
            registry=registry,
        )
        #: Self-healing control plane (docs/operations.md 'Self-healing
        #: & autoscaling runbook'): circuit breakers always run when a
        #: policy is given; the autoscaler and brownout ladder activate
        #: per the policy's fields.
        self.selfheal_policy = selfheal
        self._selfheal: Optional[SelfHealController] = (
            SelfHealController(selfheal) if selfheal is not None else None
        )
        self._selfheal_task: Optional[asyncio.Task] = None
        #: Crash-consistent decision journal (``--state-dir``).
        self._journal: Optional[StateJournal] = (
            StateJournal(state_dir) if state_dir else None
        )
        #: What journal replay recovered at boot (surfaced on /models).
        self.journal_replay: Optional[dict] = None
        #: model → ladder variant currently serving it (absent = own).
        self._active_variant: Dict[str, str] = {}
        #: Ingress gate: priority watermarks + per-tenant token buckets
        #: (docs/operations.md 'Overload & incident runbook').
        self.admission = AdmissionController(admission)
        #: Chaos spec forwarded to workers (``--chaos`` / REPRO_CHAOS).
        self.chaos = chaos
        self.worker_reply_timeout = worker_reply_timeout
        #: SIGTERM graceful drain: set by :meth:`drain` — intake answers
        #: 503 and connections close after their in-flight response.
        self._draining = False
        self.metrics = metrics or ServerMetrics()
        self.cache = cache if cache is not None else plan_cache
        #: Engine threads per dispatched batch (``repro serve --threads``,
        #: default the REPRO_THREADS environment setting): batches fan
        #: their chunkable steps out across the shared engine pool, so
        #: cores are used even when one model carries all the traffic.
        #: With process workers this is forwarded to each worker's runs.
        self.threads = threads
        #: Threads that push batches off the event loop.  In worker mode
        #: each of these blocks on a worker round-trip, so the pool must
        #: cover every in-flight batch across all models.
        self.executor_threads = executor_threads
        self._batchers: Dict[str, DynamicBatcher] = {}
        self._executor: Optional[ThreadPoolExecutor] = None
        self._server: Optional[asyncio.AbstractServer] = None
        self._router = None  # WorkerRouter when workers > 0
        #: Per-model health-watch tasks (blue/green auto-rollback).
        self._watch_tasks: Dict[str, asyncio.Task] = {}
        #: Deploy/rollback history surfaced on ``/models`` (bounded).
        self.deploy_events: list = []
        #: Fraction of /predict requests recorded as end-to-end traces
        #: (``repro serve --trace-rate``; ``REPRO_TRACE=1`` defaults it
        #: to 1.0).  Sampling is counter-based — deterministic, no RNG —
        #: and 0.0 keeps the request path span-free.
        if trace_rate is None:
            trace_rate = 1.0 if obs_trace.env_enabled() else 0.0
        self.trace_rate = max(0.0, min(1.0, float(trace_rate)))
        #: Span sink shared by the batchers, the worker router, and the
        #: ``/trace`` endpoint.  Always present (an untraced server just
        #: never writes to it), so ``/trace`` has one code path.
        self.trace_buffer = (
            trace_buffer if trace_buffer is not None else obs_trace.TraceBuffer()
        )
        self._trace_counter = 0  # touched only on the event loop

    # -- lifecycle ----------------------------------------------------------
    async def start(self) -> None:
        if self._server is not None:
            return
        # Journal replay happens before the worker pool forks: deploys
        # recovered here land in registry.artifact_paths(), so workers
        # boot straight into the pre-crash artifacts.
        replay_state: Optional[JournalState] = None
        if self._journal is not None:
            replay_state = self._apply_journal_preboot()
        if self.workers > 0 and self._router is None:
            from repro.serve.router import WorkerRouter

            router = WorkerRouter(
                model_names=self.registry.names(),
                sample_shapes=[
                    self.registry.get(name).sample_shape
                    for name in self.registry.names()
                ],
                workers=self.workers,
                replicas=self.worker_replicas,
                max_batch_size=self.policy.max_batch_size,
                threads=self.threads,
                health_interval=self.worker_health_interval,
                artifacts=self.registry.artifact_paths(),
                reply_timeout=self.worker_reply_timeout,
                chaos=self.chaos,
            )
            # Fork before serving traffic: the child must not inherit
            # live connections or a mid-flight event loop.
            self._router = await asyncio.get_running_loop().run_in_executor(
                None, router.start
            )
        try:
            if self.executor_threads:
                pool_size = self.executor_threads
            elif self.workers > 0:
                # Must cover every admissible in-flight batch across all
                # models (each batcher admits replicas+1), plus one
                # thread for the /metrics worker-stats round trip.
                per_model = self._router.replicas + 1
                pool_size = max(
                    4, len(self.registry.names()) * per_model + 1
                )
            else:
                pool_size = default_executor_threads()
            self._executor = ThreadPoolExecutor(
                max_workers=pool_size, thread_name_prefix="serve-dispatch"
            )
            for name in self.registry.names():
                await self._ensure_batcher(name)
            if replay_state is not None:
                # Ladder rungs and replica overrides need live batchers
                # and a live router; apply them before the socket opens
                # so the first request already sees the recovered state.
                await self._apply_journal_postboot(replay_state)
            self._server = await asyncio.start_server(
                self._handle_connection, self.host, self.port
            )
            self.port = self._server.sockets[0].getsockname()[1]
            if self._selfheal is not None:
                self._selfheal_task = asyncio.get_running_loop().create_task(
                    self._selfheal_loop()
                )
        except BaseException:
            # A failed bind (or batcher bring-up) must not leak the
            # already-forked worker pool and its shm segments.
            await self.stop()
            raise

    async def stop(self) -> None:
        if self._selfheal_task is not None:
            task, self._selfheal_task = self._selfheal_task, None
            task.cancel()
            try:
                await task
            except asyncio.CancelledError:
                pass
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        for task in self._watch_tasks.values():
            task.cancel()
        self._watch_tasks.clear()
        for batcher in self._batchers.values():
            await batcher.stop()
        self._batchers.clear()
        if self._executor is not None:
            self._executor.shutdown(wait=False)
            self._executor = None
        if self._router is not None:
            router, self._router = self._router, None
            await asyncio.get_running_loop().run_in_executor(None, router.stop)
        if self._journal is not None:
            self._journal.close()

    async def drain(self, timeout: float = 30.0) -> bool:
        """Graceful drain (the SIGTERM path): stop intake, let every
        in-flight batch finish.

        From the instant this is called, ``/predict`` answers 503 with
        ``Retry-After`` (typed ``"draining"`` reason), keep-alive
        connections close after their current response, and ``/healthz``
        reports ``degraded (draining)``.  Returns ``True`` once every
        batcher's outstanding count reached zero (no accepted request
        was dropped); ``False`` if ``timeout`` expired first.  The
        server keeps answering health/metrics/trace reads throughout —
        the operator can watch the drain — and the caller then runs
        :meth:`stop` (docs/operations.md 'Overload & incident runbook').
        """
        self._draining = True
        loop = asyncio.get_running_loop()
        deadline = loop.time() + timeout
        while loop.time() < deadline:
            outstanding = sum(
                b.outstanding() for b in self._batchers.values()
            )
            if outstanding == 0:
                return True
            await asyncio.sleep(0.02)
        return sum(b.outstanding() for b in self._batchers.values()) == 0

    @property
    def draining(self) -> bool:
        return self._draining

    async def serve_forever(self) -> None:
        await self.start()
        assert self._server is not None
        async with self._server:
            await self._server.serve_forever()

    async def _new_batcher(
        self,
        name: str,
        served: ServedModel,
        route_key: Optional[str] = None,
    ) -> DynamicBatcher:
        """Build + start a batcher for one deployment of ``name``.

        In worker mode the batcher's plan proxy routes on the served
        deployment's ``worker_key`` (``name#version`` for blue/green
        deploys), so two versions of the same model can execute side by
        side while the old one drains.  ``route_key`` overrides the
        routing target entirely — the brownout ladder serves ``name``'s
        traffic through a fallback variant's plans while keeping the
        model's own metrics stream.
        """
        if self._router is not None:
            from repro.serve.router import WorkerPlanProxy

            key = route_key or served.worker_key or name
            plan = WorkerPlanProxy(self._router, key)
            # Process workers execute truly in parallel (no GIL), so
            # keep one batch in flight per replica plus one coalescing.
            max_inflight = self._router.replicas_for(key) + 1
        else:
            plan = served.plan
            if plan is None:
                raise _HttpError(
                    500,
                    f"model {name!r} was loaded lazily but the server "
                    "runs in-process (workers=0)",
                )
            # Concurrent batches only pay off with real parallelism:
            # on a single-core host one full batch beats two
            # interleaved half-batches (cache + fixed costs) — and
            # admission must never exceed the dispatch pool actually
            # configured, or half-batches just queue on its threads.
            max_inflight = max(
                1,
                min(
                    self.executor_threads or default_executor_threads(),
                    os.cpu_count() or 1,
                ),
            )
        batcher = DynamicBatcher(
            plan,
            policy=self.policy,
            executor=self._executor,
            metrics=self.metrics.for_model(name),
            name=name,
            max_inflight=max_inflight,
            threads=self.threads,
            tracer=self.trace_buffer,
        )
        await batcher.start()
        return batcher

    async def _ensure_batcher(self, name: str) -> DynamicBatcher:
        batcher = self._batchers.get(name)
        if batcher is None:
            served = self.registry.get(name)
            batcher = await self._new_batcher(name, served)
            self._batchers[name] = batcher
        return batcher

    # -- self-healing control plane -----------------------------------------
    def _journal_append(self, record: dict) -> None:
        if self._journal is None:
            return
        try:
            self._journal.append(record)
        except OSError:
            # A full or read-only state dir must not take serving down
            # with it — the journal degrades, the data plane does not.
            pass

    def _route_key_for(self, name: str) -> str:
        """The worker-pool key currently serving ``name``'s traffic: its
        active ladder variant's deployment, or its own."""
        target = self._active_variant.get(name, name)
        try:
            served = self.registry.get(target)
        except KeyError:
            return target
        return served.worker_key or target

    def _apply_journal_preboot(self) -> JournalState:
        """Replay the journal before the worker pool forks.

        Re-installs every journaled deploy into the registry so
        ``registry.artifact_paths()`` hands the router the pre-crash
        artifacts — after a ``kill -9`` the restarted server recovers
        every model at its deployed content hash with zero manual
        re-deploys.  A deploy whose artifact vanished is dropped from
        the recovered state (and reported on ``/metrics``), never
        fatal: the boot flags' models still serve.
        """
        from repro.serve.registry import load_artifact_served

        records = self._journal.replay()
        state = JournalState.from_records(records)
        restored: List[str] = []
        skipped: List[str] = []
        for model, deploy in sorted(state.deploys.items()):
            artifact = deploy.get("artifact")
            version = deploy.get("version")
            try:
                active = self.registry.get(model)
            except KeyError:
                active = None
            if active is not None and active.version == version:
                # The boot flags already loaded this exact deployment;
                # re-installing would re-version it (install() refuses
                # version collisions) and break content-hash recovery.
                restored.append(model)
                continue
            if not artifact or not os.path.exists(artifact):
                skipped.append(model)
                state.deploys.pop(model, None)
                continue
            try:
                served = load_artifact_served(artifact, lazy=self.workers > 0)
            except Exception:
                skipped.append(model)
                state.deploys.pop(model, None)
                continue
            self.registry.install(served)
            restored.append(model)
        self.journal_replay = {
            "records": len(records),
            "torn_records": self._journal.torn_records,
            "deploys_restored": restored,
            "deploys_skipped": skipped,
            "replicas": dict(state.replicas),
            "ladders": {m: dict(r) for m, r in state.ladders.items()},
        }
        return state

    async def _apply_journal_postboot(self, state: JournalState) -> None:
        """Re-apply ladder rungs and replica counts once batchers and the
        worker pool exist, then compact the journal to the state that
        actually took effect (replaying a replay stays O(models)).

        Ladders first: a journaled replica count applies to whatever
        variant is serving the model, so the rung must be restored
        before the scale."""
        applied = JournalState(deploys=dict(state.deploys))
        for model, rung in sorted(state.ladders.items()):
            ladder = self._selfheal.ladder(model) if self._selfheal else None
            if ladder is None:
                continue
            try:
                position = int(rung.get("position", 0))
            except (TypeError, ValueError):
                continue
            if position <= 0:
                continue
            try:
                await self._activate_variant(
                    model, position, reason="journal replay", journal=False
                )
            except (KeyError, _HttpError):
                continue
            applied.ladders[model] = {
                "position": ladder.position,
                "variant": ladder.variant,
            }
        if self._router is not None:
            for model, count in sorted(state.replicas.items()):
                try:
                    await self.set_model_replicas(
                        model, count, reason="journal replay", journal=False
                    )
                except (KeyError, _HttpError):
                    continue
                applied.replicas[model] = self._router.replicas_for(
                    self._route_key_for(model)
                )
        if self._journal is not None:
            self._journal.compact(applied.to_records())

    async def set_model_replicas(
        self,
        name: str,
        count: int,
        reason: str = "autoscale",
        journal: bool = True,
    ) -> dict:
        """Resize one model's worker-replica set without dropping a
        single in-flight batch (worker mode only).

        Rendezvous placement makes replica sets prefix-stable: growing
        loads the plan on the newly ranked workers *before* they become
        routable; shrinking just stops routing to the tail — batches
        already dispatched to a retired replica still complete.
        """
        if self._router is None:
            raise _HttpError(
                409, "replica scaling requires worker mode (--workers N)"
            )
        route_key = self._route_key_for(name)
        before = self._router.replicas_for(route_key)
        assigned = await asyncio.get_running_loop().run_in_executor(
            self._executor,
            lambda: self._router.set_replicas(route_key, count),
        )
        after = self._router.replicas_for(route_key)
        batcher = self._batchers.get(name)
        if batcher is not None:
            # Admission tracks capacity: one batch in flight per
            # replica plus one coalescing, resized live.
            batcher.resize_inflight(after + 1)
        event = {
            "action": "scale",
            "model": name,
            "route_key": route_key,
            "from_replicas": before,
            "to_replicas": after,
            "assigned_workers": assigned,
            "reason": reason,
        }
        self._record_event(event)
        if journal:
            self._journal_append(
                {"event": "scale", "model": name, "replicas": after}
            )
        return event

    async def _activate_variant(
        self,
        name: str,
        position: int,
        reason: str = "",
        journal: bool = True,
    ) -> dict:
        """Serve ``name``'s traffic from ladder rung ``position`` — the
        same atomic batcher swap as a blue/green cutover, so no accepted
        request is dropped while quality steps down (or back up)."""
        if self._selfheal is None:
            raise _HttpError(409, "no self-heal policy configured")
        ladder = self._selfheal.ladder(name)
        if ladder is None:
            raise _HttpError(409, f"model {name!r} has no brownout ladder")
        ladder.set_position(position)
        variant = ladder.variant
        vserved = self.registry.get(variant)  # presence validated at boot
        prev_variant = self._active_variant.get(name, name)
        old_batcher = self._batchers.get(name)
        self._batchers[name] = await self._new_batcher(
            name, vserved, route_key=vserved.worker_key or variant
        )
        drained = True
        if old_batcher is not None:
            drained = await old_batcher.drain_and_stop()
        if variant == name:
            self._active_variant.pop(name, None)
        else:
            self._active_variant[name] = variant
        event = {
            "action": "brownout",
            "model": name,
            "position": ladder.position,
            "variant": variant,
            "previous_variant": prev_variant,
            "drained": drained,
            "reason": reason,
        }
        self._record_event(event)
        if journal:
            self._journal_append(
                {
                    "event": "ladder",
                    "model": name,
                    "position": ladder.position,
                    "variant": variant,
                }
            )
        return event

    def _collect_signals(self) -> Dict[str, ModelSignals]:
        """One control tick's observations, straight off the live
        batchers/metrics — cumulative counters; the controller diffs."""
        fallback_variants = set()
        for ladder in self._selfheal.ladders().values():
            fallback_variants.update(ladder.chain[1:])
        signals: Dict[str, ModelSignals] = {}
        for name in self.registry.names():
            if name in fallback_variants:
                # Fallback rungs are scaled/degraded through their
                # parent model, never independently.
                continue
            metrics = self.metrics.for_model(name)
            batcher = self._batchers.get(name)
            replicas = 1
            if self._router is not None:
                replicas = self._router.replicas_for(self._route_key_for(name))
            signals[name] = ModelSignals(
                queue_fill=batcher.queue_fill() if batcher is not None else 0.0,
                shed_total=metrics.shed_total,
                deadline_exceeded_total=metrics.deadline_exceeded_total,
                errors_total=metrics.errors_total,
                replicas=replicas,
            )
        return signals

    async def _selfheal_tick(self) -> List[dict]:
        """Collect signals, tick the controller, apply its actions."""
        actions = self._selfheal.tick(self._collect_signals())
        applied = []
        for action in actions:
            try:
                if action.kind == "probe":
                    await self._probe_circuit(action.model)
                elif action.kind == "scale" and self._router is not None:
                    applied.append(
                        await self.set_model_replicas(
                            action.model, action.value, reason=action.reason
                        )
                    )
                elif action.kind == "ladder":
                    applied.append(
                        await self._activate_variant(
                            action.model, action.value, reason=action.reason
                        )
                    )
            except _HttpError:
                continue
        return applied

    async def _selfheal_loop(self) -> None:
        """The healer itself: tick every ``interval_s`` until cancelled.
        It must never kill the server it heals — every tick failure is
        swallowed (the next tick retries from fresh signals)."""
        interval = max(0.01, self._selfheal.policy.interval_s)
        while True:
            await asyncio.sleep(interval)
            if self._draining:
                continue
            try:
                await self._selfheal_tick()
            except asyncio.CancelledError:
                raise
            except Exception:
                continue

    async def _probe_circuit(self, name: str) -> None:
        """Half-open probe: one operator-invisible sample through the
        model (its active ladder variant).  Pass → circuit closes and
        clients flow again; fail → re-open for another hold-off."""
        breaker = self._selfheal.circuit(name)
        if not breaker.ready_for_probe():
            return
        breaker.begin_probe()
        target = self._active_variant.get(name, name)
        try:
            served = self.registry.get(target)
            await self._probe_served(target, served)
        except Exception:
            breaker.probe_result(False)
            self._record_event(
                {"action": "circuit_probe", "model": name, "ok": False}
            )
            return
        breaker.probe_result(True)
        self._record_event(
            {"action": "circuit_probe", "model": name, "ok": True}
        )

    # -- blue/green deploys -------------------------------------------------
    def _record_event(self, event: dict) -> None:
        self.deploy_events.append(event)
        del self.deploy_events[:-20]  # keep the last 20

    async def _probe_served(self, name: str, served: ServedModel) -> float:
        """Run one deterministic sample through the new deployment before
        any traffic reaches it (dead-on-arrival artifacts fail here, not
        on client requests).  Returns the probe latency in ms."""
        x = np.zeros((1,) + tuple(served.sample_shape), dtype=np.float32)
        loop = asyncio.get_running_loop()
        t0 = loop.time()
        if self._router is not None:
            key = served.worker_key or name
            await loop.run_in_executor(
                self._executor, lambda: self._router.submit(key, x)
            )
        else:
            await loop.run_in_executor(
                self._executor, lambda: served.plan.run(x)
            )
        return (loop.time() - t0) * 1e3

    async def deploy_served(
        self,
        served: ServedModel,
        watch_s: float = 0.0,
        probe: bool = True,
        drain_timeout: float = 60.0,
    ) -> dict:
        """Blue/green cutover to a new deployment of ``served.name``.

        Sequence (docs/operations.md 'Blue/green deploys and rollback'):
        load into the worker pool (worker mode), probe one sample
        through the new plan, atomically swap the active batcher (new
        requests land on the new version from that point on), drain the
        old batcher to zero outstanding requests, then watch
        ``errors_total`` for ``watch_s`` seconds and auto-rollback on
        any execution-error regression.  No request is dropped at any
        point: the old version answers everything it accepted.
        """
        name = served.name
        evicted = self.registry.previous(name)
        had_active = name in self.registry
        old = self.registry.install(served)  # assigns the final version
        load_ms = None
        try:
            if self._router is not None:
                if not served.artifact:
                    raise _HttpError(
                        400,
                        "worker-mode deploys need a plan artifact "
                        "(repro compile; docs/operations.md "
                        "'Compile-then-deploy')",
                    )
                served.worker_key = f"{name}#{served.version}"
                load_times = await asyncio.get_running_loop().run_in_executor(
                    self._executor,
                    lambda: self._router.load_model(
                        served.worker_key, served.artifact
                    ),
                )
                load_ms = max(load_times.values()) if load_times else 0.0
            elif served.plan is None:
                raise _HttpError(
                    400, f"model {name!r}: in-process deploys need a plan"
                )
            probe_ms = await self._probe_served(name, served) if probe else None
        except BaseException as exc:
            # Undo the install — the old deployment never stopped serving.
            if had_active:
                self.registry.rollback(name)
            else:
                self.registry.remove(name)
            if isinstance(exc, _HttpError):
                raise
            raise _HttpError(
                500, f"model {name!r}: deploy rejected at probe: {exc}"
            ) from exc

        # Cutover: swap the batcher pointer first (new requests go to the
        # new version), then drain the old one (it answers everything it
        # already accepted) — zero dropped requests by construction.
        old_batcher = self._batchers.get(name)
        self._batchers[name] = await self._new_batcher(name, served)
        drained = True
        if old_batcher is not None:
            drained = await old_batcher.drain_and_stop(timeout=drain_timeout)
        if (
            self._router is not None
            and evicted is not None
            and evicted.worker_key
            and evicted.worker_key != served.worker_key
        ):
            # The deployment that just fell out of the one-deep rollback
            # history has no path back into service — retire its worker
            # plans.
            await asyncio.get_running_loop().run_in_executor(
                self._executor,
                lambda: self._router.unload_model(evicted.worker_key),
            )
        watching = False
        if watch_s and watch_s > 0 and old is not None:
            prior = self._watch_tasks.pop(name, None)
            if prior is not None:
                prior.cancel()
            self._watch_tasks[name] = asyncio.get_running_loop().create_task(
                self._health_watch(name, served.version, watch_s)
            )
            watching = True
        event = {
            "action": "deploy",
            "model": name,
            "version": served.version,
            "previous_version": old.version if old is not None else None,
            "artifact": served.artifact,
            "drained": drained,
            "load_ms": load_ms,
            "probe_ms": probe_ms,
            "watch_s": watch_s if watching else None,
        }
        self._record_event(event)
        if served.artifact:
            # Journal only artifact-backed deploys: they are the ones a
            # restarted process can re-install from disk.
            self._journal_append(
                {
                    "event": "deploy",
                    "model": name,
                    "artifact": served.artifact,
                    "version": served.version,
                }
            )
        return event

    async def rollback_model(self, name: str, reason: str = "requested") -> dict:
        """Swap ``name`` back to its previous deployment (same zero-drop
        cutover as a deploy, in reverse)."""
        try:
            previous = self.registry.previous(name)
        except KeyError:
            previous = None
        if previous is None:
            raise _HttpError(
                409, f"model {name!r} has no previous version to roll back to"
            )
        watch = self._watch_tasks.pop(name, None)
        if watch is not None and watch is not asyncio.current_task():
            # (The health watch itself calls in here on a regression —
            # cancelling the current task would abort the rollback at
            # its next await.)
            watch.cancel()
        regressed = self.registry.get(name)
        self.registry.rollback(name)
        old_batcher = self._batchers.get(name)
        self._batchers[name] = await self._new_batcher(name, previous)
        drained = True
        if old_batcher is not None:
            drained = await old_batcher.drain_and_stop()
        event = {
            "action": "rollback",
            "model": name,
            "version": previous.version,
            "previous_version": regressed.version,
            "reason": reason,
            "drained": drained,
        }
        self._record_event(event)
        if previous.artifact:
            self._journal_append(
                {
                    "event": "deploy",
                    "model": name,
                    "artifact": previous.artifact,
                    "version": previous.version,
                }
            )
        else:
            # Rolled back to an in-process (non-artifact) deployment:
            # boot flags alone reproduce it, so clear the journal entry.
            self._journal_append({"event": "remove", "model": name})
        return event

    async def _health_watch(
        self, name: str, version: str, watch_s: float
    ) -> None:
        """Post-cutover watchdog: any ``errors_total`` growth (kernel /
        worker execution failures — rejections and deadline misses are
        load signals, not health) within ``watch_s`` of the cutover
        rolls the model back automatically."""
        metrics = self.metrics.for_model(name)
        baseline = metrics.errors_total
        loop = asyncio.get_running_loop()
        deadline = loop.time() + watch_s
        try:
            while loop.time() < deadline:
                await asyncio.sleep(min(0.05, watch_s))
                if self.registry.get(name).version != version:
                    return  # re-deployed or manually rolled back under us
                if metrics.errors_total > baseline:
                    await self.rollback_model(
                        name,
                        reason=(
                            f"health regression: +"
                            f"{metrics.errors_total - baseline} execution "
                            f"errors within {watch_s:g}s of cutover"
                        ),
                    )
                    return
        except asyncio.CancelledError:
            raise
        finally:
            task = self._watch_tasks.get(name)
            if task is asyncio.current_task():
                self._watch_tasks.pop(name, None)

    # -- HTTP plumbing ------------------------------------------------------
    async def _handle_connection(self, reader, writer) -> None:
        try:
            while True:
                request_line = await reader.readline()
                if not request_line:
                    break
                try:
                    method, target, _version = request_line.decode("latin1").split()
                except ValueError:
                    await self._write_json(
                        writer, 400, {"error": "malformed request line"}, close=True
                    )
                    break
                headers: Dict[str, str] = {}
                while True:
                    line = await reader.readline()
                    if line in (b"\r\n", b"\n", b""):
                        break
                    key, _, value = line.decode("latin1").partition(":")
                    headers[key.strip().lower()] = value.strip()
                length = int(headers.get("content-length", "0") or 0)
                if length > MAX_BODY_BYTES:
                    await self._write_json(
                        writer,
                        413,
                        {"error": f"body exceeds {MAX_BODY_BYTES} bytes"},
                        close=True,
                    )
                    break
                body = await reader.readexactly(length) if length else b""
                close = headers.get("connection", "").lower() == "close"
                path, _, query = target.partition("?")
                # Every request gets an id at ingress: the client's
                # X-Request-Id is respected, otherwise one is minted; it
                # is echoed on the response and keys trace spans and
                # latency-bucket exemplars.
                request_id = headers.get("x-request-id") or f"r-{uuid.uuid4().hex[:16]}"
                try:
                    status, retry_after = 200, None
                    payload = await self._route(
                        method, path, body, headers=headers,
                        request_id=request_id, query=query,
                    )
                except _HttpError as exc:
                    status, payload, retry_after = (
                        exc.status,
                        {"error": exc.message, "status": exc.status},
                        exc.retry_after,
                    )
                    if exc.reason is not None:
                        payload["reason"] = exc.reason
                # A draining server closes every connection after its
                # in-flight response: clients reconnect, see the refusal,
                # and back off to another replica.
                close = close or self._draining
                extra = [f"X-Request-Id: {request_id}"]
                if isinstance(payload, dict) and "served_variant" in payload:
                    extra.append(
                        f"X-Served-Variant: {payload['served_variant']}"
                    )
                if isinstance(payload, _RawResponse):
                    await self._write_response(
                        writer, status, payload.body, payload.content_type,
                        close=close, retry_after=retry_after, extra_headers=extra,
                    )
                else:
                    await self._write_json(
                        writer, status, payload, close=close,
                        retry_after=retry_after, extra_headers=extra,
                    )
                if close:
                    break
        except (
            asyncio.IncompleteReadError,
            asyncio.CancelledError,  # loop teardown with the connection open
            ConnectionResetError,
            BrokenPipeError,
        ):
            pass
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (
                # Loop teardown cancels handler tasks mid-close; swallowing
                # here lets the task finish clean instead of logging one
                # "Exception in callback" per open keep-alive connection.
                asyncio.CancelledError,
                ConnectionResetError,
                BrokenPipeError,
            ):
                pass

    @staticmethod
    async def _write_response(
        writer,
        status: int,
        body: bytes,
        content_type: str,
        close: bool = False,
        retry_after: Optional[float] = None,
        extra_headers: Optional[List[str]] = None,
    ) -> None:
        headers = [
            f"HTTP/1.1 {status} {_STATUS_TEXT.get(status, 'Unknown')}",
            f"Content-Type: {content_type}",
            f"Content-Length: {len(body)}",
            f"Connection: {'close' if close else 'keep-alive'}",
        ]
        if extra_headers:
            headers.extend(extra_headers)
        if retry_after is not None:
            headers.append(f"Retry-After: {retry_after:g}")
        writer.write(("\r\n".join(headers) + "\r\n\r\n").encode() + body)
        await writer.drain()

    @classmethod
    async def _write_json(
        cls,
        writer,
        status: int,
        payload: dict,
        close: bool = False,
        retry_after: Optional[float] = None,
        extra_headers: Optional[List[str]] = None,
    ) -> None:
        await cls._write_response(
            writer,
            status,
            json.dumps(payload).encode(),
            "application/json",
            close=close,
            retry_after=retry_after,
            extra_headers=extra_headers,
        )

    # -- routing ------------------------------------------------------------
    async def _route(
        self,
        method: str,
        path: str,
        body: bytes,
        headers: Optional[Dict[str, str]] = None,
        request_id: Optional[str] = None,
        query: str = "",
    ):
        headers = headers or {}
        if path == "/predict":
            if method != "POST":
                raise _HttpError(405, "/predict requires POST")
            return await self._predict(body, request_id=request_id,
                                       headers=headers)
        if path == "/models" and method == "POST":
            return await self._models_post(body)
        if method not in ("GET", "HEAD"):
            raise _HttpError(405, f"{path} requires GET")
        if path == "/healthz":
            # Three-state health: "ok", "degraded" (+ machine-readable
            # reasons — still serving, but an operator should look), and
            # the implicit third state of not answering at all.
            reasons = []
            if self._draining:
                reasons.append("draining")
            if self.admission.shedding_recently():
                reasons.append("shedding")
            if self._router is not None and self._router.respawning():
                reasons.append("worker respawning")
            if self._selfheal is not None:
                heal = self._selfheal.snapshot()
                for model, circuit in sorted(heal["circuits"].items()):
                    if circuit["state"] != CIRCUIT_CLOSED:
                        reasons.append(
                            f"circuit {circuit['state']}: {model}"
                        )
                for model, ladder in sorted(heal["ladders"].items()):
                    if ladder["position"] > 0:
                        reasons.append(
                            f"brownout: {model} serving {ladder['variant']}"
                        )
            return {
                "status": "degraded" if reasons else "ok",
                "reasons": reasons,
                "models": self.registry.names(),
                "uptime_s": self.metrics.uptime_s(),
            }
        if path == "/models":
            return {
                "models": self.registry.describe(),
                "policy": self.policy.to_dict(),
                "deploy_events": list(self.deploy_events),
                "selfheal": (
                    self.selfheal_policy.to_dict()
                    if self.selfheal_policy is not None
                    else None
                ),
                "journal_replay": self.journal_replay,
            }
        if path == "/trace":
            return self._trace_endpoint(query)
        if path == "/metrics":
            if wants_prometheus(headers.get("accept")):
                worker_info = None
                if self._router is not None:
                    worker_info = {
                        "worker_restarts": self._router.restarts_total(),
                        "watchdog_kills": self._router.watchdog_kills_total(),
                        "retries_total": self._router.retries_total(),
                        "corrupt_responses_total":
                            self._router.corrupt_responses_total(),
                    }
                text = render_prometheus(
                    self.metrics, trace_info=self._trace_info(),
                    worker_info=worker_info,
                    selfheal_info=self._selfheal_info(),
                )
                return _RawResponse(text.encode("utf-8"), PROM_CONTENT_TYPE)
            snap = self.metrics.snapshot(plan_cache_stats=self.cache.stats())
            snap["policy"] = self.policy.to_dict()
            snap["workers"] = self.workers
            snap["engine_threads"] = self.threads
            snap["plan_memory"] = self.cache.memory_stats()
            snap["trace"] = self._trace_info()
            snap["admission"] = self.admission.snapshot()
            snap["draining"] = self._draining
            selfheal_info = self._selfheal_info()
            if selfheal_info is not None:
                snap["selfheal"] = selfheal_info
            if self._journal is not None:
                snap["journal"] = self._journal.snapshot()
            if self.journal_replay is not None:
                snap["journal_replay"] = self.journal_replay
            if self._router is not None:
                # Per-worker queue depth / restarts / shm bytes, plus the
                # workers' own plan-cache and arena stats (each worker
                # owns its cache — the front-end one above stays cold in
                # worker mode).  The stats ping blocks on worker round
                # trips, so it runs off the event loop.
                snap["worker_pool"] = await asyncio.get_running_loop(
                ).run_in_executor(
                    self._executor, lambda: self._router.stats(refresh=True)
                )
            return snap
        raise _HttpError(404, f"no route {path!r}")

    def _selfheal_info(self) -> Optional[dict]:
        """The controller snapshot plus live replica counts and the
        active ladder variants — what /metrics (JSON and Prometheus)
        exposes for the runbook's dashboards."""
        if self._selfheal is None:
            return None
        info = self._selfheal.snapshot()
        info["active_variants"] = dict(self._active_variant)
        if self._router is not None:
            info["replicas"] = {
                name: self._router.replicas_for(self._route_key_for(name))
                for name in self.registry.names()
            }
        return info

    # -- tracing ------------------------------------------------------------
    def _trace_info(self) -> dict:
        return {
            "rate": self.trace_rate,
            "buffer_spans": len(self.trace_buffer),
            "buffer_capacity": self.trace_buffer.capacity,
            "dropped": self.trace_buffer.dropped,
        }

    def _trace_endpoint(self, query: str) -> dict:
        """``GET /trace`` — the span buffer as Chrome trace-event JSON
        (Perfetto-loadable; the default) or raw span dicts
        (``?format=spans``, what ``repro loadgen --dump-slowest`` uses to
        rebuild span trees).  ``?request_id=<id>`` narrows to one
        request's spans plus their descendants."""
        params = urllib.parse.parse_qs(query)
        spans = self.trace_buffer.snapshot()
        rid = params.get("request_id", [None])[0]
        if rid:
            spans = obs_trace.filter_request(spans, rid)
        fmt = params.get("format", ["chrome"])[0]
        if fmt == "spans":
            return {
                "spans": [s.to_dict() for s in spans],
                "dropped": self.trace_buffer.dropped,
                "trace_rate": self.trace_rate,
            }
        if fmt != "chrome":
            raise _HttpError(400, f"unknown format {fmt!r} (chrome or spans)")
        return to_chrome_trace(spans, default_proc="frontend")

    def _sample_trace(self) -> bool:
        """Deterministic counter-based sampling at ``trace_rate`` (no RNG:
        a rate of 1/N traces exactly every Nth /predict request)."""
        rate = self.trace_rate
        if rate <= 0.0:
            return False
        if rate >= 1.0:
            return True
        self._trace_counter += 1
        period = max(1, round(1.0 / rate))
        return self._trace_counter % period == 1

    async def _models_post(self, body: bytes) -> dict:
        """``POST /models`` — blue/green deploy or rollback.

        Deploy:   ``{"artifact": path, "watch_s"?: s, "probe"?: bool}``
        Rollback: ``{"action": "rollback", "model": name}``

        See docs/operations.md 'Blue/green deploys and rollback'.
        """
        try:
            request = json.loads(body.decode() or "{}")
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise _HttpError(400, f"invalid JSON body: {exc}")
        if not isinstance(request, dict):
            raise _HttpError(400, "body must be a JSON object")
        action = request.get("action", "deploy")
        if action == "rollback":
            name = request.get("model")
            if not name:
                raise _HttpError(400, "rollback requires 'model'")
            if name not in self.registry:
                raise _HttpError(404, f"unknown model {name!r}")
            return await self.rollback_model(name)
        if action != "deploy":
            raise _HttpError(
                400, f"unknown action {action!r} (deploy or rollback)"
            )
        artifact = request.get("artifact")
        if not artifact or not isinstance(artifact, str):
            raise _HttpError(400, "deploy requires an 'artifact' path")
        watch_s = request.get("watch_s", 0.0)
        if not isinstance(watch_s, (int, float)) or watch_s < 0:
            raise _HttpError(400, "'watch_s' must be a non-negative number")
        probe = request.get("probe", True)
        from repro.engine.artifact import ArtifactError
        from repro.serve.registry import load_artifact_served

        try:
            served = load_artifact_served(
                artifact, lazy=self._router is not None
            )
        except FileNotFoundError:
            raise _HttpError(404, f"no artifact at {artifact!r}")
        except ArtifactError as exc:
            raise _HttpError(400, f"bad artifact {artifact!r}: {exc}")
        return await self.deploy_served(
            served, watch_s=float(watch_s), probe=bool(probe)
        )

    @staticmethod
    def _cancel_all(tasks) -> None:
        """Cancel a failed multi-sample request's sibling submissions.

        A cancelled future is skipped at batch dispatch, so accepted
        siblings neither burn engine time nor inflate the response
        metrics after the client has already received the error."""
        for task in tasks:
            if not task.done():
                task.cancel()

    @staticmethod
    def _decode_b64(sample, served) -> np.ndarray:
        """Decode one ``encoding: "b64"`` sample — zero-copy past decode.

        The wire form is base64 of raw little-endian float32 bytes in C
        order, shaped like the model's sample.  ``np.frombuffer`` views
        the decoded bytes directly and the reshape (plus the batch-axis
        expansion in ``validate_input``) stays a view, so the only
        full-tensor pass between the socket and the engine's input
        register is the unavoidable base64 decode itself.
        """
        if not isinstance(sample, str):
            raise _HttpError(400, "b64 encoding expects base64 strings")
        try:
            raw = base64.b64decode(sample, validate=True)
        except (binascii.Error, ValueError) as exc:
            raise _HttpError(400, f"invalid base64 sample: {exc}")
        expected = int(np.prod(served.sample_shape)) * 4
        if len(raw) != expected:
            raise _HttpError(
                400,
                f"b64 sample has {len(raw)} bytes; model {served.name!r} "
                f"expects {expected} (float32 {served.sample_shape})",
            )
        return np.frombuffer(raw, dtype="<f4").reshape(served.sample_shape)

    @staticmethod
    def _encode_output(output: np.ndarray, encoding: str):
        """One request's output slice → wire form.

        ``b64`` requests get their outputs back as base64 float32 too:
        the encode is two bulk passes (tobytes + b64) instead of
        ``tolist()``'s per-element float formatting, and the round trip
        is bit-exact by construction rather than via decimal repr.
        """
        if encoding == "b64":
            return base64.b64encode(
                np.ascontiguousarray(output, dtype="<f4").tobytes()
            ).decode("ascii")
        return output.tolist()

    async def _predict(
        self,
        body: bytes,
        request_id: Optional[str] = None,
        headers: Optional[Dict[str, str]] = None,
    ) -> dict:
        """Sampling wrapper: when this request is traced, wrap the whole
        handler in a root ``request`` span every downstream span (queue
        wait, batch, shm transport, worker kernel steps) hangs off."""
        sampled = self._sample_trace()
        if not sampled:
            return await self._predict_inner(body, request_id, None, headers)
        root_id = obs_trace.new_span_id()
        t0 = obs_trace.now_ns()
        status = 200
        model = None
        try:
            response = await self._predict_inner(
                body, request_id, root_id, headers
            )
            model = response.get("model")
            return response
        except _HttpError as exc:
            status = exc.status
            raise
        finally:
            self.trace_buffer.record(
                "request",
                "serve",
                t0,
                attrs={"path": "/predict", "status": status, "model": model},
                span_id=root_id,
                request_id=request_id,
                proc="frontend",
            )

    async def _predict_inner(
        self,
        body: bytes,
        request_id: Optional[str],
        trace_parent: Optional[str],
        headers: Optional[Dict[str, str]] = None,
    ) -> dict:
        headers = headers or {}
        if self._draining:
            # Typed drain refusal: nothing new is accepted, clients are
            # told to come back elsewhere (or later).
            raise _HttpError(
                503, "server draining: not accepting new requests",
                retry_after=1.0,
            )
        try:
            request = json.loads(body.decode() or "{}")
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise _HttpError(400, f"invalid JSON body: {exc}")
        if not isinstance(request, dict):
            raise _HttpError(400, "body must be a JSON object")
        names = self.registry.names()
        name = request.get("model")
        if name is None:
            if len(names) != 1:
                raise _HttpError(
                    400, f"'model' is required when {len(names)} models are loaded"
                )
            name = names[0]
        try:
            served = self.registry.get(name)
        except KeyError as exc:
            raise _HttpError(404, str(exc))
        if self._selfheal is not None:
            # Circuit gate: an open (or half-open) circuit fails fast
            # before any decode/queue work — clients see a typed 503
            # with Retry-After and never pile onto a broken model.
            allowed, retry_after = self._selfheal.allow(name)
            if not allowed:
                raise _HttpError(
                    503,
                    f"model {name!r}: circuit open, failing fast "
                    "(docs/operations.md 'Self-healing & autoscaling "
                    "runbook')",
                    retry_after=retry_after,
                    reason="circuit_open",
                )
        deadline_ms = request.get("deadline_ms")
        if deadline_ms is not None and not isinstance(deadline_ms, (int, float)):
            raise _HttpError(400, "'deadline_ms' must be a number")
        encoding = request.get("encoding", "json")
        if encoding not in ("json", "b64"):
            raise _HttpError(400, f"unknown encoding {encoding!r} (json or b64)")
        # Admission control (ISSUE 8): priority class from the body or
        # the X-Priority header, tenant likewise; the gate runs before
        # any decode work so a shed request costs nearly nothing.
        try:
            priority = resolve_priority(
                request.get("priority") or headers.get("x-priority")
            )
        except ValueError as exc:
            raise _HttpError(400, str(exc))
        tenant = request.get("tenant") or headers.get("x-tenant") or None
        if tenant is not None and not isinstance(tenant, str):
            raise _HttpError(400, "'tenant' must be a string")
        gate = self._batchers.get(name)
        try:
            level = self.admission.admit(
                priority,
                gate.queue_fill() if gate is not None else 0.0,
                tenant,
            )
        except RequestShed as exc:
            self.metrics.for_model(name).on_shed()
            raise _HttpError(
                429, f"request shed: {exc.reason}",
                retry_after=exc.retry_after,
            )

        if "inputs" in request:
            raw_samples = request["inputs"]
            if not isinstance(raw_samples, list) or not raw_samples:
                raise _HttpError(400, "'inputs' must be a non-empty list of samples")
            single = False
        elif "input" in request:
            raw_samples = [request["input"]]
            single = True
        else:
            raise _HttpError(400, "missing 'input' (one sample) or 'inputs' (list)")

        try:
            if encoding == "b64":
                raw_samples = [self._decode_b64(s, served) for s in raw_samples]
            samples = [served.validate_input(s) for s in raw_samples]
        except (ValueError, TypeError) as exc:
            raise _HttpError(400, str(exc))

        # Blue/green cutover can race this handler: it may look up the old
        # batcher right before the deploy swaps the pointer and drains it.
        # Submission (or an in-flight request at a drain timeout) then
        # fails with BatcherStopped — refresh the lookup and retry against
        # the freshly installed batcher, so clients never observe the
        # swap (docs/operations.md 'Blue/green deploys and rollback').
        for attempt in range(5):
            batcher = await self._ensure_batcher(name)
            tasks = []
            try:
                if len(samples) == 1:  # hot path: no gather/task machinery
                    results = [
                        await batcher.submit(
                            samples[0],
                            deadline_ms=deadline_ms,
                            request_id=request_id,
                            trace_parent=trace_parent,
                            priority=level,
                        )
                    ]
                else:
                    tasks = [
                        asyncio.ensure_future(
                            batcher.submit(
                                s,
                                deadline_ms=deadline_ms,
                                request_id=request_id,
                                trace_parent=trace_parent,
                                priority=level,
                            )
                        )
                        for s in samples
                    ]
                    results = await asyncio.gather(*tasks)
                break
            except BatcherStopped:
                self._cancel_all(tasks)
                await asyncio.sleep(0.01)
                continue
            except QueueSaturated as exc:
                self._cancel_all(tasks)
                raise _HttpError(429, str(exc), retry_after=0.05)
            except DeadlineExceeded as exc:
                self._cancel_all(tasks)
                raise _HttpError(504, str(exc))
            except ExecutionFailed as exc:
                self._cancel_all(tasks)
                if self._selfheal is not None:
                    # Deterministic model failure — the only signal that
                    # trips the circuit (sheds/deadlines are load, not
                    # health).
                    self._selfheal.record_error(name)
                raise _HttpError(500, str(exc))
        else:
            raise _HttpError(
                503,
                f"model {name!r}: deployment cutover in progress",
                retry_after=0.1,
            )
        if self._selfheal is not None:
            self._selfheal.record_success(name)

        if single:
            result = results[0]
            response = {
                "model": name,
                "output": self._encode_output(result.output[0], encoding),
                "batch_size": result.batch_size,
                "queue_ms": result.queue_ms,
                "run_ms": result.run_ms,
            }
        else:
            response = {
                "model": name,
                "outputs": [
                    self._encode_output(r.output[0], encoding) for r in results
                ],
                "meta": [
                    {
                        "batch_size": r.batch_size,
                        "queue_ms": r.queue_ms,
                        "run_ms": r.run_ms,
                    }
                    for r in results
                ],
            }
        if encoding == "b64":
            response["encoding"] = "b64"
            response["output_shape"] = list(results[0].output[0].shape)
        if self._selfheal is not None and self._selfheal.ladder(name) is not None:
            # Brownout transparency: laddered models always say which
            # rung answered (lifted into the X-Served-Variant header).
            response["served_variant"] = self._active_variant.get(name, name)
        if request_id is not None:
            response["request_id"] = request_id
        return response


# ---------------------------------------------------------------------------
# Background runner (tests, benchmarks, examples)
# ---------------------------------------------------------------------------


class ServerHandle:
    """A server running on a daemon thread with its own event loop."""

    def __init__(self, server: InferenceServer):
        self.server = server
        self._ready = threading.Event()
        self._failure: Optional[BaseException] = None
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._stop_event: Optional[asyncio.Event] = None
        self._thread = threading.Thread(target=self._run, daemon=True)

    @property
    def base_url(self) -> str:
        return f"http://{self.server.host}:{self.server.port}"

    def start(self, timeout: float = 30.0) -> "ServerHandle":
        if not self._thread.is_alive() and not self._ready.is_set():
            self._thread.start()
        if not self._ready.wait(timeout):
            raise RuntimeError("server did not become ready in time")
        if self._failure is not None:
            raise RuntimeError("server failed to start") from self._failure
        return self

    def _run(self) -> None:
        async def main():
            self._stop_event = asyncio.Event()
            try:
                await self.server.start()
            except BaseException as exc:
                self._failure = exc
                self._ready.set()
                return
            self._loop = asyncio.get_running_loop()
            self._ready.set()
            try:
                await self._stop_event.wait()
            finally:
                await self.server.stop()

        asyncio.run(main())

    def drain(self, timeout: float = 30.0) -> bool:
        """Run the server's graceful drain from the caller's thread."""
        if self._loop is None:
            return True
        future = asyncio.run_coroutine_threadsafe(
            self.server.drain(timeout), self._loop
        )
        return future.result(timeout + 5.0)

    def stop(self, timeout: float = 10.0) -> None:
        if self._loop is not None and self._stop_event is not None:
            self._loop.call_soon_threadsafe(self._stop_event.set)
        self._thread.join(timeout)

    def __enter__(self) -> "ServerHandle":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.stop()


def start_in_background(
    registry: ModelRegistry,
    policy: Optional[BatchPolicy] = None,
    host: str = "127.0.0.1",
    port: int = 0,
    workers: int = 0,
    threads: Optional[int] = None,
    executor_threads: Optional[int] = None,
    worker_replicas: Optional[int] = None,
    worker_health_interval: Optional[float] = 2.0,
    trace_rate: Optional[float] = None,
    admission: Optional[AdmissionPolicy] = None,
    chaos: Optional[str] = None,
    worker_reply_timeout: float = 120.0,
    selfheal: Optional[SelfHealPolicy] = None,
    state_dir: Optional[str] = None,
) -> ServerHandle:
    """Start an :class:`InferenceServer` on a daemon thread (ephemeral port
    by default) and block until it accepts connections.

    ``workers=0`` serves in-process (the default); ``workers=N`` forks
    ``N`` sharded worker processes (see :class:`InferenceServer`).
    ``selfheal`` enables the self-healing control plane and ``state_dir``
    its crash-consistent journal (docs/operations.md 'Self-healing &
    autoscaling runbook').
    """
    server = InferenceServer(
        registry, policy=policy, host=host, port=port, workers=workers,
        threads=threads, executor_threads=executor_threads,
        worker_replicas=worker_replicas,
        worker_health_interval=worker_health_interval,
        trace_rate=trace_rate, admission=admission, chaos=chaos,
        worker_reply_timeout=worker_reply_timeout,
        selfheal=selfheal, state_dir=state_dir,
    )
    return ServerHandle(server).start(timeout=300.0)
