"""Replica autoscaling: per-model worker replica counts from live signals.

One :class:`ReplicaAutoscaler` drives every served model.  Each control
tick the server hands it a :class:`ModelSignals` snapshot — queue fill
from the model's :class:`~repro.serve.batcher.DynamicBatcher`, and the
cumulative shed / deadline-miss counters from
:class:`~repro.serve.metrics.ModelMetrics` (the autoscaler diffs them
internally, so callers pass raw totals) — and gets back at most one
:class:`ScaleDecision` per model.

The decision logic is the textbook stable-control recipe
(docs/operations.md 'Self-healing & autoscaling runbook'):

* **hysteresis band** — scale up when ``queue_fill >= up_queue_fill``
  *or* sheds / deadline misses occurred since the last tick; scale down
  only when ``queue_fill <= down_queue_fill`` *and* the model has been
  pressure-free for ``down_stable_ticks`` consecutive ticks.  The gap
  between the two fill thresholds is what keeps a borderline load from
  oscillating the replica count.
* **cooldowns** — a scale-up is refused within ``up_cooldown_s`` of the
  previous scale event, a scale-down within ``down_cooldown_s`` (down
  is deliberately the longer one: adding capacity is cheap, thrashing
  a draining replica is not).
* **min/max bounds** — replicas stay within
  ``[min_replicas, max_replicas]``; ``max_replicas`` is clamped to the
  worker-pool size by the server.
* **flap suppression** — if the last ``flap_window`` decisions contain
  ``flap_reversals`` or more direction reversals (up→down or down→up),
  the model is frozen for ``flap_freeze_s``: a workload that oscillates
  faster than the cooldowns can damp is left at its current size
  instead of being chased.

Everything is driven by an injectable ``clock`` (the
:class:`~repro.serve.admission.AdmissionController` pattern), so tests
script whole load traces without a single sleep.
"""

from __future__ import annotations

import time
from collections import deque
from dataclasses import dataclass, field
from typing import Callable, Deque, Dict, List, Optional


@dataclass(frozen=True)
class AutoscalePolicy:
    """Knobs of the replica control loop (all times in seconds)."""

    min_replicas: int = 1
    max_replicas: int = 4
    #: Queue-fill fraction at/above which the model is under pressure.
    up_queue_fill: float = 0.5
    #: Queue-fill fraction at/below which the model counts as calm;
    #: must sit strictly below ``up_queue_fill`` (hysteresis band).
    down_queue_fill: float = 0.1
    up_cooldown_s: float = 2.0
    down_cooldown_s: float = 10.0
    #: Consecutive calm ticks required before a scale-down.
    down_stable_ticks: int = 3
    #: Sliding window of recent decisions inspected for flapping.
    flap_window: int = 6
    #: Direction reversals within the window that trigger a freeze.
    flap_reversals: int = 3
    flap_freeze_s: float = 30.0

    def __post_init__(self):
        if self.min_replicas < 1:
            raise ValueError("min_replicas must be >= 1")
        if self.max_replicas < self.min_replicas:
            raise ValueError("max_replicas must be >= min_replicas")
        if not (0.0 <= self.down_queue_fill < self.up_queue_fill <= 1.0):
            raise ValueError(
                "need 0 <= down_queue_fill < up_queue_fill <= 1 "
                "(the hysteresis band must have width)"
            )
        if self.down_stable_ticks < 1:
            raise ValueError("down_stable_ticks must be >= 1")

    def to_dict(self) -> dict:
        return {
            "min_replicas": self.min_replicas,
            "max_replicas": self.max_replicas,
            "up_queue_fill": self.up_queue_fill,
            "down_queue_fill": self.down_queue_fill,
            "up_cooldown_s": self.up_cooldown_s,
            "down_cooldown_s": self.down_cooldown_s,
            "down_stable_ticks": self.down_stable_ticks,
            "flap_window": self.flap_window,
            "flap_reversals": self.flap_reversals,
            "flap_freeze_s": self.flap_freeze_s,
        }


@dataclass(frozen=True)
class ModelSignals:
    """One tick's observation for one model.

    ``shed_total`` / ``deadline_exceeded_total`` / ``errors_total`` are
    the *cumulative* counters straight off
    :meth:`repro.serve.metrics.ModelMetrics.snapshot` — the autoscaler
    (and the selfheal controller) keep the previous sample and react to
    the delta, so a long-dead burst of sheds cannot keep a model
    "under pressure" forever.
    """

    queue_fill: float = 0.0
    shed_total: int = 0
    deadline_exceeded_total: int = 0
    errors_total: int = 0
    replicas: int = 1


@dataclass(frozen=True)
class ScaleDecision:
    """One replica-count change the server should apply (and journal)."""

    model: str
    direction: str  # "up" | "down"
    from_replicas: int
    to_replicas: int
    reason: str


@dataclass
class _ModelScaleState:
    last_scale_at: float = float("-inf")
    calm_ticks: int = 0
    #: Recent decision directions, oldest first, for flap detection.
    recent: Deque[str] = field(default_factory=deque)
    frozen_until: float = float("-inf")
    last_shed: int = 0
    last_miss: int = 0
    primed: bool = False


class ReplicaAutoscaler:
    """Turns per-model :class:`ModelSignals` into :class:`ScaleDecision`s."""

    def __init__(
        self,
        policy: Optional[AutoscalePolicy] = None,
        clock: Callable[[], float] = time.monotonic,
    ):
        self.policy = policy or AutoscalePolicy()
        self._clock = clock
        self._state: Dict[str, _ModelScaleState] = {}
        self.decisions_total = 0
        self.flap_freezes_total = 0

    def _state_for(self, model: str) -> _ModelScaleState:
        state = self._state.get(model)
        if state is None:
            state = self._state[model] = _ModelScaleState()
        return state

    def _record(self, state: _ModelScaleState, direction: str, now: float) -> None:
        state.last_scale_at = now
        state.calm_ticks = 0
        state.recent.append(direction)
        while len(state.recent) > self.policy.flap_window:
            state.recent.popleft()
        reversals = sum(
            1
            for a, b in zip(state.recent, list(state.recent)[1:])
            if a != b
        )
        if reversals >= self.policy.flap_reversals:
            state.frozen_until = now + self.policy.flap_freeze_s
            state.recent.clear()
            self.flap_freezes_total += 1
        self.decisions_total += 1

    def observe(self, model: str, signals: ModelSignals) -> Optional[ScaleDecision]:
        """One control tick for one model; at most one step of ±1 replica."""
        policy = self.policy
        state = self._state_for(model)
        now = self._clock()
        shed_delta = max(0, signals.shed_total - state.last_shed)
        miss_delta = max(0, signals.deadline_exceeded_total - state.last_miss)
        primed = state.primed
        state.last_shed = signals.shed_total
        state.last_miss = signals.deadline_exceeded_total
        state.primed = True
        if not primed:
            # First sighting: the counters' history predates this
            # autoscaler (server restart) — baseline, don't react.
            return None

        pressure = (
            signals.queue_fill >= policy.up_queue_fill
            or shed_delta > 0
            or miss_delta > 0
        )
        calm = (
            signals.queue_fill <= policy.down_queue_fill
            and shed_delta == 0
            and miss_delta == 0
        )
        state.calm_ticks = state.calm_ticks + 1 if calm else 0

        if now < state.frozen_until:
            return None
        replicas = signals.replicas
        if pressure and replicas < policy.max_replicas:
            if now - state.last_scale_at < policy.up_cooldown_s:
                return None
            reasons = []
            if signals.queue_fill >= policy.up_queue_fill:
                reasons.append(f"queue_fill={signals.queue_fill:.2f}")
            if shed_delta:
                reasons.append(f"sheds+{shed_delta}")
            if miss_delta:
                reasons.append(f"deadline_misses+{miss_delta}")
            decision = ScaleDecision(
                model, "up", replicas, replicas + 1, ", ".join(reasons)
            )
            self._record(state, "up", now)
            return decision
        if (
            state.calm_ticks >= policy.down_stable_ticks
            and replicas > policy.min_replicas
        ):
            if now - state.last_scale_at < policy.down_cooldown_s:
                return None
            decision = ScaleDecision(
                model,
                "down",
                replicas,
                replicas - 1,
                f"calm for {state.calm_ticks} ticks "
                f"(queue_fill={signals.queue_fill:.2f})",
            )
            self._record(state, "down", now)
            return decision
        return None

    def frozen(self, model: str) -> bool:
        state = self._state.get(model)
        return state is not None and self._clock() < state.frozen_until

    def snapshot(self) -> dict:
        now = self._clock()
        return {
            "policy": self.policy.to_dict(),
            "decisions_total": self.decisions_total,
            "flap_freezes_total": self.flap_freezes_total,
            "models": {
                model: {
                    "calm_ticks": state.calm_ticks,
                    "frozen": now < state.frozen_until,
                    "recent": list(state.recent),
                }
                for model, state in self._state.items()
            },
        }


__all__ = [
    "AutoscalePolicy",
    "ModelSignals",
    "ReplicaAutoscaler",
    "ScaleDecision",
]
