"""Prometheus text exposition for ``/metrics``.

``GET /metrics`` stays JSON by default; with ``Accept: text/plain`` (or
``application/openmetrics-text``) the server renders this exposition
instead.  Counters and lifetime latency histograms come from
:meth:`ModelMetrics.prom_data`; latency buckets carry OpenMetrics-style
exemplars (``# {request_id="..."} value``) so a scraped p99 spike can be
joined to its request timeline via ``GET /trace?request_id=...``.  The
per-step series only grow when tracing samples batches (the server's
``trace_rate``), so an untraced deployment pays nothing for them.

See docs/observability.md ("Prometheus exposition") for the full series
list and the exemplar caveat (exemplars follow the OpenMetrics syntax;
strict ``version=0.0.4`` parsers that reject them should scrape with an
OpenMetrics accept header or strip trailing ``#`` comments).
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.serve.metrics import (
    LATENCY_BUCKETS_MS,
    STEP_BUCKETS_MS,
    ServerMetrics,
)

PROM_CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"


def _escape(value: str) -> str:
    return (
        value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")
    )


def _fmt(value: float) -> str:
    # Prometheus floats: integral values print without the trailing .0
    if float(value) == int(value):
        return str(int(value))
    return repr(float(value))


def wants_prometheus(accept_header: Optional[str]) -> bool:
    """Content negotiation for /metrics: JSON unless the client asks for
    a text exposition explicitly (``text/plain`` or OpenMetrics)."""
    if not accept_header:
        return False
    accept = accept_header.lower()
    if "application/openmetrics-text" in accept:
        return True
    text_pos = accept.find("text/plain")
    if text_pos == -1:
        return False
    # An explicit JSON preference listed first wins.
    json_pos = accept.find("application/json")
    return json_pos == -1 or text_pos < json_pos


def render_prometheus(
    metrics: ServerMetrics,
    trace_info: Optional[Dict] = None,
    worker_info: Optional[Dict] = None,
    selfheal_info: Optional[Dict] = None,
) -> str:
    """Render the whole-server exposition document.

    ``worker_info`` (only with ``--workers``) carries the router's
    pool-level resilience counters: respawns, watchdog kills, batch
    retries, corrupt-transport detections.  ``selfheal_info`` is
    :meth:`SelfHealController.snapshot` — circuit states, ladder rungs,
    autoscale decisions (docs/operations.md 'Self-healing & autoscaling
    runbook').
    """
    lines: List[str] = []

    def head(name: str, kind: str, help_text: str) -> None:
        lines.append(f"# HELP {name} {help_text}")
        lines.append(f"# TYPE {name} {kind}")

    head("repro_uptime_seconds", "gauge", "Seconds since server start.")
    lines.append(f"repro_uptime_seconds {_fmt(metrics.uptime_s())}")

    if selfheal_info:
        from repro.serve.selfheal import CIRCUIT_STATE_CODE

        circuits = selfheal_info.get("circuits") or {}
        if circuits:
            head(
                "repro_circuit_state",
                "gauge",
                "Circuit-breaker state per model (0=closed, 1=half_open, "
                "2=open).",
            )
            for model, circuit in sorted(circuits.items()):
                code = CIRCUIT_STATE_CODE.get(circuit.get("state"), 0)
                lines.append(
                    f'repro_circuit_state{{model="{_escape(model)}"}} {code}'
                )
            head(
                "repro_circuit_opens_total",
                "counter",
                "Times each model's circuit opened.",
            )
            for model, circuit in sorted(circuits.items()):
                lines.append(
                    f'repro_circuit_opens_total{{model="{_escape(model)}"}} '
                    f"{_fmt(circuit.get('opens_total', 0))}"
                )
        ladders = selfheal_info.get("ladders") or {}
        if ladders:
            head(
                "repro_brownout_position",
                "gauge",
                "Brownout ladder rung per model (0 = full quality).",
            )
            for model, ladder in sorted(ladders.items()):
                lines.append(
                    f'repro_brownout_position{{model="{_escape(model)}"}} '
                    f"{_fmt(ladder.get('position', 0))}"
                )
        autoscale = selfheal_info.get("autoscale")
        if autoscale:
            head(
                "repro_autoscale_decisions_total",
                "counter",
                "Replica scale decisions applied by the autoscaler.",
            )
            lines.append(
                "repro_autoscale_decisions_total "
                f"{_fmt(autoscale.get('decisions_total', 0))}"
            )
            head(
                "repro_autoscale_flap_freezes_total",
                "counter",
                "Flap-suppression freezes entered by the autoscaler.",
            )
            lines.append(
                "repro_autoscale_flap_freezes_total "
                f"{_fmt(autoscale.get('flap_freezes_total', 0))}"
            )
        replicas = selfheal_info.get("replicas") or {}
        if replicas:
            head(
                "repro_model_replicas",
                "gauge",
                "Worker replicas currently serving each model.",
            )
            for model, count in sorted(replicas.items()):
                lines.append(
                    f'repro_model_replicas{{model="{_escape(model)}"}} '
                    f"{_fmt(count)}"
                )

    if worker_info:
        pool_help = {
            "worker_restarts": (
                "repro_worker_restarts_total",
                "Worker processes respawned after death.",
            ),
            "watchdog_kills": (
                "repro_watchdog_kills_total",
                "Workers killed by the watchdog (hang probe or reply "
                "timeout).",
            ),
            "retries_total": (
                "repro_worker_retries_total",
                "Batches re-submitted after a worker death or corrupt "
                "response.",
            ),
            "corrupt_responses_total": (
                "repro_corrupt_responses_total",
                "Responses that failed their transport checksum.",
            ),
        }
        for key, (series, help_text) in pool_help.items():
            if key in worker_info:
                head(series, "counter", help_text)
                lines.append(f"{series} {_fmt(worker_info[key])}")

    if trace_info:
        head(
            "repro_trace_buffer_spans",
            "gauge",
            "Spans currently held by the trace ring buffer.",
        )
        lines.append(
            f"repro_trace_buffer_spans {_fmt(trace_info.get('buffer_spans', 0))}"
        )
        head(
            "repro_trace_sample_rate",
            "gauge",
            "Fraction of /predict requests recorded as traces.",
        )
        lines.append(
            f"repro_trace_sample_rate {_fmt(trace_info.get('rate', 0.0))}"
        )

    counter_help = {
        "requests_total": "Requests accepted into the queue.",
        "responses_total": "Requests answered successfully.",
        "rejected_total": "Backpressure rejections (HTTP 429).",
        "shed_total": "Admission-control sheds before the queue (HTTP 429).",
        "deadline_exceeded_total": "Deadline expiries (HTTP 504).",
        "errors_total": "Execution failures (HTTP 500).",
        "batches_total": "Coalesced engine batches executed.",
        "batched_samples_total": "Samples executed across all batches.",
    }

    names = sorted(metrics.model_names())
    data = {name: metrics.for_model(name).prom_data() for name in names}

    for counter, help_text in counter_help.items():
        head(f"repro_{counter}", "counter", help_text)
        for name in names:
            lines.append(
                f'repro_{counter}{{model="{_escape(name)}"}} '
                f"{_fmt(data[name]['counters'][counter])}"
            )

    head(
        "repro_request_latency_ms",
        "histogram",
        "End-to-end request latency (enqueue to reply), milliseconds; "
        "buckets carry request-id exemplars.",
    )
    for name in names:
        d = data[name]
        cumulative = 0
        for i, le in enumerate(list(LATENCY_BUCKETS_MS) + ["+Inf"]):
            cumulative += d["latency_buckets"][i]
            le_txt = "+Inf" if le == "+Inf" else _fmt(le)
            line = (
                f"repro_request_latency_ms_bucket"
                f'{{model="{_escape(name)}",le="{le_txt}"}} {cumulative}'
            )
            exemplar = d["exemplars"].get(i)
            if exemplar is not None:
                rid, value = exemplar
                line += (
                    f' # {{request_id="{_escape(str(rid))}"}} '
                    f"{_fmt(round(value, 3))}"
                )
            lines.append(line)
        lines.append(
            f'repro_request_latency_ms_sum{{model="{_escape(name)}"}} '
            f"{_fmt(round(d['latency_sum_ms'], 3))}"
        )
        lines.append(
            f'repro_request_latency_ms_count{{model="{_escape(name)}"}} '
            f"{d['latency_count']}"
        )

    any_steps = any(d["steps"] for d in data.values())
    if any_steps:
        head(
            "repro_step_latency_ms",
            "histogram",
            "Per-plan-step kernel latency from traced batches, "
            "milliseconds (sampled at the trace rate).",
        )
        for name in names:
            for label, (count, sum_ms, buckets) in sorted(
                data[name]["steps"].items()
            ):
                base = (
                    f'model="{_escape(name)}",step="{_escape(label)}"'
                )
                cumulative = 0
                for i, le in enumerate(list(STEP_BUCKETS_MS) + ["+Inf"]):
                    cumulative += buckets[i]
                    le_txt = "+Inf" if le == "+Inf" else _fmt(le)
                    lines.append(
                        f"repro_step_latency_ms_bucket{{{base},"
                        f'le="{le_txt}"}} {cumulative}'
                    )
                lines.append(
                    f"repro_step_latency_ms_sum{{{base}}} "
                    f"{_fmt(round(sum_ms, 3))}"
                )
                lines.append(
                    f"repro_step_latency_ms_count{{{base}}} {count}"
                )

    return "\n".join(lines) + "\n"
