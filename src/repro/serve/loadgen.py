"""Load generators (closed- and open-loop) + the serving benchmarks.

:func:`run_load` drives a running server with ``concurrency`` closed-loop
worker threads (each with its own keep-alive connection) and reports
client-side latency percentiles plus server-side batch statistics (taken
as a ``/metrics`` delta, so only this run's batches are counted).

:func:`run_open_loop` instead fires requests on a seeded Poisson arrival
process at a fixed offered rate — arrivals don't wait for responses, so
an overloaded server *stays* offered-overloaded instead of being
throttled by its own latency (the closed-loop coordination artifact).
That is the honest way to measure shedding: :func:`measure_overload_goodput`
runs it at 2× measured capacity and reports *goodput* (on-time successes
per second), the ``overload_goodput`` entry in ``BENCH_serve.json``.

:func:`benchmark_serving` is the self-contained sweep behind
``benchmarks/bench_serve_throughput.py`` and ``repro loadgen --sweep``:
it starts an in-process server per batching policy, sweeps concurrency,
verifies bit-identity of served outputs against direct
``CompiledPlan.run`` on the reference backend, and writes
``BENCH_serve.json``.
"""

from __future__ import annotations

import json
import queue
import random
import threading
import time
import uuid
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.serve.batcher import BatchPolicy
from repro.serve.client import ServeClient, ServeError
from repro.serve.registry import ModelRegistry, ModelSpec
from repro.serve.server import start_in_background

#: The two policies the benchmark compares: batch-1 serving (the control)
#: vs dynamic micro-batching.
POLICIES: Dict[str, BatchPolicy] = {
    "batch1": BatchPolicy(
        max_batch_size=1, max_wait_ms=0.0, max_queue=512, default_deadline_ms=30000
    ),
    "dynamic": BatchPolicy(
        max_batch_size=64, max_wait_ms=8.0, max_queue=512, default_deadline_ms=30000
    ),
}


def _model_metrics(client: ServeClient, model: str) -> dict:
    return client.metrics()["models"].get(model, {})


def _best_of_trials(
    base_url: str, model: str, samples, concurrency: int,
    total_requests: int, trials: int,
) -> dict:
    """Best-throughput trial of ``run_load`` (wall-clock interference on
    a shared host only ever lowers closed-loop throughput, so the best
    trial is the least-interfered estimate) — the one measurement rule
    every number in the serving report comes from."""
    return max(
        (
            run_load(
                base_url, model, samples,
                concurrency=concurrency, total_requests=total_requests,
            )
            for _ in range(max(1, trials))
        ),
        key=lambda s: s["throughput_rps"],
    )


def run_load(
    base_url: str,
    model: str,
    samples: np.ndarray,
    concurrency: int = 16,
    total_requests: int = 256,
    deadline_ms: Optional[float] = None,
    warmup_requests: int = 8,
    timeout: float = 120.0,
    encoding: str = "b64",
    preconnect: bool = True,
) -> dict:
    """Closed-loop load: ``concurrency`` workers, ``total_requests`` total.

    ``samples`` is ``(N, C, H, W)``; workers cycle through it.  Payloads
    default to the ``b64`` wire encoding so the generator measures the
    serving stack rather than JSON float formatting.  Returns a stats
    dict (throughput, latency percentiles, error counts, and the
    server-side batch-size profile observed during the run).

    Each worker thread establishes its keep-alive connection *before*
    the start barrier (``preconnect``), so the first timed request
    measures request → full-body-read like every later one instead of
    folding TCP connection setup into its latency — on a cold
    accept-queue that inflates p99 by the whole connect cost.
    (``preconnect=False`` reproduces the old, inflated timing; it exists
    for the regression test.)

    Every request carries a generated ``X-Request-Id`` (``lg-…``), and
    the returned stats include ``slowest`` — the worst-latency
    ``(request_id, latency_ms)`` pairs — so a traced server's span trees
    for exactly those requests can be pulled afterwards
    (:func:`dump_slowest`, ``repro loadgen --dump-slowest N``).
    """
    if concurrency < 1 or total_requests < 1:
        raise ValueError("concurrency and total_requests must be >= 1")
    samples = np.asarray(samples, dtype=np.float32)
    payloads = [
        ServeClient.encode_sample(samples[i], encoding)
        for i in range(samples.shape[0])
    ]
    extra = {} if encoding == "json" else {"encoding": encoding}

    with ServeClient(base_url, timeout=timeout) as probe:
        for i in range(warmup_requests):
            probe.request(
                "POST",
                "/predict",
                {"model": model, "input": payloads[i % len(payloads)], **extra},
            )
        before = _model_metrics(probe, model)

    latencies: List[List[float]] = [[] for _ in range(concurrency)]
    request_log: List[List[Tuple[str, float]]] = [[] for _ in range(concurrency)]
    status_counts: Dict[int, int] = {}
    counts_lock = threading.Lock()
    barrier = threading.Barrier(concurrency + 1)
    shares = [
        total_requests // concurrency + (1 if i < total_requests % concurrency else 0)
        for i in range(concurrency)
    ]

    def worker(index: int) -> None:
        with ServeClient(base_url, timeout=timeout) as client:
            if preconnect:
                try:
                    client.connect()
                except OSError:
                    pass  # the timed path will retry (and count) it
            barrier.wait()
            for j in range(shares[index]):
                payload = {
                    "model": model,
                    "input": payloads[(index + j * concurrency) % len(payloads)],
                    **extra,
                }
                if deadline_ms is not None:
                    payload["deadline_ms"] = deadline_ms
                rid = f"lg-{uuid.uuid4().hex[:12]}"
                start = time.perf_counter()
                try:
                    client.request(
                        "POST", "/predict", payload,
                        headers={"X-Request-Id": rid},
                    )
                except ServeError as exc:
                    with counts_lock:
                        status_counts[exc.status] = status_counts.get(exc.status, 0) + 1
                    continue
                except Exception:  # noqa: BLE001 — timeout / reset / refused:
                    # count it and keep the worker alive (the client
                    # reconnects on the next request) so the run's stats
                    # cover every request instead of silently truncating.
                    with counts_lock:
                        status_counts["transport"] = (
                            status_counts.get("transport", 0) + 1
                        )
                    continue
                latency_ms = (time.perf_counter() - start) * 1e3
                latencies[index].append(latency_ms)
                request_log[index].append((rid, latency_ms))

    threads = [
        threading.Thread(target=worker, args=(i,), daemon=True)
        for i in range(concurrency)
    ]
    for thread in threads:
        thread.start()
    barrier.wait()
    t0 = time.perf_counter()
    for thread in threads:
        thread.join()
    duration_s = time.perf_counter() - t0

    with ServeClient(base_url, timeout=timeout) as probe:
        after = _model_metrics(probe, model)

    flat = np.asarray([ms for per in latencies for ms in per], dtype=np.float64)
    completed = int(flat.size)
    stats = {
        "concurrency": concurrency,
        "total_requests": total_requests,
        "completed": completed,
        "failed_by_status": {
            str(k): v
            for k, v in sorted(status_counts.items(), key=lambda kv: str(kv[0]))
        },
        "duration_s": duration_s,
        "throughput_rps": completed / duration_s if duration_s > 0 else 0.0,
    }
    if completed:
        p50, p95, p99 = np.percentile(flat, [50, 95, 99])
        stats.update(
            mean_ms=float(flat.mean()),
            p50_ms=float(p50),
            p95_ms=float(p95),
            p99_ms=float(p99),
            max_ms=float(flat.max()),
        )
    batches = after.get("batches_total", 0) - before.get("batches_total", 0)
    batched = after.get("batched_samples_total", 0) - before.get(
        "batched_samples_total", 0
    )
    stats["batches"] = batches
    stats["mean_batch_size"] = batched / batches if batches else 0.0
    all_requests = [pair for per in request_log for pair in per]
    all_requests.sort(key=lambda pair: pair[1], reverse=True)
    stats["slowest"] = [
        {"request_id": rid, "latency_ms": ms}
        for rid, ms in all_requests[:16]
    ]
    return stats


def poisson_arrivals(
    rate_rps: float, duration_s: float, seed: int = 0
) -> List[float]:
    """Arrival offsets (seconds) of a Poisson process: seeded exponential
    inter-arrival gaps at ``rate_rps``, truncated at ``duration_s``.

    Pure and deterministic — the schedule a given ``(rate, duration,
    seed)`` produces is identical everywhere, so open-loop runs are
    replayable."""
    if rate_rps <= 0:
        raise ValueError("rate_rps must be > 0")
    if duration_s <= 0:
        raise ValueError("duration_s must be > 0")
    rng = random.Random(seed)
    out: List[float] = []
    t = rng.expovariate(rate_rps)
    while t < duration_s:
        out.append(t)
        t += rng.expovariate(rate_rps)
    return out


#: Default traffic mix for :func:`run_open_loop`: one standard class,
#: no deadline — callers override with an explicit mix.
_DEFAULT_CLASSES = ({"name": "standard", "priority": "standard", "weight": 1.0},)


def run_open_loop(
    base_url: str,
    model: str,
    samples: np.ndarray,
    rate_rps: float,
    duration_s: float,
    classes: Optional[Sequence[dict]] = None,
    seed: int = 0,
    encoding: str = "b64",
    timeout: float = 30.0,
    client_threads: int = 32,
    collect_request_ids: bool = False,
) -> dict:
    """Open-loop load: requests fire on a seeded Poisson schedule.

    Each arrival draws a traffic *class* — ``{"name", "priority",
    "deadline_ms", "weight", "tenant"}`` (all but ``name`` optional) —
    by weight from the same seed, so a run is fully replayable.  A pool
    of ``client_threads`` sender threads (each with its own keep-alive
    connection) drains the schedule; because senders never wait for a
    response before the *next arrival is due*, an overloaded server
    keeps receiving the offered rate.

    Every request's outcome is recorded — 2xx, typed HTTP status, or
    ``transport`` — so ``sent == accounted`` detects silent drops.
    *Goodput* counts only 2xx responses that beat their class deadline
    (classes without one count every 2xx).  With
    ``collect_request_ids``, per-outcome request-id lists come back too
    (how the overload gate joins 504s against executed batch spans).
    """
    class_list = [dict(c) for c in (classes or _DEFAULT_CLASSES)]
    for c in class_list:
        c.setdefault("priority", "standard")
        c.setdefault("deadline_ms", None)
        c.setdefault("weight", 1.0)
        c.setdefault("tenant", None)
    arrivals = poisson_arrivals(rate_rps, duration_s, seed=seed)
    rng = random.Random(seed ^ 0x9E3779B9)
    assigned = rng.choices(
        range(len(class_list)),
        weights=[c["weight"] for c in class_list],
        k=len(arrivals),
    )

    samples = np.asarray(samples, dtype=np.float32)
    payloads = [
        ServeClient.encode_sample(samples[i], encoding)
        for i in range(samples.shape[0])
    ]
    extra = {} if encoding == "json" else {"encoding": encoding}

    jobs: "queue.Queue" = queue.Queue()
    records: List[Tuple[int, object, float, str]] = []  # (class, status, ms, rid)
    records_lock = threading.Lock()

    def sender() -> None:
        with ServeClient(base_url, timeout=timeout) as client:
            try:
                client.connect()
            except Exception:  # noqa: BLE001 — the timed path will retry
                pass
            while True:
                job = jobs.get()
                if job is None:
                    return
                index, cls_index = job
                cls = class_list[cls_index]
                payload = {
                    "model": model,
                    "input": payloads[index % len(payloads)],
                    "priority": cls["priority"],
                    **extra,
                }
                if cls["deadline_ms"] is not None:
                    payload["deadline_ms"] = cls["deadline_ms"]
                if cls["tenant"] is not None:
                    payload["tenant"] = cls["tenant"]
                rid = f"ol-{index:06d}-{uuid.uuid4().hex[:8]}"
                t0 = time.perf_counter()
                try:
                    client.request(
                        "POST", "/predict", payload,
                        headers={"X-Request-Id": rid},
                    )
                    status: object = 200
                except ServeError as exc:
                    status = exc.status
                except Exception:  # noqa: BLE001 — reset / timeout / refused
                    status = "transport"
                latency_ms = (time.perf_counter() - t0) * 1e3
                with records_lock:
                    records.append((cls_index, status, latency_ms, rid))

    n_threads = max(1, min(client_threads, len(arrivals) or 1))
    threads = [
        threading.Thread(target=sender, daemon=True) for _ in range(n_threads)
    ]
    for thread in threads:
        thread.start()
    t_start = time.perf_counter()
    for index, (t_due, cls_index) in enumerate(zip(arrivals, assigned)):
        lag = t_due - (time.perf_counter() - t_start)
        if lag > 0:
            time.sleep(lag)
        jobs.put((index, cls_index))
    for _ in threads:
        jobs.put(None)
    for thread in threads:
        thread.join()
    elapsed_s = time.perf_counter() - t_start

    by_status: Dict[str, int] = {}
    per_class: Dict[str, dict] = {}
    rids_by_outcome: Dict[str, List[str]] = {}
    goodput = 0
    for name in [c["name"] for c in class_list]:
        per_class[name] = {
            "sent": 0, "ok": 0, "within_deadline": 0, "latencies": []
        }
    for cls_index, status, latency_ms, rid in records:
        cls = class_list[cls_index]
        key = str(status)
        by_status[key] = by_status.get(key, 0) + 1
        if collect_request_ids:
            rids_by_outcome.setdefault(key, []).append(rid)
        entry = per_class[cls["name"]]
        entry["sent"] += 1
        if status == 200:
            entry["ok"] += 1
            entry["latencies"].append(latency_ms)
            deadline = cls["deadline_ms"]
            if deadline is None or latency_ms <= deadline:
                entry["within_deadline"] += 1
                goodput += 1

    for name, entry in per_class.items():
        lat = np.asarray(entry.pop("latencies"), dtype=np.float64)
        if lat.size:
            p50, p99 = np.percentile(lat, [50, 99])
            entry["p50_ms"] = float(p50)
            entry["p99_ms"] = float(p99)

    accounted = len(records)
    stats = {
        "rate_rps": rate_rps,
        "duration_s": duration_s,
        "elapsed_s": elapsed_s,
        "seed": seed,
        "sent": len(arrivals),
        "accounted": accounted,
        "unaccounted": len(arrivals) - accounted,
        "by_status": dict(sorted(by_status.items())),
        "classes": per_class,
        "goodput": goodput,
        "goodput_rps": goodput / elapsed_s if elapsed_s > 0 else 0.0,
        "goodput_ratio": goodput / len(arrivals) if arrivals else 0.0,
    }
    if collect_request_ids:
        stats["request_ids"] = rids_by_outcome
    return stats


def _executed_request_ids(base_url: str, timeout: float = 30.0) -> set:
    """Request ids that reached execution, read from the server's span
    buffer: every ``batch`` span lists its *executed* members in the
    ``request_ids`` attr (expelled-at-formation requests never appear)."""
    with ServeClient(base_url, timeout=timeout) as client:
        doc = client.trace(format="spans")
    executed = set()
    for span in doc.get("spans", []):
        if span.get("name") == "batch":
            executed.update(span.get("attrs", {}).get("request_ids") or [])
    return executed


def measure_overload_goodput(
    model_name: str,
    workers: int = 0,
    quick: bool = False,
    verbose: bool = True,
    seed: int = 0,
) -> dict:
    """The overload-honesty benchmark (ISSUE 8): offered load at 2×
    measured capacity must shed *predictably*.

    Three steps against one in-process (or ``workers``-sharded) server
    traced at rate 1.0:

    1. closed-loop capacity measurement (``capacity_rps``, p50);
    2. open-loop Poisson traffic at ``2 × capacity_rps`` with a 25 %
       ``interactive`` slice on a tight deadline (``max(30 ms, 5×p50)``)
       and a 75 % ``batch`` slice on the server default deadline;
    3. the honesty checks — every request accounted (no silent drops),
       and **no expired request executed**: the 504s' request ids must
       be disjoint from the ids inside executed ``batch`` spans.

    The returned entry is gated by ``benchmarks/check_bench_regression.py``
    (``overload_goodput``).
    """
    spec = ModelSpec.parse(model_name)
    rng = np.random.default_rng(seed)
    samples = rng.standard_normal((32,) + spec.sample_shape).astype(np.float32)
    registry = ModelRegistry(lazy=workers > 0)
    served = registry.load(spec)

    capacity_requests = 96 if quick else 256
    duration_s = 1.5 if quick else 4.0

    with start_in_background(
        registry,
        policy=POLICIES["dynamic"],
        workers=workers,
        worker_replicas=workers or None,
        trace_rate=1.0,
    ) as handle:
        capacity = _best_of_trials(
            handle.base_url, served.name, samples,
            concurrency=16, total_requests=capacity_requests,
            trials=1 if quick else 2,
        )
        capacity_rps = capacity["throughput_rps"]
        tight_deadline_ms = max(30.0, 5.0 * capacity.get("p50_ms", 6.0))
        offered_rps = 2.0 * capacity_rps
        classes = [
            {
                "name": "tight",
                "priority": "interactive",
                "deadline_ms": tight_deadline_ms,
                "weight": 0.25,
            },
            {"name": "loose", "priority": "batch", "weight": 0.75},
        ]
        open_stats = run_open_loop(
            handle.base_url, served.name, samples,
            rate_rps=offered_rps, duration_s=duration_s,
            classes=classes, seed=seed, collect_request_ids=True,
            client_threads=48,
        )
        executed = _executed_request_ids(handle.base_url)

    rids = open_stats.pop("request_ids")
    expired_rids = set(rids.get("504", []))
    tight = open_stats["classes"]["tight"]
    entry = {
        "model": served.name,
        "workers": workers,
        "quick": bool(quick),
        "seed": seed,
        "capacity_rps": capacity_rps,
        "offered_rps": offered_rps,
        "duration_s": duration_s,
        "sent": open_stats["sent"],
        "goodput_rps": open_stats["goodput_rps"],
        "goodput_ratio": open_stats["goodput_ratio"],
        "sheds_429": open_stats["by_status"].get("429", 0),
        "expired_504": open_stats["by_status"].get("504", 0),
        "expired_executed": len(expired_rids & executed),
        "unaccounted": open_stats["unaccounted"],
        "tight": {
            "deadline_ms": tight_deadline_ms,
            "sent": tight["sent"],
            "ok": tight["ok"],
            "within_deadline": tight["within_deadline"],
            "p99_ms": tight.get("p99_ms"),
        },
        "by_status": open_stats["by_status"],
    }
    if verbose:
        print(
            f"overload 2x: capacity {capacity_rps:.0f} rps, offered "
            f"{offered_rps:.0f} rps -> goodput {entry['goodput_rps']:.0f} rps "
            f"({entry['goodput_ratio']:.0%} of sent); 429s "
            f"{entry['sheds_429']}, 504s {entry['expired_504']} "
            f"(executed-after-expiry {entry['expired_executed']}, "
            f"unaccounted {entry['unaccounted']})"
        )
    return entry


def dump_slowest(
    base_url: str,
    stats: dict,
    n: int,
    out_path: str,
    timeout: float = 30.0,
) -> dict:
    """Write the span trees of a load run's worst-``n`` requests.

    For each of the top-``n`` entries in ``stats["slowest"]``, fetch
    ``GET /trace?request_id=…&format=spans`` from the (still-running)
    server and nest the spans with
    :func:`repro.obs.trace.build_span_trees`.  A request whose spans
    were never sampled (server ``trace_rate`` < 1) or already evicted
    from the ring dumps with an empty tree rather than failing the run.
    """
    from repro.obs.trace import Span, build_span_trees

    worst = (stats.get("slowest") or [])[: max(0, n)]
    entries = []
    with ServeClient(base_url, timeout=timeout) as client:
        for item in worst:
            rid = item["request_id"]
            try:
                doc = client.trace(request_id=rid, format="spans")
                spans = [Span.from_dict(d) for d in doc.get("spans", [])]
                entry = {
                    "request_id": rid,
                    "latency_ms": item["latency_ms"],
                    "span_count": len(spans),
                    "tree": build_span_trees(spans),
                }
            except ServeError as exc:
                entry = {
                    "request_id": rid,
                    "latency_ms": item["latency_ms"],
                    "error": str(exc),
                }
            entries.append(entry)
    payload = {"requested": n, "slowest": entries}
    with open(out_path, "w") as fh:
        json.dump(payload, fh, indent=2)
        fh.write("\n")
    return payload


def check_bit_identity(
    base_url: str, model: str, served_plan, samples: np.ndarray, concurrency: int = 8
) -> bool:
    """Fire samples concurrently; assert each equals direct ``plan.run``."""
    samples = np.asarray(samples, dtype=np.float32)
    expected = [served_plan.run(samples[i : i + 1]) for i in range(samples.shape[0])]
    got: List[Optional[np.ndarray]] = [None] * samples.shape[0]

    def worker(indices: Sequence[int]) -> None:
        with ServeClient(base_url) as client:
            for i in indices:
                got[i] = client.predict(samples[i], model=model, encoding="b64")[None]

    threads = [
        threading.Thread(
            target=worker, args=(range(k, samples.shape[0], concurrency),), daemon=True
        )
        for k in range(concurrency)
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    return all(
        g is not None and np.array_equal(g, e) for g, e in zip(got, expected)
    )


def measure_artifact_cold_start(
    model_name: str,
    workers: int = 2,
    verbose: bool = True,
) -> dict:
    """AOT-artifact leg of the serving benchmark (ISSUE 6).

    Measures, for one variant:

    * ``compile_ms`` — build + calibrate + compile + warm from scratch
      against a **fresh** plan cache (the honest pre-artifact worker
      boot cost);
    * ``load_ms`` — :func:`repro.engine.artifact.load_plan` on the saved
      artifact (mmap + kernel re-resolution) with ``verify=False``, the
      worker boot path: the content hash is checked once at deploy time
      by the parent, not by every booting worker;
    * ``speedup`` — compile_ms / load_ms (the ≥10x cold-start claim);
    * ``workers_boot_ms`` — wall-clock for a ``--workers N`` server to
      become ready when every worker boots by mmapping the artifact;
    * ``hot_swap`` — a blue/green deploy of a second artifact **while**
      closed-loop clients hammer the server: ``requests_failed`` must be
      0 (zero-drop cutover; docs/operations.md 'Blue/green deploys and
      rollback').
    """
    import os
    import shutil
    import tempfile
    import urllib.request

    from repro.engine.artifact import load_plan, save_plan
    from repro.engine.cache import PlanCache
    from repro.serve.registry import compile_served

    spec = ModelSpec.parse(model_name)
    tmpdir = tempfile.mkdtemp(prefix="repro-artifact-bench-")
    try:
        path = os.path.join(tmpdir, spec.name + ".rpln")
        # Best of 3 for both legs: scheduler interference on a shared
        # host only ever *slows* a timing, so the minimum is the least-
        # interfered estimate of each cost (same rationale as
        # _best_of_trials).
        compile_ms = float("inf")
        for _ in range(3):
            t0 = time.perf_counter()
            served = compile_served(spec, cache=PlanCache())
            compile_ms = min(compile_ms, (time.perf_counter() - t0) * 1e3)
        save_plan(
            served.plan, path, input_shape=(1,) + spec.sample_shape,
            extra={"model": spec.name, "seed": spec.seed},
        )
        load_ms = float("inf")
        for _ in range(3):
            t0 = time.perf_counter()
            loaded = load_plan(path, verify=False)
            load_ms = min(load_ms, (time.perf_counter() - t0) * 1e3)
        rng = np.random.default_rng(0)
        x = rng.standard_normal((4,) + spec.sample_shape).astype(np.float32)
        bit_identical = bool(np.array_equal(loaded.run(x), served.plan.run(x)))

        # Worker-pool cold start: every worker mmaps instead of compiling.
        registry = ModelRegistry(lazy=True)
        registry.load(path)
        t0 = time.perf_counter()
        handle = start_in_background(
            registry, policy=POLICIES["dynamic"], workers=workers,
            worker_replicas=workers,
        )
        workers_boot_ms = (time.perf_counter() - t0) * 1e3

        # Blue/green hot-swap under load: zero dropped requests.
        path2 = os.path.join(tmpdir, spec.name + ".v2.rpln")
        shutil.copy(path, path2)  # same plan, new deployment
        ok, failures = [0], []
        stop = threading.Event()

        def hammer(index: int) -> None:
            with ServeClient(handle.base_url) as client:
                while not stop.is_set():
                    try:
                        client.predict(
                            x[index % 4], model=spec.name, encoding="b64"
                        )
                        ok[0] += 1
                    except Exception as exc:  # noqa: BLE001 — counted
                        failures.append(repr(exc))

        hammers = [
            threading.Thread(target=hammer, args=(i,), daemon=True)
            for i in range(4)
        ]
        try:
            for thread in hammers:
                thread.start()
            time.sleep(0.4)
            body = json.dumps({"artifact": path2, "watch_s": 0.3}).encode()
            request = urllib.request.Request(
                handle.base_url + "/models", data=body, method="POST",
                headers={"Content-Type": "application/json"},
            )
            with urllib.request.urlopen(request) as resp:
                deploy = json.loads(resp.read())
            time.sleep(0.6)  # traffic through the watch window
        finally:
            stop.set()
            for thread in hammers:
                thread.join(timeout=10)
            handle.stop()
        result = {
            "model": spec.name,
            "compile_ms": compile_ms,
            "load_ms": load_ms,
            "speedup": compile_ms / load_ms if load_ms > 0 else None,
            "bit_identical": bit_identical,
            "workers": workers,
            "workers_boot_ms": workers_boot_ms,
            "artifact_bytes": os.path.getsize(path),
            "hot_swap": {
                "deployed_version": deploy["version"],
                "previous_version": deploy["previous_version"],
                "drained": deploy["drained"],
                "requests_ok": ok[0],
                "requests_failed": len(failures),
            },
        }
        if verbose:
            print(
                f"artifact cold start: compile {compile_ms:.0f} ms vs "
                f"mmap load {load_ms:.1f} ms ({result['speedup']:.0f}x); "
                f"workers={workers} boot {workers_boot_ms:.0f} ms; "
                f"hot-swap ok={ok[0]} failed={len(failures)}"
            )
        return result
    finally:
        shutil.rmtree(tmpdir, ignore_errors=True)


def _spawn_serve_cli(flags: Sequence[str], timeout: float = 240.0):
    """Launch ``repro serve`` in its own process group and block until the
    ``serving on http://...`` banner prints; return ``(proc, base_url)``.

    A subprocess — not :func:`start_in_background` — is what makes the
    kill -9 recovery drill honest: SIGKILL to the whole group takes down
    the front-end *and* its workers with no chance to drain, flush, or
    run any Python cleanup, exactly like a host dying mid-flight.
    """
    import re
    import subprocess
    import sys

    proc = subprocess.Popen(
        [sys.executable, "-m", "repro.cli", "serve", *flags],
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        text=True,
        start_new_session=True,
    )
    ready = threading.Event()
    box: dict = {"log": []}

    def drain() -> None:
        for line in proc.stdout:  # type: ignore[union-attr]
            box["log"].append(line)
            match = re.search(r"serving on (http://[\d.]+:\d+)", line)
            if match and "url" not in box:
                box["url"] = match.group(1)
                ready.set()
        ready.set()  # EOF without a banner: the process died at boot

    threading.Thread(target=drain, daemon=True).start()
    ready.wait(timeout)
    if "url" not in box:
        _kill_serve_group(proc)
        log = "".join(box["log"])[-2000:]
        raise RuntimeError(f"serve subprocess never became ready:\n{log}")
    return proc, box["url"]


def _kill_serve_group(proc, sig=None) -> None:
    """Signal a ``_spawn_serve_cli`` process group and reap it (SIGKILL by
    default; escalates if a gentler signal doesn't exit within 15 s)."""
    import os
    import signal
    import subprocess

    if sig is None:
        sig = signal.SIGKILL
    try:
        os.killpg(os.getpgid(proc.pid), sig)
    except (ProcessLookupError, PermissionError):
        return
    try:
        proc.wait(timeout=15)
    except subprocess.TimeoutExpired:
        try:
            os.killpg(os.getpgid(proc.pid), signal.SIGKILL)
        except (ProcessLookupError, PermissionError):
            pass
        proc.wait(timeout=5)


def _crash_recovery_drill(
    artifact_v1: str,
    artifact_v2: str,
    model: str,
    state_dir: str,
    workers: int,
    sample: np.ndarray,
    verbose: bool,
) -> dict:
    """Kill -9 a ``--state-dir`` server mid-flight; restart must recover.

    Boots the CLI server on artifact v1, hot-deploys artifact v2 (a
    different content hash) over HTTP so the deploy exists *only* in the
    journal, SIGKILLs the whole process group, then restarts with the
    same flags.  Recovery means zero manual re-deploys: every model
    comes back at its pre-kill content-hash version and the recovered
    server's predictions are bit-identical to the pre-kill ones.
    """
    import signal
    import urllib.request

    flags = [
        "--model", artifact_v1,
        "--workers", str(workers),
        "--worker-replicas", "1",
        "--port", "0",
        "--state-dir", state_dir,
        "--autoscale",
        "--autoscale-max", str(workers),
    ]
    proc, url = _spawn_serve_cli(flags)
    try:
        body = json.dumps({"artifact": artifact_v2, "watch_s": 0.2}).encode()
        request = urllib.request.Request(
            url + "/models", data=body, method="POST",
            headers={"Content-Type": "application/json"},
        )
        with urllib.request.urlopen(request) as resp:
            deploy = json.loads(resp.read())
        with ServeClient(url) as client:
            before = {
                info["name"]: info["version"]
                for info in client.models()["models"]
            }
            reference = client.predict(sample, model=model, encoding="b64")
    finally:
        _kill_serve_group(proc)  # SIGKILL: no drain, no journal flush

    proc2, url2 = _spawn_serve_cli(flags)
    try:
        with ServeClient(url2) as client:
            doc = client.models()
            after = {
                info["name"]: info["version"] for info in doc["models"]
            }
            replay = doc.get("journal_replay") or {}
            recovered = client.predict(sample, model=model, encoding="b64")
    finally:
        _kill_serve_group(proc2, signal.SIGTERM)

    versions_match = all(
        after.get(name) == version for name, version in before.items()
    )
    response_identical = bool(np.array_equal(reference, recovered))
    entry = {
        "deployed_version": deploy["version"],
        "models_before": before,
        "models_after": after,
        "versions_match": versions_match,
        "response_identical": response_identical,
        "journal_records_replayed": replay.get("records", 0),
        "deploys_restored": list(replay.get("deploys_restored") or []),
        "recovered": bool(
            versions_match
            and response_identical
            and after.get(model) == deploy["version"]
        ),
    }
    if verbose:
        print(
            f"kill -9 recovery: deployed {deploy['version']}; restart "
            f"replayed {entry['journal_records_replayed']} records, "
            f"restored {len(entry['deploys_restored'])} deploys; "
            f"versions_match={versions_match} "
            f"bit_identical={response_identical}"
        )
    return entry


def measure_selfheal_goodput(
    model_name: str = "resnet18-w0.25-F4-int8",
    workers: int = 2,
    quick: bool = False,
    verbose: bool = True,
    seed: int = 0,
) -> dict:
    """The self-healing benchmark (ISSUE 9): under the same crash-storm
    chaos and the same overload schedule, an autoscaler+brownout server
    must sustain strictly higher goodput than a static single-replica
    baseline — and a kill -9 must be survivable from ``--state-dir``.

    Four steps:

    1. closed-loop capacity of the *static* topology (1 replica on a
       ``workers``-process pool, no chaos) — the shared denominator;
    2. static leg: open-loop Poisson at ``3 × capacity`` against a
       64-deep queue with ``crash_storm`` chaos, replicas pinned at 1;
    3. selfheal leg: the *same* offered schedule and chaos seed, but the
       control loop may scale 1..``workers`` replicas and step the
       brownout ladder down to the ``@turbo`` rung under sustained
       pressure (journaling every decision to ``--state-dir``);
    4. the kill -9 recovery drill (:func:`_crash_recovery_drill`).

    Both legs run traced at rate 1.0 so the overload honesty checks
    apply: every request accounted, and no expired request executed.
    The returned entry is gated by
    ``benchmarks/check_bench_regression.py`` (``selfheal_goodput``).
    """
    import dataclasses
    import os
    import shutil
    import tempfile

    from repro.engine.artifact import save_plan
    from repro.engine.cache import PlanCache
    from repro.serve.autoscale import AutoscalePolicy
    from repro.serve.registry import compile_served
    from repro.serve.selfheal import SelfHealPolicy

    base = model_name.split("@")[0]
    spec = ModelSpec.parse(base)
    fallback = base + "@turbo"
    workers = max(2, int(workers))
    rng = np.random.default_rng(seed)
    samples = rng.standard_normal((32,) + spec.sample_shape).astype(np.float32)
    duration_s = 1.5 if quick else 4.0
    chaos_spec = f"seed={seed + 7},crash_storm=0.4:500"

    tmpdir = tempfile.mkdtemp(prefix="repro-selfheal-bench-")
    try:
        # Two artifacts of the same model with *different* weights (the
        # seed changes them), so the recovery drill's runtime deploy has
        # a distinct content hash the journal must bring back exactly.
        served = compile_served(spec, cache=PlanCache())
        artifact_v1 = os.path.join(tmpdir, spec.name + ".rpln")
        save_plan(
            served.plan, artifact_v1, input_shape=(1,) + spec.sample_shape,
            extra={"model": spec.name, "seed": spec.seed},
        )
        respec = dataclasses.replace(spec, seed=spec.seed + 1)
        served2 = compile_served(respec, cache=PlanCache())
        artifact_v2 = os.path.join(tmpdir, spec.name + ".v2.rpln")
        save_plan(
            served2.plan, artifact_v2, input_shape=(1,) + spec.sample_shape,
            extra={"model": spec.name, "seed": respec.seed},
        )

        # -- step 1: static-topology capacity, no chaos -------------------
        registry = ModelRegistry(lazy=True)
        registry.load(artifact_v1)
        with start_in_background(
            registry, policy=POLICIES["dynamic"], workers=workers,
            worker_replicas=1,
        ) as handle:
            capacity = _best_of_trials(
                handle.base_url, spec.name, samples,
                concurrency=16, total_requests=96 if quick else 256,
                trials=1 if quick else 2,
            )
        capacity_rps = capacity["throughput_rps"]
        # 3x one replica's capacity against a deliberately small queue:
        # the static leg *must* saturate (its only release valves are 64
        # queue slots, sheds, and deadline expiries), while the selfheal
        # leg can still absorb more by scaling 1 -> ``workers`` replicas
        # and stepping down to the turbo rung.  The bounded queue is
        # what turns overload into a goodput difference instead of
        # silent buffering — and the load generator must run *more*
        # client threads than there are queue slots, or client-side
        # concurrency caps the queue depth below the shed point and
        # both legs look identical.
        offered_rps = 3.0 * capacity_rps
        leg_policy = BatchPolicy(
            max_batch_size=64, max_wait_ms=8.0, max_queue=64,
            default_deadline_ms=1500,
        )
        tight_deadline_ms = max(50.0, 5.0 * capacity.get("p50_ms", 6.0))
        classes = [
            {
                "name": "tight",
                "priority": "interactive",
                "deadline_ms": tight_deadline_ms,
                "weight": 0.25,
            },
            {"name": "loose", "priority": "batch", "weight": 0.75},
        ]

        def run_leg(selfheal=None, state_dir=None) -> Tuple[dict, Optional[dict]]:
            reg = ModelRegistry(lazy=True)
            reg.load(artifact_v1)
            if selfheal is not None:
                # The ladder's rung must be servable the instant a
                # brownout steps down (same rule the CLI enforces).
                reg.load(fallback)
            with start_in_background(
                reg, policy=leg_policy, workers=workers,
                worker_replicas=1, trace_rate=1.0, chaos=chaos_spec,
                selfheal=selfheal, state_dir=state_dir,
            ) as handle:
                stats = run_open_loop(
                    handle.base_url, spec.name, samples,
                    rate_rps=offered_rps, duration_s=duration_s,
                    classes=classes, seed=seed, collect_request_ids=True,
                    client_threads=160,
                )
                executed = _executed_request_ids(handle.base_url)
                heal_info = None
                if selfheal is not None:
                    with ServeClient(handle.base_url) as client:
                        heal_info = client.metrics().get("selfheal")
            rids = stats.pop("request_ids")
            expired_rids = set(rids.get("504", []))
            leg = {
                "sent": stats["sent"],
                "goodput_rps": stats["goodput_rps"],
                "goodput_ratio": stats["goodput_ratio"],
                "by_status": stats["by_status"],
                "unaccounted": stats["unaccounted"],
                "expired_executed": len(expired_rids & executed),
            }
            return leg, heal_info

        # -- step 2: static baseline under crash-storm chaos --------------
        static_leg, _ = run_leg()
        if verbose:
            print(
                f"selfheal static leg: offered {offered_rps:.0f} rps under "
                f"{chaos_spec} -> goodput {static_leg['goodput_rps']:.0f} rps "
                f"({static_leg['goodput_ratio']:.0%} of sent)"
            )

        # -- step 3: the self-healing server, same schedule + chaos -------
        autoscale = AutoscalePolicy(
            min_replicas=1,
            max_replicas=workers,
            up_queue_fill=0.2,
            down_queue_fill=0.02,
            up_cooldown_s=0.3,
            down_cooldown_s=30.0,
            down_stable_ticks=10,
        )
        heal_policy = SelfHealPolicy(
            autoscale=autoscale,
            ladders={spec.name: [fallback]},
            interval_s=0.05,
            ladder_down_after_ticks=8,
            ladder_up_after_ticks=200,
            ladder_step_cooldown_s=2.0,
        )
        selfheal_leg, heal_info = run_leg(
            selfheal=heal_policy, state_dir=os.path.join(tmpdir, "journal")
        )
        heal_info = heal_info or {}
        autoscale_info = heal_info.get("autoscale") or {}
        ladder_info = (heal_info.get("ladders") or {}).get(spec.name) or {}
        replicas_info = heal_info.get("replicas") or {}
        if verbose:
            print(
                f"selfheal leg: goodput {selfheal_leg['goodput_rps']:.0f} rps "
                f"({selfheal_leg['goodput_ratio']:.0%} of sent); "
                f"scale decisions {autoscale_info.get('decisions_total', 0)}, "
                f"final replicas {replicas_info}, brownout steps "
                f"{ladder_info.get('steps_down_total', 0)} down / "
                f"{ladder_info.get('steps_up_total', 0)} up"
            )

        # -- step 4: kill -9 + restart from --state-dir -------------------
        recovery = _crash_recovery_drill(
            artifact_v1, artifact_v2, spec.name,
            os.path.join(tmpdir, "state"), workers, samples[0], verbose,
        )

        entry = {
            "model": spec.name,
            "fallback": fallback,
            "workers": workers,
            "quick": bool(quick),
            "seed": seed,
            "chaos": chaos_spec,
            "capacity_rps": capacity_rps,
            "offered_rps": offered_rps,
            "duration_s": duration_s,
            "tight_deadline_ms": tight_deadline_ms,
            "static": static_leg,
            "selfheal": selfheal_leg,
            "goodput_improvement": (
                selfheal_leg["goodput_rps"] / static_leg["goodput_rps"]
                if static_leg["goodput_rps"] > 0
                else None
            ),
            "autoscale": {
                "decisions_total": autoscale_info.get("decisions_total", 0),
                "flap_freezes_total": autoscale_info.get(
                    "flap_freezes_total", 0
                ),
                "final_replicas": replicas_info,
            },
            "brownout": {
                "steps_down_total": ladder_info.get("steps_down_total", 0),
                "steps_up_total": ladder_info.get("steps_up_total", 0),
                "final_position": ladder_info.get("position", 0),
            },
            "recovery": recovery,
        }
        if verbose:
            improvement = entry["goodput_improvement"]
            pretty = f"{improvement:.2f}x" if improvement else "n/a"
            print(
                f"selfheal goodput: {pretty} over static baseline; "
                f"recovered={recovery['recovered']}"
            )
        return entry
    finally:
        shutil.rmtree(tmpdir, ignore_errors=True)


def benchmark_serving(
    model_name: str = "resnet18-w0.25-F4-int8@turbo",
    concurrencies: Sequence[int] = (1, 4, 16, 32, 64),
    requests_per_level: int = 384,
    workers: int = 0,
    executor_threads: int = 4,
    workers_scale: int = 2,
    out_path: Optional[str] = None,
    quick: bool = False,
    verbose: bool = True,
    trials: int = 2,
) -> dict:
    """Sweep concurrency × batching policy; write ``BENCH_serve.json``.

    The correctness gate runs first: a reference-backend variant of the
    same model is served — in-process *and* behind ``workers_scale``
    process workers — and its concurrent responses must be bit-identical
    to direct ``CompiledPlan.run`` before any throughput is measured.

    ``workers`` is the process-worker count of the swept servers (0 =
    in-process, the baseline configuration the committed numbers track);
    ``workers_scale`` additionally measures multi-process sharding at
    the top concurrency and records a ``workers_scaling`` entry (with
    the host's ``cpu_count``, so the regression guard can skip the
    speedup expectation on small hosts).

    Each (policy, concurrency) cell is measured ``trials`` times and the
    highest-throughput trial is kept: wall-clock interference on a shared
    host only ever *lowers* closed-loop throughput, so the best trial is
    the least-interfered estimate of what the configuration sustains.
    """
    if quick:
        concurrencies = tuple(c for c in concurrencies if c <= 16) or (1, 16)
        requests_per_level = min(requests_per_level, 96)
        trials = 1

    spec = ModelSpec.parse(model_name)
    rng = np.random.default_rng(0)
    samples = rng.standard_normal((32,) + spec.sample_shape).astype(np.float32)

    # -- correctness gate (reference backend) -------------------------------
    ref_spec = ModelSpec.parse(model_name.split("@")[0] + "@reference")
    ref_registry = ModelRegistry()
    ref_served = ref_registry.load(ref_spec)
    with start_in_background(
        ref_registry, policy=POLICIES["dynamic"], executor_threads=executor_threads
    ) as handle:
        bit_identical = check_bit_identity(
            handle.base_url, ref_served.name, ref_served.plan, samples[:16]
        )
    if verbose:
        print(f"bit-identity vs direct plan.run (reference backend): {bit_identical}")

    bit_identical_workers = None
    if workers_scale and workers_scale > 0:
        # The ISSUE 5 gate: responses from a sharded server must equal
        # the in-process (workers=0) reference responses bit for bit —
        # the workers compile the same seeded spec, so the compare is
        # against the same direct plan.run oracle.
        worker_registry = ModelRegistry(lazy=True)
        worker_registry.load(ref_spec)
        with start_in_background(
            worker_registry,
            policy=POLICIES["dynamic"],
            workers=workers_scale,
            worker_replicas=workers_scale,
        ) as handle:
            bit_identical_workers = check_bit_identity(
                handle.base_url, ref_served.name, ref_served.plan, samples[:16]
            )
        if verbose:
            print(
                f"bit-identity with workers={workers_scale} vs direct "
                f"plan.run: {bit_identical_workers}"
            )

    # -- throughput sweep ---------------------------------------------------
    results: Dict[str, dict] = {}
    for policy_name, policy in POLICIES.items():
        registry = ModelRegistry(lazy=workers > 0)
        served = registry.load(spec)
        sweep = []
        with start_in_background(
            registry, policy=policy, workers=workers,
            executor_threads=executor_threads,
        ) as handle:
            for concurrency in concurrencies:
                stats = _best_of_trials(
                    handle.base_url, served.name, samples, concurrency,
                    max(requests_per_level, concurrency * 4), trials,
                )
                sweep.append(stats)
                if verbose:
                    print(
                        f"{policy_name:8s} c={concurrency:3d}: "
                        f"{stats['throughput_rps']:8.1f} req/s  "
                        f"p50 {stats.get('p50_ms', float('nan')):7.2f} ms  "
                        f"p99 {stats.get('p99_ms', float('nan')):7.2f} ms  "
                        f"mean batch {stats['mean_batch_size']:.2f}"
                    )
        results[policy_name] = {"policy": policy.to_dict(), "sweep": sweep}

    speedups = {}
    for i, concurrency in enumerate(concurrencies):
        base = results["batch1"]["sweep"][i]["throughput_rps"]
        dyn = results["dynamic"]["sweep"][i]["throughput_rps"]
        speedups[str(concurrency)] = dyn / base if base > 0 else float("inf")
    if verbose:
        pretty = ", ".join(f"c={c}: {s:.2f}x" for c, s in speedups.items())
        print(f"dynamic over batch1 throughput: {pretty}")

    # -- multi-process workers scaling --------------------------------------
    workers_scaling = None
    if workers_scale and workers_scale > 0:
        import os as _os

        top = concurrencies[-1]
        if workers == 0:
            single_rps = results["dynamic"]["sweep"][-1]["throughput_rps"]
        else:
            # The main sweep ran with process workers, so its rate is NOT
            # a single-process denominator — measure one explicitly.
            registry0 = ModelRegistry()
            served0 = registry0.load(spec)
            with start_in_background(
                registry0, policy=POLICIES["dynamic"],
                executor_threads=executor_threads,
            ) as handle:
                base_stats = _best_of_trials(
                    handle.base_url, served0.name, samples, top,
                    max(requests_per_level, top * 4), trials,
                )
            single_rps = base_stats["throughput_rps"]
        registry = ModelRegistry(lazy=True)
        served_w = registry.load(spec)
        with start_in_background(
            registry,
            policy=POLICIES["dynamic"],
            workers=workers_scale,
            worker_replicas=workers_scale,
        ) as handle:
            stats = _best_of_trials(
                handle.base_url, served_w.name, samples, top,
                max(requests_per_level, top * 4), trials,
            )
        workers_scaling = {
            "workers": workers_scale,
            "cpu_count": _os.cpu_count() or 1,
            "concurrency": top,
            "quick": bool(quick),
            "throughput_rps": stats["throughput_rps"],
            "single_process_rps": single_rps,
            "speedup": stats["throughput_rps"] / single_rps if single_rps else None,
            "p99_ms": stats.get("p99_ms"),
        }
        if verbose:
            speedup = workers_scaling["speedup"]
            pretty = f"{speedup:.2f}x" if speedup is not None else "n/a"
            print(
                f"workers={workers_scale} c={top}: "
                f"{stats['throughput_rps']:8.1f} req/s "
                f"({pretty} over single process, "
                f"{workers_scaling['cpu_count']} cores)"
            )

    # -- AOT artifact cold start + blue/green hot-swap ----------------------
    artifact_cold_start = measure_artifact_cold_start(
        model_name, workers=max(workers_scale, 1), verbose=verbose
    )

    # -- overload honesty: goodput at 2x capacity ---------------------------
    overload_goodput = measure_overload_goodput(
        model_name, workers=workers, quick=quick, verbose=verbose
    )

    # -- self-healing: goodput under crash-storm chaos + kill -9 recovery ---
    selfheal_goodput = measure_selfheal_goodput(
        model_name, workers=max(workers_scale, 2), quick=quick, verbose=verbose
    )

    report = {
        "model": served.name,
        "workers": workers,
        "executor_threads": executor_threads,
        "requests_per_level": requests_per_level,
        "bit_identical_reference": bit_identical,
        "bit_identical_workers": bit_identical_workers,
        "policies": results,
        "speedup_dynamic_over_batch1": speedups,
        "workers_scaling": workers_scaling,
        "artifact_cold_start": artifact_cold_start,
        "overload_goodput": overload_goodput,
        "selfheal_goodput": selfheal_goodput,
    }
    if out_path:
        with open(out_path, "w") as fh:
            json.dump(report, fh, indent=2, sort_keys=True)
            fh.write("\n")
        if verbose:
            print(f"report written to {out_path}")
    return report
