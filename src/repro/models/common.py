"""Conv-spec plumbing shared by every model.

A :class:`ConvSpec` names one point of the paper's per-layer search space
(Fig. 3): the convolution algorithm, the quantization level, and — for
Winograd — whether the transforms are learnable (``flex``).  A
:class:`LayerPlan` assigns a spec (or an arbitrary module factory, which is
how wiNAS injects its mixed ops) to every searchable conv layer of a model.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Callable, Dict, List, Optional, Sequence, Union

from repro.nn.layers import Conv2d
from repro.nn.module import Module
from repro.nn.qlayers import QuantConv2d
from repro.quant.qconfig import QConfig, fp32
from repro.winograd.layer import WinogradConv2d

#: Algorithms in the wiNAS search space (Fig. 3), plus "im2col" which the
#: latency study benchmarks (Fig. 7/8) but the search space omits.
ALGORITHMS = ("im2row", "im2col", "F2", "F4", "F6")

_WINOGRAD_M = {"F2": 2, "F4": 4, "F6": 6}


@dataclass(frozen=True)
class ConvSpec:
    """One candidate implementation of a convolutional layer."""

    algorithm: str = "im2row"
    qconfig: QConfig = field(default_factory=fp32)
    flex: bool = False

    def __post_init__(self) -> None:
        if self.algorithm not in ALGORITHMS:
            raise ValueError(f"unknown algorithm {self.algorithm!r}; expected {ALGORITHMS}")
        if self.flex and not self.is_winograd:
            raise ValueError("flex transforms only apply to Winograd algorithms")

    @property
    def is_winograd(self) -> bool:
        return self.algorithm in _WINOGRAD_M

    @property
    def m(self) -> int:
        if not self.is_winograd:
            raise ValueError(f"{self.algorithm} has no tile size m")
        return _WINOGRAD_M[self.algorithm]

    @property
    def name(self) -> str:
        flex = "-flex" if self.flex else ""
        return f"{self.algorithm}{flex}@{self.qconfig.name}"

    def build(
        self,
        in_channels: int,
        out_channels: int,
        kernel_size: int = 3,
        padding: Optional[int] = None,
        groups: int = 1,
        bias: bool = True,
        rng=None,
    ) -> Module:
        """Instantiate the layer this spec describes (stride 1)."""
        pad = (kernel_size - 1) // 2 if padding is None else padding
        if self.is_winograd:
            return WinogradConv2d(
                in_channels,
                out_channels,
                kernel_size=kernel_size,
                m=self.m,
                padding=pad,
                groups=groups,
                bias=bias,
                flex=self.flex,
                qconfig=self.qconfig,
                rng=rng,
            )
        conv = Conv2d(
            in_channels,
            out_channels,
            kernel_size=kernel_size,
            stride=1,
            padding=pad,
            groups=groups,
            bias=bias,
            method=self.algorithm,
            rng=rng,
        )
        if self.qconfig.enabled:
            return QuantConv2d(conv, self.qconfig)
        return conv


def spec_from_name(name: str, qconfig: Optional[QConfig] = None) -> ConvSpec:
    """Parse the paper's naming: "im2row", "F2", "F4-flex", "WAF4", ...

    ``WAF4`` ("Winograd-aware F4") and plain ``F4`` both map to the F4
    algorithm; the Winograd-*aware* distinction is about how the model is
    trained, which in this codebase is always the case for Winograd layers.
    """
    raw = name.strip()
    flex = raw.endswith("-flex")
    if flex:
        raw = raw[: -len("-flex")]
    if raw.upper().startswith("WA"):
        raw = raw[2:]
    if raw.upper() in _WINOGRAD_M:
        return ConvSpec(raw.upper(), qconfig or fp32(), flex)
    if raw.lower() in ("im2row", "im2col"):
        if flex:
            raise ValueError(f"{name!r}: flex only applies to Winograd")
        return ConvSpec(raw.lower(), qconfig or fp32())
    raise ValueError(f"cannot parse conv spec name {name!r}")


#: A factory turning (in_ch, out_ch, layer_index, groups) into a module.
ConvFactory = Callable[[int, int, int], Module]


class LayerPlan:
    """Assigns a :class:`ConvSpec` (or custom factory) to each conv layer.

    ``specs`` may be a single spec (applied everywhere), a list indexed by
    layer position, or a dict of overrides on top of a default.  Models
    call :meth:`build` with consecutive ``layer_index`` values in network
    order; the number of searchable layers is a property of the model
    (16 for ResNet-18, 8 for SqueezeNet, 6 for ResNeXt-20 — appendix A.1).
    """

    def __init__(
        self,
        default: ConvSpec,
        overrides: Optional[Dict[int, ConvSpec]] = None,
        factory: Optional[Callable[[int, int, int, int], Optional[Module]]] = None,
    ):
        self.default = default
        self.overrides = dict(overrides or {})
        self.factory = factory
        self.built: List[Module] = []

    def spec_for(self, layer_index: int) -> ConvSpec:
        return self.overrides.get(layer_index, self.default)

    def build(
        self,
        in_channels: int,
        out_channels: int,
        layer_index: int,
        kernel_size: int = 3,
        groups: int = 1,
        rng=None,
    ) -> Module:
        if self.factory is not None:
            module = self.factory(in_channels, out_channels, layer_index, groups)
            if module is not None:
                self.built.append(module)
                return module
        spec = self.spec_for(layer_index)
        module = spec.build(
            in_channels, out_channels, kernel_size=kernel_size, groups=groups, rng=rng
        )
        self.built.append(module)
        return module

    def describe(self) -> List[str]:
        """Human-readable per-layer assignment (Fig. 9 style)."""
        out = []
        for i, module in enumerate(self.built):
            out.append(f"layer {i:2d}: {module!r}")
        return out


def uniform_plan(
    spec: ConvSpec,
    num_layers: int,
    tail_f2_layers: Sequence[int] = (),
) -> LayerPlan:
    """The paper's §5.1 policy: one config everywhere, except the listed
    tail layers pinned to F2 (the "last two residual blocks" rule).

    The pin only applies when the main spec is a *larger* Winograd config;
    im2row/F2 plans are left untouched.
    """
    overrides: Dict[int, ConvSpec] = {}
    if spec.is_winograd and spec.m > 2:
        f2 = replace(spec, algorithm="F2")
        for idx in tail_f2_layers:
            if not (0 <= idx < num_layers):
                raise ValueError(f"tail layer {idx} out of range for {num_layers} layers")
            overrides[idx] = f2
    return LayerPlan(spec, overrides)
