"""ResNeXt-20 (8×16) for CIFAR (paper Table 5 / appendix A.1).

Three stages of two bottleneck blocks; each bottleneck holds one grouped
3×3 convolution (cardinality 8, base width 16), giving the six searchable
3×3 layers the appendix counts.  Downsampling uses max-pool + stride-1
convs, consistent with the paper's no-strided-Winograd policy.
"""

from __future__ import annotations

from typing import List, Optional

from repro.autograd.tensor import Tensor
from repro.nn import functional as F
from repro.nn.layers import BatchNorm2d, Conv2d, MaxPool2d
from repro.nn.module import Module, ModuleList
from repro.nn.qlayers import QuantConv2d
from repro.quant.qconfig import QConfig
from repro.models.common import ConvSpec, LayerPlan

NUM_SEARCHABLE_LAYERS = 6


def _scaled(channels: int, width_multiplier: float, multiple: int = 1) -> int:
    c = max(multiple, int(round(channels * width_multiplier)))
    return (c // multiple) * multiple if c % multiple else c


class ResNeXtBlock(Module):
    """1×1 reduce → grouped 3×3 (searchable) → 1×1 expand, with shortcut."""

    def __init__(
        self,
        in_channels: int,
        group_width: int,
        out_channels: int,
        cardinality: int,
        downsample: bool,
        plan: LayerPlan,
        layer_index: int,
        qconfig: QConfig,
        rng=None,
    ):
        super().__init__()
        self.pool = MaxPool2d(2, 2) if downsample else None
        reduce = Conv2d(in_channels, group_width, 1, bias=False, rng=rng)
        expand = Conv2d(group_width, out_channels, 1, bias=False, rng=rng)
        self.reduce = QuantConv2d(reduce, qconfig) if qconfig.enabled else reduce
        self.bn1 = BatchNorm2d(group_width)
        self.conv3 = plan.build(
            group_width, group_width, layer_index, groups=cardinality, rng=rng
        )
        self.bn2 = BatchNorm2d(group_width)
        self.expand = QuantConv2d(expand, qconfig) if qconfig.enabled else expand
        self.bn3 = BatchNorm2d(out_channels)
        if downsample or in_channels != out_channels:
            proj = Conv2d(in_channels, out_channels, 1, bias=False, rng=rng)
            self.shortcut_conv = QuantConv2d(proj, qconfig) if qconfig.enabled else proj
            self.shortcut_bn = BatchNorm2d(out_channels)
        else:
            self.shortcut_conv = None
            self.shortcut_bn = None

    def forward(self, x: Tensor) -> Tensor:
        if self.pool is not None:
            x = self.pool(x)
        out = F.relu(self.bn1(self.reduce(x)))
        out = F.relu(self.bn2(self.conv3(out)))
        out = self.bn3(self.expand(out))
        if self.shortcut_conv is not None:
            shortcut = self.shortcut_bn(self.shortcut_conv(x))
        else:
            shortcut = x
        return F.relu(out + shortcut)


class ResNeXt20(Module):
    """ResNeXt-20 (cardinality × base width = 8×16)."""

    def __init__(
        self,
        num_classes: int = 10,
        cardinality: int = 8,
        base_width: int = 16,
        width_multiplier: float = 1.0,
        plan: Optional[LayerPlan] = None,
        stem_spec: Optional[ConvSpec] = None,
        rng=None,
    ):
        super().__init__()
        if plan is None:
            plan = LayerPlan(ConvSpec("im2row"))
        if stem_spec is None:
            stem_spec = ConvSpec("im2row", plan.default.qconfig)
        self.plan = plan
        qconfig = plan.default.qconfig

        stem_out = _scaled(32, width_multiplier, cardinality)
        self.stem = stem_spec.build(3, stem_out, kernel_size=3, rng=rng)
        self.stem_bn = BatchNorm2d(stem_out)

        from repro.nn.layers import Linear
        from repro.nn.qlayers import QuantLinear

        blocks: List[ResNeXtBlock] = []
        in_ch = stem_out
        layer_index = 0
        for stage in range(3):
            group_width = _scaled(cardinality * base_width * 2**stage, width_multiplier, cardinality)
            out_ch = _scaled(64 * 2**stage * 2, width_multiplier, cardinality)
            for block in range(2):
                downsample = stage > 0 and block == 0
                blocks.append(
                    ResNeXtBlock(
                        in_ch,
                        group_width,
                        out_ch,
                        cardinality,
                        downsample,
                        plan,
                        layer_index,
                        qconfig,
                        rng=rng,
                    )
                )
                in_ch = out_ch
                layer_index += 1
        assert layer_index == NUM_SEARCHABLE_LAYERS
        self.blocks = ModuleList(blocks)
        fc = Linear(in_ch, num_classes, rng=rng)
        self.fc = QuantLinear(fc, qconfig) if qconfig.enabled else fc

    def forward(self, x: Tensor) -> Tensor:
        out = F.relu(self.stem_bn(self.stem(x)))
        for block in self.blocks:
            out = block(out)
        out = F.global_avg_pool2d(out)
        return self.fc(out)


def resnext20(
    num_classes: int = 10,
    width_multiplier: float = 1.0,
    spec: Optional[ConvSpec] = None,
    plan: Optional[LayerPlan] = None,
    rng=None,
    **kwargs,
) -> ResNeXt20:
    if plan is None:
        plan = LayerPlan(spec or ConvSpec("im2row"))
    return ResNeXt20(
        num_classes=num_classes,
        width_multiplier=width_multiplier,
        plan=plan,
        rng=rng,
        **kwargs,
    )
