"""LeNet with 5×5 filters (paper Figure 5).

The paper uses an INT8 LeNet on MNIST to stress Winograd-aware layers with
5×5 filters: F(m×m, 5×5) needs (m+4)×(m+4) tiles — F(6×6, 5×5) already
operates on 10×10 tiles, demanding many good Cook–Toom points, which is
where static transforms collapse (47% accuracy gap) and flex recovers.
"""

from __future__ import annotations

from typing import Optional

from repro.autograd.tensor import Tensor
from repro.nn import functional as F
from repro.nn.layers import BatchNorm2d, Linear, MaxPool2d
from repro.nn.module import Module
from repro.nn.qlayers import QuantLinear
from repro.quant.qconfig import QConfig, fp32
from repro.models.common import ConvSpec, LayerPlan

#: Both 5×5 convolutions are Winograd-eligible.
NUM_SEARCHABLE_LAYERS = 2


class LeNet(Module):
    """LeNet-5-style network: two 5×5 convs + three FC layers.

    Spatial plan for 28×28 inputs (padding 2 keeps "same" size):
    28×28 → pool → 14×14 → pool → 7×7.
    """

    def __init__(
        self,
        num_classes: int = 10,
        plan: Optional[LayerPlan] = None,
        head_qconfig: Optional[QConfig] = None,
        channels: tuple = (6, 16),
        in_channels: int = 1,
        image_size: int = 28,
        batch_norm: bool = True,
        rng=None,
    ):
        super().__init__()
        if plan is None:
            plan = LayerPlan(ConvSpec("im2row"))
        if head_qconfig is None:
            head_qconfig = plan.default.qconfig
        self.plan = plan
        c1, c2 = channels

        self.conv1 = plan.build(in_channels, c1, 0, kernel_size=5, rng=rng)
        # The classic LeNet has no normalisation; at reproduction scale the
        # quantized Winograd pipeline needs it to keep activation ranges
        # (and hence the INT8 grids) stable.  FP32 results are unaffected.
        self.bn1 = BatchNorm2d(c1) if batch_norm else None
        self.pool1 = MaxPool2d(2, 2)
        self.conv2 = plan.build(c1, c2, 1, kernel_size=5, rng=rng)
        self.bn2 = BatchNorm2d(c2) if batch_norm else None
        self.pool2 = MaxPool2d(2, 2)

        feat = c2 * (image_size // 4) ** 2
        make_fc = lambda i, o: (
            QuantLinear(Linear(i, o, rng=rng), head_qconfig)
            if head_qconfig.enabled
            else Linear(i, o, rng=rng)
        )
        self.fc1 = make_fc(feat, 120)
        self.fc2 = make_fc(120, 84)
        self.fc3 = make_fc(84, num_classes)

    def forward(self, x: Tensor) -> Tensor:
        out = self.conv1(x)
        if self.bn1 is not None:
            out = self.bn1(out)
        out = self.pool1(F.relu(out))
        out = self.conv2(out)
        if self.bn2 is not None:
            out = self.bn2(out)
        out = self.pool2(F.relu(out))
        out = out.reshape(out.shape[0], out.shape[1] * out.shape[2] * out.shape[3])
        out = F.relu(self.fc1(out))
        out = F.relu(self.fc2(out))
        return self.fc3(out)


def lenet(
    num_classes: int = 10,
    spec: Optional[ConvSpec] = None,
    plan: Optional[LayerPlan] = None,
    rng=None,
    **kwargs,
) -> LeNet:
    if plan is None:
        plan = LayerPlan(spec or ConvSpec("im2row"))
    return LeNet(num_classes=num_classes, plan=plan, rng=rng, **kwargs)
