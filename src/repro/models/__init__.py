"""Model zoo: the architectures evaluated in the paper.

All models are built through a *conv plan* — a factory deciding, for every
3×3 (or 5×5) convolution, which algorithm implements it (im2row / im2col /
Winograd F2/F4/F6), at which precision, and whether the Winograd transforms
are learnable.  This is exactly the knob wiNAS searches over, and it lets a
single macro-architecture express every row of the paper's tables.
"""

from repro.models.common import ConvSpec, LayerPlan, uniform_plan, spec_from_name
from repro.models.resnet import ResNet18, resnet18
from repro.models.lenet import LeNet, lenet
from repro.models.squeezenet import SqueezeNet, squeezenet
from repro.models.resnext import ResNeXt20, resnext20

__all__ = [
    "ConvSpec",
    "LayerPlan",
    "uniform_plan",
    "spec_from_name",
    "ResNet18",
    "resnet18",
    "LeNet",
    "lenet",
    "SqueezeNet",
    "squeezenet",
    "ResNeXt20",
    "resnext20",
]
