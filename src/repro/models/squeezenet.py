"""SqueezeNet for CIFAR (paper Table 4 / appendix A.1).

Eight fire modules, each with a 1×1 squeeze and a pair of 1×1 / 3×3
expands; the eight expand-3×3 convolutions are the searchable layers
(the appendix counts 8 for SqueezeNet).  The stem stays a standard
convolution, pooling handles all downsampling (no strided convs).
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

from repro.autograd import ops
from repro.autograd.tensor import Tensor
from repro.nn import functional as F
from repro.nn.layers import BatchNorm2d, Conv2d, MaxPool2d
from repro.nn.module import Module, ModuleList
from repro.nn.qlayers import QuantConv2d
from repro.quant.qconfig import QConfig, fp32
from repro.models.common import ConvSpec, LayerPlan

NUM_SEARCHABLE_LAYERS = 8


def _scaled(channels: int, width_multiplier: float) -> int:
    return max(1, int(round(channels * width_multiplier)))


class Fire(Module):
    """squeeze(1×1) → concat(expand1×1, expand3×3)."""

    def __init__(
        self,
        in_channels: int,
        squeeze: int,
        expand: int,
        plan: LayerPlan,
        layer_index: int,
        qconfig: QConfig,
        rng=None,
    ):
        super().__init__()
        sq = Conv2d(in_channels, squeeze, 1, rng=rng)
        e1 = Conv2d(squeeze, expand, 1, rng=rng)
        self.squeeze = QuantConv2d(sq, qconfig) if qconfig.enabled else sq
        self.expand1 = QuantConv2d(e1, qconfig) if qconfig.enabled else e1
        self.expand3 = plan.build(squeeze, expand, layer_index, rng=rng)
        self.bn = BatchNorm2d(2 * expand)

    def forward(self, x: Tensor) -> Tensor:
        s = F.relu(self.squeeze(x))
        out = ops.concat([self.expand1(s), self.expand3(s)], axis=1)
        return F.relu(self.bn(out))


class SqueezeNet(Module):
    """CIFAR-sized SqueezeNet v1.1-style network."""

    def __init__(
        self,
        num_classes: int = 10,
        width_multiplier: float = 1.0,
        plan: Optional[LayerPlan] = None,
        stem_spec: Optional[ConvSpec] = None,
        rng=None,
    ):
        super().__init__()
        if plan is None:
            plan = LayerPlan(ConvSpec("im2row"))
        if stem_spec is None:
            stem_spec = ConvSpec("im2row", plan.default.qconfig)
        self.plan = plan
        qconfig = plan.default.qconfig
        wm = width_multiplier

        stem_out = _scaled(64, wm)
        self.stem = stem_spec.build(3, stem_out, kernel_size=3, rng=rng)
        self.stem_bn = BatchNorm2d(stem_out)

        # (squeeze, expand) per fire module; pools after modules 2, 4, 6.
        cfg: Sequence[Tuple[int, int]] = (
            (16, 64),
            (16, 64),
            (32, 128),
            (32, 128),
            (48, 192),
            (48, 192),
            (64, 256),
            (64, 256),
        )
        fires: List[Fire] = []
        in_ch = stem_out
        for i, (squeeze, expand) in enumerate(cfg):
            fire = Fire(
                in_ch,
                _scaled(squeeze, wm),
                _scaled(expand, wm),
                plan,
                layer_index=i,
                qconfig=qconfig,
                rng=rng,
            )
            fires.append(fire)
            in_ch = 2 * _scaled(expand, wm)
        self.fires = ModuleList(fires)
        self.pool_after = {1, 3, 5}
        self.pool = MaxPool2d(2, 2)

        classifier = Conv2d(in_ch, num_classes, 1, rng=rng)
        self.classifier = QuantConv2d(classifier, qconfig) if qconfig.enabled else classifier

    def forward(self, x: Tensor) -> Tensor:
        out = F.relu(self.stem_bn(self.stem(x)))
        for i, fire in enumerate(self.fires):
            out = fire(out)
            if i in self.pool_after:
                out = self.pool(out)
        out = self.classifier(out)
        return F.global_avg_pool2d(out)


def squeezenet(
    num_classes: int = 10,
    width_multiplier: float = 1.0,
    spec: Optional[ConvSpec] = None,
    plan: Optional[LayerPlan] = None,
    rng=None,
) -> SqueezeNet:
    if plan is None:
        plan = LayerPlan(spec or ConvSpec("im2row"))
    return SqueezeNet(
        num_classes=num_classes, width_multiplier=width_multiplier, plan=plan, rng=rng
    )
