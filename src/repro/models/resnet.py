"""ResNet-18, the paper's CIFAR variant (§5.1).

Differences from torchvision's ResNet-18, all mandated by the paper:

* the stem convolution outputs **32** channels instead of 64 ("to reduce
  the memory peak during training") and stays a *standard* convolution;
* every stride-2 convolution is replaced by a 2×2 max-pool followed by a
  dense stride-1 3×3 convolution (no strided Winograd exists);
* a ``width_multiplier`` scales every channel count (0.125 … 1.0, the
  x-axis of Figure 4);
* the sixteen 3×3 convolutions inside the residual blocks are built
  through a :class:`~repro.models.common.LayerPlan` so each can be im2row
  or Winograd at any precision (wiNAS's search space);
* shortcut 1×1 convolutions are always im2row (paper §A.3).
"""

from __future__ import annotations

from typing import List, Optional, Sequence

import numpy as np

from repro.autograd.tensor import Tensor
from repro.nn import functional as F
from repro.nn.layers import BatchNorm2d, Conv2d, Linear, MaxPool2d
from repro.nn.module import Module, ModuleList, Sequential
from repro.nn.qlayers import QuantConv2d, QuantLinear
from repro.quant.qconfig import QConfig, fp32
from repro.models.common import ConvSpec, LayerPlan, uniform_plan

#: 3×3 conv layers inside residual blocks (2 per block, 2 blocks per stage).
NUM_SEARCHABLE_LAYERS = 16

#: The paper keeps "the last two residual blocks" at F2 — layers 12..15.
TAIL_F2_LAYERS = (12, 13, 14, 15)


def _scaled(channels: int, width_multiplier: float) -> int:
    return max(1, int(round(channels * width_multiplier)))


class BasicBlock(Module):
    """Two 3×3 convolutions with identity shortcut.

    When the block downsamples, both the residual branch and the shortcut
    start with a 2×2 max-pool (the paper's strided-conv replacement).
    """

    def __init__(
        self,
        in_channels: int,
        out_channels: int,
        downsample: bool,
        plan: LayerPlan,
        layer_index: int,
        shortcut_qconfig: QConfig,
        rng=None,
    ):
        super().__init__()
        self.downsample = downsample
        self.pool = MaxPool2d(2, 2) if downsample else None
        self.conv1 = plan.build(in_channels, out_channels, layer_index, rng=rng)
        self.bn1 = BatchNorm2d(out_channels)
        self.conv2 = plan.build(out_channels, out_channels, layer_index + 1, rng=rng)
        self.bn2 = BatchNorm2d(out_channels)
        if downsample or in_channels != out_channels:
            proj = Conv2d(in_channels, out_channels, 1, bias=False, rng=rng)
            self.shortcut_conv = (
                QuantConv2d(proj, shortcut_qconfig) if shortcut_qconfig.enabled else proj
            )
            self.shortcut_bn = BatchNorm2d(out_channels)
        else:
            self.shortcut_conv = None
            self.shortcut_bn = None

    def forward(self, x: Tensor) -> Tensor:
        if self.pool is not None:
            x = self.pool(x)
        out = F.relu(self.bn1(self.conv1(x)))
        out = self.bn2(self.conv2(out))
        if self.shortcut_conv is not None:
            shortcut = self.shortcut_bn(self.shortcut_conv(x))
        else:
            shortcut = x
        return F.relu(out + shortcut)


class ResNet18(Module):
    """The paper's CIFAR ResNet-18.

    Parameters
    ----------
    num_classes:
        10 for CIFAR-10, 100 for CIFAR-100.
    width_multiplier:
        Scales all channel counts (Figure 4's x-axis).
    plan:
        Per-layer conv assignment for the 16 searchable 3×3 layers.
    stem_spec:
        Algorithm/precision of the input convolution (always a standard
        conv in §5.1; wiNAS-Q may still quantize it differently).
    head_qconfig:
        Precision of the final classifier.
    """

    def __init__(
        self,
        num_classes: int = 10,
        width_multiplier: float = 1.0,
        plan: Optional[LayerPlan] = None,
        stem_spec: Optional[ConvSpec] = None,
        head_qconfig: Optional[QConfig] = None,
        stem_channels: int = 32,
        stage_channels: Sequence[int] = (64, 128, 256, 512),
        rng=None,
    ):
        super().__init__()
        if plan is None:
            plan = uniform_plan(ConvSpec("im2row"), NUM_SEARCHABLE_LAYERS, TAIL_F2_LAYERS)
        if stem_spec is None:
            stem_spec = ConvSpec("im2row", plan.default.qconfig)
        if head_qconfig is None:
            head_qconfig = plan.default.qconfig
        self.plan = plan
        self.num_classes = num_classes
        self.width_multiplier = width_multiplier

        stem_out = _scaled(stem_channels, width_multiplier)
        widths = [_scaled(c, width_multiplier) for c in stage_channels]

        self.stem = stem_spec.build(3, stem_out, kernel_size=3, rng=rng)
        self.stem_bn = BatchNorm2d(stem_out)

        blocks: List[BasicBlock] = []
        in_ch = stem_out
        layer_index = 0
        shortcut_q = plan.default.qconfig
        for stage, out_ch in enumerate(widths):
            for block in range(2):
                downsample = stage > 0 and block == 0
                blocks.append(
                    BasicBlock(
                        in_ch,
                        out_ch,
                        downsample,
                        plan,
                        layer_index,
                        shortcut_qconfig=shortcut_q,
                        rng=rng,
                    )
                )
                in_ch = out_ch
                layer_index += 2
        assert layer_index == NUM_SEARCHABLE_LAYERS
        self.blocks = ModuleList(blocks)

        fc = Linear(in_ch, num_classes, rng=rng)
        self.fc = QuantLinear(fc, head_qconfig) if head_qconfig.enabled else fc

    def forward(self, x: Tensor) -> Tensor:
        out = F.relu(self.stem_bn(self.stem(x)))
        for block in self.blocks:
            out = block(out)
        out = F.global_avg_pool2d(out)
        return self.fc(out)

    def conv3x3_modules(self) -> List[Module]:
        """The 16 searchable convolution modules, in network order."""
        return list(self.plan.built[:NUM_SEARCHABLE_LAYERS])


def resnet18(
    num_classes: int = 10,
    width_multiplier: float = 1.0,
    spec: Optional[ConvSpec] = None,
    plan: Optional[LayerPlan] = None,
    rng=None,
    **kwargs,
) -> ResNet18:
    """Convenience constructor applying the §5.1 uniform policy.

    ``spec`` sets every searchable layer (tail pinned to F2 when the spec
    is F4/F6); pass ``plan`` instead for full per-layer control (Fig. 9).
    """
    if plan is None:
        spec = spec or ConvSpec("im2row")
        plan = uniform_plan(spec, NUM_SEARCHABLE_LAYERS, TAIL_F2_LAYERS)
    return ResNet18(
        num_classes=num_classes,
        width_multiplier=width_multiplier,
        plan=plan,
        rng=rng,
        **kwargs,
    )
