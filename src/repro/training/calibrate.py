"""Observer warm-up ("calibration") for post-training quantization.

Table 1's footnote: before evaluating a pre-trained model whose convs were
swapped to (quantized) Winograd, the paper warms up "all the moving
averages involved in Eq. 1 using the training set but without modifying the
weights".  That is precisely what :func:`calibrate` does: forward passes in
calibration mode update every quantizer's EMA range while no gradients are
computed and no parameter changes.
"""

from __future__ import annotations

from typing import Optional

from repro.autograd.function import no_grad
from repro.autograd.tensor import Tensor
from repro.data.loader import DataLoader
from repro.nn.module import Module
from repro.quant.quantizer import Quantizer


def set_calibrating(model: Module, flag: bool) -> int:
    """Toggle calibration mode on every quantizer; returns how many."""
    count = 0
    for module in model.modules():
        if isinstance(module, Quantizer):
            module.calibrating = flag
            count += 1
    return count


def calibrate(model: Module, loader: DataLoader, num_batches: Optional[int] = None) -> None:
    """Warm up quantizer EMA ranges with forward passes only."""
    was_training = model.training
    model.eval()
    set_calibrating(model, True)
    try:
        with no_grad():
            for i, (images, _) in enumerate(loader):
                if num_batches is not None and i >= num_batches:
                    break
                model(Tensor(images))
    finally:
        set_calibrating(model, False)
        model.train(was_training)
