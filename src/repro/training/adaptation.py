"""Fast adaptation of pre-trained standard models to Winograd-aware form.

Figure 6 of the paper: an INT8 ResNet-18 F4 can be obtained from a model
trained end-to-end with standard convolutions in ~20 epochs of retraining
(a 2.8× training-time reduction), *provided the transforms are learnable*.
The mechanism is: build the Winograd-aware twin of the architecture, copy
every weight that still exists (filters, BN parameters and statistics, the
classifier), leave the Winograd transforms at their Cook–Toom
initialisation, then fine-tune.
"""

from __future__ import annotations

import re
from typing import Dict, Tuple

import numpy as np

from repro.nn.module import Module

#: wrapper attribute segments that do not change what the parameter *is*.
_WRAPPER_SEGMENTS = re.compile(r"\.(conv|linear)(?=\.|$)")


def canonical_state_dict(model: Module) -> Dict[str, np.ndarray]:
    """State dict with quantization-wrapper path segments normalised away.

    ``blocks.0.conv1.conv.weight`` (a :class:`QuantConv2d`) and
    ``blocks.0.conv1.weight`` (a plain conv or Winograd layer) both map to
    ``blocks.0.conv1.weight``, so weights transfer across algorithm and
    precision changes.
    """
    out: Dict[str, np.ndarray] = {}
    for name, value in model.state_dict().items():
        canon = _WRAPPER_SEGMENTS.sub("", name)
        if canon in out:
            raise KeyError(f"canonical name collision: {canon} (from {name})")
        out[canon] = value
    return out


def transfer_weights(source: Module, target: Module) -> Tuple[int, int]:
    """Copy every canonically-matching, shape-matching tensor.

    Returns ``(copied, skipped)`` counts.  Winograd transforms and
    quantizer observers have no counterpart in a standard model and are
    left at initialisation, as the paper's adaptation protocol requires.
    """
    src = canonical_state_dict(source)
    copied = skipped = params_copied = 0
    params = list(target.named_parameters())
    param_names = {name for name, _ in params}
    for name, buf in params + list(target.named_buffers()):
        canon = _WRAPPER_SEGMENTS.sub("", name)
        if canon in src and src[canon].shape == buf.shape:
            buf.data = src[canon].astype(buf.dtype).copy()
            copied += 1
            if name in param_names:
                params_copied += 1
        else:
            skipped += 1
    if params_copied < max(1, len(params) // 2):
        # A handful of coincidentally shape-matched tensors (classifier
        # bias, observer scalars) does not make two models the same
        # architecture.
        raise ValueError(
            f"only {params_copied}/{len(params)} parameters transferred — "
            "architectures do not align"
        )
    return copied, skipped


def adapt_to_winograd(source: Module, target: Module) -> Module:
    """Initialise ``target`` (Winograd-aware) from ``source`` (standard).

    The two models must share a macro-architecture (same factory, same
    width).  Returns ``target`` for chaining.
    """
    transfer_weights(source, target)
    return target
