"""Training loops, metrics, calibration and the Figure-6 adaptation recipe."""

from repro.training.metrics import accuracy, Meter
from repro.training.trainer import Trainer, TrainConfig, EpochResult
from repro.training.calibrate import calibrate, set_calibrating
from repro.training.adaptation import adapt_to_winograd

__all__ = [
    "accuracy",
    "Meter",
    "Trainer",
    "TrainConfig",
    "EpochResult",
    "calibrate",
    "set_calibrating",
    "adapt_to_winograd",
]
