"""Generic (quantization-aware) training loop.

The paper's §5.1 recipe is Adam + cosine annealing for 120 epochs with a
weight-decay term (Eq. 2).  At reproduction scale the same loop runs for a
handful of epochs on the synthetic datasets; the protocol — QAT with EMA
observers updating each forward pass, evaluation in frozen-range mode — is
identical.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List, Optional

import numpy as np

from repro.autograd.function import no_grad
from repro.autograd.tensor import Tensor
from repro.data.loader import DataLoader
from repro.nn.losses import cross_entropy
from repro.nn.module import Module
from repro.optim.adam import Adam
from repro.optim.optimizer import Optimizer
from repro.optim.schedulers import CosineAnnealingLR, LRScheduler
from repro.training.metrics import Meter, accuracy


@dataclass
class TrainConfig:
    """Hyper-parameters for :class:`Trainer` (defaults follow §5.1)."""

    epochs: int = 10
    lr: float = 1e-3
    weight_decay: float = 1e-4
    optimizer: str = "adam"  # "adam" | "sgd"
    momentum: float = 0.9
    nesterov: bool = True
    cosine: bool = True
    max_grad_norm: float = 5.0
    verbose: bool = False


@dataclass
class EpochResult:
    epoch: int
    train_loss: float
    train_accuracy: float
    val_accuracy: Optional[float] = None


class Trainer:
    """Train a model on a loader, tracking per-epoch metrics."""

    def __init__(
        self,
        model: Module,
        train_loader: DataLoader,
        val_loader: Optional[DataLoader] = None,
        config: Optional[TrainConfig] = None,
        loss_fn: Callable = cross_entropy,
    ):
        self.model = model
        self.train_loader = train_loader
        self.val_loader = val_loader
        self.config = config or TrainConfig()
        self.loss_fn = loss_fn
        self.optimizer = self._make_optimizer()
        self.scheduler: Optional[LRScheduler] = (
            CosineAnnealingLR(self.optimizer, t_max=self.config.epochs)
            if self.config.cosine
            else None
        )
        self.history: List[EpochResult] = []

    def _make_optimizer(self) -> Optimizer:
        cfg = self.config
        params = self.model.parameters()
        if cfg.optimizer == "adam":
            return Adam(
                params,
                lr=cfg.lr,
                weight_decay=cfg.weight_decay,
                max_grad_norm=cfg.max_grad_norm,
            )
        if cfg.optimizer == "sgd":
            from repro.optim.sgd import SGD

            return SGD(
                params,
                lr=cfg.lr,
                momentum=cfg.momentum,
                nesterov=cfg.nesterov,
                weight_decay=cfg.weight_decay,
                max_grad_norm=cfg.max_grad_norm,
            )
        raise ValueError(f"unknown optimizer {cfg.optimizer!r}")

    def train_epoch(self) -> EpochResult:
        self.model.train()
        loss_meter, acc_meter = Meter(), Meter()
        for images, labels in self.train_loader:
            x = Tensor(images)
            logits = self.model(x)
            loss = self.loss_fn(logits, labels)
            self.optimizer.zero_grad()
            loss.backward()
            self.optimizer.step()
            loss_meter.update(loss.item(), len(labels))
            acc_meter.update(accuracy(logits, labels), len(labels))
        val_acc = self.evaluate() if self.val_loader is not None else None
        if self.scheduler is not None:
            self.scheduler.step()
        result = EpochResult(
            epoch=len(self.history),
            train_loss=loss_meter.mean,
            train_accuracy=acc_meter.mean,
            val_accuracy=val_acc,
        )
        self.history.append(result)
        if self.config.verbose:  # pragma: no cover - logging only
            msg = (
                f"epoch {result.epoch:3d}  loss {result.train_loss:.4f}  "
                f"train acc {result.train_accuracy:.3f}"
            )
            if val_acc is not None:
                msg += f"  val acc {val_acc:.3f}"
            print(msg)
        return result

    def fit(self, epochs: Optional[int] = None) -> List[EpochResult]:
        for _ in range(epochs if epochs is not None else self.config.epochs):
            self.train_epoch()
        return self.history

    def evaluate(self, loader: Optional[DataLoader] = None) -> float:
        loader = loader or self.val_loader
        if loader is None:
            raise ValueError("no validation loader provided")
        return evaluate(self.model, loader)


def evaluate(model: Module, loader: DataLoader) -> float:
    """Top-1 accuracy of ``model`` over ``loader`` in eval mode."""
    model.eval()
    meter = Meter()
    with no_grad():
        for images, labels in loader:
            logits = model(Tensor(images))
            meter.update(accuracy(logits, labels), len(labels))
    model.train()
    return meter.mean
