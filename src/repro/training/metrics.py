"""Classification metrics and running meters."""

from __future__ import annotations

from typing import Union

import numpy as np

from repro.autograd.tensor import Tensor


def accuracy(logits: Union[Tensor, np.ndarray], labels: np.ndarray) -> float:
    """Top-1 accuracy in [0, 1]."""
    data = logits.data if isinstance(logits, Tensor) else np.asarray(logits)
    preds = data.argmax(axis=1)
    return float((preds == np.asarray(labels)).mean())


class Meter:
    """Weighted running average (e.g. of batch loss or accuracy)."""

    def __init__(self) -> None:
        self.total = 0.0
        self.weight = 0.0

    def update(self, value: float, weight: float = 1.0) -> None:
        self.total += float(value) * weight
        self.weight += weight

    @property
    def mean(self) -> float:
        return self.total / self.weight if self.weight else 0.0

    def reset(self) -> None:
        self.total = 0.0
        self.weight = 0.0
