"""Standard layer modules."""

from __future__ import annotations

from typing import Optional, Tuple, Union

import numpy as np

from repro.autograd.tensor import Tensor
from repro.nn import functional as F
from repro.nn import init
from repro.nn.module import Buffer, Module, Parameter

IntPair = Union[int, Tuple[int, int]]


class Linear(Module):
    """Fully connected layer: ``y = x Wᵀ + b``."""

    def __init__(self, in_features: int, out_features: int, bias: bool = True, rng=None):
        super().__init__()
        self.in_features = in_features
        self.out_features = out_features
        self.weight = Parameter(init.kaiming_uniform((out_features, in_features), rng=rng))
        self.bias = Parameter(init.uniform_bias((out_features,), in_features, rng=rng)) if bias else None

    def forward(self, x: Tensor) -> Tensor:
        return F.linear(x, self.weight, self.bias)

    def __repr__(self) -> str:
        return f"Linear({self.in_features}, {self.out_features}, bias={self.bias is not None})"


class Conv2d(Module):
    """2-D convolution implemented as im2row + GEMM.

    ``method`` is recorded metadata ("im2row"/"im2col") used by the hardware
    latency model; both lower to the same GEMM here (the distinction on real
    hardware is the memory layout of the patch matrix).
    """

    def __init__(
        self,
        in_channels: int,
        out_channels: int,
        kernel_size: IntPair = 3,
        stride: IntPair = 1,
        padding: IntPair = 0,
        groups: int = 1,
        bias: bool = True,
        method: str = "im2row",
        rng=None,
    ):
        super().__init__()
        kh, kw = (kernel_size, kernel_size) if isinstance(kernel_size, int) else kernel_size
        if in_channels % groups or out_channels % groups:
            raise ValueError(
                f"groups={groups} must divide channels {in_channels}->{out_channels}"
            )
        if method not in ("im2row", "im2col", "direct"):
            raise ValueError(f"unknown conv method {method!r}")
        self.in_channels = in_channels
        self.out_channels = out_channels
        self.kernel_size = (kh, kw)
        self.stride = stride
        self.padding = padding
        self.groups = groups
        self.method = method
        self.weight = Parameter(
            init.kaiming_normal((out_channels, in_channels // groups, kh, kw), rng=rng)
        )
        fan_in = (in_channels // groups) * kh * kw
        self.bias = Parameter(init.uniform_bias((out_channels,), fan_in, rng=rng)) if bias else None

    def forward(self, x: Tensor) -> Tensor:
        self.last_input_hw = (x.shape[2], x.shape[3])  # consumed by repro.hardware
        return F.conv2d_im2row(
            x, self.weight, self.bias, stride=self.stride, padding=self.padding, groups=self.groups
        )

    def __repr__(self) -> str:
        return (
            f"Conv2d({self.in_channels}, {self.out_channels}, kernel={self.kernel_size}, "
            f"stride={self.stride}, padding={self.padding}, groups={self.groups}, "
            f"method={self.method})"
        )


class BatchNorm2d(Module):
    """Per-channel batch normalisation with running statistics."""

    def __init__(self, num_features: int, eps: float = 1e-5, momentum: float = 0.1):
        super().__init__()
        self.num_features = num_features
        self.eps = eps
        self.momentum = momentum
        self.weight = Parameter(init.ones((num_features,)))
        self.bias = Parameter(init.zeros((num_features,)))
        self.register_buffer("running_mean", np.zeros(num_features, dtype=np.float32))
        self.register_buffer("running_var", np.ones(num_features, dtype=np.float32))

    def forward(self, x: Tensor) -> Tensor:
        return F.batch_norm2d(
            x,
            self.weight,
            self.bias,
            self.running_mean.data,
            self.running_var.data,
            training=self.training,
            momentum=self.momentum,
            eps=self.eps,
        )

    def __repr__(self) -> str:
        return f"BatchNorm2d({self.num_features})"


class MaxPool2d(Module):
    def __init__(self, kernel_size: IntPair, stride: Optional[IntPair] = None):
        super().__init__()
        self.kernel_size = kernel_size
        self.stride = stride

    def forward(self, x: Tensor) -> Tensor:
        return F.max_pool2d(x, self.kernel_size, self.stride)

    def __repr__(self) -> str:
        return f"MaxPool2d({self.kernel_size}, stride={self.stride})"


class AvgPool2d(Module):
    def __init__(self, kernel_size: IntPair, stride: Optional[IntPair] = None):
        super().__init__()
        self.kernel_size = kernel_size
        self.stride = stride

    def forward(self, x: Tensor) -> Tensor:
        return F.avg_pool2d(x, self.kernel_size, self.stride)


class GlobalAvgPool2d(Module):
    def forward(self, x: Tensor) -> Tensor:
        return F.global_avg_pool2d(x)


class ReLU(Module):
    def forward(self, x: Tensor) -> Tensor:
        return F.relu(x)

    def __repr__(self) -> str:
        return "ReLU()"


class Flatten(Module):
    def forward(self, x: Tensor) -> Tensor:
        return x.reshape(x.shape[0], -1 if 0 in x.shape[1:] else int(np.prod(x.shape[1:])))


class Identity(Module):
    def forward(self, x: Tensor) -> Tensor:
        return x

    def __repr__(self) -> str:
        return "Identity()"
