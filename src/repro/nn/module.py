"""Module / Parameter containers with PyTorch-like ergonomics."""

from __future__ import annotations

from collections import OrderedDict
from typing import Dict, Iterator, List, Optional, Tuple, Union

import numpy as np

from repro.autograd.tensor import Tensor


class Parameter(Tensor):
    """A tensor that is a learnable model parameter (requires grad)."""

    def __init__(self, data, requires_grad: bool = True, dtype=None):
        super().__init__(data, requires_grad=requires_grad, dtype=dtype)


class Buffer(Tensor):
    """Persistent, non-learnable module state (e.g. BN running stats)."""

    def __init__(self, data, dtype=None):
        super().__init__(data, requires_grad=False, dtype=dtype)


class Module:
    """Base class for all network modules.

    Subclasses define ``forward``; attribute assignment automatically
    registers parameters, buffers and sub-modules, enabling recursive
    iteration, train/eval switching and state (de)serialisation.
    """

    def __init__(self) -> None:
        object.__setattr__(self, "_parameters", OrderedDict())
        object.__setattr__(self, "_buffers", OrderedDict())
        object.__setattr__(self, "_modules", OrderedDict())
        object.__setattr__(self, "training", True)

    # -- registration -------------------------------------------------------
    def __setattr__(self, name: str, value) -> None:
        if isinstance(value, Parameter):
            self._parameters[name] = value
            self._buffers.pop(name, None)
            self._modules.pop(name, None)
        elif isinstance(value, Buffer):
            self._buffers[name] = value
            self._parameters.pop(name, None)
        elif isinstance(value, Module):
            self._modules[name] = value
            self._parameters.pop(name, None)
        object.__setattr__(self, name, value)

    def register_buffer(self, name: str, value: Union[Buffer, np.ndarray]) -> None:
        buf = value if isinstance(value, Buffer) else Buffer(value)
        setattr(self, name, buf)

    def add_module(self, name: str, module: "Module") -> None:
        setattr(self, name, module)

    # -- iteration ------------------------------------------------------------
    def named_parameters(self, prefix: str = "") -> Iterator[Tuple[str, Parameter]]:
        for name, param in self._parameters.items():
            yield (f"{prefix}{name}", param)
        for mod_name, module in self._modules.items():
            yield from module.named_parameters(prefix=f"{prefix}{mod_name}.")

    def parameters(self) -> List[Parameter]:
        # Deduplicate by identity: modules may share parameters (e.g. the
        # NAS mixed op's candidates all share one filter tensor), and an
        # optimizer must see each tensor exactly once.
        seen = set()
        out: List[Parameter] = []
        for _, p in self.named_parameters():
            if id(p) not in seen:
                seen.add(id(p))
                out.append(p)
        return out

    def named_buffers(self, prefix: str = "") -> Iterator[Tuple[str, Buffer]]:
        for name, buf in self._buffers.items():
            yield (f"{prefix}{name}", buf)
        for mod_name, module in self._modules.items():
            yield from module.named_buffers(prefix=f"{prefix}{mod_name}.")

    def named_modules(self, prefix: str = "") -> Iterator[Tuple[str, "Module"]]:
        yield prefix.rstrip("."), self
        for mod_name, module in self._modules.items():
            yield from module.named_modules(prefix=f"{prefix}{mod_name}.")

    def modules(self) -> Iterator["Module"]:
        for _, m in self.named_modules():
            yield m

    def children(self) -> Iterator["Module"]:
        yield from self._modules.values()

    # -- mode / grads -----------------------------------------------------------
    def train(self, mode: bool = True) -> "Module":
        object.__setattr__(self, "training", mode)
        for module in self._modules.values():
            module.train(mode)
        return self

    def eval(self) -> "Module":
        return self.train(False)

    def zero_grad(self) -> None:
        for p in self.parameters():
            p.zero_grad()

    def num_parameters(self) -> int:
        return sum(p.size for p in self.parameters())

    # -- state ---------------------------------------------------------------
    def state_dict(self) -> Dict[str, np.ndarray]:
        state: Dict[str, np.ndarray] = {}
        for name, p in self.named_parameters():
            state[name] = p.data.copy()
        for name, b in self.named_buffers():
            state[name] = b.data.copy()
        return state

    def load_state_dict(self, state: Dict[str, np.ndarray], strict: bool = True) -> None:
        own = {name: p for name, p in self.named_parameters()}
        own.update({name: b for name, b in self.named_buffers()})
        missing = set(own) - set(state)
        unexpected = set(state) - set(own)
        if strict and (missing or unexpected):
            raise KeyError(f"state mismatch: missing={sorted(missing)} unexpected={sorted(unexpected)}")
        for name, value in state.items():
            if name in own:
                target = own[name]
                if target.shape != value.shape:
                    raise ValueError(f"shape mismatch for {name}: {target.shape} vs {value.shape}")
                target.data = value.astype(target.dtype).copy()

    # -- call -------------------------------------------------------------------
    def forward(self, *args, **kwargs):  # pragma: no cover - abstract
        raise NotImplementedError

    def __call__(self, *args, **kwargs):
        return self.forward(*args, **kwargs)

    def __repr__(self) -> str:
        lines = [f"{type(self).__name__}("]
        for name, module in self._modules.items():
            mod_repr = repr(module).replace("\n", "\n  ")
            lines.append(f"  ({name}): {mod_repr}")
        lines.append(")")
        return "\n".join(lines) if len(lines) > 2 else f"{type(self).__name__}()"


class Sequential(Module):
    """Chain modules in order."""

    def __init__(self, *modules: Module):
        super().__init__()
        for i, module in enumerate(modules):
            self.add_module(str(i), module)

    def __iter__(self) -> Iterator[Module]:
        return iter(self._modules.values())

    def __len__(self) -> int:
        return len(self._modules)

    def __getitem__(self, index: int) -> Module:
        return list(self._modules.values())[index]

    def forward(self, x):
        for module in self._modules.values():
            x = module(x)
        return x


class ModuleList(Module):
    """A list of sub-modules that is properly registered."""

    def __init__(self, modules=()):
        super().__init__()
        for i, module in enumerate(modules):
            self.add_module(str(i), module)

    def append(self, module: Module) -> "ModuleList":
        self.add_module(str(len(self._modules)), module)
        return self

    def __iter__(self) -> Iterator[Module]:
        return iter(self._modules.values())

    def __len__(self) -> int:
        return len(self._modules)

    def __getitem__(self, index: int) -> Module:
        return list(self._modules.values())[index]

    def forward(self, *args, **kwargs):  # pragma: no cover
        raise RuntimeError("ModuleList is a container; call its members explicitly")
