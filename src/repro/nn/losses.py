"""Loss functions."""

from __future__ import annotations

from typing import Union

import numpy as np

from repro.autograd import ops
from repro.autograd.tensor import Tensor, as_tensor


def _one_hot(targets: np.ndarray, num_classes: int, dtype) -> np.ndarray:
    targets = np.asarray(targets)
    if targets.ndim != 1:
        raise ValueError(f"targets must be 1-D class indices, got shape {targets.shape}")
    if targets.min() < 0 or targets.max() >= num_classes:
        raise ValueError(
            f"target out of range [0, {num_classes}): min={targets.min()} max={targets.max()}"
        )
    out = np.zeros((targets.shape[0], num_classes), dtype=dtype)
    out[np.arange(targets.shape[0]), targets] = 1.0
    return out


def cross_entropy(logits: Tensor, targets: Union[np.ndarray, list]) -> Tensor:
    """Mean cross-entropy between logits (N, C) and integer class targets (N,)."""
    logits = as_tensor(logits)
    log_probs = ops.log_softmax(logits, axis=1)
    onehot = _one_hot(np.asarray(targets), logits.shape[1], logits.dtype)
    picked = ops.sum(log_probs * onehot, axis=1)
    return -ops.mean(picked)


def nll_loss(log_probs: Tensor, targets: Union[np.ndarray, list]) -> Tensor:
    """Mean negative log-likelihood given log-probabilities (N, C)."""
    log_probs = as_tensor(log_probs)
    onehot = _one_hot(np.asarray(targets), log_probs.shape[1], log_probs.dtype)
    picked = ops.sum(log_probs * onehot, axis=1)
    return -ops.mean(picked)


def mse_loss(pred: Tensor, target) -> Tensor:
    pred = as_tensor(pred)
    diff = pred - as_tensor(target)
    return ops.mean(diff * diff)
