"""Functional layer implementations composed from autograd primitives."""

from __future__ import annotations

from typing import Optional, Tuple, Union

import numpy as np

from repro.autograd import ops
from repro.autograd.tensor import Tensor, as_tensor

IntPair = Union[int, Tuple[int, int]]


def _pair(v: IntPair) -> Tuple[int, int]:
    if isinstance(v, int):
        return (v, v)
    return tuple(v)  # type: ignore[return-value]


def relu(x: Tensor) -> Tensor:
    return ops.relu(x)


def softmax(x: Tensor, axis: int = -1) -> Tensor:
    return ops.exp(ops.log_softmax(x, axis=axis))


def linear(x: Tensor, weight: Tensor, bias: Optional[Tensor] = None) -> Tensor:
    """``x @ weightᵀ + bias`` with weight of shape (out, in)."""
    out = ops.matmul(x, weight.transpose())
    if bias is not None:
        out = out + bias
    return out


def conv2d_im2row(
    x: Tensor,
    weight: Tensor,
    bias: Optional[Tensor] = None,
    stride: IntPair = 1,
    padding: IntPair = 0,
    groups: int = 1,
) -> Tensor:
    """Convolution by im2row patch expansion + GEMM.

    im2row is the paper's standard-convolution baseline: lower the input to
    a (N·outH·outW) × (C·kh·kw) row matrix, multiply by the reshaped filter
    matrix, and fold back.  Shapes: x (N, C, H, W), weight (K, C/groups, kh, kw).
    """
    sh, sw = _pair(stride)
    ph, pw = _pair(padding)
    n, c, h, w = x.shape
    k, cg, kh, kw = weight.shape
    if c % groups or k % groups:
        raise ValueError(f"channels ({c}->{k}) not divisible by groups={groups}")
    if cg != c // groups:
        raise ValueError(f"weight expects {cg} in-channels/group, input gives {c // groups}")

    xp = ops.pad2d(x, (ph, ph, pw, pw))
    patches = ops.extract_patches(xp, (kh, kw), (sh, sw))  # (N, C, oh, ow, kh, kw)
    oh = (h + 2 * ph - kh) // sh + 1
    ow = (w + 2 * pw - kw) // sw + 1

    if groups == 1:
        rows = patches.permute(0, 2, 3, 1, 4, 5).reshape(n * oh * ow, c * kh * kw)
        wmat = weight.reshape(k, c * kh * kw).transpose()  # (C·kh·kw, K)
        out = ops.matmul(rows, wmat).reshape(n, oh, ow, k).permute(0, 3, 1, 2)
    else:
        g = groups
        rows = (
            patches.reshape(n, g, c // g, oh, ow, kh, kw)
            .permute(1, 0, 3, 4, 2, 5, 6)
            .reshape(g, n * oh * ow, (c // g) * kh * kw)
        )
        wmat = weight.reshape(g, k // g, (c // g) * kh * kw).permute(0, 2, 1)
        out = (
            ops.matmul(rows, wmat)  # (g, N·oh·ow, K/g)
            .reshape(g, n, oh, ow, k // g)
            .permute(1, 0, 4, 2, 3)
            .reshape(n, k, oh, ow)
        )
    if bias is not None:
        out = out + bias.reshape(1, k, 1, 1)
    return out


def max_pool2d(x: Tensor, kernel: IntPair, stride: Optional[IntPair] = None) -> Tensor:
    kh, kw = _pair(kernel)
    if stride is None:
        stride = (kh, kw)
    sh, sw = _pair(stride)
    n, c, h, w = x.shape
    patches = ops.extract_patches(x, (kh, kw), (sh, sw))
    oh, ow = patches.shape[2], patches.shape[3]
    return ops.max(patches.reshape(n, c, oh, ow, kh * kw), axis=4)


def avg_pool2d(x: Tensor, kernel: IntPair, stride: Optional[IntPair] = None) -> Tensor:
    kh, kw = _pair(kernel)
    if stride is None:
        stride = (kh, kw)
    sh, sw = _pair(stride)
    n, c, h, w = x.shape
    patches = ops.extract_patches(x, (kh, kw), (sh, sw))
    oh, ow = patches.shape[2], patches.shape[3]
    return ops.mean(patches.reshape(n, c, oh, ow, kh * kw), axis=4)


def global_avg_pool2d(x: Tensor) -> Tensor:
    """(N, C, H, W) → (N, C)."""
    return ops.mean(x, axis=(2, 3))


def batch_norm2d(
    x: Tensor,
    gamma: Tensor,
    beta: Tensor,
    running_mean: np.ndarray,
    running_var: np.ndarray,
    training: bool,
    momentum: float = 0.1,
    eps: float = 1e-5,
) -> Tensor:
    """Batch normalisation over (N, H, W) per channel.

    In training mode the batch statistics participate in the graph and the
    running buffers are updated in place; in eval mode the buffers are used
    as constants.
    """
    c = x.shape[1]
    if training:
        mean = ops.mean(x, axis=(0, 2, 3), keepdims=True)
        centred = x - mean
        var = ops.mean(centred * centred, axis=(0, 2, 3), keepdims=True)
        batch_mean = mean.data.reshape(c)
        batch_var = var.data.reshape(c)
        n_count = x.shape[0] * x.shape[2] * x.shape[3]
        unbiased = batch_var * (n_count / max(n_count - 1, 1))
        running_mean *= 1.0 - momentum
        running_mean += momentum * batch_mean
        running_var *= 1.0 - momentum
        running_var += momentum * unbiased
        inv_std = (var + eps) ** -0.5
        x_hat = centred * inv_std
    else:
        mean = as_tensor(running_mean.reshape(1, c, 1, 1))
        var = as_tensor(running_var.reshape(1, c, 1, 1))
        x_hat = (x - mean) * ((var + eps) ** -0.5)
    return x_hat * gamma.reshape(1, c, 1, 1) + beta.reshape(1, c, 1, 1)
