"""Neural-network modules built on :mod:`repro.autograd`.

Provides the substrate the paper assumed from PyTorch: parameterised
modules, convolutions (direct and im2row), batch normalisation, pooling,
losses and initialisers.
"""

from repro.nn.module import Buffer, Module, Parameter, Sequential, ModuleList
from repro.nn.layers import (
    AvgPool2d,
    BatchNorm2d,
    Conv2d,
    Flatten,
    GlobalAvgPool2d,
    Identity,
    Linear,
    MaxPool2d,
    ReLU,
)
from repro.nn.losses import cross_entropy, mse_loss, nll_loss
from repro.nn import init
from repro.nn.functional import (
    avg_pool2d,
    conv2d_im2row,
    global_avg_pool2d,
    linear,
    max_pool2d,
    relu,
    softmax,
)

__all__ = [
    "Module",
    "Parameter",
    "Buffer",
    "Sequential",
    "ModuleList",
    "Linear",
    "Conv2d",
    "BatchNorm2d",
    "MaxPool2d",
    "AvgPool2d",
    "GlobalAvgPool2d",
    "ReLU",
    "Flatten",
    "Identity",
    "cross_entropy",
    "nll_loss",
    "mse_loss",
    "init",
    "conv2d_im2row",
    "linear",
    "max_pool2d",
    "avg_pool2d",
    "global_avg_pool2d",
    "relu",
    "softmax",
]
