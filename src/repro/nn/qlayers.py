"""Quantization-aware wrappers for standard layers.

These provide the INT8/INT16 *baseline* rows of the paper's tables:
standard convolutions (im2row/im2col) and the classifier head trained with
fake-quantized weights and activations, so that accuracy comparisons
against Winograd-aware layers are apples-to-apples.
"""

from __future__ import annotations

from typing import Optional

from repro.autograd.tensor import Tensor
from repro.nn.layers import Conv2d, Linear
from repro.nn.module import Module
from repro.quant.qconfig import QConfig, fp32
from repro.quant.quantizer import Quantizer


class QuantConv2d(Module):
    """Standard convolution with input/weight/output fake-quantization."""

    def __init__(self, conv: Conv2d, qconfig: Optional[QConfig] = None):
        super().__init__()
        self.conv = conv
        self.qconfig = qconfig if qconfig is not None else fp32()
        mom = self.qconfig.ema_momentum
        self.q_input = Quantizer(self.qconfig.bits_for("input"), mom, "input")
        self.q_weight = Quantizer(self.qconfig.bits_for("weight"), mom, "weight")
        self.q_output = Quantizer(self.qconfig.bits_for("output"), mom, "output")

    @property
    def method(self) -> str:
        return self.conv.method

    def forward(self, x: Tensor) -> Tensor:
        from repro.nn import functional as F

        self.conv.last_input_hw = (x.shape[2], x.shape[3])  # repro.hardware
        x = self.q_input(x)
        w = self.q_weight(self.conv.weight)
        out = F.conv2d_im2row(
            x,
            w,
            self.conv.bias,
            stride=self.conv.stride,
            padding=self.conv.padding,
            groups=self.conv.groups,
        )
        return self.q_output(out)

    def __repr__(self) -> str:
        return f"QuantConv2d({self.conv!r}, q={self.qconfig.name})"


class QuantLinear(Module):
    """Linear layer with input/weight/output fake-quantization."""

    def __init__(self, linear: Linear, qconfig: Optional[QConfig] = None):
        super().__init__()
        self.linear = linear
        self.qconfig = qconfig if qconfig is not None else fp32()
        mom = self.qconfig.ema_momentum
        self.q_input = Quantizer(self.qconfig.bits_for("input"), mom, "input")
        self.q_weight = Quantizer(self.qconfig.bits_for("weight"), mom, "weight")
        self.q_output = Quantizer(self.qconfig.bits_for("output"), mom, "output")

    def forward(self, x: Tensor) -> Tensor:
        from repro.nn import functional as F

        x = self.q_input(x)
        w = self.q_weight(self.linear.weight)
        out = F.linear(x, w, self.linear.bias)
        return self.q_output(out)

    def __repr__(self) -> str:
        return f"QuantLinear({self.linear!r}, q={self.qconfig.name})"
