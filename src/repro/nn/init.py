"""Weight initialisers (He / Glorot) with explicit RNG control."""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

_DEFAULT_RNG = np.random.default_rng(0)


def set_default_rng(seed: int) -> None:
    """Re-seed the module-level RNG used when no generator is passed."""
    global _DEFAULT_RNG
    _DEFAULT_RNG = np.random.default_rng(seed)


def _rng(rng: Optional[np.random.Generator]) -> np.random.Generator:
    return rng if rng is not None else _DEFAULT_RNG


def _fan(shape: Tuple[int, ...]) -> Tuple[int, int]:
    """(fan_in, fan_out) for linear (out, in) or conv (K, C, kh, kw) shapes."""
    if len(shape) == 2:
        return shape[1], shape[0]
    if len(shape) == 4:
        receptive = shape[2] * shape[3]
        return shape[1] * receptive, shape[0] * receptive
    raise ValueError(f"cannot infer fans for shape {shape}")


def kaiming_normal(shape, gain: float = np.sqrt(2.0), rng=None, dtype=np.float32) -> np.ndarray:
    """He initialisation (suited to ReLU networks)."""
    fan_in, _ = _fan(tuple(shape))
    std = gain / np.sqrt(fan_in)
    return (_rng(rng).standard_normal(shape) * std).astype(dtype)


def kaiming_uniform(shape, gain: float = np.sqrt(2.0), rng=None, dtype=np.float32) -> np.ndarray:
    fan_in, _ = _fan(tuple(shape))
    bound = gain * np.sqrt(3.0 / fan_in)
    return _rng(rng).uniform(-bound, bound, size=shape).astype(dtype)


def xavier_uniform(shape, gain: float = 1.0, rng=None, dtype=np.float32) -> np.ndarray:
    fan_in, fan_out = _fan(tuple(shape))
    bound = gain * np.sqrt(6.0 / (fan_in + fan_out))
    return _rng(rng).uniform(-bound, bound, size=shape).astype(dtype)


def uniform_bias(shape, fan_in: int, rng=None, dtype=np.float32) -> np.ndarray:
    """PyTorch-style bias init: U(-1/√fan_in, 1/√fan_in)."""
    bound = 1.0 / np.sqrt(fan_in) if fan_in > 0 else 0.0
    return _rng(rng).uniform(-bound, bound, size=shape).astype(dtype)


def zeros(shape, dtype=np.float32) -> np.ndarray:
    return np.zeros(shape, dtype=dtype)


def ones(shape, dtype=np.float32) -> np.ndarray:
    return np.ones(shape, dtype=dtype)
