"""Fake-quantization primitives and the observer module."""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.autograd.function import Function
from repro.autograd.tensor import Tensor, as_tensor
from repro.nn.module import Buffer, Module


def quantization_scale(max_abs: float, bits: int) -> float:
    """Symmetric uniform scale mapping [-max_abs, max_abs] onto the signed grid.

    The grid has ``2^(bits-1) - 1`` positive levels (symmetric, no
    asymmetric zero-point), per Krishnamoorthi (2018) per-layer symmetric
    quantization.
    """
    qmax = float(2 ** (bits - 1) - 1)
    max_abs = float(max_abs)
    if max_abs <= 0.0 or not np.isfinite(max_abs):
        return 1.0 / qmax  # degenerate range: harmless default
    return max_abs / qmax


class FakeQuant(Function):
    """Round-to-grid with straight-through gradients.

    Forward: ``clip(round(x / scale), -qmax, qmax) * scale``.
    Backward: pass-through inside the clipping range, zero outside
    (clipped STE), which is what lets quantization error participate in
    training without killing gradients.
    """

    def __init__(self, scale: float, bits: int):
        super().__init__()
        self.scale = float(scale)
        self.qmax = float(2 ** (bits - 1) - 1)

    def forward(self, x):
        q = np.rint(x / self.scale)
        self.inside = np.abs(q) <= self.qmax
        return (np.clip(q, -self.qmax, self.qmax) * self.scale).astype(x.dtype)

    def backward(self, grad):
        return (grad * self.inside,)


def fake_quant_array(x: np.ndarray, bits: int, max_abs: Optional[float] = None) -> np.ndarray:
    """NumPy-only fake quantization (used by the reference kernels)."""
    if max_abs is None:
        max_abs = float(np.abs(x).max())
    scale = quantization_scale(max_abs, bits)
    qmax = float(2 ** (bits - 1) - 1)
    return (np.clip(np.rint(x / scale), -qmax, qmax) * scale).astype(x.dtype)


class Quantizer(Module):
    """A fake-quantization observer for one tensor in the pipeline.

    Modes (driven by module training state plus :attr:`calibrating`):

    * **training** — update the EMA of ``max|x|`` from the current batch,
      then fake-quantize with the updated scale (QAT).
    * **calibrating** — same as training; used to warm up the moving
      averages of a pre-trained model without touching its weights
      (the relaxation described under Table 1).
    * **eval** — fake-quantize with the frozen EMA range.

    ``bits=None`` renders the module a no-op (FP32 path).
    """

    def __init__(self, bits: Optional[int], ema_momentum: float = 0.95, name: str = ""):
        super().__init__()
        self.bits = bits
        self.ema_momentum = float(ema_momentum)
        self.name = name
        self.calibrating = False
        self.register_buffer("running_max_abs", np.zeros(1, dtype=np.float64))
        self.register_buffer("initialized", np.zeros(1, dtype=np.float64))

    @property
    def enabled(self) -> bool:
        return self.bits is not None

    def observe(self, x: np.ndarray) -> None:
        """Update the EMA range from a batch (no quantization)."""
        batch_max = float(np.abs(x).max()) if x.size else 0.0
        if not self.initialized.data[0]:
            self.running_max_abs.data[0] = batch_max
            self.initialized.data[0] = 1.0
        else:
            m = self.ema_momentum
            self.running_max_abs.data[0] = m * self.running_max_abs.data[0] + (1 - m) * batch_max

    @property
    def scale(self) -> float:
        if not self.enabled:
            raise RuntimeError("scale undefined for a disabled quantizer")
        return quantization_scale(self.running_max_abs.data[0], self.bits)

    def forward(self, x: Tensor) -> Tensor:
        if not self.enabled:
            return as_tensor(x)
        x = as_tensor(x)
        if self.training or self.calibrating:
            self.observe(x.data)
        if not self.initialized.data[0]:
            # Eval before any observation: fall back to batch range.
            self.observe(x.data)
        return FakeQuant.apply(x, scale=self.scale, bits=self.bits)

    def __repr__(self) -> str:
        bits = self.bits if self.enabled else "off"
        return f"Quantizer(bits={bits}, name={self.name!r})"
