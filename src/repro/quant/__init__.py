"""Quantization-aware training: uniform symmetric fake-quantization.

Implements the scheme the paper adopts (§5.1): per-layer symmetric uniform
quantization of weights and activations following Krishnamoorthi (2018),
with exponential-moving-average range observers, a straight-through
estimator for gradients, and a calibration mode that only warms up the
observers (the relaxation required to make even F2 usable post-training —
Table 1's footnote).
"""

from repro.quant.quantizer import (
    FakeQuant,
    Quantizer,
    fake_quant_array,
    quantization_scale,
)
from repro.quant.qconfig import QConfig, STAGES, int8, int10, int16, fp32

__all__ = [
    "FakeQuant",
    "Quantizer",
    "fake_quant_array",
    "quantization_scale",
    "QConfig",
    "STAGES",
    "int8",
    "int10",
    "int16",
    "fp32",
]
