"""Quantization configuration.

The Winograd-aware pipeline (paper Fig. 2) has six quantization points —
the ``Qx`` boxes: raw input, raw weights, transformed weights ``GgGᵀ``,
transformed input ``BᵀdB``, the Hadamard/summation output, and the final
output ``AᵀyA``.  "In its default configuration, each intermediate output
throughout the pipeline is quantized to the same level as the input and
weights"; the *quantization diversity* bullet allows per-stage overrides,
which :class:`QConfig` supports via ``stage_bits``.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, Optional, Tuple

#: Stage names, in pipeline order (Fig. 2).
STAGES: Tuple[str, ...] = (
    "input",
    "weight",
    "weight_transformed",
    "input_transformed",
    "hadamard",
    "output",
)


@dataclass(frozen=True)
class QConfig:
    """Bit-width assignment for a quantized layer.

    ``bits=None`` means full precision (the FP32 rows of the paper's
    tables).  ``stage_bits`` overrides individual pipeline stages.
    """

    bits: Optional[int] = None
    stage_bits: Dict[str, int] = field(default_factory=dict)
    ema_momentum: float = 0.95

    def __post_init__(self) -> None:
        if self.bits is not None and not (2 <= self.bits <= 32):
            raise ValueError(f"bits must be in [2, 32], got {self.bits}")
        for stage, bits in self.stage_bits.items():
            if stage not in STAGES:
                raise ValueError(f"unknown stage {stage!r}; expected one of {STAGES}")
            if not (2 <= bits <= 32):
                raise ValueError(f"bits for {stage} must be in [2, 32], got {bits}")
        if not (0.0 <= self.ema_momentum < 1.0):
            raise ValueError(f"ema_momentum must be in [0, 1), got {self.ema_momentum}")

    @property
    def enabled(self) -> bool:
        return self.bits is not None or bool(self.stage_bits)

    def bits_for(self, stage: str) -> Optional[int]:
        if stage not in STAGES:
            raise ValueError(f"unknown stage {stage!r}")
        return self.stage_bits.get(stage, self.bits)

    def with_stage(self, stage: str, bits: int) -> "QConfig":
        merged = dict(self.stage_bits)
        merged[stage] = bits
        return replace(self, stage_bits=merged)

    @property
    def name(self) -> str:
        if not self.enabled:
            return "fp32"
        base = f"int{self.bits}" if self.bits is not None else "mixed"
        return base + ("*" if self.stage_bits else "")

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.name


def fp32() -> QConfig:
    """Full precision (quantization disabled)."""
    return QConfig(bits=None)


def int16() -> QConfig:
    return QConfig(bits=16)


def int10() -> QConfig:
    return QConfig(bits=10)


def int8() -> QConfig:
    return QConfig(bits=8)


def from_name(name: str) -> QConfig:
    """Parse "fp32" / "int8" / "int10" / "int16" / "intN"."""
    name = name.lower()
    if name in ("fp32", "float", "none"):
        return fp32()
    if name.startswith("int"):
        return QConfig(bits=int(name[3:]))
    raise ValueError(f"unknown quantization name {name!r}")
