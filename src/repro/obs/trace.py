"""Low-overhead span recorder: a thread-safe ring buffer of spans.

The tracing contract mirrors the ``REPRO_THREADS`` ambient pattern in
:mod:`repro.engine.pool`:

* ``REPRO_TRACE=1`` enables an ambient process-wide :class:`TraceBuffer`
  at import time; ``enable()``/``disable()`` flip it programmatically.
* Hot paths receive an explicit tracer (``plan.run(trace=buf)``) or read
  :func:`active_tracer` once per run.  Disabled tracing is a single
  ``is None`` check — there is no decorator, context-manager, or dict
  lookup on the per-step path.
* Spans use ``time.monotonic_ns()`` (``CLOCK_MONOTONIC`` on Linux), so
  timestamps recorded in forked workers land on the same axis as the
  parent's and a cross-process trace lines up in Perfetto.

A span is ``(name, category, start_ns, dur_ns, attrs)`` plus identity:
a process-unique ``span_id``, an optional ``parent_id`` (tree edges), an
optional ``request_id`` (serving correlation), and ``proc``/``lane``
used by the Chrome exporter as pid/tid.
"""

from __future__ import annotations

import os
import threading
import time
from typing import Any, Dict, Iterable, List, Optional

TRACE_ENV_VAR = "REPRO_TRACE"

DEFAULT_CAPACITY = 65536

now_ns = time.monotonic_ns


def env_enabled() -> bool:
    """True when ``REPRO_TRACE`` asks for ambient tracing."""
    return os.environ.get(TRACE_ENV_VAR, "").strip().lower() in {
        "1",
        "true",
        "yes",
        "on",
    }


_id_lock = threading.Lock()
_id_counter = 0


def new_span_id() -> str:
    """Process-unique span id, unique across forked workers too
    (the pid prefix disambiguates ids minted before and after fork)."""
    global _id_counter
    with _id_lock:
        _id_counter += 1
        n = _id_counter
    return f"{os.getpid():x}.{n:x}"


class Span:
    """One recorded interval.  Plain slots object: spans are minted on
    hot paths and serialised over worker pipes, so no dataclass
    machinery."""

    __slots__ = (
        "name",
        "cat",
        "start_ns",
        "dur_ns",
        "attrs",
        "span_id",
        "parent_id",
        "request_id",
        "proc",
        "lane",
    )

    def __init__(
        self,
        name: str,
        cat: str,
        start_ns: int,
        dur_ns: int,
        attrs: Optional[Dict[str, Any]] = None,
        span_id: Optional[str] = None,
        parent_id: Optional[str] = None,
        request_id: Optional[str] = None,
        proc: Optional[str] = None,
        lane: int = 0,
    ) -> None:
        self.name = name
        self.cat = cat
        self.start_ns = start_ns
        self.dur_ns = dur_ns
        self.attrs = attrs if attrs is not None else {}
        self.span_id = span_id if span_id is not None else new_span_id()
        self.parent_id = parent_id
        self.request_id = request_id
        self.proc = proc
        self.lane = lane

    @property
    def end_ns(self) -> int:
        return self.start_ns + self.dur_ns

    def to_dict(self) -> Dict[str, Any]:
        return {
            "name": self.name,
            "cat": self.cat,
            "start_ns": self.start_ns,
            "dur_ns": self.dur_ns,
            "attrs": self.attrs,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "request_id": self.request_id,
            "proc": self.proc,
            "lane": self.lane,
        }

    @classmethod
    def from_dict(cls, d: Dict[str, Any]) -> "Span":
        return cls(
            name=d["name"],
            cat=d["cat"],
            start_ns=d["start_ns"],
            dur_ns=d["dur_ns"],
            attrs=d.get("attrs") or {},
            span_id=d.get("span_id"),
            parent_id=d.get("parent_id"),
            request_id=d.get("request_id"),
            proc=d.get("proc"),
            lane=d.get("lane", 0),
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Span({self.name!r}, cat={self.cat!r}, "
            f"dur={self.dur_ns / 1e6:.3f}ms, id={self.span_id})"
        )


class TraceBuffer:
    """Thread-safe bounded ring of spans.

    ``add`` under contention is one lock acquire + list store; when the
    ring wraps, the oldest spans are overwritten and ``dropped`` counts
    how many were lost.  ``snapshot`` returns spans oldest-first.
    """

    def __init__(self, capacity: int = DEFAULT_CAPACITY) -> None:
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.capacity = capacity
        self._lock = threading.Lock()
        self._ring: List[Optional[Span]] = [None] * capacity
        self._next = 0
        self._count = 0
        self.dropped = 0

    def add(self, span: Span) -> None:
        with self._lock:
            if self._count == self.capacity:
                self.dropped += 1
            else:
                self._count += 1
            self._ring[self._next] = span
            self._next = (self._next + 1) % self.capacity

    def extend(self, spans: Iterable[Span]) -> None:
        for s in spans:
            self.add(s)

    def record(
        self,
        name: str,
        cat: str,
        start_ns: int,
        end_ns: Optional[int] = None,
        **kwargs: Any,
    ) -> Span:
        """Mint a span ending now (or at ``end_ns``) and add it."""
        if end_ns is None:
            end_ns = now_ns()
        span = Span(name, cat, start_ns, max(0, end_ns - start_ns), **kwargs)
        self.add(span)
        return span

    def snapshot(self) -> List[Span]:
        with self._lock:
            if self._count < self.capacity:
                return [s for s in self._ring[: self._count] if s is not None]
            tail = self._ring[self._next :] + self._ring[: self._next]
            return [s for s in tail if s is not None]

    def clear(self) -> None:
        with self._lock:
            self._ring = [None] * self.capacity
            self._next = 0
            self._count = 0
            self.dropped = 0

    def __len__(self) -> int:
        with self._lock:
            return self._count


# --------------------------------------------------------------------------
# Ambient tracer.  ``None`` is the disabled sentinel: callers hold the
# result of ``active_tracer()`` in a local and branch on ``is None``.

_active: Optional[TraceBuffer] = None


def active_tracer() -> Optional[TraceBuffer]:
    return _active


def enable(buffer: Optional[TraceBuffer] = None) -> TraceBuffer:
    """Install ``buffer`` (or a fresh ring) as the ambient tracer."""
    global _active
    if buffer is None:
        buffer = TraceBuffer()
    _active = buffer
    return buffer


def disable() -> None:
    global _active
    _active = None


def _reset_after_fork() -> None:
    # A forked child inherits the parent's ring (and possibly a lock
    # held mid-add by a thread that does not exist in the child).  Give
    # the child a clean buffer iff tracing was ambient-enabled.
    global _active
    if _active is not None:
        _active = TraceBuffer(_active.capacity)


if hasattr(os, "register_at_fork"):  # pragma: no branch
    os.register_at_fork(after_in_child=_reset_after_fork)

if env_enabled():
    enable()


# --------------------------------------------------------------------------
# Span-set utilities shared by the exporter, the /trace endpoint, the
# loadgen slow-request dump, and the tests.


def filter_request(spans: List[Span], request_id: str) -> List[Span]:
    """Spans belonging to one request: direct matches (``request_id`` on
    the span or listed in its ``attrs["request_ids"]``), plus all
    descendants of those matches (batch-scoped kernel spans carry the
    batch's ids only on their root)."""
    keep: Dict[str, Span] = {}
    for s in spans:
        if s.request_id == request_id or request_id in (
            s.attrs.get("request_ids") or ()
        ):
            keep[s.span_id] = s
    grew = True
    while grew:
        grew = False
        for s in spans:
            if s.span_id not in keep and s.parent_id in keep:
                keep[s.span_id] = s
                grew = True
    return [s for s in spans if s.span_id in keep]


def build_span_trees(spans: List[Span]) -> List[Dict[str, Any]]:
    """Nest spans into ``{span..., "children": [...]}`` trees; spans
    whose parent is not in the set become roots."""
    by_id = {s.span_id: dict(s.to_dict(), children=[]) for s in spans}
    roots: List[Dict[str, Any]] = []
    for s in spans:
        node = by_id[s.span_id]
        parent = by_id.get(s.parent_id) if s.parent_id else None
        if parent is not None and parent is not node:
            parent["children"].append(node)
        else:
            roots.append(node)
    for node in by_id.values():
        node["children"].sort(key=lambda c: c["start_ns"])
    roots.sort(key=lambda c: c["start_ns"])
    return roots


def validate_span_tree(
    spans: List[Span], slack_ns: int = 200_000
) -> List[str]:
    """Structural checks used by the tests: every ``parent_id`` resolves
    within the set (no orphans), no parent cycle, and each child lies
    inside its parent's interval up to ``slack_ns`` (clock reads nest,
    but the child's final clock read happens a few microseconds before
    the parent's).  Returns human-readable problems, empty when clean.
    """
    problems: List[str] = []
    by_id = {s.span_id: s for s in spans}
    if len(by_id) != len(spans):
        problems.append("duplicate span ids")
    for s in spans:
        if s.dur_ns < 0:
            problems.append(f"{s.name}: negative duration")
        if s.parent_id is None:
            continue
        parent = by_id.get(s.parent_id)
        if parent is None:
            problems.append(f"{s.name}: orphan parent_id {s.parent_id}")
            continue
        if parent.span_id == s.span_id:
            problems.append(f"{s.name}: span is its own parent")
        if s.start_ns < parent.start_ns - slack_ns:
            problems.append(f"{s.name}: starts before parent {parent.name}")
        if s.end_ns > parent.end_ns + slack_ns:
            problems.append(f"{s.name}: ends after parent {parent.name}")
        # Cycle check: walk up with a step budget.
        seen = {s.span_id}
        cur = parent
        while cur is not None and cur.parent_id is not None:
            if cur.parent_id in seen:
                problems.append(f"{s.name}: parent cycle via {cur.name}")
                break
            seen.add(cur.span_id)
            cur = by_id.get(cur.parent_id)
    return problems
