"""Per-step plan profiling built on the span recorder.

``profile_plan`` runs a compiled plan a few times with a private
:class:`TraceBuffer`, aggregates the per-step kernel spans by step
index (median over repeats), and compares the per-run step-time sum
against the same run's ``plan_run`` total — the Figure-8-style
per-layer table that ``repro profile`` prints.  The sum-vs-median delta
pairs each run's step sum with that run's own whole-plan span, so
scheduler noise on a shared host hits both sides of the ratio equally;
the *untraced* wall-clock is reported separately (``untraced_ms``).

Engine imports happen lazily inside the functions so ``repro.obs``
stays import-cycle-free (``engine.plan`` imports ``repro.obs.trace``).
"""

from __future__ import annotations

import statistics
from typing import Any, Dict, List, Optional

from repro.obs.trace import TraceBuffer


def profile_plan(
    plan,
    x,
    repeats: int = 5,
    warmup: int = 1,
    threads: Optional[int] = None,
) -> Dict[str, Any]:
    """Profile one compiled plan on input ``x``.

    Returns ``{"backend", "batch", "steps": [...], "step_sum_ms",
    "plan_median_ms", "sum_vs_median_pct", "untraced_ms"}`` where each
    step row carries ``index/name/op/domain/chunks/lanes/ms/pct/
    out_kib/slot_kib``.  ``step_sum_ms`` is the median over runs of each
    run's step-time sum and ``plan_median_ms`` the median ``plan_run``
    total, so their delta is the dispatch overhead the step spans do not
    cover — not cross-run scheduler noise.
    """
    from repro.engine.timing import measure_plan_ms

    for _ in range(max(0, warmup)):
        plan.run(x, threads=threads)

    per_step: Dict[int, Dict[str, Any]] = {}
    totals: List[float] = []
    run_sums: List[float] = []
    for _ in range(max(1, repeats)):
        buf = TraceBuffer()
        plan.run(x, threads=threads, trace=buf)
        run_sum = 0.0
        for span in buf.snapshot():
            if span.cat == "engine" and span.name == "plan_run":
                totals.append(span.dur_ns / 1e6)
                continue
            if span.cat != "kernel" or "chunk_index" in span.attrs:
                continue
            idx = span.attrs["step"]
            row = per_step.setdefault(
                idx,
                {
                    "index": idx,
                    "name": span.name,
                    "op": span.attrs.get("op"),
                    "domain": span.attrs.get("domain"),
                    "chunks": span.attrs.get("chunks", 1),
                    "lanes": span.attrs.get("lanes", 1),
                    "out_kib": (span.attrs.get("out_bytes") or 0) / 1024.0,
                    "slot_kib": (
                        None
                        if span.attrs.get("slot_bytes") is None
                        else span.attrs["slot_bytes"] / 1024.0
                    ),
                    "_ms": [],
                },
            )
            row["_ms"].append(span.dur_ns / 1e6)
            run_sum += span.dur_ns / 1e6
        run_sums.append(run_sum)

    steps = []
    for idx in sorted(per_step):
        row = per_step[idx]
        row["ms"] = statistics.median(row.pop("_ms"))
        steps.append(row)
    step_sum = statistics.median(run_sums) if run_sums else 0.0
    table_sum = sum(r["ms"] for r in steps)
    for r in steps:
        r["pct"] = 100.0 * r["ms"] / table_sum if table_sum > 0 else 0.0

    plan_median = statistics.median(totals) if totals else 0.0
    untraced_ms = measure_plan_ms(
        plan, x, repeats=max(3, repeats), warmup=1, threads=threads
    )
    return {
        "backend": getattr(plan, "backend", "?"),
        "batch": int(x.shape[0]),
        "steps": steps,
        "step_sum_ms": step_sum,
        "plan_median_ms": plan_median,
        "sum_vs_median_pct": (
            100.0 * (step_sum / plan_median - 1.0) if plan_median > 0 else 0.0
        ),
        "untraced_ms": untraced_ms,
    }


def format_profile_table(prof: Dict[str, Any]) -> str:
    """Fixed-width per-step table plus the sum-vs-median footer."""
    lines = []
    header = (
        f"{'#':>3}  {'step':<38} {'domain':<8} {'chunks':>6} "
        f"{'ms':>9} {'%':>6} {'out KiB':>9} {'slot KiB':>9}"
    )
    lines.append(header)
    lines.append("-" * len(header))
    for r in prof["steps"]:
        slot = "-" if r["slot_kib"] is None else f"{r['slot_kib']:.0f}"
        chunks = (
            f"{r['chunks']}x{r['lanes']}" if r["chunks"] > 1 else "1"
        )
        lines.append(
            f"{r['index']:>3}  {r['name'][:38]:<38} {str(r['domain']):<8} "
            f"{chunks:>6} {r['ms']:>9.3f} {r['pct']:>6.1f} "
            f"{r['out_kib']:>9.0f} {slot:>9}"
        )
    lines.append("-" * len(header))
    lines.append(
        f"steps sum {prof['step_sum_ms']:.3f} ms  |  whole-plan median "
        f"{prof['plan_median_ms']:.3f} ms  |  delta "
        f"{prof['sum_vs_median_pct']:+.1f}%  |  untraced "
        f"{prof['untraced_ms']:.3f} ms  (backend={prof['backend']}, "
        f"batch={prof['batch']})"
    )
    return "\n".join(lines)


def diff_profile_table(profiles: Dict[str, Dict[str, Any]]) -> str:
    """Side-by-side per-step latency across backends.

    Steps are matched by index; backends whose plans diverge in length
    (different fusion decisions) show ``-`` for missing rows.
    """
    backends = list(profiles)
    by_index: Dict[str, Dict[int, Dict[str, Any]]] = {
        b: {r["index"]: r for r in p["steps"]} for b, p in profiles.items()
    }
    indices = sorted({i for rows in by_index.values() for i in rows})

    cols = "".join(f" {b:>12}" for b in backends)
    header = f"{'#':>3}  {'step':<38}{cols}"
    lines = [header, "-" * len(header)]
    for idx in indices:
        name = None
        for b in backends:
            row = by_index[b].get(idx)
            if row is not None:
                name = row["name"]
                break
        cells = ""
        for b in backends:
            row = by_index[b].get(idx)
            cells += (
                f" {row['ms']:>12.3f}" if row is not None else f" {'-':>12}"
            )
        lines.append(f"{idx:>3}  {(name or '?')[:38]:<38}{cells}")
    lines.append("-" * len(header))
    sums = "".join(
        f" {profiles[b]['step_sum_ms']:>12.3f}" for b in backends
    )
    lines.append(f"{'':>3}  {'steps sum (ms)':<38}{sums}")
    medians = "".join(
        f" {profiles[b]['plan_median_ms']:>12.3f}" for b in backends
    )
    lines.append(f"{'':>3}  {'whole-plan median (ms)':<38}{medians}")
    return "\n".join(lines)
