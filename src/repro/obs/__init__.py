"""Observability: span recording, trace export, per-step profiling.

This package deliberately imports nothing from :mod:`repro.engine` or
:mod:`repro.serve` so every layer can depend on it without cycles.
"""

from repro.obs.trace import (
    TRACE_ENV_VAR,
    Span,
    TraceBuffer,
    active_tracer,
    build_span_trees,
    disable,
    enable,
    env_enabled,
    filter_request,
    new_span_id,
    now_ns,
    validate_span_tree,
)
from repro.obs.export import (
    to_chrome_trace,
    validate_chrome_trace,
    write_chrome_trace,
)
from repro.obs.profile import (
    diff_profile_table,
    format_profile_table,
    profile_plan,
)

__all__ = [
    "TRACE_ENV_VAR",
    "Span",
    "TraceBuffer",
    "active_tracer",
    "build_span_trees",
    "disable",
    "enable",
    "env_enabled",
    "filter_request",
    "new_span_id",
    "now_ns",
    "validate_span_tree",
    "to_chrome_trace",
    "validate_chrome_trace",
    "write_chrome_trace",
    "profile_plan",
    "format_profile_table",
    "diff_profile_table",
]
