"""Chrome trace-event export: spans -> Perfetto-loadable JSON.

The mapping (documented in docs/observability.md):

* each span becomes one complete ``"X"`` event with ``ts``/``dur`` in
  microseconds (trace-event clock unit) from the span's monotonic
  nanoseconds;
* ``pid`` is assigned per distinct ``span.proc`` label ("frontend",
  "worker-0", ...) with an ``"M"`` ``process_name`` metadata event, so
  Perfetto shows one track group per serving process;
* ``tid`` is the span's ``lane`` (engine thread lane / worker slot),
  named via ``thread_name`` metadata;
* span identity, parentage and request correlation travel in ``args``.
"""

from __future__ import annotations

import json
from typing import Any, Dict, List, Optional, Sequence

from repro.obs.trace import Span

_DEFAULT_PROC = "main"


def to_chrome_trace(
    spans: Sequence[Span], default_proc: str = _DEFAULT_PROC
) -> Dict[str, Any]:
    """Render spans as a ``{"traceEvents": [...]}`` document."""
    procs: List[str] = []
    for s in spans:
        label = s.proc or default_proc
        if label not in procs:
            procs.append(label)
    # Frontend first, workers after, deterministic for a given span set.
    procs.sort(key=lambda p: (p != default_proc, p))
    pid_of = {label: i + 1 for i, label in enumerate(procs)}

    events: List[Dict[str, Any]] = []
    for label, pid in pid_of.items():
        events.append(
            {
                "name": "process_name",
                "ph": "M",
                "pid": pid,
                "tid": 0,
                "args": {"name": label},
            }
        )
    named_threads = set()
    for s in spans:
        pid = pid_of[s.proc or default_proc]
        if (pid, s.lane) not in named_threads:
            named_threads.add((pid, s.lane))
            events.append(
                {
                    "name": "thread_name",
                    "ph": "M",
                    "pid": pid,
                    "tid": s.lane,
                    "args": {"name": f"lane-{s.lane}"},
                }
            )
    for s in spans:
        args: Dict[str, Any] = dict(s.attrs)
        args["span_id"] = s.span_id
        if s.parent_id is not None:
            args["parent_id"] = s.parent_id
        if s.request_id is not None:
            args["request_id"] = s.request_id
        events.append(
            {
                "name": s.name,
                "cat": s.cat,
                "ph": "X",
                "ts": s.start_ns / 1000.0,
                "dur": s.dur_ns / 1000.0,
                "pid": pid_of[s.proc or default_proc],
                "tid": s.lane,
                "args": args,
            }
        )
    return {"traceEvents": events, "displayTimeUnit": "ms"}


def validate_chrome_trace(doc: Any) -> List[str]:
    """Schema check for trace-event JSON (the subset we emit, which is
    also the subset Perfetto requires to load a trace).  Returns a list
    of problems; empty means the document is loadable."""
    problems: List[str] = []
    if not isinstance(doc, dict):
        return ["top level is not an object"]
    events = doc.get("traceEvents")
    if not isinstance(events, list):
        return ["traceEvents is missing or not a list"]
    if not events:
        problems.append("traceEvents is empty")
    for i, ev in enumerate(events):
        where = f"traceEvents[{i}]"
        if not isinstance(ev, dict):
            problems.append(f"{where}: not an object")
            continue
        ph = ev.get("ph")
        if ph not in ("X", "M", "B", "E", "i"):
            problems.append(f"{where}: unsupported ph {ph!r}")
            continue
        if not isinstance(ev.get("name"), str) or not ev["name"]:
            problems.append(f"{where}: missing name")
        for key in ("pid", "tid"):
            if not isinstance(ev.get(key), int):
                problems.append(f"{where}: {key} is not an int")
        if ph == "X":
            ts, dur = ev.get("ts"), ev.get("dur")
            if not isinstance(ts, (int, float)):
                problems.append(f"{where}: ts is not a number")
            if not isinstance(dur, (int, float)) or (
                isinstance(dur, (int, float)) and dur < 0
            ):
                problems.append(f"{where}: dur missing or negative")
            if not isinstance(ev.get("cat"), str):
                problems.append(f"{where}: X event without cat")
        if ph == "M" and not isinstance(ev.get("args"), dict):
            problems.append(f"{where}: metadata event without args")
    return problems


def write_chrome_trace(
    path: str, spans: Sequence[Span], default_proc: str = _DEFAULT_PROC
) -> Dict[str, Any]:
    """Export + validate + write; raises on an invalid document so a CI
    artifact can never be silently unloadable."""
    doc = to_chrome_trace(spans, default_proc=default_proc)
    problems = validate_chrome_trace(doc)
    if problems:
        raise ValueError(
            "refusing to write invalid chrome trace: " + "; ".join(problems)
        )
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(doc, fh)
    return doc


def spans_from_dicts(dicts: Sequence[Dict[str, Any]]) -> List[Span]:
    return [Span.from_dict(d) for d in dicts]
