"""SGD with (Nesterov) momentum."""

from __future__ import annotations

from typing import Iterable

import numpy as np

from repro.nn.module import Parameter
from repro.optim.optimizer import Optimizer


class SGD(Optimizer):
    """Mini-batch SGD, optionally with classical or Nesterov momentum.

    Matches the standard formulation (Sutskever et al. 2013) used in the
    wiNAS weight-update stage:

        v ← μ·v + g
        w ← w − lr·(g + μ·v)     (nesterov)
        w ← w − lr·v             (classical)
    """

    def __init__(
        self,
        params: Iterable[Parameter],
        lr: float = 0.01,
        momentum: float = 0.0,
        nesterov: bool = False,
        weight_decay: float = 0.0,
        max_grad_norm=None,
    ):
        super().__init__(params, lr, weight_decay, max_grad_norm)
        if momentum < 0:
            raise ValueError(f"negative momentum: {momentum}")
        if nesterov and momentum == 0:
            raise ValueError("nesterov momentum requires momentum > 0")
        self.momentum = float(momentum)
        self.nesterov = nesterov
        self._velocity = [np.zeros_like(p.data) for p in self.params]

    def _update(self) -> None:
        for p, v in zip(self.params, self._velocity):
            g = self._grad(p)
            if self.momentum:
                v *= self.momentum
                v += g
                if self.nesterov:
                    g = g + self.momentum * v
                else:
                    g = v
            p.data -= (self.lr * g).astype(p.dtype)
