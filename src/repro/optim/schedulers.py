"""Learning-rate schedules."""

from __future__ import annotations

import math

from repro.optim.optimizer import Optimizer


class LRScheduler:
    """Base class: call :meth:`step` once per epoch."""

    def __init__(self, optimizer: Optimizer):
        self.optimizer = optimizer
        self.base_lr = optimizer.lr
        self.epoch = 0

    def get_lr(self) -> float:  # pragma: no cover - abstract
        raise NotImplementedError

    def step(self) -> None:
        self.epoch += 1
        self.optimizer.lr = self.get_lr()


class CosineAnnealingLR(LRScheduler):
    """Cosine annealing (Loshchilov & Hutter 2017), as in the paper's recipes.

    ``lr(e) = eta_min + (base − eta_min)·(1 + cos(π e / T)) / 2``.
    """

    def __init__(self, optimizer: Optimizer, t_max: int, eta_min: float = 0.0):
        super().__init__(optimizer)
        if t_max <= 0:
            raise ValueError(f"t_max must be positive, got {t_max}")
        self.t_max = int(t_max)
        self.eta_min = float(eta_min)

    def get_lr(self) -> float:
        frac = min(self.epoch, self.t_max) / self.t_max
        return self.eta_min + (self.base_lr - self.eta_min) * (1 + math.cos(math.pi * frac)) / 2


class StepLR(LRScheduler):
    """Multiply the LR by ``gamma`` every ``step_size`` epochs."""

    def __init__(self, optimizer: Optimizer, step_size: int, gamma: float = 0.1):
        super().__init__(optimizer)
        if step_size <= 0:
            raise ValueError(f"step_size must be positive, got {step_size}")
        self.step_size = int(step_size)
        self.gamma = float(gamma)

    def get_lr(self) -> float:
        return self.base_lr * self.gamma ** (self.epoch // self.step_size)


class ConstantLR(LRScheduler):
    def get_lr(self) -> float:
        return self.base_lr
