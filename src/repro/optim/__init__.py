"""Optimizers and learning-rate schedules used by the paper's recipes.

§5.1 trains Winograd-aware networks with Adam; §5.2's wiNAS alternates
mini-batch SGD with Nesterov momentum (model weights) and Adam with β₁=0
(architecture parameters), both under cosine annealing.
"""

from repro.optim.optimizer import Optimizer
from repro.optim.sgd import SGD
from repro.optim.adam import Adam
from repro.optim.schedulers import ConstantLR, CosineAnnealingLR, StepLR

__all__ = ["Optimizer", "SGD", "Adam", "CosineAnnealingLR", "StepLR", "ConstantLR"]
