"""Optimizer base class."""

from __future__ import annotations

from typing import Iterable, List, Optional

import numpy as np

from repro.nn.module import Parameter


class Optimizer:
    """Base optimizer over a list of parameters.

    ``weight_decay`` implements L2 regularisation added to the gradient
    (the ``λ‖w‖²`` terms of the paper's Eq. 2 and Eq. 3).
    """

    def __init__(
        self,
        params: Iterable[Parameter],
        lr: float,
        weight_decay: float = 0.0,
        max_grad_norm: Optional[float] = None,
    ):
        self.params: List[Parameter] = [p for p in params if p.requires_grad]
        if not self.params:
            raise ValueError("optimizer got no parameters requiring grad")
        if lr < 0:
            raise ValueError(f"negative learning rate: {lr}")
        if weight_decay < 0:
            raise ValueError(f"negative weight decay: {weight_decay}")
        if max_grad_norm is not None and max_grad_norm <= 0:
            raise ValueError(f"max_grad_norm must be positive, got {max_grad_norm}")
        self.lr = float(lr)
        self.weight_decay = float(weight_decay)
        self.max_grad_norm = max_grad_norm
        self._step_count = 0

    def zero_grad(self) -> None:
        for p in self.params:
            p.zero_grad()

    def clip_gradients(self) -> float:
        """Global-norm gradient clipping; returns the pre-clip norm.

        Quantization-aware Winograd training can produce occasional
        gradient spikes (STE through large-range transforms feeding
        BatchNorm channels with near-zero variance); clipping keeps the
        float32 Adam state finite.
        """
        total = 0.0
        for p in self.params:
            if p.grad is not None:
                total += float(np.square(p.grad.astype(np.float64)).sum())
        norm = float(np.sqrt(total))
        if self.max_grad_norm is not None and norm > self.max_grad_norm and norm > 0:
            scale = self.max_grad_norm / norm
            for p in self.params:
                if p.grad is not None:
                    p.grad = (p.grad * scale).astype(p.grad.dtype)
        return norm

    def _grad(self, p: Parameter) -> np.ndarray:
        grad = p.grad if p.grad is not None else np.zeros_like(p.data)
        if not np.isfinite(grad).all():
            grad = np.nan_to_num(grad, nan=0.0, posinf=0.0, neginf=0.0)
        if self.weight_decay:
            grad = grad + self.weight_decay * p.data
        return grad

    def step(self) -> None:
        if self.max_grad_norm is not None:
            self.clip_gradients()
        self._step_count += 1
        self._update()

    def _update(self) -> None:  # pragma: no cover - abstract
        raise NotImplementedError
