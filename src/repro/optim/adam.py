"""Adam optimizer (Kingma & Ba 2015)."""

from __future__ import annotations

from typing import Iterable, Tuple

import numpy as np

from repro.nn.module import Parameter
from repro.optim.optimizer import Optimizer


class Adam(Optimizer):
    """Adam with bias correction.

    The wiNAS architecture-update stage uses ``betas=(0.0, 0.999)`` — with
    β₁ = 0 the first-moment average vanishes, "so the optimizer only
    updates paths that have been sampled" (paper §5.2): unsampled paths
    have exactly zero gradient and therefore receive no update.
    """

    def __init__(
        self,
        params: Iterable[Parameter],
        lr: float = 1e-3,
        betas: Tuple[float, float] = (0.9, 0.999),
        eps: float = 1e-8,
        weight_decay: float = 0.0,
        max_grad_norm=None,
    ):
        super().__init__(params, lr, weight_decay, max_grad_norm)
        b1, b2 = betas
        if not (0.0 <= b1 < 1.0 and 0.0 <= b2 < 1.0):
            raise ValueError(f"betas must be in [0, 1): {betas}")
        self.betas = (float(b1), float(b2))
        self.eps = float(eps)
        self._m = [np.zeros_like(p.data) for p in self.params]
        self._v = [np.zeros_like(p.data) for p in self.params]

    def _update(self) -> None:
        b1, b2 = self.betas
        t = self._step_count
        bias1 = 1.0 - b1**t
        bias2 = 1.0 - b2**t
        for p, m, v in zip(self.params, self._m, self._v):
            g = self._grad(p)
            m *= b1
            m += (1.0 - b1) * g
            v *= b2
            v += (1.0 - b2) * g * g
            m_hat = m / bias1
            v_hat = v / bias2
            p.data -= (self.lr * m_hat / (np.sqrt(v_hat) + self.eps)).astype(p.dtype)
