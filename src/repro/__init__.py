"""repro — a reproduction of *Searching for Winograd-aware Quantized
Networks* (Fernandez-Marques et al., MLSys 2020).

Sub-packages
------------
``repro.autograd``
    Reverse-mode autodiff on NumPy (the training substrate).
``repro.nn`` / ``repro.optim``
    Network modules, losses, optimizers and schedules.
``repro.quant``
    Uniform symmetric fake-quantization (QAT) with EMA observers.
``repro.winograd``
    Cook–Toom transforms and the Winograd-aware layer (the paper's core).
``repro.models``
    ResNet-18 (CIFAR variant), LeNet, SqueezeNet, ResNeXt-20.
``repro.data``
    Deterministic synthetic stand-ins for CIFAR-10/100 and MNIST.
``repro.hardware``
    Arm Cortex-A73/A53 latency model calibrated on the paper's Figure 7 grid.
``repro.nas``
    wiNAS — the latency-aware differentiable search over conv algorithms.
``repro.training``
    Trainer, metrics and the Figure-6 adaptation recipe.
``repro.experiments``
    One module per paper table/figure.
``repro.paperdata``
    The paper's published numbers, embedded for comparison.
"""

__version__ = "1.0.0"

__all__ = [
    "autograd",
    "nn",
    "optim",
    "quant",
    "winograd",
    "models",
    "data",
    "hardware",
    "nas",
    "training",
    "experiments",
    "paperdata",
]
