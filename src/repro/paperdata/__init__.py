"""The paper's published measurements, embedded verbatim.

These serve three purposes:

1. calibrate the analytical Arm-CPU latency model (Figure 7 grid);
2. give every benchmark a paper-vs-measured side-by-side print-out;
3. anchor shape-level regression tests (who wins where, crossovers).
"""

from repro.paperdata.figure7 import (
    FIGURE7_ALGORITHMS,
    FIGURE7_CHANNEL_CONFIGS,
    FIGURE7_OUTPUT_WIDTHS,
    figure7_grid,
    figure7_latency,
)
from repro.paperdata.tables import (
    TABLE1_ACCURACY,
    TABLE2_CORES,
    TABLE3_ROWS,
    TABLE4_SQUEEZENET,
    TABLE5_RESNEXT,
    FIGURE5_LENET,
    FIGURE9_ARCHITECTURES,
)

__all__ = [
    "FIGURE7_ALGORITHMS",
    "FIGURE7_CHANNEL_CONFIGS",
    "FIGURE7_OUTPUT_WIDTHS",
    "figure7_grid",
    "figure7_latency",
    "TABLE1_ACCURACY",
    "TABLE2_CORES",
    "TABLE3_ROWS",
    "TABLE4_SQUEEZENET",
    "TABLE5_RESNEXT",
    "FIGURE5_LENET",
    "FIGURE9_ARCHITECTURES",
]
