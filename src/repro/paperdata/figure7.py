"""Figure 7: measured latencies (ms) of 3×3 convolutions on a Cortex-A73.

FP32, single-thread, Arm Compute Library kernels, as published in the
paper.  Rows: output width/height (square).  Column blocks: inCh→outCh.
Within each block: im2row, Winograd F2, F4, F6.

This grid is the ground truth the analytical model in
:mod:`repro.hardware` is calibrated against, and the latency database
backing wiNAS for these shapes.
"""

from __future__ import annotations

from typing import Dict, Tuple

import numpy as np

FIGURE7_ALGORITHMS: Tuple[str, ...] = ("im2row", "F2", "F4", "F6")

FIGURE7_CHANNEL_CONFIGS: Tuple[Tuple[int, int], ...] = (
    (3, 32),
    (32, 64),
    (128, 192),
    (192, 256),
    (256, 512),
)

FIGURE7_OUTPUT_WIDTHS: Tuple[int, ...] = (2, 4, 6, 8, 10, 12, 14, 16, 18, 20, 22, 24)

# latency_ms[outW][(inCh, outCh)][algorithm]  — transcribed from the paper.
_RAW = {
    2: {
        (3, 32): (0.007, 0.008, 0.016, 0.029),
        (32, 64): (0.070, 0.043, 0.082, 0.167),
        (128, 192): (0.659, 0.407, 1.219, 2.196),
        (192, 256): (1.463, 1.082, 2.378, 4.407),
        (256, 512): (3.912, 2.932, 6.619, 11.853),
    },
    4: {
        (3, 32): (0.011, 0.029, 0.016, 0.030),
        (32, 64): (0.154, 0.078, 0.081, 0.167),
        (128, 192): (1.642, 0.802, 1.170, 2.195),
        (192, 256): (2.884, 1.731, 2.502, 4.486),
        (256, 512): (7.450, 4.962, 6.588, 11.947),
    },
    6: {
        (3, 32): (0.021, 0.053, 0.065, 0.029),
        (32, 64): (0.328, 0.199, 0.174, 0.165),
        (128, 192): (4.137, 2.229, 2.040, 2.148),
        (192, 256): (6.780, 4.559, 4.135, 4.327),
        (256, 512): (17.450, 13.858, 11.452, 11.919),
    },
    8: {
        (3, 32): (0.031, 0.059, 0.064, 0.133),
        (32, 64): (0.519, 0.280, 0.175, 0.408),
        (128, 192): (5.306, 2.993, 2.004, 3.899),
        (192, 256): (10.932, 6.145, 4.167, 7.907),
        (256, 512): (28.238, 14.930, 11.499, 21.241),
    },
    10: {
        (3, 32): (0.058, 0.101, 0.119, 0.144),
        (32, 64): (0.910, 0.475, 0.482, 0.412),
        (128, 192): (9.466, 5.054, 5.321, 3.973),
        (192, 256): (17.808, 10.198, 10.318, 7.904),
        (256, 512): (44.656, 27.597, 32.685, 21.437),
    },
    12: {
        (3, 32): (0.066, 0.133, 0.129, 0.132),
        (32, 64): (1.208, 0.621, 0.475, 0.424),
        (128, 192): (11.625, 6.601, 5.382, 3.971),
        (192, 256): (24.196, 12.995, 10.272, 7.955),
        (256, 512): (61.236, 35.702, 32.164, 21.478),
    },
    14: {
        (3, 32): (0.087, 0.186, 0.154, 0.267),
        (32, 64): (1.610, 0.868, 0.695, 1.043),
        (128, 192): (16.177, 9.277, 7.498, 9.846),
        (192, 256): (33.702, 18.154, 14.220, 19.082),
        (256, 512): (85.809, 48.590, 34.306, 60.003),
    },
    16: {
        (3, 32): (0.111, 0.235, 0.153, 0.283),
        (32, 64): (2.592, 1.191, 0.723, 1.051),
        (128, 192): (20.845, 12.158, 7.551, 10.002),
        (192, 256): (42.362, 23.147, 14.310, 19.263),
        (256, 512): (109.943, 57.083, 34.190, 60.504),
    },
    18: {
        (3, 32): (0.169, 0.281, 0.263, 0.281),
        (32, 64): (3.315, 1.379, 1.133, 1.031),
        (128, 192): (26.785, 15.125, 12.159, 9.961),
        (192, 256): (55.085, 29.292, 23.178, 19.476),
        (256, 512): (142.460, 75.505, 63.799, 60.987),
    },
    20: {
        (3, 32): (0.184, 0.325, 0.249, 0.400),
        (32, 64): (3.416, 1.695, 1.131, 1.728),
        (128, 192): (32.851, 18.450, 12.115, 15.108),
        (192, 256): (67.300, 35.276, 23.274, 27.723),
        (256, 512): (173.488, 90.041, 65.349, 67.923),
    },
    22: {
        (3, 32): (0.210, 0.398, 0.331, 0.410),
        (32, 64): (4.164, 2.070, 1.506, 1.690),
        (128, 192): (40.245, 22.207, 16.010, 15.114),
        (192, 256): (82.028, 43.166, 30.697, 27.781),
        (256, 512): (213.326, 110.160, 82.434, 67.228),
    },
    24: {
        (3, 32): (0.247, 0.452, 0.324, 0.409),
        (32, 64): (4.783, 2.453, 1.498, 1.729),
        (128, 192): (47.961, 26.600, 16.126, 15.035),
        (192, 256): (97.706, 51.064, 30.954, 27.923),
        (256, 512): (251.771, 125.604, 83.167, 67.047),
    },
}


def figure7_latency(out_width: int, in_channels: int, out_channels: int, algorithm: str) -> float:
    """Published A73 FP32 latency in ms for one measured configuration."""
    try:
        block = _RAW[out_width][(in_channels, out_channels)]
    except KeyError:
        raise KeyError(
            f"({out_width}, {in_channels}->{out_channels}) not in the published grid"
        ) from None
    try:
        return block[FIGURE7_ALGORITHMS.index(algorithm)]
    except ValueError:
        raise KeyError(f"algorithm {algorithm!r} not in {FIGURE7_ALGORITHMS}") from None


def figure7_grid() -> Dict[Tuple[int, int, int, str], float]:
    """Flatten the grid: {(outW, inCh, outCh, algorithm): latency_ms}."""
    flat: Dict[Tuple[int, int, int, str], float] = {}
    for out_w, blocks in _RAW.items():
        for (cin, cout), values in blocks.items():
            for algo, ms in zip(FIGURE7_ALGORITHMS, values):
                flat[(out_w, cin, cout, algo)] = ms
    return flat
