"""Published numbers from the paper's tables and remaining figures."""

from __future__ import annotations

from typing import Dict, List, Tuple

# --------------------------------------------------------------------------
# Table 1 — post-training swap of ResNet-18/CIFAR-10 convolutions.
# accuracy[method][bits]
# --------------------------------------------------------------------------
TABLE1_ACCURACY: Dict[str, Dict[int, float]] = {
    "direct": {32: 93.16, 16: 93.60, 8: 93.22},
    "F2": {32: 93.16, 16: 93.48, 8: 93.21},
    "F4": {32: 93.14, 16: 19.25, 8: 17.36},
    "F6": {32: 93.11, 16: 11.41, 8: 10.95},
}

# --------------------------------------------------------------------------
# Table 2 — core specifications (HiKey 960).
# --------------------------------------------------------------------------
TABLE2_CORES: Dict[str, Dict[str, float]] = {
    "A73": {"clock_ghz": 2.4, "l1_kb": 64, "l2_kb": 2048},
    "A53": {"clock_ghz": 1.8, "l1_kb": 32, "l2_kb": 512},
}

# --------------------------------------------------------------------------
# Table 3 — ResNet-18 accuracy & latency per conv algorithm.
# rows: (conv, bits, acc_c10, acc_c100, lat_a53_ms, lat_a73_ms)
# For wiNAS rows with dataset-dependent latency, (CIFAR-10, CIFAR-100).
# --------------------------------------------------------------------------
TABLE3_ROWS: List[dict] = [
    dict(conv="im2row", bits=32, acc_c10=93.16, acc_c100=74.62, a53=118.0, a73=85.0),
    dict(conv="im2col", bits=32, acc_c10=93.16, acc_c100=74.62, a53=156.0, a73=102.0),
    dict(conv="WF2", bits=32, acc_c10=93.16, acc_c100=74.60, a53=126.0, a73=56.0),
    dict(conv="WF4", bits=32, acc_c10=93.14, acc_c100=74.53, a53=97.0, a73=46.0),
    dict(conv="WAF2", bits=32, acc_c10=93.46, acc_c100=74.69, a53=126.0, a73=56.0),
    dict(conv="WAF4", bits=32, acc_c10=93.54, acc_c100=74.98, a53=122.0, a73=54.0, dense=True),
    dict(conv="wiNAS-WA", bits=32, acc_c10=93.35, acc_c100=74.71, a53=123.0, a73=56.0, dense=True),
    dict(conv="im2row", bits=8, acc_c10=93.20, acc_c100=74.11, a53=117.0, a73=54.0),
    dict(conv="im2col", bits=8, acc_c10=93.20, acc_c100=74.11, a53=124.0, a73=59.0),
    dict(conv="WAF2", bits=8, acc_c10=93.72, acc_c100=73.71, a53=91.0, a73=38.0),
    dict(conv="WAF4", bits=8, acc_c10=92.46, acc_c100=72.38, a53=82.0, a73=35.0, dense=True),
    dict(
        conv="wiNAS-WA",
        bits=8,
        acc_c10=92.71,
        acc_c100=73.42,
        a53=(88.0, 91.0),
        a73=(35.0, 36.0),
        dense=True,
    ),
    dict(
        conv="wiNAS-WA-Q",
        bits="auto",
        acc_c10=92.89,
        acc_c100=73.88,
        a53=(74.0, 97.0),
        a73=(32.0, 43.0),
        dense=True,
    ),
]

#: Baseline for Table 3 speedup columns: im2row FP32.
TABLE3_BASELINE = {"A53": 118.0, "A73": 85.0}

# --------------------------------------------------------------------------
# Table 4 — SqueezeNet; Table 5 — ResNeXt-20 (8×16).
# rows: (conv, bits, transforms, acc_c10, acc_c100)
# --------------------------------------------------------------------------
TABLE4_SQUEEZENET: List[Tuple[str, int, str, float, float]] = [
    ("im2row", 32, "-", 91.13, 69.06),
    ("WAF2", 32, "static", 91.31, 69.42),
    ("WAF2", 32, "flex", 91.25, 69.36),
    ("WAF4", 32, "static", 91.23, 69.14),
    ("WAF4", 32, "flex", 91.41, 69.32),
    ("im2row", 8, "-", 91.15, 69.34),
    ("WAF2", 8, "static", 90.88, 70.06),
    ("WAF2", 8, "flex", 91.03, 70.18),
    ("WAF4", 8, "static", 79.28, 55.84),
    ("WAF4", 8, "flex", 90.72, 69.73),
]

TABLE5_RESNEXT: List[Tuple[str, int, str, float, float]] = [
    ("im2row", 32, "-", 93.17, 74.54),
    ("WAF2", 32, "static", 93.19, 74.66),
    ("WAF2", 32, "flex", 93.08, 74.58),
    ("WAF4", 32, "static", 93.24, 74.47),
    ("WAF4", 32, "flex", 93.15, 74.62),
    ("im2row", 8, "-", 93.40, 74.89),
    ("WAF2", 8, "static", 92.93, 75.32),
    ("WAF2", 8, "flex", 93.11, 75.80),
    ("WAF4", 8, "static", 76.73, 51.20),
    ("WAF4", 8, "flex", 93.29, 75.35),
]

# --------------------------------------------------------------------------
# Figure 5 — INT8 LeNet on MNIST (final accuracies, %).
# Static F4/F6 collapse; flex recovers; FP32 all reach 99.25 ± 0.1.
# --------------------------------------------------------------------------
FIGURE5_LENET: Dict[str, float] = {
    "im2row": 99.1,
    "F2": 98.9,
    "F2-flex": 99.1,
    "F4": 73.0,
    "F4-flex": 98.3,
    "F6": 51.0,
    "F6-flex": 97.7,  # "difference is almost 47%" vs static
    "fp32_all": 99.25,
}

# --------------------------------------------------------------------------
# Figure 9 — per-layer architectures chosen by wiNAS (20 conv layers,
# stem first; FC excluded).  Entries are (algorithm, precision).
# --------------------------------------------------------------------------
FIGURE9_ARCHITECTURES: Dict[str, List[Tuple[str, str]]] = {
    "wiNAS-WA/CIFAR-100": [
        ("im2row", "fp32"),
        ("im2row", "int8"),
        ("im2row", "int8"),
        ("im2row", "int8"),
        ("im2row", "int8"),
        ("im2row", "int8"),
        ("im2row", "int8"),
        ("F4", "int8"),
        ("F4", "int8"),
        ("im2row", "int8"),
        ("F4", "int8"),
        ("F4", "int8"),
        ("im2row", "int8"),
        ("F4", "int8"),
        ("F2", "int8"),
        ("F2", "int8"),
        ("F2", "int8"),
        ("im2row", "int8"),
        ("im2row", "int8"),
        ("im2row", "int8"),
    ],
    "wiNAS-WA-Q/CIFAR-10": [
        ("im2row", "fp32"),
        ("F4", "fp32"),
        ("F4", "int16"),
        ("F4", "int16"),
        ("F4", "int16"),
        ("F4", "int8"),
        ("F4", "int8"),
        ("F4", "int8"),
        ("F4", "int8"),
        ("im2row", "int8"),
        ("F4", "int8"),
        ("F4", "int8"),
        ("im2row", "int8"),
        ("F4", "int8"),
        ("F2", "int8"),
        ("F2", "int8"),
        ("F2", "int8"),
        ("im2row", "int8"),
        ("F2", "int8"),
        ("F2", "int8"),
    ],
    "wiNAS-WA-Q/CIFAR-100": [
        ("im2row", "fp32"),
        ("im2row", "fp32"),
        ("im2row", "fp32"),
        ("F2", "fp32"),
        ("F2", "fp32"),
        ("F2", "fp32"),
        ("F4", "fp32"),
        ("F4", "int8"),
        ("F4", "int8"),
        ("im2row", "fp32"),
        ("F4", "int8"),
        ("F4", "int8"),
        ("im2row", "int8"),
        ("F4", "int8"),
        ("F2", "int8"),
        ("F2", "int8"),
        ("F2", "int8"),
        ("im2row", "int8"),
        ("im2row", "int8"),
        ("im2row", "int8"),
    ],
}
