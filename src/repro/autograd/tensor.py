"""The Tensor type: a NumPy array plus an autograd tape."""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.autograd.function import Function, is_grad_enabled

ArrayLike = Union["Tensor", np.ndarray, float, int, list, tuple]

DEFAULT_DTYPE = np.float32


class Tensor:
    """A multi-dimensional array that supports reverse-mode autodiff.

    Parameters
    ----------
    data:
        Anything convertible to a NumPy array. Floating data is kept in its
        own dtype (default float32); integer input is promoted to the
        default float dtype so gradients are well-defined.
    requires_grad:
        When True, operations involving this tensor are recorded and
        :meth:`backward` accumulates into :attr:`grad`.
    """

    __slots__ = ("data", "grad", "requires_grad", "_ctx")
    __array_priority__ = 100.0  # NumPy defers binary ops to Tensor

    def __init__(self, data: ArrayLike, requires_grad: bool = False, dtype=None):
        if isinstance(data, Tensor):
            data = data.data
        was_ndarray = isinstance(data, (np.ndarray, np.generic))
        arr = np.asarray(data, dtype=dtype)
        if not np.issubdtype(arr.dtype, np.floating):
            arr = arr.astype(DEFAULT_DTYPE)
        elif dtype is None and not was_ndarray and arr.dtype == np.float64:
            # Python floats/lists default to the framework dtype; explicit
            # NumPy arrays keep whatever precision the caller chose.
            arr = arr.astype(DEFAULT_DTYPE)
        self.data: np.ndarray = arr
        self.grad: Optional[np.ndarray] = None
        self.requires_grad = bool(requires_grad)
        self._ctx: Optional[Function] = None

    # -- basic protocol ----------------------------------------------------
    @property
    def shape(self) -> Tuple[int, ...]:
        return self.data.shape

    @property
    def ndim(self) -> int:
        return self.data.ndim

    @property
    def size(self) -> int:
        return self.data.size

    @property
    def dtype(self):
        return self.data.dtype

    def __len__(self) -> int:
        return len(self.data)

    def __repr__(self) -> str:
        grad_flag = ", requires_grad=True" if self.requires_grad else ""
        return f"Tensor({np.array2string(self.data, precision=4, threshold=8)}{grad_flag})"

    def numpy(self) -> np.ndarray:
        """Return the underlying array (no copy)."""
        return self.data

    def item(self) -> float:
        return float(self.data.item())

    def detach(self) -> "Tensor":
        """Return a new tensor sharing data but cut from the graph."""
        return Tensor(self.data, requires_grad=False)

    def zero_grad(self) -> None:
        self.grad = None

    # -- autograd ------------------------------------------------------------
    def backward(self, grad: Optional[np.ndarray] = None) -> None:
        """Backpropagate from this tensor through the recorded graph."""
        if not self.requires_grad:
            raise RuntimeError("backward() on a tensor that does not require grad")
        if grad is None:
            if self.size != 1:
                raise RuntimeError("grad must be supplied for non-scalar outputs")
            grad = np.ones_like(self.data)
        grad = np.asarray(grad, dtype=self.data.dtype)

        topo: List[Tensor] = []
        seen = set()

        def visit(t: "Tensor") -> None:
            # Iterative DFS: deep graphs (long training loops of composed
            # primitives) overflow Python's recursion limit otherwise.
            stack = [(t, iter(t._ctx.parents if t._ctx else ()))]
            seen.add(id(t))
            while stack:
                node, it = stack[-1]
                advanced = False
                for parent in it:
                    if id(parent) not in seen and parent._ctx is not None:
                        seen.add(id(parent))
                        stack.append((parent, iter(parent._ctx.parents)))
                        advanced = True
                        break
                    seen.add(id(parent))
                if not advanced:
                    stack.pop()
                    topo.append(node)

        if self._ctx is not None:
            visit(self)

        grads = {id(self): grad}
        if self._ctx is None:
            self.grad = grad if self.grad is None else self.grad + grad
            return

        for node in reversed(topo):
            node_grad = grads.pop(id(node), None)
            if node_grad is None:
                continue
            if node.requires_grad and (node is self or node._retains_grad()):
                node.grad = node_grad if node.grad is None else node.grad + node_grad
            ctx = node._ctx
            if ctx is None:
                continue
            for parent, pgrad in ctx.parent_grads(node_grad):
                if pgrad is None or not parent.requires_grad:
                    continue
                pgrad = np.asarray(pgrad, dtype=parent.data.dtype)
                if parent._ctx is None:
                    # Leaf: accumulate directly.
                    parent.grad = pgrad if parent.grad is None else parent.grad + pgrad
                else:
                    key = id(parent)
                    if key in grads:
                        grads[key] = grads[key] + pgrad
                    else:
                        grads[key] = pgrad

    def _retains_grad(self) -> bool:
        # Interior nodes do not retain gradients (leaf-only semantics),
        # matching the framework conventions the paper's code relied on.
        return self._ctx is None

    # -- operators ----------------------------------------------------------
    def __add__(self, other: ArrayLike) -> "Tensor":
        from repro.autograd import ops

        return ops.add(self, other)

    __radd__ = __add__

    def __sub__(self, other: ArrayLike) -> "Tensor":
        from repro.autograd import ops

        return ops.sub(self, other)

    def __rsub__(self, other: ArrayLike) -> "Tensor":
        from repro.autograd import ops

        return ops.sub(other, self)

    def __mul__(self, other: ArrayLike) -> "Tensor":
        from repro.autograd import ops

        return ops.mul(self, other)

    __rmul__ = __mul__

    def __truediv__(self, other: ArrayLike) -> "Tensor":
        from repro.autograd import ops

        return ops.div(self, other)

    def __rtruediv__(self, other: ArrayLike) -> "Tensor":
        from repro.autograd import ops

        return ops.div(other, self)

    def __neg__(self) -> "Tensor":
        from repro.autograd import ops

        return ops.neg(self)

    def __pow__(self, exponent: float) -> "Tensor":
        from repro.autograd import ops

        return ops.pow(self, exponent)

    def __matmul__(self, other: ArrayLike) -> "Tensor":
        from repro.autograd import ops

        return ops.matmul(self, other)

    # -- fluent helpers -------------------------------------------------------
    def matmul(self, other: ArrayLike) -> "Tensor":
        from repro.autograd import ops

        return ops.matmul(self, other)

    def reshape(self, *shape: int) -> "Tensor":
        from repro.autograd import ops

        if len(shape) == 1 and isinstance(shape[0], (tuple, list)):
            shape = tuple(shape[0])
        return ops.reshape(self, shape)

    def transpose(self, *axes: int) -> "Tensor":
        from repro.autograd import ops

        if len(axes) == 1 and isinstance(axes[0], (tuple, list)):
            axes = tuple(axes[0])
        if not axes:
            axes = tuple(reversed(range(self.ndim)))
        return ops.permute(self, axes)

    permute = transpose

    def sum(self, axis=None, keepdims: bool = False) -> "Tensor":
        from repro.autograd import ops

        return ops.sum(self, axis=axis, keepdims=keepdims)

    def mean(self, axis=None, keepdims: bool = False) -> "Tensor":
        from repro.autograd import ops

        return ops.mean(self, axis=axis, keepdims=keepdims)

    def max(self, axis=None, keepdims: bool = False) -> "Tensor":
        from repro.autograd import ops

        return ops.max(self, axis=axis, keepdims=keepdims)

    def relu(self) -> "Tensor":
        from repro.autograd import ops

        return ops.relu(self)

    def exp(self) -> "Tensor":
        from repro.autograd import ops

        return ops.exp(self)

    def log(self) -> "Tensor":
        from repro.autograd import ops

        return ops.log(self)

    def sqrt(self) -> "Tensor":
        from repro.autograd import ops

        return ops.sqrt(self)


def as_tensor(value: ArrayLike, dtype=None) -> Tensor:
    """Coerce ``value`` to a :class:`Tensor` (no copy when already one)."""
    if isinstance(value, Tensor):
        return value
    return Tensor(value, dtype=dtype)
