"""Function base class and global grad-mode switch."""

from __future__ import annotations

import contextlib
import threading
from typing import TYPE_CHECKING, Iterable, Optional, Sequence, Tuple

import numpy as np

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.autograd.tensor import Tensor

_STATE = threading.local()


def is_grad_enabled() -> bool:
    """Return True when operations should record the autograd tape."""
    return getattr(_STATE, "grad_enabled", True)


@contextlib.contextmanager
def no_grad():
    """Context manager disabling graph recording (inference / updates)."""
    prev = is_grad_enabled()
    _STATE.grad_enabled = False
    try:
        yield
    finally:
        _STATE.grad_enabled = prev


def unbroadcast(grad: np.ndarray, shape: Tuple[int, ...]) -> np.ndarray:
    """Reduce ``grad`` back to ``shape`` undoing NumPy broadcasting.

    Sums over leading axes that were prepended by broadcasting, then over
    axes where the original dimension was 1 but the gradient dimension is
    larger.
    """
    if grad.shape == shape:
        return grad
    extra = grad.ndim - len(shape)
    if extra > 0:
        grad = grad.sum(axis=tuple(range(extra)))
    axes = tuple(i for i, (g, s) in enumerate(zip(grad.shape, shape)) if s == 1 and g != 1)
    if axes:
        grad = grad.sum(axis=axes, keepdims=True)
    return grad.reshape(shape)


class Function:
    """A differentiable primitive.

    Subclasses implement :meth:`forward` (NumPy in / NumPy out) and
    :meth:`backward` (gradient of the output w.r.t. each parent, aligned
    with the order of tensor arguments passed to :meth:`apply`).

    Instances are single-use: each call of :meth:`apply` creates a fresh
    instance that stores whatever the backward pass needs.
    """

    def __init__(self) -> None:
        self.parents: Tuple["Tensor", ...] = ()
        self.requires_grad = False

    # -- subclass API -----------------------------------------------------
    def forward(self, *arrays: np.ndarray) -> np.ndarray:  # pragma: no cover
        raise NotImplementedError

    def backward(self, grad: np.ndarray) -> Sequence[Optional[np.ndarray]]:  # pragma: no cover
        raise NotImplementedError

    # -- engine -----------------------------------------------------------
    @classmethod
    def apply(cls, *args, **kwargs) -> "Tensor":
        """Run ``forward`` and, if grad mode is on, record the tape node."""
        from repro.autograd.tensor import Tensor, as_tensor

        ctx = cls(**kwargs)
        tensors = tuple(as_tensor(a) for a in args)
        out_data = ctx.forward(*(t.data for t in tensors))
        requires = is_grad_enabled() and any(t.requires_grad for t in tensors)
        out = Tensor(out_data, requires_grad=requires)
        if requires:
            ctx.parents = tensors
            ctx.requires_grad = True
            out._ctx = ctx
        return out

    def parent_grads(self, grad: np.ndarray) -> Iterable[Tuple["Tensor", Optional[np.ndarray]]]:
        """Pair each parent with its gradient contribution."""
        grads = self.backward(grad)
        if len(grads) != len(self.parents):  # pragma: no cover - dev guard
            raise RuntimeError(
                f"{type(self).__name__}.backward returned {len(grads)} grads "
                f"for {len(self.parents)} parents"
            )
        return zip(self.parents, grads)
