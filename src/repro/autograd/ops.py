"""Differentiable primitives.

Every public function takes tensors (or array-likes) and returns a
:class:`~repro.autograd.tensor.Tensor`.  Backward rules are written against
NumPy broadcasting semantics and are validated by finite differences in
``tests/autograd``.
"""

from __future__ import annotations

from typing import Optional, Sequence, Tuple

import numpy as np

from repro.autograd.function import Function, unbroadcast


def _axis_tuple(axis, ndim: int) -> Tuple[int, ...]:
    if axis is None:
        return tuple(range(ndim))
    if isinstance(axis, int):
        axis = (axis,)
    return tuple(a % ndim for a in axis)


# ---------------------------------------------------------------------------
# Elementwise arithmetic
# ---------------------------------------------------------------------------


class Add(Function):
    def forward(self, a, b):
        self.a_shape, self.b_shape = a.shape, b.shape
        return a + b

    def backward(self, grad):
        return unbroadcast(grad, self.a_shape), unbroadcast(grad, self.b_shape)


class Sub(Function):
    def forward(self, a, b):
        self.a_shape, self.b_shape = a.shape, b.shape
        return a - b

    def backward(self, grad):
        return unbroadcast(grad, self.a_shape), unbroadcast(-grad, self.b_shape)


class Mul(Function):
    def forward(self, a, b):
        self.a, self.b = a, b
        return a * b

    def backward(self, grad):
        return (
            unbroadcast(grad * self.b, self.a.shape),
            unbroadcast(grad * self.a, self.b.shape),
        )


class Div(Function):
    def forward(self, a, b):
        self.a, self.b = a, b
        return a / b

    def backward(self, grad):
        ga = grad / self.b
        gb = -grad * self.a / (self.b * self.b)
        return unbroadcast(ga, self.a.shape), unbroadcast(gb, self.b.shape)


class Neg(Function):
    def forward(self, a):
        return -a

    def backward(self, grad):
        return (-grad,)


class Pow(Function):
    def __init__(self, exponent: float):
        super().__init__()
        self.exponent = float(exponent)

    def forward(self, a):
        self.a = a
        return a**self.exponent

    def backward(self, grad):
        return (grad * self.exponent * self.a ** (self.exponent - 1.0),)


class Exp(Function):
    def forward(self, a):
        self.out = np.exp(a)
        return self.out

    def backward(self, grad):
        return (grad * self.out,)


class Log(Function):
    def forward(self, a):
        self.a = a
        return np.log(a)

    def backward(self, grad):
        return (grad / self.a,)


class Sqrt(Function):
    def forward(self, a):
        self.out = np.sqrt(a)
        return self.out

    def backward(self, grad):
        return (grad / (2.0 * self.out),)


class ReLU(Function):
    def forward(self, a):
        self.mask = a > 0
        return np.where(self.mask, a, 0.0).astype(a.dtype)

    def backward(self, grad):
        return (grad * self.mask,)


class Sigmoid(Function):
    def forward(self, a):
        self.out = 1.0 / (1.0 + np.exp(-a))
        return self.out.astype(a.dtype)

    def backward(self, grad):
        return (grad * self.out * (1.0 - self.out),)


class Tanh(Function):
    def forward(self, a):
        self.out = np.tanh(a)
        return self.out

    def backward(self, grad):
        return (grad * (1.0 - self.out * self.out),)


class Maximum(Function):
    """Elementwise max; ties send the gradient to the first argument."""

    def forward(self, a, b):
        self.a_shape, self.b_shape = a.shape, b.shape
        self.a_wins = a >= b
        return np.maximum(a, b)

    def backward(self, grad):
        ga = unbroadcast(grad * self.a_wins, self.a_shape)
        gb = unbroadcast(grad * (~self.a_wins), self.b_shape)
        return ga, gb


# ---------------------------------------------------------------------------
# Linear algebra / shape
# ---------------------------------------------------------------------------


class MatMul(Function):
    """Batched matrix multiply with full NumPy broadcasting of batch dims."""

    def forward(self, a, b):
        self.a, self.b = a, b
        return np.matmul(a, b)

    def backward(self, grad):
        a, b = self.a, self.b
        ga = np.matmul(grad, np.swapaxes(b, -1, -2))
        gb = np.matmul(np.swapaxes(a, -1, -2), grad)
        return unbroadcast(ga, a.shape), unbroadcast(gb, b.shape)


class Reshape(Function):
    def __init__(self, shape: Tuple[int, ...]):
        super().__init__()
        self.shape = tuple(shape)

    def forward(self, a):
        self.orig = a.shape
        return a.reshape(self.shape)

    def backward(self, grad):
        return (grad.reshape(self.orig),)


class Permute(Function):
    def __init__(self, axes: Tuple[int, ...]):
        super().__init__()
        self.axes = tuple(axes)

    def forward(self, a):
        return np.transpose(a, self.axes)

    def backward(self, grad):
        inverse = np.argsort(self.axes)
        return (np.transpose(grad, inverse),)


class Sum(Function):
    def __init__(self, axis=None, keepdims: bool = False):
        super().__init__()
        self.axis = axis
        self.keepdims = keepdims

    def forward(self, a):
        self.orig = a.shape
        return a.sum(axis=self.axis, keepdims=self.keepdims)

    def backward(self, grad):
        if not self.keepdims and self.axis is not None:
            axes = _axis_tuple(self.axis, len(self.orig))
            grad = np.expand_dims(grad, axes)
        return (np.broadcast_to(grad, self.orig).copy(),)


class Max(Function):
    """Max reduction; gradient splits evenly across tied maxima."""

    def __init__(self, axis=None, keepdims: bool = False):
        super().__init__()
        self.axis = axis
        self.keepdims = keepdims

    def forward(self, a):
        self.a = a
        out = a.max(axis=self.axis, keepdims=True)
        self.mask = (a == out).astype(a.dtype)
        self.mask /= self.mask.sum(axis=self.axis, keepdims=True)
        if self.keepdims:
            return out
        if self.axis is None:
            return out.reshape(())
        return np.squeeze(out, axis=self.axis)

    def backward(self, grad):
        if self.axis is not None and not self.keepdims:
            axes = _axis_tuple(self.axis, self.a.ndim)
            grad = np.expand_dims(grad, axes)
        elif self.axis is None:
            grad = np.asarray(grad).reshape((1,) * self.a.ndim)
        return (grad * self.mask,)


class LogSoftmax(Function):
    """Numerically stable log-softmax along ``axis``."""

    def __init__(self, axis: int = -1):
        super().__init__()
        self.axis = axis

    def forward(self, a):
        shifted = a - a.max(axis=self.axis, keepdims=True)
        logsumexp = np.log(np.exp(shifted).sum(axis=self.axis, keepdims=True))
        self.out = shifted - logsumexp
        return self.out.astype(a.dtype)

    def backward(self, grad):
        softmax = np.exp(self.out)
        return (grad - softmax * grad.sum(axis=self.axis, keepdims=True),)


# ---------------------------------------------------------------------------
# Structural ops
# ---------------------------------------------------------------------------


class Pad2d(Function):
    """Zero-pad the two trailing spatial dims of an NCHW tensor."""

    def __init__(self, padding: Tuple[int, int, int, int]):
        super().__init__()
        # (top, bottom, left, right)
        self.padding = tuple(int(p) for p in padding)
        if any(p < 0 for p in self.padding):
            raise ValueError(f"negative padding: {self.padding}")

    def forward(self, a):
        t, b, l, r = self.padding
        pad_width = [(0, 0)] * (a.ndim - 2) + [(t, b), (l, r)]
        return np.pad(a, pad_width)

    def backward(self, grad):
        t, b, l, r = self.padding
        h, w = grad.shape[-2], grad.shape[-1]
        sl = (Ellipsis, slice(t, h - b), slice(l, w - r))
        return (grad[sl],)


class SliceAxis(Function):
    """Slice ``[start:stop]`` along one axis."""

    def __init__(self, axis: int, start: int, stop: int):
        super().__init__()
        self.axis, self.start, self.stop = axis, start, stop

    def forward(self, a):
        self.orig = a.shape
        index = [slice(None)] * a.ndim
        index[self.axis] = slice(self.start, self.stop)
        return a[tuple(index)]

    def backward(self, grad):
        out = np.zeros(self.orig, dtype=grad.dtype)
        index = [slice(None)] * len(self.orig)
        index[self.axis] = slice(self.start, self.stop)
        out[tuple(index)] = grad
        return (out,)


class Concat(Function):
    def __init__(self, axis: int = 0):
        super().__init__()
        self.axis = axis

    def forward(self, *arrays):
        self.sizes = [a.shape[self.axis] for a in arrays]
        return np.concatenate(arrays, axis=self.axis)

    def backward(self, grad):
        splits = np.cumsum(self.sizes)[:-1]
        return tuple(np.split(grad, splits, axis=self.axis))


class ExtractPatches(Function):
    """Extract sliding (kh, kw) patches at a given stride from NCHW input.

    Output shape: ``(N, C, nH, nW, kh, kw)``.  The backward pass is the
    adjoint overlap-add (scatter-add), which is exactly the operation needed
    to train both im2row convolutions and Winograd tilings.
    """

    def __init__(self, kernel: Tuple[int, int], stride: Tuple[int, int]):
        super().__init__()
        self.kh, self.kw = kernel
        self.sh, self.sw = stride

    def forward(self, a):
        n, c, h, w = a.shape
        self.in_shape = a.shape
        nh = (h - self.kh) // self.sh + 1
        nw = (w - self.kw) // self.sw + 1
        if nh <= 0 or nw <= 0:
            raise ValueError(
                f"input {h}x{w} too small for kernel {self.kh}x{self.kw} "
                f"stride {self.sh}x{self.sw}"
            )
        sn, sc, sh_, sw_ = a.strides
        shape = (n, c, nh, nw, self.kh, self.kw)
        strides = (sn, sc, sh_ * self.sh, sw_ * self.sw, sh_, sw_)
        view = np.lib.stride_tricks.as_strided(a, shape=shape, strides=strides)
        return np.ascontiguousarray(view)

    def backward(self, grad):
        n, c, h, w = self.in_shape
        out = np.zeros(self.in_shape, dtype=grad.dtype)
        nh, nw = grad.shape[2], grad.shape[3]
        # Scatter-add each kernel offset in one vectorized slab; kh*kw
        # iterations of O(N*C*nH*nW) work each (no Python loop over tiles).
        for i in range(self.kh):
            for j in range(self.kw):
                rows = np.arange(nh) * self.sh + i
                cols = np.arange(nw) * self.sw + j
                if self.sh >= self.kh and self.sw >= self.kw:
                    # Non-overlapping: plain (fast) slice assignment-add.
                    out[:, :, rows[0] : rows[-1] + 1 : self.sh,
                        cols[0] : cols[-1] + 1 : self.sw] += grad[:, :, :, :, i, j]
                else:
                    np.add.at(
                        out,
                        (slice(None), slice(None), rows[:, None], cols[None, :]),
                        grad[:, :, :, :, i, j],
                    )
        return (out,)


class FoldPatches(Function):
    """Adjoint of :class:`ExtractPatches`: overlap-add patches back.

    Rarely needed in the forward direction (Winograd output tiles do not
    overlap and are assembled by reshape), but exposed for completeness and
    used by tests to verify the extract/fold adjoint pair.
    """

    def __init__(self, output_size: Tuple[int, int], stride: Tuple[int, int]):
        super().__init__()
        self.out_h, self.out_w = output_size
        self.sh, self.sw = stride

    def forward(self, patches):
        n, c, nh, nw, kh, kw = patches.shape
        self.patch_shape = patches.shape
        out = np.zeros((n, c, self.out_h, self.out_w), dtype=patches.dtype)
        for i in range(kh):
            for j in range(kw):
                rows = np.arange(nh) * self.sh + i
                cols = np.arange(nw) * self.sw + j
                np.add.at(
                    out,
                    (slice(None), slice(None), rows[:, None], cols[None, :]),
                    patches[:, :, :, :, i, j],
                )
        return out

    def backward(self, grad):
        n, c, nh, nw, kh, kw = self.patch_shape
        sn, sc, sh_, sw_ = grad.strides
        shape = (n, c, nh, nw, kh, kw)
        strides = (sn, sc, sh_ * self.sh, sw_ * self.sw, sh_, sw_)
        view = np.lib.stride_tricks.as_strided(grad, shape=shape, strides=strides)
        return (np.ascontiguousarray(view),)


# ---------------------------------------------------------------------------
# Public functional API
# ---------------------------------------------------------------------------


def add(a, b):
    return Add.apply(a, b)


def sub(a, b):
    return Sub.apply(a, b)


def mul(a, b):
    return Mul.apply(a, b)


def div(a, b):
    return Div.apply(a, b)


def neg(a):
    return Neg.apply(a)


def pow(a, exponent: float):  # noqa: A001 - mirrors Tensor.__pow__
    return Pow.apply(a, exponent=exponent)


def exp(a):
    return Exp.apply(a)


def log(a):
    return Log.apply(a)


def sqrt(a):
    return Sqrt.apply(a)


def relu(a):
    return ReLU.apply(a)


def sigmoid(a):
    return Sigmoid.apply(a)


def tanh(a):
    return Tanh.apply(a)


def maximum(a, b):
    return Maximum.apply(a, b)


def matmul(a, b):
    return MatMul.apply(a, b)


def reshape(a, shape: Sequence[int]):
    return Reshape.apply(a, shape=tuple(shape))


def permute(a, axes: Sequence[int]):
    return Permute.apply(a, axes=tuple(axes))


def sum(a, axis=None, keepdims: bool = False):  # noqa: A001
    return Sum.apply(a, axis=axis, keepdims=keepdims)


def mean(a, axis=None, keepdims: bool = False):
    from repro.autograd.tensor import as_tensor

    t = as_tensor(a)
    axes = _axis_tuple(axis, t.ndim)
    count = 1
    for ax in axes:
        count *= t.shape[ax]
    return sum(t, axis=axis, keepdims=keepdims) * (1.0 / count)


def max(a, axis=None, keepdims: bool = False):  # noqa: A001
    return Max.apply(a, axis=axis, keepdims=keepdims)


def log_softmax(a, axis: int = -1):
    return LogSoftmax.apply(a, axis=axis)


def pad2d(a, padding):
    """Zero-pad the trailing two dims; ``padding`` is int or (t, b, l, r)."""
    if isinstance(padding, int):
        padding = (padding,) * 4
    if all(p == 0 for p in padding):
        from repro.autograd.tensor import as_tensor

        return as_tensor(a)
    return Pad2d.apply(a, padding=tuple(padding))


def slice_axis(a, axis: int, start: int, stop: int):
    return SliceAxis.apply(a, axis=axis, start=start, stop=stop)


def concat(tensors, axis: int = 0):
    return Concat.apply(*tensors, axis=axis)


def extract_patches(a, kernel, stride):
    if isinstance(kernel, int):
        kernel = (kernel, kernel)
    if isinstance(stride, int):
        stride = (stride, stride)
    return ExtractPatches.apply(a, kernel=tuple(kernel), stride=tuple(stride))


def fold_patches(patches, output_size, stride):
    if isinstance(output_size, int):
        output_size = (output_size, output_size)
    if isinstance(stride, int):
        stride = (stride, stride)
    return FoldPatches.apply(patches, output_size=tuple(output_size), stride=tuple(stride))
