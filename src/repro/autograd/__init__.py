"""Reverse-mode automatic differentiation on NumPy arrays.

This package is the training substrate for the reproduction: a small,
well-tested autodiff engine exposing a :class:`~repro.autograd.tensor.Tensor`
type, a library of differentiable primitives, and a finite-difference
gradient checker used throughout the test suite.

The design mirrors the classic tape-based approach (PyTorch-style): each
primitive is a :class:`~repro.autograd.function.Function` that records its
parents when grad mode is enabled, and :meth:`Tensor.backward` walks the
recorded graph in reverse topological order.
"""

from repro.autograd.function import Function, is_grad_enabled, no_grad
from repro.autograd.tensor import Tensor, as_tensor
from repro.autograd import ops
from repro.autograd.ops import (
    add,
    concat,
    div,
    exp,
    extract_patches,
    fold_patches,
    log,
    log_softmax,
    matmul,
    max as max_reduce,
    maximum,
    mean,
    mul,
    neg,
    pad2d,
    permute,
    pow as pow_op,
    relu,
    reshape,
    sigmoid,
    slice_axis,
    sqrt,
    sub,
    sum as sum_reduce,
    tanh,
)
from repro.autograd.gradcheck import gradcheck, numerical_gradient

__all__ = [
    "Function",
    "Tensor",
    "as_tensor",
    "no_grad",
    "is_grad_enabled",
    "ops",
    "add",
    "sub",
    "mul",
    "div",
    "neg",
    "pow_op",
    "exp",
    "log",
    "sqrt",
    "relu",
    "sigmoid",
    "tanh",
    "maximum",
    "matmul",
    "reshape",
    "permute",
    "sum_reduce",
    "mean",
    "max_reduce",
    "log_softmax",
    "pad2d",
    "slice_axis",
    "concat",
    "extract_patches",
    "fold_patches",
    "gradcheck",
    "numerical_gradient",
]
