"""Finite-difference gradient verification used across the test suite."""

from __future__ import annotations

from typing import Callable, Sequence

import numpy as np

from repro.autograd.tensor import Tensor


def numerical_gradient(
    fn: Callable[..., Tensor],
    inputs: Sequence[Tensor],
    index: int,
    eps: float = 1e-4,
) -> np.ndarray:
    """Central finite-difference gradient of ``sum(fn(*inputs))`` w.r.t one input."""
    target = inputs[index]
    base = target.data.astype(np.float64).copy()
    grad = np.zeros_like(base)
    flat = base.reshape(-1)
    gflat = grad.reshape(-1)
    for i in range(flat.size):
        orig = flat[i]
        flat[i] = orig + eps
        target.data = base.reshape(target.shape).astype(target.dtype)
        plus = float(fn(*inputs).data.sum())
        flat[i] = orig - eps
        target.data = base.reshape(target.shape).astype(target.dtype)
        minus = float(fn(*inputs).data.sum())
        flat[i] = orig
        gflat[i] = (plus - minus) / (2.0 * eps)
    target.data = base.reshape(target.shape).astype(target.dtype)
    return grad


def gradcheck(
    fn: Callable[..., Tensor],
    inputs: Sequence[Tensor],
    eps: float = 1e-4,
    atol: float = 1e-3,
    rtol: float = 5e-3,
) -> bool:
    """Check analytic gradients of ``sum(fn(*inputs))`` against finite differences.

    Inputs should be float64 tensors for stable comparisons. Raises
    ``AssertionError`` with a diagnostic on mismatch; returns True otherwise.
    """
    for t in inputs:
        t.zero_grad()
    out = fn(*inputs)
    out.sum().backward()
    for i, t in enumerate(inputs):
        if not t.requires_grad:
            continue
        analytic = t.grad if t.grad is not None else np.zeros_like(t.data)
        numeric = numerical_gradient(fn, inputs, i, eps=eps)
        if not np.allclose(analytic, numeric, atol=atol, rtol=rtol):
            err = np.abs(analytic - numeric).max()
            raise AssertionError(
                f"gradcheck failed for input {i}: max abs err {err:.3e}\n"
                f"analytic:\n{analytic}\nnumeric:\n{numeric}"
            )
    return True
