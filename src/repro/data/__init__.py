"""Deterministic synthetic datasets standing in for CIFAR-10/100 and MNIST.

The environment has no network access, so the real datasets cannot be
downloaded.  The phenomena the paper studies — numerical collapse of large
Winograd tiles under quantization, the flex-vs-static gap, accuracy/latency
trade-offs — are properties of the *layers*, not of the data distribution;
any image-classification task whose classes require convolutional features
exposes them.  These generators produce structured, augmentable,
procedurally-labelled image datasets with controllable difficulty.
"""

from repro.data.synthetic import (
    Dataset,
    make_cifar10_like,
    make_cifar100_like,
    make_mnist_like,
    synthetic_images,
)
from repro.data.loader import DataLoader
from repro.data.augment import random_crop, random_flip, augment_batch

__all__ = [
    "Dataset",
    "make_cifar10_like",
    "make_cifar100_like",
    "make_mnist_like",
    "synthetic_images",
    "DataLoader",
    "random_crop",
    "random_flip",
    "augment_batch",
]
