"""Standard CIFAR-style training augmentation (pad-crop + horizontal flip)."""

from __future__ import annotations

import numpy as np


def random_crop(images: np.ndarray, rng: np.random.Generator, padding: int = 4) -> np.ndarray:
    """Zero-pad by ``padding`` then take a random crop of the original size."""
    n, c, h, w = images.shape
    padded = np.pad(images, ((0, 0), (0, 0), (padding, padding), (padding, padding)))
    out = np.empty_like(images)
    offsets = rng.integers(0, 2 * padding + 1, size=(n, 2))
    for i, (dy, dx) in enumerate(offsets):
        out[i] = padded[i, :, dy : dy + h, dx : dx + w]
    return out


def random_flip(images: np.ndarray, rng: np.random.Generator, p: float = 0.5) -> np.ndarray:
    """Horizontally flip each image with probability ``p``."""
    flips = rng.random(len(images)) < p
    out = images.copy()
    out[flips] = out[flips][:, :, :, ::-1]
    return out


def augment_batch(images: np.ndarray, rng: np.random.Generator) -> np.ndarray:
    """The usual CIFAR recipe: random crop with padding 4, then flip."""
    return random_flip(random_crop(images, rng), rng)
