"""Mini-batch iteration with optional shuffling and augmentation."""

from __future__ import annotations

from typing import Callable, Iterator, Optional, Tuple

import numpy as np

from repro.data.synthetic import Dataset

BatchTransform = Callable[[np.ndarray, np.random.Generator], np.ndarray]


class DataLoader:
    """Iterate a :class:`Dataset` in batches.

    Parameters
    ----------
    dataset:
        The dataset to iterate.
    batch_size:
        Batch size; the final partial batch is kept (not dropped).
    shuffle:
        Reshuffle example order each epoch.
    augment:
        Optional per-batch transform (e.g. :func:`repro.data.augment.augment_batch`).
    seed:
        RNG seed controlling shuffling and augmentation.
    """

    def __init__(
        self,
        dataset: Dataset,
        batch_size: int = 64,
        shuffle: bool = True,
        augment: Optional[BatchTransform] = None,
        seed: int = 0,
    ):
        if batch_size <= 0:
            raise ValueError(f"batch_size must be positive, got {batch_size}")
        self.dataset = dataset
        self.batch_size = batch_size
        self.shuffle = shuffle
        self.augment = augment
        self._rng = np.random.default_rng(seed)

    def __len__(self) -> int:
        return -(-len(self.dataset) // self.batch_size)

    def __iter__(self) -> Iterator[Tuple[np.ndarray, np.ndarray]]:
        n = len(self.dataset)
        order = self._rng.permutation(n) if self.shuffle else np.arange(n)
        for start in range(0, n, self.batch_size):
            idx = order[start : start + self.batch_size]
            images = self.dataset.images[idx]
            labels = self.dataset.labels[idx]
            if self.augment is not None:
                images = self.augment(images, self._rng)
            yield images, labels
