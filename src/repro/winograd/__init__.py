"""Winograd convolution: exact transform construction, reference kernels,
and the Winograd-aware (quantized, optionally learnable-transform) layer.

The public surface:

* :func:`~repro.winograd.cook_toom.cook_toom` — exact F(m, r) transform
  matrices built with rational arithmetic via the Cook–Toom algorithm.
* :func:`~repro.winograd.transforms.get_transform` — cached float transforms
  for the canonical point sets (F2/F4/F6 for 3x3, and 5x5 variants).
* :func:`~repro.winograd.functional.winograd_conv2d` — pure-NumPy reference
  forward, used to validate the layer.
* :class:`~repro.winograd.layer.WinogradConv2d` — the paper's contribution:
  a Winograd-aware, quantization-aware, optionally ``flex`` layer.
"""

from repro.winograd.cook_toom import (
    INFINITY,
    CookToomMatrices,
    cook_toom,
    cook_toom_1d_exact,
    default_points,
)
from repro.winograd.transforms import WinogradTransform, get_transform, tile_size
from repro.winograd.functional import (
    winograd_conv2d,
    winograd_output_shape,
    transform_filter,
    transform_input_tiles,
)
from repro.winograd.layer import WinogradConv2d

__all__ = [
    "INFINITY",
    "CookToomMatrices",
    "cook_toom",
    "cook_toom_1d_exact",
    "default_points",
    "WinogradTransform",
    "get_transform",
    "tile_size",
    "winograd_conv2d",
    "winograd_output_shape",
    "transform_filter",
    "transform_input_tiles",
    "WinogradConv2d",
]
