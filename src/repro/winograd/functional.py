"""Pure-NumPy reference implementation of 2-D Winograd convolution.

This is the *specification* the autograd layer is tested against: a direct
transliteration of Eq. (1) of the paper,

    Y = Aᵀ [ (G g Gᵀ) ⊙ (Bᵀ d B) ] A

applied to every (m + r - 1)² input tile.  It supports an optional
per-stage quantization hook so the numerical-collapse experiments
(Table 1) can be reproduced without the training machinery.
"""

from __future__ import annotations

from typing import Callable, Optional, Tuple

import numpy as np

from repro.winograd.transforms import WinogradTransform

QuantHook = Optional[Callable[[np.ndarray, str], np.ndarray]]


def winograd_output_shape(
    h: int, w: int, r: int, padding: int
) -> Tuple[int, int]:
    """Spatial output shape of a stride-1 r×r convolution with ``padding``."""
    return h + 2 * padding - r + 1, w + 2 * padding - r + 1


def _tile_counts(out_h: int, out_w: int, m: int) -> Tuple[int, int]:
    return -(-out_h // m), -(-out_w // m)


def transform_filter(
    weight: np.ndarray, transform: WinogradTransform, quant: QuantHook = None
) -> np.ndarray:
    """``G g Gᵀ`` for every (out, in) filter pair: (K, C, r, r) → (K, C, t, t)."""
    G = transform.G.astype(weight.dtype)
    u = np.einsum("ir,kcrs,js->kcij", G, weight, G, optimize=True)
    if quant is not None:
        u = quant(u, "weight_transformed")
    return u


def transform_input_tiles(
    x: np.ndarray,
    transform: WinogradTransform,
    padding: int,
    quant: QuantHook = None,
) -> Tuple[np.ndarray, Tuple[int, int]]:
    """Extract tiles and apply ``Bᵀ d B``.

    Returns ``(V, (th, tw))`` where ``V`` has shape (N, C, th, tw, t, t).
    """
    n, c, h, w = x.shape
    m, r, t = transform.m, transform.r, transform.t
    out_h, out_w = winograd_output_shape(h, w, r, padding)
    th, tw = _tile_counts(out_h, out_w, m)
    need_h = th * m + r - 1
    need_w = tw * m + r - 1
    xp = np.pad(
        x,
        (
            (0, 0),
            (0, 0),
            (padding, need_h - h - padding),
            (padding, need_w - w - padding),
        ),
    )
    sn, sc, sh, sw = xp.strides
    tiles = np.lib.stride_tricks.as_strided(
        xp,
        shape=(n, c, th, tw, t, t),
        strides=(sn, sc, sh * m, sw * m, sh, sw),
    )
    BT = transform.BT.astype(x.dtype)
    v = np.einsum("ij,ncpqjk,lk->ncpqil", BT, tiles, BT, optimize=True)
    if quant is not None:
        v = quant(v, "input_transformed")
    return v, (th, tw)


def winograd_conv2d(
    x: np.ndarray,
    weight: np.ndarray,
    transform: WinogradTransform,
    bias: Optional[np.ndarray] = None,
    padding: int = 1,
    quant: QuantHook = None,
) -> np.ndarray:
    """Reference Winograd convolution (stride 1).

    Parameters
    ----------
    x:
        Input activations, shape (N, C, H, W).
    weight:
        Filters, shape (K, C, r, r) with r == transform.r.
    transform:
        The F(m×m, r×r) transform to use.
    bias:
        Optional (K,) bias added after the output transform.
    padding:
        Symmetric zero padding (the usual "same" for odd r is (r-1)//2).
    quant:
        Optional hook ``f(array, stage_name) -> array`` applied after each
        stage — "weight", "input", "weight_transformed",
        "input_transformed", "hadamard", "output".  Passing a fake-quant
        function reproduces the post-training quantized-swap experiment
        (Table 1).
    """
    if weight.shape[2] != transform.r or weight.shape[3] != transform.r:
        raise ValueError(
            f"filter is {weight.shape[2]}x{weight.shape[3]} but transform expects "
            f"r={transform.r}"
        )
    if x.shape[1] != weight.shape[1]:
        raise ValueError(f"channel mismatch: input {x.shape[1]} vs weight {weight.shape[1]}")
    if quant is not None:
        x = quant(x, "input")
        weight = quant(weight, "weight")
    n, c, h, w = x.shape
    k = weight.shape[0]
    m, r = transform.m, transform.r
    out_h, out_w = winograd_output_shape(h, w, r, padding)

    u = transform_filter(weight, transform, quant)  # (K, C, t, t)
    v, (th, tw) = transform_input_tiles(x, transform, padding, quant)  # (N,C,th,tw,t,t)

    # Hadamard product + channel summation: t² GEMMs of (K×C)·(C×P).
    hadamard = np.einsum("kcij,ncpqij->nkpqij", u, v, optimize=True)
    if quant is not None:
        hadamard = quant(hadamard, "hadamard")

    AT = transform.AT.astype(x.dtype)
    y = np.einsum("ij,nkpqjl,ml->nkpqim", AT, hadamard, AT, optimize=True)
    if quant is not None:
        y = quant(y, "output")

    # Non-overlapping m×m output tiles reassemble by transpose+reshape.
    y = y.transpose(0, 1, 2, 4, 3, 5).reshape(n, k, th * m, tw * m)
    y = y[:, :, :out_h, :out_w]
    if bias is not None:
        y = y + bias.reshape(1, k, 1, 1)
    return y


def direct_conv2d(
    x: np.ndarray,
    weight: np.ndarray,
    bias: Optional[np.ndarray] = None,
    padding: int = 1,
    stride: int = 1,
) -> np.ndarray:
    """Naive direct convolution (cross-correlation) — ground truth for tests."""
    n, c, h, w = x.shape
    k, _, r, s = weight.shape
    xp = np.pad(x, ((0, 0), (0, 0), (padding, padding), (padding, padding)))
    out_h = (h + 2 * padding - r) // stride + 1
    out_w = (w + 2 * padding - s) // stride + 1
    sn, sc, sh, sw = xp.strides
    patches = np.lib.stride_tricks.as_strided(
        xp,
        shape=(n, c, out_h, out_w, r, s),
        strides=(sn, sc, sh * stride, sw * stride, sh, sw),
    )
    y = np.einsum("ncpqrs,kcrs->nkpq", patches, weight, optimize=True)
    if bias is not None:
        y = y + bias.reshape(1, k, 1, 1)
    return y
