"""Canonical Winograd transforms used throughout the reproduction.

The paper's configurations (its §3.1 naming, for 3×3 filters):

========  =============  ==========  ==================
name      algorithm      input tile  mult. per output
========  =============  ==========  ==================
``F2``    F(2×2, 3×3)    4×4         4
``F4``    F(4×4, 3×3)    6×6         2.25
``F6``    F(6×6, 3×3)    8×8         ≈1.78
========  =============  ==========  ==================

plus the 5×5-filter variants used for LeNet (Figure 5).  All matrices come
from :mod:`repro.winograd.cook_toom` with the consensus point sets.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from functools import lru_cache
from typing import Optional, Sequence, Tuple

import numpy as np

from repro.winograd.cook_toom import (
    CookToomMatrices,
    Point,
    cook_toom_1d_exact,
    default_points,
)


def tile_size(m: int, r: int) -> int:
    """Input tile edge for F(m×m, r×r): ``m + r - 1``."""
    return m + r - 1


@dataclass(frozen=True)
class WinogradTransform:
    """Float transform matrices for F(m×m, r×r) plus provenance metadata."""

    m: int
    r: int
    BT: np.ndarray  # (t, t)
    G: np.ndarray  # (t, r)
    AT: np.ndarray  # (m, t)
    points: Tuple[Point, ...]

    @property
    def t(self) -> int:
        """Input tile edge."""
        return self.m + self.r - 1

    @property
    def multiplications_per_output(self) -> float:
        """Hadamard multiplies per output pixel: t²/m²."""
        return (self.t / self.m) ** 2

    def sparsity(self) -> Tuple[float, float, float]:
        """Fraction of zero entries in (BT, G, AT) — drives transform cost
        in the hardware model (§A.2: learned transforms become dense)."""
        frac0 = lambda a: float((a == 0).mean())
        return frac0(self.BT), frac0(self.G), frac0(self.AT)

    def copies(self, dtype=np.float32) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Fresh (BT, G, AT) arrays, e.g. to seed learnable parameters."""
        return (
            self.BT.astype(dtype).copy(),
            self.G.astype(dtype).copy(),
            self.AT.astype(dtype).copy(),
        )


@lru_cache(maxsize=None)
def _cached_exact(m: int, r: int, points: Optional[Tuple[Point, ...]]) -> CookToomMatrices:
    return cook_toom_1d_exact(m, r, points=points)


def get_transform(
    m: int,
    r: int = 3,
    points: Optional[Sequence[Point]] = None,
    dtype=np.float64,
) -> WinogradTransform:
    """Return the canonical F(m×m, r×r) transform.

    ``points`` overrides the default Cook–Toom evaluation points, which is
    how the polynomial-point ablation (paper §7) selects alternatives.
    """
    key = tuple(points) if points is not None else None
    exact = _cached_exact(int(m), int(r), key)
    BT, G, AT = exact.as_float(dtype)
    return WinogradTransform(m=int(m), r=int(r), BT=BT, G=G, AT=AT, points=exact.points)


#: The paper's shorthand: F2/F4/F6 for 3×3 filters.
PAPER_CONFIGS = {
    "F2": (2, 3),
    "F4": (4, 3),
    "F6": (6, 3),
}


def get_paper_transform(name: str, dtype=np.float64) -> WinogradTransform:
    """Look up a transform by the paper's name (``F2``, ``F4``, ``F6``)."""
    try:
        m, r = PAPER_CONFIGS[name]
    except KeyError:
        raise KeyError(f"unknown config {name!r}; expected one of {sorted(PAPER_CONFIGS)}")
    return get_transform(m, r, dtype=dtype)
