"""The Winograd-aware convolution layer (paper §3.2, Figure 2).

The forward pass explicitly materialises every stage of

    Y = Aᵀ [ (G g Gᵀ) ⊙ (Bᵀ d B) ] A

as autograd operations, with a fake-quantizer (``Qx`` in Fig. 2) after each
stage.  Because the whole pipeline is differentiable:

* the *filters* learn to compensate the numerical error of the Winograd
  transforms ("learn better filters"), and
* when ``flex=True`` the transform matrices ``G``, ``Bᵀ``, ``Aᵀ`` are
  themselves :class:`~repro.nn.module.Parameter`s initialised via
  Cook–Toom and updated by backprop ("learn the transforms").
"""

from __future__ import annotations

import math
from typing import Optional, Sequence, Tuple

import numpy as np

from repro.autograd import ops
from repro.autograd.tensor import Tensor, as_tensor
from repro.nn import init
from repro.nn.module import Buffer, Module, Parameter
from repro.quant.qconfig import QConfig, fp32
from repro.quant.quantizer import Quantizer
from repro.winograd.transforms import WinogradTransform, get_transform


class WinogradConv2d(Module):
    """Winograd-aware 2-D convolution F(m×m, r×r), stride 1.

    Parameters
    ----------
    in_channels, out_channels:
        Channel counts; must be divisible by ``groups``.
    kernel_size:
        Filter size ``r`` (square).
    m:
        Output-tile size of the Winograd algorithm (2/4/6 ↔ the paper's
        F2/F4/F6 when ``r == 3``).
    padding:
        Symmetric zero padding; defaults to "same" ``(r - 1) // 2``.
    flex:
        Learn the transform matrices (the paper's ``-flex`` suffix).
    qconfig:
        Bit-width configuration; ``None``/:func:`~repro.quant.qconfig.fp32`
        disables all ``Qx`` stages.
    points:
        Override Cook–Toom evaluation points (polynomial-point ablation).

    Notes
    -----
    Strided Winograd convolution has no known formulation (paper §5.1); the
    layer enforces stride 1.  Networks replace strided convs with pooling +
    dense conv, as the paper does.
    """

    def __init__(
        self,
        in_channels: int,
        out_channels: int,
        kernel_size: int = 3,
        m: int = 2,
        padding: Optional[int] = None,
        groups: int = 1,
        bias: bool = True,
        flex: bool = False,
        qconfig: Optional[QConfig] = None,
        points: Optional[Sequence] = None,
        rng=None,
    ):
        super().__init__()
        r = int(kernel_size)
        if in_channels % groups or out_channels % groups:
            raise ValueError(f"groups={groups} must divide {in_channels}->{out_channels}")
        self.in_channels = in_channels
        self.out_channels = out_channels
        self.kernel_size = r
        self.m = int(m)
        self.padding = (r - 1) // 2 if padding is None else int(padding)
        self.groups = groups
        self.flex = bool(flex)
        self.qconfig = qconfig if qconfig is not None else fp32()

        transform = get_transform(self.m, r, points=points)
        self._reference_transform = transform
        bt, g, at = transform.copies(np.float32)
        wrap = Parameter if self.flex else Buffer
        self.BT = wrap(bt)
        self.G = wrap(g)
        self.AT = wrap(at)

        self.weight = Parameter(
            init.kaiming_normal((out_channels, in_channels // groups, r, r), rng=rng)
        )
        fan_in = (in_channels // groups) * r * r
        self.bias = Parameter(init.uniform_bias((out_channels,), fan_in, rng=rng)) if bias else None

        mom = self.qconfig.ema_momentum
        self.q_input = Quantizer(self.qconfig.bits_for("input"), mom, "input")
        self.q_weight = Quantizer(self.qconfig.bits_for("weight"), mom, "weight")
        self.q_weight_t = Quantizer(
            self.qconfig.bits_for("weight_transformed"), mom, "weight_transformed"
        )
        self.q_input_t = Quantizer(
            self.qconfig.bits_for("input_transformed"), mom, "input_transformed"
        )
        self.q_hadamard = Quantizer(self.qconfig.bits_for("hadamard"), mom, "hadamard")
        self.q_output = Quantizer(self.qconfig.bits_for("output"), mom, "output")

    # -- properties -----------------------------------------------------------
    @property
    def t(self) -> int:
        """Input tile edge m + r - 1."""
        return self.m + self.kernel_size - 1

    @property
    def reference_transform(self) -> WinogradTransform:
        """The Cook–Toom initialisation (before any flex training)."""
        return self._reference_transform

    def current_transform(self) -> WinogradTransform:
        """The transforms as currently held (may differ after flex training)."""
        return WinogradTransform(
            m=self.m,
            r=self.kernel_size,
            BT=self.BT.data.astype(np.float64).copy(),
            G=self.G.data.astype(np.float64).copy(),
            AT=self.AT.data.astype(np.float64).copy(),
            points=self._reference_transform.points,
        )

    def transform_drift(self) -> float:
        """Max |current − Cook–Toom| across the three transforms (flex diagnostics)."""
        ref = self._reference_transform
        return max(
            float(np.abs(self.BT.data - ref.BT).max()),
            float(np.abs(self.G.data - ref.G).max()),
            float(np.abs(self.AT.data - ref.AT).max()),
        )

    def set_calibrating(self, flag: bool) -> None:
        """Toggle observer warm-up mode on every quantizer (Table 1 footnote)."""
        for module in self.modules():
            if isinstance(module, Quantizer):
                module.calibrating = flag

    # -- forward ---------------------------------------------------------------
    def forward(self, x: Tensor) -> Tensor:
        x = as_tensor(x)
        if x.ndim != 4:
            raise ValueError(f"expected NCHW input, got shape {x.shape}")
        n, c, h, w = x.shape
        if c != self.in_channels:
            raise ValueError(f"expected {self.in_channels} channels, got {c}")
        self.last_input_hw = (h, w)  # consumed by repro.hardware
        r, m, t, g = self.kernel_size, self.m, self.t, self.groups
        k = self.out_channels
        pad = self.padding
        out_h = h + 2 * pad - r + 1
        out_w = w + 2 * pad - r + 1
        if out_h <= 0 or out_w <= 0:
            raise ValueError(f"input {h}x{w} too small for r={r} pad={pad}")
        th = -(-out_h // m)
        tw = -(-out_w // m)

        x = self.q_input(x)
        weight = self.q_weight(self.weight)

        # --- filter transform: U = G g Gᵀ ------------------------------- (K, C/g, t, t)
        u = ops.matmul(ops.matmul(self.G, weight), self.G.transpose())
        u = self.q_weight_t(u)

        # --- input transform: V = Bᵀ d B --------------------------- (N, C, th, tw, t, t)
        need_h = th * m + r - 1
        need_w = tw * m + r - 1
        xp = ops.pad2d(x, (pad, need_h - h - pad, pad, need_w - w - pad))
        tiles = ops.extract_patches(xp, (t, t), (m, m))
        v = ops.matmul(ops.matmul(self.BT, tiles), self.BT.transpose())
        v = self.q_input_t(v)

        # --- Hadamard product + summation over channels -----------------------
        # Lowered to t² GEMMs of (K/g × C/g)·(C/g × N·th·tw) per group — the
        # GEMM formulation of Maji et al. (2019) used for deployment.
        p = n * th * tw
        u2 = u.reshape(g, k // g, c // g, t, t).permute(3, 4, 0, 1, 2)  # (t,t,g,K/g,C/g)
        v2 = (
            v.reshape(n, g, c // g, th, tw, t, t)
            .permute(5, 6, 1, 2, 0, 3, 4)  # (t,t,g,C/g,N,th,tw)
            .reshape(t, t, g, c // g, p)
        )
        had = ops.matmul(u2, v2)  # (t, t, g, K/g, P)
        had = self.q_hadamard(had)

        # --- output transform: Y = Aᵀ y A ----------------------------------
        y = had.reshape(t, t, k, p).permute(2, 3, 0, 1)  # (K, P, t, t)
        y = ops.matmul(ops.matmul(self.AT, y), self.AT.transpose())  # (K, P, m, m)
        y = self.q_output(y)

        # --- reassemble non-overlapping output tiles, crop the ragged edge ---
        y = (
            y.reshape(k, n, th, tw, m, m)
            .permute(1, 0, 2, 4, 3, 5)
            .reshape(n, k, th * m, tw * m)
        )
        if th * m != out_h:
            y = ops.slice_axis(y, 2, 0, out_h)
        if tw * m != out_w:
            y = ops.slice_axis(y, 3, 0, out_w)
        if self.bias is not None:
            y = y + self.bias.reshape(1, k, 1, 1)
        return y

    # -- adaptation -------------------------------------------------------------
    @classmethod
    def from_conv2d(
        cls,
        conv,
        m: int,
        flex: bool = False,
        qconfig: Optional[QConfig] = None,
        points: Optional[Sequence] = None,
    ) -> "WinogradConv2d":
        """Build a Winograd-aware layer from a trained standard conv.

        Copies weights/bias; this is the mechanism behind the post-training
        swap study (Table 1) and the fast adaptation experiment (Figure 6).
        """
        if conv.kernel_size[0] != conv.kernel_size[1]:
            raise ValueError("Winograd layer requires square kernels")
        stride = conv.stride if isinstance(conv.stride, tuple) else (conv.stride, conv.stride)
        if stride != (1, 1):
            raise ValueError("no known strided Winograd formulation (paper §5.1)")
        pad = conv.padding if isinstance(conv.padding, int) else conv.padding[0]
        layer = cls(
            conv.in_channels,
            conv.out_channels,
            kernel_size=conv.kernel_size[0],
            m=m,
            padding=pad,
            groups=conv.groups,
            bias=conv.bias is not None,
            flex=flex,
            qconfig=qconfig,
            points=points,
        )
        layer.weight.data = conv.weight.data.copy()
        if conv.bias is not None:
            layer.bias.data = conv.bias.data.copy()
        return layer

    def __repr__(self) -> str:
        flex = "-flex" if self.flex else ""
        return (
            f"WinogradConv2d(F({self.m}x{self.m},{self.kernel_size}x{self.kernel_size})"
            f"{flex}, {self.in_channels}->{self.out_channels}, groups={self.groups}, "
            f"q={self.qconfig.name})"
        )
