"""Exact Cook–Toom construction of Winograd transform matrices.

Given output size ``m`` and filter size ``r``, the minimal 1-D algorithm
F(m, r) uses ``n = m + r - 1`` multiplications.  Following the classical
evaluation/interpolation derivation (L. Toom 1963; Winograd 1980) combined
with the transposition principle (Blahut 2010, §5.2):

* linear convolution of ``g`` (length r) with ``v`` (length m) factors as
  ``g * v = Vn^{-1} [(Vr g) ⊙ (Vm v)]`` where ``Vk`` evaluates a degree-(k-1)
  polynomial at ``n`` chosen points (the last point being ∞, whose
  "evaluation" is the leading coefficient), and
* the *correlation* F(m, r) — what CNN layers compute — is the transpose of
  the convolution map, giving ``corr(d, g) = Aᵀ[(G g) ⊙ (Bᵀ d)]`` with

  - ``Aᵀ = Vmᵀ``                 (m × n, output transform)
  - ``G  = Vr``                  (n × r, filter transform)
  - ``Bᵀ = (Vnᵀ)^{-1}``          (n × n, input transform)

All arithmetic uses :class:`fractions.Fraction`, so the defining identity
holds *exactly*; the float matrices handed to layers are rounded once at the
end.  A normalization pass rescales rows so that ``Bᵀ`` is integer-valued
whenever the points permit, matching the scaling convention of Lavin & Gray
(2016) — e.g. the canonical F(4, 3) matrices are recovered exactly up to
per-row sign.

The choice of evaluation points controls the numerical error (Barabasz et
al. 2018); :func:`default_points` yields the consensus sequence
``0, 1, -1, 2, -2, 1/2, -1/2, ...``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from fractions import Fraction
from typing import List, Optional, Sequence, Tuple, Union

import numpy as np


class _Infinity:
    """Sentinel for the projective point at infinity."""

    _instance: Optional["_Infinity"] = None

    def __new__(cls) -> "_Infinity":
        if cls._instance is None:
            cls._instance = super().__new__(cls)
        return cls._instance

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return "∞"


INFINITY = _Infinity()

Point = Union[Fraction, int, _Infinity]
ExactMatrix = List[List[Fraction]]


def default_points(count: int) -> Tuple[Point, ...]:
    """Return ``count`` finite points followed by the point at infinity.

    The sequence interleaves reciprocals with integers —
    ``0, 1, -1, 2, -2, 1/2, -1/2, 4, -4, 1/4, -1/4, 3, -3, ...`` — which is
    the widely used "good points" ordering for Winograd kernels (it keeps
    the dynamic range of the transforms small; see Barabasz et al. 2018).
    """
    if count < 0:
        raise ValueError("count must be non-negative")
    seq: List[Fraction] = [Fraction(0)]
    magnitudes = [Fraction(1), Fraction(2), Fraction(1, 2), Fraction(4),
                  Fraction(1, 4), Fraction(3), Fraction(1, 3), Fraction(8),
                  Fraction(1, 8), Fraction(5), Fraction(1, 5), Fraction(6),
                  Fraction(1, 6), Fraction(7), Fraction(1, 7)]
    for mag in magnitudes:
        seq.append(mag)
        seq.append(-mag)
    if count > len(seq):
        raise ValueError(f"no default point table beyond {len(seq)} points")
    return tuple(seq[:count]) + (INFINITY,)


def _as_point(p: Point) -> Point:
    if isinstance(p, _Infinity):
        return p
    return Fraction(p)


def _vandermonde(points: Sequence[Point], cols: int) -> ExactMatrix:
    """Evaluation matrix: row i evaluates a degree-(cols-1) polynomial at
    point i; the ∞ row selects the leading coefficient."""
    rows: ExactMatrix = []
    for p in points:
        if isinstance(p, _Infinity):
            rows.append([Fraction(0)] * (cols - 1) + [Fraction(1)])
        else:
            rows.append([p**j for j in range(cols)])
    return rows


def _transpose(mat: ExactMatrix) -> ExactMatrix:
    return [list(row) for row in zip(*mat)]


def _invert(mat: ExactMatrix) -> ExactMatrix:
    """Exact Gauss–Jordan inversion over the rationals."""
    n = len(mat)
    aug = [list(row) + [Fraction(int(i == j)) for j in range(n)] for i, row in enumerate(mat)]
    for col in range(n):
        pivot = next((row for row in range(col, n) if aug[row][col] != 0), None)
        if pivot is None:
            raise ValueError("singular Vandermonde matrix: duplicate points?")
        aug[col], aug[pivot] = aug[pivot], aug[col]
        inv_p = Fraction(1) / aug[col][col]
        aug[col] = [v * inv_p for v in aug[col]]
        for row in range(n):
            if row != col and aug[row][col] != 0:
                factor = aug[row][col]
                aug[row] = [a - factor * b for a, b in zip(aug[row], aug[col])]
    return [row[n:] for row in aug]


def _matmul_exact(a: ExactMatrix, b: ExactMatrix) -> ExactMatrix:
    return [
        [sum((x * y for x, y in zip(row, col)), Fraction(0)) for col in zip(*b)]
        for row in a
    ]


@dataclass(frozen=True)
class CookToomMatrices:
    """Exact F(m, r) transform matrices plus metadata."""

    m: int
    r: int
    points: Tuple[Point, ...]
    BT: Tuple[Tuple[Fraction, ...], ...]  # (n, n) input transform
    G: Tuple[Tuple[Fraction, ...], ...]  # (n, r) filter transform
    AT: Tuple[Tuple[Fraction, ...], ...]  # (m, n) output transform

    @property
    def n(self) -> int:
        return self.m + self.r - 1

    def as_float(self, dtype=np.float64) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        to_arr = lambda mat: np.array([[float(v) for v in row] for row in mat], dtype=dtype)
        return to_arr(self.BT), to_arr(self.G), to_arr(self.AT)

    def apply_1d_exact(self, d: Sequence, g: Sequence) -> List[Fraction]:
        """Exact 1-D Winograd correlation — used by property tests."""
        d = [Fraction(x) for x in d]
        g = [Fraction(x) for x in g]
        if len(d) != self.n or len(g) != self.r:
            raise ValueError(f"expected |d|={self.n}, |g|={self.r}")
        u = [sum((gv * gx for gv, gx in zip(row, g)), Fraction(0)) for row in self.G]
        v = [sum((bv * dx for bv, dx in zip(row, d)), Fraction(0)) for row in self.BT]
        h = [ui * vi for ui, vi in zip(u, v)]
        return [sum((av * hx for av, hx in zip(row, h)), Fraction(0)) for row in self.AT]


def _normalize_rows(
    BT: ExactMatrix, G: ExactMatrix
) -> Tuple[ExactMatrix, ExactMatrix]:
    """Rescale Hadamard components so ``Bᵀ`` rows become integral.

    Multiplying row ``i`` of ``Bᵀ`` by ``s`` and dividing row ``i`` of ``G``
    by ``s`` leaves the algorithm's output unchanged (the Hadamard product
    is componentwise).  Lavin & Gray publish transforms in this style, and
    integer ``Bᵀ`` keeps the input transform cheap and exact.
    """
    new_BT: ExactMatrix = []
    new_G: ExactMatrix = []
    for bt_row, g_row in zip(BT, G):
        denoms = [v.denominator for v in bt_row if v != 0]
        scale = Fraction(math.lcm(*denoms)) if denoms else Fraction(1)
        numers = [int(v * scale) for v in bt_row if v != 0]
        if numers:
            common = math.gcd(*[abs(x) for x in numers])
            if common > 1:
                scale /= common
        new_BT.append([v * scale for v in bt_row])
        new_G.append([v / scale for v in g_row])
    return new_BT, new_G


def cook_toom_1d_exact(
    m: int,
    r: int,
    points: Optional[Sequence[Point]] = None,
    normalize: bool = True,
) -> CookToomMatrices:
    """Build exact F(m, r) transforms.

    Parameters
    ----------
    m, r:
        Output length and filter length of the 1-D algorithm.
    points:
        ``m + r - 1`` evaluation points (``INFINITY`` allowed once, by
        convention last).  Defaults to :func:`default_points`.
    normalize:
        Rescale rows so ``Bᵀ`` is integral where possible (Lavin-style).
    """
    if m < 1 or r < 1:
        raise ValueError(f"m and r must be positive, got m={m} r={r}")
    n = m + r - 1
    if points is None:
        points = default_points(n - 1)
    points = tuple(_as_point(p) for p in points)
    if len(points) != n:
        raise ValueError(f"F({m},{r}) needs {n} points, got {len(points)}")
    finite = [p for p in points if not isinstance(p, _Infinity)]
    if len(set(finite)) != len(finite):
        raise ValueError("evaluation points must be distinct")
    if sum(isinstance(p, _Infinity) for p in points) > 1:
        raise ValueError("at most one point at infinity")

    G = _vandermonde(points, r)
    AT = _transpose(_vandermonde(points, m))
    BT = _invert(_transpose(_vandermonde(points, n)))
    if normalize:
        BT, G = _normalize_rows(BT, G)
    freeze = lambda mat: tuple(tuple(row) for row in mat)
    return CookToomMatrices(m=m, r=r, points=points, BT=freeze(BT), G=freeze(G), AT=freeze(AT))


def cook_toom(
    m: int,
    r: int,
    points: Optional[Sequence[Point]] = None,
    dtype=np.float64,
    normalize: bool = True,
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Float (BT, G, AT) transform matrices for F(m, r)."""
    return cook_toom_1d_exact(m, r, points=points, normalize=normalize).as_float(dtype)
