"""Registered benchmarks, runnable by name via ``repro bench <name>``.

Each benchmark is a callable returning a JSON-serialisable report and
writing it to its ``BENCH_*.json`` file at the repo root (or ``--out``),
so perf trajectories are tracked across PRs and CI can diff a fresh run
against the committed baseline (``benchmarks/check_bench_regression.py``).

* ``engine`` — compiled-engine vs eager forward on the smoke workloads,
  including the native ``int8`` backend column (writes ``BENCH_engine.json``);
* ``serve``  — dynamic-batching serving policy sweep (writes
  ``BENCH_serve.json``).
"""

from __future__ import annotations

import json
import pathlib
from typing import Callable, Dict, Optional

#: name -> (runner, description).  A runner takes (out_path, quick, seed)
#: and returns the report dict it wrote.
BENCHMARKS: Dict[str, tuple] = {}


def register_benchmark(name: str, description: str):
    def decorator(fn: Callable) -> Callable:
        BENCHMARKS[name] = (fn, description)
        return fn

    return decorator


def run_benchmark(
    name: str, out: Optional[str] = None, quick: bool = False, seed: int = 0
) -> dict:
    if name not in BENCHMARKS:
        raise KeyError(
            f"unknown benchmark {name!r}; registered: {sorted(BENCHMARKS)}"
        )
    runner, _ = BENCHMARKS[name]
    return runner(out_path=out, quick=quick, seed=seed)


def _engine_workloads(seed: int):
    """Smoke models for the engine-vs-eager comparison (one fp32 and one
    int8 variant of the batched ResNet workload, so the int8-vs-fp32
    anomaly check compares like against like)."""
    import numpy as np

    from repro.models.common import ConvSpec
    from repro.models.lenet import lenet
    from repro.models.resnet import resnet18
    from repro.quant.qconfig import int8

    rng = np.random.default_rng(seed)
    return {
        "lenet-F2": (
            lenet(spec=ConvSpec("F2")),
            rng.standard_normal((16, 1, 28, 28)).astype(np.float32),
        ),
        "resnet18-w0.25-F4": (
            resnet18(width_multiplier=0.25, spec=ConvSpec("F4")),
            rng.standard_normal((8, 3, 32, 32)).astype(np.float32),
        ),
        "resnet18-w0.25-F4-int8": (
            resnet18(width_multiplier=0.25, spec=ConvSpec("F4", int8())),
            rng.standard_normal((8, 3, 32, 32)).astype(np.float32),
        ),
    }


@register_benchmark("engine", "compiled engine vs eager forward (BENCH_engine.json)")
def run_engine_benchmark(
    out_path: Optional[str] = None, quick: bool = False, seed: int = 0
) -> dict:
    """Engine-vs-eager speedups across backends, persisted as JSON.

    Quantized workloads get ``turbo`` and native ``int8`` backend columns
    next to ``fast``; the report records whether the int8 anomaly is
    inverted (int8 on its native backend beating fp32 on ``fast``).
    """
    import numpy as np

    from repro.autograd import Tensor, no_grad
    from repro.engine import compile_model, measure_callable_ms

    repeats = 3 if quick else 7
    warmup = 1 if quick else 2
    workloads = _engine_workloads(seed)
    for model, x in workloads.values():
        model.eval()
        with no_grad():  # warm quantizer observers so plans freeze ranges
            model(Tensor(x))

    summary = []
    for name, (model, x) in workloads.items():
        quantized = name.endswith("int8")

        def eager():
            with no_grad():
                return model(Tensor(x))

        row = {
            "workload": name,
            "batch": int(x.shape[0]),
            "eager_ms": round(measure_callable_ms(eager, repeats=repeats, warmup=warmup), 3),
        }
        backends = ("fast", "reference") + (("turbo", "int8") if quantized else ())
        for backend in backends:
            plan = compile_model(model, backend=backend)
            ms = measure_callable_ms(plan.run, x, repeats=repeats, warmup=warmup)
            row[f"engine_{backend}_ms"] = round(ms, 3)
            row[f"speedup_{backend}"] = round(row["eager_ms"] / ms, 3)
        summary.append(row)

    fp32_row = next(r for r in summary if r["workload"] == "resnet18-w0.25-F4")
    int8_row = next(r for r in summary if r["workload"] == "resnet18-w0.25-F4-int8")
    report = {
        "benchmark": "bench_engine_vs_eager",
        "results": summary,
        "int8_anomaly": {
            "fp32_fast_ms": fp32_row["engine_fast_ms"],
            "int8_fast_ms": int8_row["engine_fast_ms"],
            "int8_native_ms": int8_row["engine_int8_ms"],
            "inverted": int8_row["engine_int8_ms"] < fp32_row["engine_fast_ms"],
        },
    }
    path = pathlib.Path(out_path) if out_path else _repo_root() / "BENCH_engine.json"
    path.write_text(json.dumps(report, indent=2) + "\n")
    return report


@register_benchmark("serve", "dynamic-batching serving policy sweep (BENCH_serve.json)")
def run_serve_benchmark(
    out_path: Optional[str] = None, quick: bool = False, seed: int = 0
) -> dict:
    """``seed`` is accepted for runner-signature uniformity but unused:
    the sweep's model/load seeds are fixed by the served ModelSpec."""
    from repro.serve import benchmark_serving

    return benchmark_serving(
        out_path=out_path or str(_repo_root() / "BENCH_serve.json"),
        quick=quick,
    )


def _repo_root() -> pathlib.Path:
    """Repo root when run from a checkout; cwd otherwise."""
    here = pathlib.Path(__file__).resolve()
    for parent in here.parents:
        if (parent / "pytest.ini").exists() or (parent / ".git").exists():
            return parent
    return pathlib.Path.cwd()
